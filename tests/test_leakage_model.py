"""Integration test: every Table 3 cell must be demonstrated."""

import pytest

from repro.core.leakage_model import demonstrate_leakage_matrix


@pytest.fixture(scope="module")
def cells():
    return demonstrate_leakage_matrix()


class TestLeakageMatrix:
    def test_every_cell_demonstrated(self, cells):
        failing = [c for c in cells if not c.demonstrated]
        assert not failing, f"undemonstrated cells: {failing}"

    def test_covers_all_three_attacks(self, cells):
        attacks = {c.attack for c in cells}
        assert any("PRAC" in a for a in attacks)
        assert any("RFM" in a for a in attacks)
        assert any("DRAMA" in a for a in attacks)

    def test_prac_leaks_across_banks_drama_does_not(self, cells):
        by_key = {(c.attack, c.granularity): c for c in cells}
        prac = by_key[("LeakyHammer-PRAC", "channel / bank group")]
        drama = by_key[("DRAMA", "channel / bank group")]
        assert "preventive action" in prac.leaked
        assert "nothing" in drama.leaked

    def test_bank_level_prac_contains_the_leak(self, cells):
        cell = next(c for c in cells if "Bank-Level" in c.attack)
        assert cell.demonstrated
