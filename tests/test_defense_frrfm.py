"""Tests for FR-RFM, including the non-interference security property."""

import pytest

from repro.cpu.agent import run_agents
from repro.cpu.noise import NoiseAgent
from repro.sim.config import DefenseKind, DefenseParams, RefreshPolicy, SystemConfig
from repro.sim.engine import NS, US
from repro.sim.stats import BlockKind
from repro.system import MemorySystem

from tests.conftest import make_system, single_read


def frrfm_system(trfm=20) -> MemorySystem:
    return make_system(DefenseKind.FRRFM, trfm=trfm)


class TestFixedSchedule:
    def test_rfms_on_exact_grid(self):
        system = frrfm_system(trfm=20)
        period = system.defense.period
        system.sim.run(until=5 * period + 1)
        rfms = system.stats.blocks_of(BlockKind.RFM)
        assert [r.start for r in rfms] == [period * k for k in range(1, 6)]

    def test_period_is_trfm_times_trc(self):
        system = frrfm_system(trfm=20)
        t = system.config.timing
        assert system.defense.period == 20 * t.tRC

    def test_rfm_blocks_all_banks(self):
        system = frrfm_system()
        system.sim.run(until=system.defense.period + 1)
        assert system.stats.blocks_of(BlockKind.RFM)[0].banks is None

    def test_idle_system_still_issues_rfms(self):
        """The whole point: preventive actions are decoupled from
        traffic -- they fire even with zero memory accesses."""
        system = frrfm_system(trfm=20)
        system.sim.run(until=10 * system.defense.period)
        assert system.stats.rfm_commands == 9 or \
            system.stats.rfm_commands == 10

    def test_starvation_guard(self):
        with pytest.raises(ValueError):
            make_system(DefenseKind.FRRFM, trfm=2)


class TestNonInterference:
    def _rfm_schedule(self, with_sender: bool) -> list[int]:
        system = frrfm_system(trfm=20)
        agents = []
        if with_sender:
            rows = system.mapper.same_bank_rows(2, stride=8)
            agents.append(NoiseAgent(system, rows, sleep_ps=100 * NS,
                                     stop_time=200 * US))
        for agent in agents:
            agent.start()
        system.sim.run(until=200 * US)
        return [r.start for r in system.stats.blocks_of(BlockKind.RFM)]

    def test_rfm_schedule_independent_of_traffic(self):
        """The security argument of Section 11.1: the RFM timestamp
        sequence is identical whatever any process does."""
        assert self._rfm_schedule(False) == self._rfm_schedule(True)

    def test_receiver_observation_carries_no_information(self):
        """Empirically: the per-window RFM counts a receiver can
        observe are the same for a hammering and an idle sender."""
        def windows(with_sender):
            schedule = self._rfm_schedule(with_sender)
            window = 20 * US
            counts = {}
            for t in schedule:
                counts[t // window] = counts.get(t // window, 0) + 1
            return counts
        assert windows(True) == windows(False)

    def test_describe(self):
        info = frrfm_system(trfm=20).defense.describe()
        assert info["kind"] == "fr-rfm"
        assert info["period_ps"] == info["trfm"] * 48 * NS
