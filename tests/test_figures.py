"""Tests for the figure/table renderers."""

import pytest

from repro.analysis.figures import FigureTable, render_series, render_strip


class TestFigureTable:
    def test_add_row_and_text(self):
        table = FigureTable("Demo", ["a", "b"])
        table.add_row(1, 2.5)
        text = table.to_text()
        assert "Demo" in text
        assert "2.500" in text

    def test_row_arity_checked(self):
        table = FigureTable("Demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_notes_rendered(self):
        table = FigureTable("Demo", ["a"])
        table.add_row(1)
        table.add_note("hello")
        assert "note: hello" in table.to_text()

    def test_column_extraction(self):
        table = FigureTable("Demo", ["x", "y"])
        table.add_row(1, 10)
        table.add_row(2, 20)
        assert table.column("y") == [10, 20]

    def test_csv_roundtrip(self, tmp_path):
        table = FigureTable("Demo", ["x", "y"])
        table.add_row(1, 0.5)
        path = table.to_csv(tmp_path / "out.csv")
        content = path.read_text().strip().splitlines()
        assert content[0] == "x,y"
        assert content[1] == "1,0.5"

    def test_alignment_with_long_values(self):
        table = FigureTable("Demo", ["name", "v"])
        table.add_row("a-very-long-name", 1)
        table.add_row("x", 2)
        lines = table.to_text().splitlines()
        assert len(lines[-1]) <= len(lines[-2]) + 2


class TestStrips:
    def test_empty_strip(self):
        assert render_strip([]) == ""

    def test_zero_counts_blank(self):
        assert render_strip([0, 0, 0]) == "   "

    def test_peak_gets_darkest_char(self):
        strip = render_strip([0, 1, 5])
        assert strip[-1] == "@"
        assert strip[0] == " "

    def test_fixed_scale(self):
        strip = render_strip([5], max_value=10)
        assert strip != "@"

    def test_length_preserved(self):
        assert len(render_strip(range(17))) == 17


class TestSeries:
    def test_basic_rendering(self):
        out = render_series([1, 2, 3], [1.0, 5.0, 2.0], title="t")
        assert out.startswith("t")
        assert "*" in out

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            render_series([1], [1.0, 2.0])

    def test_constant_series_ok(self):
        out = render_series([1, 2], [3.0, 3.0])
        assert "*" in out
