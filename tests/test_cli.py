"""Tests for the ``python -m repro`` subcommand interface."""

import json

import pytest

from repro.__main__ import iter_tables, main
from repro.analysis.figures import FigureTable


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig2", "fig4", "fig13", "table3", "sec91"):
            assert name in out

    def test_markdown_format(self, capsys):
        assert main(["list", "--format", "md"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("| name | figure |")
        assert "| `fig4` | Fig. 4 | yes |" in out


class TestRun:
    ARGS = ["run", "fig4", "-p", "intensities=[1]", "-p", "n_bits=4"]

    def test_run_prints_the_table(self, tmp_path, capsys):
        rc = main(self.ARGS + ["--cache-dir", str(tmp_path)])
        assert rc == 0
        captured = capsys.readouterr()
        assert "Fig. 4: PRAC covert channel vs noise intensity" in captured.out
        assert "1 trial(s)" in captured.err

    def test_second_run_hits_the_cache(self, tmp_path, capsys):
        main(self.ARGS + ["--cache-dir", str(tmp_path)])
        capsys.readouterr()
        rc = main(self.ARGS + ["--cache-dir", str(tmp_path)])
        assert rc == 0
        captured = capsys.readouterr()
        assert "result from cache" in captured.err

    def test_workers_flag_gives_identical_output(self, tmp_path, capsys):
        main(self.ARGS + ["--no-cache"])
        serial = capsys.readouterr().out
        rc = main(self.ARGS + ["--no-cache", "--workers", "4"])
        assert rc == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_run_alias(self, tmp_path, capsys):
        rc = main(["run", "fig04", "-p", "intensities=[1]",
                   "-p", "n_bits=4", "--cache-dir", str(tmp_path)])
        assert rc == 0
        assert "Fig. 4" in capsys.readouterr().out

    def test_save_writes_the_rendering(self, tmp_path, capsys):
        out_file = tmp_path / "fig4.txt"
        rc = main(self.ARGS + ["--cache-dir", str(tmp_path / "cache"),
                               "--save", str(out_file)])
        assert rc == 0
        assert "Fig. 4" in out_file.read_text()

    def test_legacy_save_position_still_writes(self, tmp_path, capsys):
        """Regression: `--save PATH` before the subcommand must not be
        clobbered by the subparser's own --save default."""
        out_file = tmp_path / "fig4.txt"
        rc = main(["--save", str(out_file)] + self.ARGS
                  + ["--cache-dir", str(tmp_path / "cache")])
        assert rc == 0
        assert "Fig. 4" in out_file.read_text()

    def test_unknown_experiment_fails_cleanly(self, capsys):
        rc = main(["run", "fig99"])
        assert rc == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_param_fails_cleanly(self, capsys):
        rc = main(["run", "fig4", "--no-cache", "-p", "bogus=1"])
        assert rc == 2
        assert "does not accept" in capsys.readouterr().err

    def test_bad_param_syntax_is_an_argparse_error(self):
        with pytest.raises(SystemExit):
            main(["run", "fig4", "-p", "no-equals-sign"])


class TestIterTables:
    def test_finds_tables_in_nested_results(self):
        t1 = FigureTable("one", ["a"])
        t2 = FigureTable("two", ["b"])
        value = {"table": t1, "nested": {"list": [t2, 3]}, "x": "y"}
        assert list(iter_tables(value)) == [t1, t2]

    def test_plain_table_yields_itself(self):
        t = FigureTable("t", ["a"])
        assert list(iter_tables(t)) == [t]

    def test_non_table_yields_nothing(self):
        assert list(iter_tables({"a": 1})) == []


class TestBenchCommand:
    def test_bench_quick_writes_json(self, tmp_path, capsys, monkeypatch):
        from repro.perf.bench import BenchConfig

        monkeypatch.setattr(
            "repro.perf.bench.BenchConfig.quick",
            classmethod(lambda cls: BenchConfig(
                engine_events=2_000, controller_requests=500,
                repeats=1, full_report=False)))
        rc = main(["bench", "--quick", "--label", "cli-test",
                   "--out-dir", str(tmp_path)])
        assert rc == 0
        captured = capsys.readouterr()
        assert "engine_events_per_sec" in captured.out
        files = list(tmp_path.glob("BENCH_*.json"))
        assert len(files) == 1
        assert "cli-test" in files[0].read_text()


class TestListTag:
    def test_tag_filters_the_catalog(self, capsys):
        assert main(["list", "--tag", "ablation"]) == 0
        out = capsys.readouterr().out
        assert "ablation-trecv" in out
        assert "fig4" not in out

    def test_unknown_tag_lists_known_tags(self, capsys):
        assert main(["list", "--tag", "nope"]) == 2
        err = capsys.readouterr().err
        assert "known tags" in err and "prac" in err


class TestRunOut:
    def test_out_writes_tables_and_raw_data(self, tmp_path, capsys):
        out_file = tmp_path / "results.json"
        rc = main(["run", "ablation-refresh", "--no-cache",
                   "--out", str(out_file)])
        assert rc == 0
        doc = json.loads(out_file.read_text())
        assert doc["experiment"] == "ablation-refresh"
        assert doc["tables"] and "refresh policy" in doc["tables"][0]
        assert doc["data"]["rows"]  # JSON-safe raw FigureTable payload
        json.dumps(doc)  # fully serializable


class TestScenarioCommands:
    def test_scenario_list(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for token in ("prac-probe", "noise-duel", "mixed-noise",
                      "backoff-times"):
            assert token in out

    def test_describe_with_override(self, capsys):
        rc = main(["scenario", "describe", "prac-probe", "--json",
                   "-p", "system.defense.nbo=64"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "scenario 'prac-probe'" in out
        assert '"nbo": 64' in out

    def test_describe_unknown_preset_fails_cleanly(self, capsys):
        rc = main(["scenario", "describe", "missingno"])
        assert rc == 2
        assert "unknown scenario preset" in capsys.readouterr().err

    def test_bad_override_path_fails_cleanly(self, capsys):
        rc = main(["scenario", "describe", "prac-probe",
                   "-p", "system.defense.bogus=1"])
        assert rc == 2
        assert "unknown field" in capsys.readouterr().err

    def test_run_from_file_with_out(self, tmp_path, capsys):
        from repro.scenario import get_preset

        spec = get_preset("prac-probe").with_(
            agents=(get_preset("prac-probe").agents[0],))
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(spec.to_json())
        out_file = tmp_path / "result.json"
        rc = main(["scenario", "run", "--file", str(spec_file),
                   "-p", "agents.0.params.max_samples=32",
                   "--cache-dir", str(tmp_path / "cache"),
                   "--out", str(out_file)])
        assert rc == 0
        doc = json.loads(out_file.read_text())
        assert doc["scenario"]["agents"][0]["params"]["max_samples"] == 32
        assert doc["result"]["counters"]["requests"] >= 32
        assert "latency-classes" in doc["result"]["data"]

    def test_run_hits_the_cache(self, tmp_path, capsys):
        args = ["scenario", "run", "prac-probe",
                "-p", "agents.0.params.max_samples=16",
                "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "result from cache" in capsys.readouterr().err
