"""Tests for random forest, gradient boosting, and AdaBoost."""

import numpy as np
import pytest

from repro.ml.boosting import AdaBoostClassifier, GradientBoostingClassifier
from repro.ml.forest import RandomForestClassifier

from tests.test_ml_tree import blobs


class TestRandomForest:
    def test_fits_blobs(self):
        X, y = blobs()
        forest = RandomForestClassifier(n_estimators=15, seed=1).fit(X, y)
        assert forest.score(X, y) > 0.95

    def test_reproducible_with_seed(self):
        X, y = blobs(spread=2.0)
        a = RandomForestClassifier(n_estimators=8, seed=5).fit(X, y)
        b = RandomForestClassifier(n_estimators=8, seed=5).fit(X, y)
        assert (a.predict(X) == b.predict(X)).all()

    def test_probability_output(self):
        X, y = blobs()
        forest = RandomForestClassifier(n_estimators=9, seed=1).fit(X, y)
        probs = forest.predict_proba(X)
        assert probs.shape == (len(X), 3)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_generalizes_better_than_single_tree_on_noise(self):
        rng = np.random.default_rng(7)
        X = rng.normal(size=(200, 6))
        y = ((X[:, 0] + X[:, 1] + 0.8 * rng.normal(size=200)) > 0).astype(int)
        X_test = rng.normal(size=(200, 6))
        y_test = ((X_test[:, 0] + X_test[:, 1]) > 0).astype(int)
        from repro.ml.tree import DecisionTreeClassifier
        tree = DecisionTreeClassifier(seed=1).fit(X, y)
        forest = RandomForestClassifier(n_estimators=30, seed=1).fit(X, y)
        assert forest.score(X_test, y_test) >= tree.score(X_test, y_test)

    def test_rejects_zero_estimators(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)

    def test_string_labels(self):
        X, y = blobs(k=2)
        labels = np.where(y == 0, "a", "b")
        forest = RandomForestClassifier(n_estimators=5, seed=2).fit(X, labels)
        assert set(forest.predict(X)) <= {"a", "b"}


class TestGradientBoosting:
    def test_fits_blobs(self):
        X, y = blobs()
        gbm = GradientBoostingClassifier(n_estimators=15, seed=1).fit(X, y)
        assert gbm.score(X, y) > 0.95

    def test_learns_xor(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-1, 1, size=(300, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        gbm = GradientBoostingClassifier(n_estimators=40, max_depth=3,
                                         seed=1).fit(X, y)
        assert gbm.score(X, y) > 0.95

    def test_more_stages_reduce_training_error(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(150, 4))
        y = ((X[:, 0] - X[:, 1] + 0.6 * rng.normal(size=150)) > 0).astype(int)
        few = GradientBoostingClassifier(n_estimators=2, seed=1).fit(X, y)
        many = GradientBoostingClassifier(n_estimators=40, seed=1).fit(X, y)
        assert many.score(X, y) >= few.score(X, y)

    def test_predict_proba_valid(self):
        X, y = blobs()
        gbm = GradientBoostingClassifier(n_estimators=5, seed=1).fit(X, y)
        probs = gbm.predict_proba(X)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert (probs >= 0).all()

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            GradientBoostingClassifier(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostingClassifier(learning_rate=0)


class TestAdaBoost:
    def test_fits_blobs(self):
        X, y = blobs(k=2)
        ada = AdaBoostClassifier(n_estimators=10, seed=1).fit(X, y)
        assert ada.score(X, y) > 0.95

    def test_boosting_beats_single_stump(self):
        rng = np.random.default_rng(5)
        X = rng.uniform(-1, 1, size=(200, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)  # stump-hard
        from repro.ml.tree import DecisionTreeClassifier
        stump = DecisionTreeClassifier(max_depth=1).fit(X, y)
        ada = AdaBoostClassifier(n_estimators=40, max_depth=2,
                                 seed=1).fit(X, y)
        assert ada.score(X, y) > stump.score(X, y)

    def test_multiclass_support(self):
        X, y = blobs(k=4)
        ada = AdaBoostClassifier(n_estimators=40, max_depth=2,
                                 seed=1).fit(X, y)
        assert ada.score(X, y) > 0.8

    def test_early_stop_on_perfect_stump(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        ada = AdaBoostClassifier(n_estimators=50, seed=1).fit(X, y)
        assert len(ada.estimators_) < 50

    def test_alphas_positive(self):
        X, y = blobs(k=2, spread=2.0)
        ada = AdaBoostClassifier(n_estimators=10, seed=1).fit(X, y)
        assert all(a > 0 for a in ada.alphas_)
