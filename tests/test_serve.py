"""Tests for the results-as-a-service HTTP layer (``repro serve``).

The server runs in-process on a background thread
(:class:`repro.serve.server.ServerThread`) against a per-test result
cache; requests go over real TCP via ``http.client``, so the full
asyncio HTTP/1.1 stack is exercised.  Synthetic experiments registered
by this module keep the jobs cheap and controllable (a gate event for
in-flight dedup, a sweep for progress events).
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

import dist_trials
from repro.dist import register_backend, unregister_backend
from repro.dist.base import Backend
from repro.exp.cache import ResultCache, canonical_checksum
from repro.exp.registry import _REGISTRY, ExperimentSpec, register
from repro.exp.runner import map_trials, run_experiment, trials_executed
from repro.serve.server import ServerThread

# ----------------------------------------------------------------------
# Synthetic experiments
# ----------------------------------------------------------------------
_GATE = threading.Event()


def _sweep_driver(n: int = 4, offset: int = 0):
    """A deterministic multi-trial sweep (progress events, checksums)."""
    return {"squares": map_trials(dist_trials.square,
                                  [offset + i for i in range(n)]),
            "n": n}


def _gated_driver(n: int = 3):
    """Blocks until the test releases ``_GATE`` (in-flight dedup)."""
    assert _GATE.wait(timeout=30), "test never released the gate"
    return {"squares": map_trials(dist_trials.square, list(range(n)))}


_SPECS = (
    ExperimentSpec(name="srv-sweep", fn=_sweep_driver, figure="-",
                   claim="serve-test sweep"),
    ExperimentSpec(name="srv-gated", fn=_gated_driver, figure="-",
                   claim="serve-test gated sweep"),
)


@pytest.fixture(scope="module", autouse=True)
def _synthetic_experiments():
    for spec in _SPECS:
        register(spec)
    yield
    for spec in _SPECS:
        _REGISTRY.pop(spec.name, None)


# ----------------------------------------------------------------------
# Server + HTTP helpers
# ----------------------------------------------------------------------
@pytest.fixture()
def cache(tmp_path) -> ResultCache:
    return ResultCache(tmp_path / "serve-cache")


@pytest.fixture()
def server(cache):
    _GATE.clear()
    with ServerThread(cache=cache) as srv:
        yield srv
        _GATE.set()  # never leave the runner thread blocked


def _request(srv, method: str, path: str, body=None):
    host, port = srv.address
    conn = http.client.HTTPConnection(host, port, timeout=60)
    try:
        payload = (json.dumps(body).encode()
                   if isinstance(body, dict) else body)
        conn.request(method, path, body=payload)
        response = conn.getresponse()
        raw = response.read()
        ctype = response.getheader("Content-Type", "")
        doc = json.loads(raw) if ctype.startswith("application/json") else raw
        return response.status, doc
    finally:
        conn.close()


def _wait_done(srv, job_id: str, timeout: float = 60.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, doc = _request(srv, "GET", f"/v1/jobs/{job_id}")
        assert status == 200
        if doc["state"] in ("done", "failed"):
            return doc
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never finished")


def _stream_events(srv, job_id: str, query: str = ""):
    """Collect the NDJSON event stream until the terminal event."""
    host, port = srv.address
    conn = http.client.HTTPConnection(host, port, timeout=60)
    try:
        conn.request("GET", f"/v1/jobs/{job_id}/events{query}")
        response = conn.getresponse()
        events = []
        while True:
            line = response.fp.readline()
            if not line:
                break
            line = line.strip()
            if not line or line == b":":
                continue
            if line.startswith(b"data: "):
                line = line[len(b"data: "):]
            events.append(json.loads(line))
            if events[-1]["event"] in ("done", "failed"):
                break
        return response.getheader("Content-Type"), events
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Plumbing endpoints
# ----------------------------------------------------------------------
class TestPlumbing:
    def test_healthz(self, server):
        status, doc = _request(server, "GET", "/healthz")
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["jobs"] == {"queued": 0, "running": 0,
                               "done": 0, "failed": 0}

    def test_cache_stats_is_the_cli_document(self, server, cache):
        cache.put("ab" + "0" * 62, {"v": 1})
        status, doc = _request(server, "GET", "/v1/cache/stats")
        assert status == 200
        # Same shape and content as ResultCache.stats() == the CLI's
        # `repro cache stats --json` (one code path, two transports).
        local = cache.stats()
        assert doc["entries"] == local["entries"] == 1
        assert doc["directory"] == local["directory"]
        for counter in ("hit_count", "miss_count", "put_count"):
            assert counter in doc

    def test_catalog_lists_registered_experiments(self, server):
        status, doc = _request(server, "GET", "/v1/experiments")
        assert status == 200
        names = [e["name"] for e in doc["experiments"]]
        assert "fig3" in names

    def test_unrouted_path_is_404(self, server):
        status, doc = _request(server, "GET", "/nope")
        assert status == 404 and "no route" in doc["error"]

    def test_wrong_method_is_405(self, server):
        status, doc = _request(server, "DELETE", "/v1/experiments")
        assert status == 405


# ----------------------------------------------------------------------
# Validation: malformed input is a 4xx document, never a traceback
# ----------------------------------------------------------------------
class TestValidation:
    def test_unknown_experiment_404(self, server):
        status, doc = _request(server, "POST", "/v1/experiments/zzz",
                               body={})
        assert status == 404
        assert "unknown experiment" in doc["error"]

    def test_unknown_param_400(self, server):
        status, doc = _request(server, "POST", "/v1/experiments/srv-sweep",
                               body={"params": {"bogus": 1}})
        assert status == 400
        assert "does not accept" in doc["error"]

    def test_malformed_scenario_is_a_validation_message(self, server):
        status, doc = _request(server, "POST", "/v1/scenarios",
                               body={"agents": [{"kind": "no-such-kind"}]})
        assert status == 400
        assert "invalid scenario spec" in doc["error"]
        assert "Traceback" not in doc["error"]

    def test_non_object_scenario_400(self, server):
        status, doc = _request(server, "POST", "/v1/scenarios",
                               body=b"[1, 2, 3]")
        assert status == 400

    def test_bad_json_body_400(self, server):
        status, doc = _request(server, "POST", "/v1/experiments/srv-sweep",
                               body=b"{not json")
        assert status == 400
        assert "not valid JSON" in doc["error"]

    def test_malformed_request_line_400(self, server):
        host, port = server.address
        import socket

        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(b"GARBAGE\r\n\r\n")
            reply = sock.recv(4096)
        assert b"400" in reply.split(b"\r\n", 1)[0]


# ----------------------------------------------------------------------
# The cache-or-job decision
# ----------------------------------------------------------------------
class _SpyBackend(Backend):
    """Counts dispatches; delegates nothing (serial work happens via
    the in-process map_trials fallback only if actually dispatched)."""

    name = "spy-serve"
    calls = 0

    def run(self, fn, points, seeds, *, workers=None, on_result=None):
        type(self).calls += 1
        out = []
        for i, (point, seed) in enumerate(zip(points, seeds)):
            value = fn(point) if seed is None else fn(point, seed)
            if on_result is not None:
                on_result(i, value)
            out.append(value)
        return out


class TestCacheOrJob:
    def test_hit_answers_inline_and_never_touches_a_backend(
            self, cache, tmp_path):
        _SpyBackend.calls = 0
        register_backend("spy-serve", _SpyBackend)
        try:
            # Prime through the exact code path the server uses.
            direct = run_experiment("srv-sweep", {"n": 3}, cache=cache)
            assert not direct.cached
            with ServerThread(cache=cache, backend="spy-serve") as srv:
                before = trials_executed()
                status, doc = _request(srv, "POST",
                                       "/v1/experiments/srv-sweep",
                                       body={"params": {"n": 3}})
                assert status == 200
                assert doc["cached"] is True
                assert doc["key"] == direct.key
                assert doc["checksum"] == canonical_checksum(direct.value)
                # No job was created, no trial ran, no dispatch happened.
                assert trials_executed() == before
                assert _SpyBackend.calls == 0
                _status, health = _request(srv, "GET", "/healthz")
                assert health["jobs"]["done"] == 0
                assert health["jobs"]["queued"] == 0
        finally:
            unregister_backend("spy-serve")

    def test_miss_runs_through_the_backend_and_matches_direct(
            self, cache, tmp_path):
        _SpyBackend.calls = 0
        register_backend("spy-serve", _SpyBackend)
        try:
            with ServerThread(cache=cache, backend="spy-serve") as srv:
                status, doc = _request(srv, "POST",
                                       "/v1/experiments/srv-sweep",
                                       body={"params": {"n": 4,
                                                        "offset": 10}})
                assert status == 202 and doc["cached"] is False
                final = _wait_done(srv, doc["job"])
                assert final["state"] == "done"
                assert _SpyBackend.calls >= 1
                # Byte-identical to a direct cache-less run.
                other = ResultCache(tmp_path / "other")
                direct = run_experiment("srv-sweep",
                                        {"n": 4, "offset": 10},
                                        cache=other)
                assert final["checksum"] == canonical_checksum(direct.value)
                # Resubmission is now the instant cache-hit path.
                status, again = _request(srv, "POST",
                                         "/v1/experiments/srv-sweep",
                                         body={"params": {"n": 4,
                                                          "offset": 10}})
                assert status == 200 and again["cached"] is True
                assert again["checksum"] == final["checksum"]
        finally:
            unregister_backend("spy-serve")

    def test_default_params_and_explicit_defaults_share_a_key(
            self, server):
        status1, doc1 = _request(server, "POST",
                                 "/v1/experiments/srv-sweep", body={})
        final1 = _wait_done(server, doc1["job"])
        status2, doc2 = _request(server, "POST",
                                 "/v1/experiments/srv-sweep",
                                 body={"params": {"n": 4, "offset": 0}})
        assert status2 == 200 and doc2["cached"] is True
        assert doc2["key"] == doc1["key"]
        assert doc2["checksum"] == final1["checksum"]

    def test_scenario_submission_round_trips(self, server):
        from repro.scenario import get_preset

        spec_doc = get_preset("prac-probe").to_dict()
        spec_doc["agents"][0]["params"]["max_samples"] = 16
        status, doc = _request(server, "POST", "/v1/scenarios",
                               body=spec_doc)
        assert status == 202 and doc["kind"] == "scenario"
        final = _wait_done(server, doc["job"])
        assert final["state"] == "done"
        status, results = _request(server, "GET",
                                   f"/v1/results/{doc['key']}")
        assert status == 200
        assert results["checksum"] == final["checksum"]
        # Identical resubmission hits the cache.
        status, again = _request(server, "POST", "/v1/scenarios",
                                 body=spec_doc)
        assert status == 200 and again["cached"] is True


# ----------------------------------------------------------------------
# Dedup + event streams
# ----------------------------------------------------------------------
class TestJobs:
    def test_concurrent_identical_submissions_share_one_job(self, server):
        _GATE.clear()
        body = {"params": {"n": 3}}
        status1, doc1 = _request(server, "POST",
                                 "/v1/experiments/srv-gated", body=body)
        status2, doc2 = _request(server, "POST",
                                 "/v1/experiments/srv-gated", body=body)
        assert status1 == status2 == 202
        assert doc1["job"] == doc2["job"]
        assert doc1["deduplicated"] is False
        assert doc2["deduplicated"] is True
        _GATE.set()
        final = _wait_done(server, doc1["job"])
        assert final["state"] == "done"
        # After landing, the same submission is a cache hit, not a job.
        status3, doc3 = _request(server, "POST",
                                 "/v1/experiments/srv-gated", body=body)
        assert status3 == 200 and doc3["cached"] is True

    def test_event_stream_carries_progress_to_terminal(self, server):
        status, doc = _request(server, "POST",
                               "/v1/experiments/srv-sweep",
                               body={"params": {"n": 5, "offset": 100}})
        assert status == 202
        ctype, events = _stream_events(server, doc["job"])
        assert ctype == "application/x-ndjson"
        kinds = [e["event"] for e in events]
        assert kinds[0] == "queued" and kinds[-1] == "done"
        progress = [e for e in events if e["event"] == "progress"]
        assert progress, "a multi-trial job must stream progress"
        assert progress[-1]["done"] == progress[-1]["total"] == 5
        assert events[-1]["checksum"]

    def test_event_stream_replays_history_after_terminal(self, server):
        status, doc = _request(server, "POST",
                               "/v1/experiments/srv-sweep",
                               body={"params": {"n": 2, "offset": 7}})
        _wait_done(server, doc["job"])
        ctype, events = _stream_events(server, doc["job"])
        assert [e["event"] for e in events][-1] == "done"

    def test_sse_format(self, server):
        status, doc = _request(server, "POST",
                               "/v1/experiments/srv-sweep",
                               body={"params": {"n": 2, "offset": 8}})
        _wait_done(server, doc["job"])
        ctype, events = _stream_events(server, doc["job"],
                                       query="?format=sse")
        assert ctype == "text/event-stream"
        assert events[-1]["event"] == "done"

    def test_failed_job_reports_the_error(self, server):
        status, doc = _request(server, "POST", "/v1/experiments/fig4",
                               body={"params": {"intensities": [0],
                                                "n_bits": 4}})
        assert status == 202
        final = _wait_done(server, doc["job"])
        assert final["state"] == "failed"
        assert "intensity" in final["error"]

    def test_unknown_job_404(self, server):
        status, doc = _request(server, "GET", "/v1/jobs/feedbeef0000")
        assert status == 404

    def test_unknown_result_404(self, server):
        status, doc = _request(server, "GET", "/v1/results/" + "0" * 64)
        assert status == 404


# ----------------------------------------------------------------------
# Thread-locality of the execution context
# ----------------------------------------------------------------------
class TestContextIsolation:
    def test_execution_context_does_not_leak_across_threads(self):
        from repro.dist import current_execution, execution

        seen = {}

        def probe():
            seen["backend"] = current_execution().backend

        with execution(backend="serial"):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
            assert current_execution().backend == "serial"
        assert seen["backend"] is None
