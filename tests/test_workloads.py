"""Tests for workload generators: patterns, SPEC mixes, website traces."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dram.address import AddressMapper
from repro.sim.config import DramOrg
from repro.sim.engine import MS, US
from repro.workloads.patterns import (
    bits_from_text,
    checkered_bits,
    constant_bits,
    random_symbols,
    standard_patterns,
    text_from_bits,
)
from repro.workloads.spec import (
    WorkloadMix,
    apps_for_mix,
    make_workload_mixes,
)
from repro.workloads.websites import (
    PAPER_WEBSITES,
    WebsiteCatalog,
    WebsiteProfile,
)


class TestPatterns:
    def test_micro_is_40_bits(self):
        bits = bits_from_text("MICRO")
        assert len(bits) == 40
        assert set(bits) <= {0, 1}

    def test_text_roundtrip(self):
        assert text_from_bits(bits_from_text("MICRO")) == "MICRO"

    @given(st.text(alphabet=st.characters(min_codepoint=32,
                                          max_codepoint=126),
                   min_size=1, max_size=20))
    def test_roundtrip_any_printable_ascii(self, text):
        assert text_from_bits(bits_from_text(text)) == text

    def test_text_from_bits_rejects_partial_bytes(self):
        with pytest.raises(ValueError):
            text_from_bits([1, 0, 1])

    def test_constant_and_checkered(self):
        assert constant_bits(3, 1) == [1, 1, 1]
        assert checkered_bits(4, 0) == [0, 1, 0, 1]
        assert checkered_bits(4, 1) == [1, 0, 1, 0]

    def test_pattern_validation(self):
        with pytest.raises(ValueError):
            constant_bits(3, 2)
        with pytest.raises(ValueError):
            checkered_bits(3, -1)

    def test_standard_patterns_cover_paper_set(self):
        patterns = standard_patterns(8)
        assert set(patterns) == {"all-1s", "all-0s", "checkered-0",
                                 "checkered-1"}
        assert all(len(v) == 8 for v in patterns.values())

    def test_random_symbols_in_range_and_seeded(self):
        a = random_symbols(50, 4, seed=1)
        b = random_symbols(50, 4, seed=1)
        c = random_symbols(50, 4, seed=2)
        assert a == b != c
        assert all(0 <= s < 4 for s in a)

    def test_random_symbols_rejects_tiny_alphabet(self):
        with pytest.raises(ValueError):
            random_symbols(5, 1, seed=0)


class TestSpecMixes:
    def test_requested_count(self):
        assert len(make_workload_mixes(7, seed=1)) == 7

    def test_canonical_corners_first(self):
        mixes = make_workload_mixes(4)
        assert mixes[0].classes == ("H", "H", "H", "H")
        assert mixes[2].classes == ("L", "L", "L", "L")

    def test_deterministic(self):
        assert make_workload_mixes(10, seed=3) == \
            make_workload_mixes(10, seed=3)

    def test_apps_have_disjoint_row_regions(self):
        org = DramOrg()
        mix = make_workload_mixes(1)[0]
        apps = apps_for_mix(mix, org, n_requests=100)
        bases = [app.row_base for app in apps]
        assert len(set(bases)) == 4

    def test_apps_span_all_banks(self):
        org = DramOrg()
        apps = apps_for_mix(make_workload_mixes(1)[0], org, 100)
        assert all(len(app.banks) == org.banks_per_rank for app in apps)

    def test_mix_validation(self):
        with pytest.raises(ValueError):
            WorkloadMix("bad", ("H", "X", "L", "M")).validate()


class TestWebsites:
    def test_catalog_uses_paper_site_names(self):
        catalog = WebsiteCatalog(5, seed=0)
        assert catalog.names == list(PAPER_WEBSITES[:5])
        assert len(catalog) == 5

    def test_catalog_bounds(self):
        with pytest.raises(ValueError):
            WebsiteCatalog(0)
        with pytest.raises(ValueError):
            WebsiteCatalog(41)

    def test_profile_generation_deterministic(self):
        a = WebsiteProfile.generate("x", seed=7)
        b = WebsiteProfile.generate("x", seed=7)
        assert a.phases == b.phases

    def test_different_seeds_differ(self):
        a = WebsiteProfile.generate("x", seed=7)
        b = WebsiteProfile.generate("x", seed=8)
        assert a.phases != b.phases

    def test_phase_shares_sum_to_one(self):
        profile = WebsiteProfile.generate("x", seed=3)
        assert sum(p.duration_share for p in profile.phases) == \
            pytest.approx(1.0)

    def test_trace_spans_duration(self):
        mapper = AddressMapper(DramOrg())
        profile = WebsiteProfile.generate("x", seed=3)
        trace = profile.trace(1 * MS, trace_seed=1, mapper=mapper)
        assert trace[0][0] >= 0
        assert trace[-1][0] <= 1 * MS
        offsets = [t for t, _ in trace]
        assert offsets == sorted(offsets)

    def test_trace_seed_jitters_but_preserves_shape(self):
        mapper = AddressMapper(DramOrg())
        profile = WebsiteProfile.generate("x", seed=3)
        t1 = profile.trace(500 * US, 1, mapper)
        t2 = profile.trace(500 * US, 2, mapper)
        assert t1 != t2
        assert abs(len(t1) - len(t2)) < 0.3 * len(t1)

    def test_trace_addresses_decodable(self):
        mapper = AddressMapper(DramOrg())
        profile = WebsiteProfile.generate("x", seed=4)
        for _, addr in profile.trace(100 * US, 1, mapper)[:50]:
            mapper.decode(addr)  # must not raise

    def test_hot_pair_phases_create_row_conflicts(self):
        """The dual-stream hot traffic must alternate between two rows
        of one bank (the pattern that ramps activation counters)."""
        mapper = AddressMapper(DramOrg())
        profile = WebsiteProfile.generate("x", seed=5)
        if not any(p.hot_pair for p in profile.phases):
            pytest.skip("seed produced no hot phases")
        trace = profile.trace(1 * MS, 1, mapper)
        coords = [mapper.decode(a) for _, a in trace]
        alternations = sum(
            1 for a, b in zip(coords, coords[1:])
            if (a.bankgroup, a.bank) == (b.bankgroup, b.bank)
            and a.row != b.row)
        assert alternations > len(coords) / 4

    def test_hot_streams_use_fresh_lines(self):
        """Stream accesses walk through new cache lines, so the hot
        traffic cannot be filtered by any cache (Section 10.3)."""
        mapper = AddressMapper(DramOrg())
        profile = WebsiteProfile.generate("x", seed=5)
        trace = profile.trace(1 * MS, 1, mapper)
        lines = [addr // 64 for _, addr in trace]
        unique_fraction = len(set(lines)) / len(lines)
        assert unique_fraction > 0.4
