"""Graceful-shutdown tests: SIGTERM/SIGINT must drain and tear down.

Three contracts, each checked against a real subprocess:

* ``repro serve`` exits ``128 + signum`` on SIGTERM/SIGINT after
  draining (the CI smoke job asserts the same).
* A shards coordinator killed with SIGTERM unwinds through
  ``shutdown_backends()`` and leaves **no orphaned** ``repro worker``
  daemons.
* Ctrl-C on any CLI command exits 130 after fleet teardown.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parent.parent / "src")
TESTS = str(Path(__file__).resolve().parent)


def _env(**extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [SRC, TESTS, env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
    env.update(extra)
    return env


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-user pid reuse
        return True
    return True


def _wait_dead(pids, timeout=10.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not any(_alive(p) for p in pids):
            return True
        time.sleep(0.05)
    return False


def _read_until(stream, pattern: str, timeout=30.0) -> str:
    deadline = time.monotonic() + timeout
    seen = []
    while time.monotonic() < deadline:
        line = stream.readline()
        if not line:
            time.sleep(0.01)
            continue
        seen.append(line)
        if re.search(pattern, line):
            return line
    raise AssertionError(
        f"pattern {pattern!r} never appeared; saw: {''.join(seen)!r}")


class TestServeSignals:
    @pytest.mark.parametrize("signum,code", [
        (signal.SIGTERM, 143), (signal.SIGINT, 130)])
    def test_serve_exits_128_plus_signum(self, tmp_path, signum, code):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--cache-dir", str(tmp_path / "cache")],
            env=_env(), stderr=subprocess.PIPE, text=True)
        try:
            line = _read_until(proc.stderr, r"listening on http://")
            assert re.search(r":\d+$", line.strip())
            proc.send_signal(signum)
            rc = proc.wait(timeout=30)
            assert rc == code
            rest = proc.stderr.read()
            assert "shut down on" in rest
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()


class TestCoordinatorSignals:
    def test_sigterm_leaves_no_orphaned_workers(self, tmp_path):
        """Kill a coordinator mid-sweep; its worker fleet must die."""
        script = """
import sys
from repro.dist import get_backend, install_signal_shutdown

install_signal_shutdown()
backend = get_backend("shards")
backend._ensure_fleet(2)
print("pids " + " ".join(str(s.proc.pid) for s in backend._fleet),
      flush=True)
import dist_trials
backend.run(dist_trials.sleepy,
            [{"s": 0.5, "v": i} for i in range(200)],
            [None] * 200, workers=2)
print("finished", flush=True)
"""
        proc = subprocess.Popen(
            [sys.executable, "-c", script], env=_env(),
            stdout=subprocess.PIPE, text=True)
        try:
            line = _read_until(proc.stdout, r"^pids ")
            pids = [int(p) for p in line.split()[1:]]
            assert pids and all(_alive(p) for p in pids)
            time.sleep(0.5)  # let the sweep get into flight
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=30)
            assert rc == 143
            assert _wait_dead(pids), (
                f"worker daemons {pids} survived the coordinator")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
            for pid in pids:
                if _alive(pid):  # pragma: no cover - cleanup
                    os.kill(pid, signal.SIGKILL)

    def test_serve_sigterm_kills_its_fleet(self, tmp_path):
        """SIGTERM on `repro serve --backend shards` mid-job drains and
        leaves no worker daemons behind."""
        import http.client
        import json

        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--backend", "shards", "--workers", "2",
             "--drain-timeout", "2",
             "--cache-dir", str(tmp_path / "cache")],
            env=_env(), stderr=subprocess.PIPE, text=True)
        pids = []
        try:
            line = _read_until(proc.stderr, r"listening on http://")
            host, port = line.strip().rsplit("/", 1)[-1].split(":")
            conn = http.client.HTTPConnection(host, int(port), timeout=30)
            body = json.dumps(
                {"params": {"intensities": [1, 25, 50, 75], "n_bits": 8}})
            conn.request("POST", "/v1/experiments/fig4", body=body)
            doc = json.loads(conn.getresponse().read())
            assert doc["state"] == "queued"
            conn.close()
            time.sleep(1.0)  # the job spawns the fleet; let it start
            children = _worker_children(proc.pid)
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=60)
            assert rc == 143
            if children:
                assert _wait_dead(children), (
                    f"serve left worker daemons {children} behind")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()


def _worker_children(pid: int) -> list[int]:
    """Direct children of ``pid`` (via /proc; absent = empty)."""
    children: list[int] = []
    proc_root = Path("/proc")
    if not proc_root.exists():  # pragma: no cover - non-Linux
        return children
    for entry in proc_root.iterdir():
        if not entry.name.isdigit():
            continue
        try:
            stat = (entry / "stat").read_text()
        except OSError:
            continue
        fields = stat.rsplit(")", 1)[-1].split()
        if fields and int(fields[1]) == pid:
            children.append(int(entry.name))
    return children


class TestKeyboardInterrupt:
    def test_cli_exits_130_and_tears_the_fleet_down(self, monkeypatch,
                                                    capsys):
        import repro.__main__ as cli

        torn_down = []

        def fake_report(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "quick_report", fake_report)
        # main() resolves the symbol via `from repro.dist import ...`.
        monkeypatch.setattr("repro.dist.shutdown_backends",
                            lambda: torn_down.append(True))
        rc = cli.main([])
        assert rc == 130
        assert torn_down == [True]
        assert "interrupted" in capsys.readouterr().err
