"""Tests for multicore runs and weighted-speedup math (Fig. 13)."""

import pytest

from repro.analysis.speedup import (
    normalized_weighted_speedup,
    run_mix,
    run_solo,
    weighted_speedup,
)
from repro.cpu.app import AppSpec
from repro.sim.config import (
    DefenseKind,
    DefenseParams,
    RefreshPolicy,
    SystemConfig,
)
from repro.sim.engine import NS


def app(name, seed=0, n_requests=400) -> AppSpec:
    return AppSpec(name=name, think_ps=50 * NS, p_row_hit=0.4, n_rows=64,
                   banks=((0, 0), (1, 0), (2, 0)), n_requests=n_requests,
                   seed=seed, row_base=4096 + seed * 2048)


class TestWeightedSpeedupMath:
    def test_identical_runs_give_app_count(self):
        times = {"a": 100, "b": 200}
        assert weighted_speedup(times, times) == 2.0

    def test_slowdown_reduces_ws(self):
        alone = {"a": 100}
        shared = {"a": 200}
        assert weighted_speedup(alone, shared) == 0.5

    def test_mismatched_apps_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup({"a": 1}, {"b": 1})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup({}, {})

    def test_normalization(self):
        alone = {"a": 100, "b": 100}
        base = {"a": 150, "b": 150}
        defended = {"a": 300, "b": 300}
        assert normalized_weighted_speedup(alone, base, defended) == \
            pytest.approx(0.5)

    def test_no_defense_normalizes_to_one(self):
        alone = {"a": 123, "b": 77}
        base = {"a": 200, "b": 130}
        assert normalized_weighted_speedup(alone, base, dict(base)) == 1.0


class TestRuns:
    def test_solo_run_returns_elapsed(self):
        cfg = SystemConfig(refresh_policy=RefreshPolicy.NONE)
        elapsed = run_solo(cfg, app("solo"))
        assert elapsed > 0

    def test_mix_runs_all_apps(self):
        cfg = SystemConfig(refresh_policy=RefreshPolicy.NONE)
        times = run_mix(cfg, [app("a", 0), app("b", 1)])
        assert set(times) == {"a", "b"}
        assert all(t > 0 for t in times.values())

    def test_sharing_slows_apps_down(self):
        cfg = SystemConfig(refresh_policy=RefreshPolicy.NONE)
        alone = run_solo(cfg, app("a", 0))
        shared = run_mix(cfg, [app("a", 0), app("b", 1), app("c", 2)])
        assert shared["a"] >= alone

    def test_frrfm_defense_slows_the_mix(self):
        base_cfg = SystemConfig(refresh_policy=RefreshPolicy.NONE)
        apps = [app("a", 0), app("b", 1)]
        base = run_mix(base_cfg, apps)
        defended_cfg = base_cfg.with_defense(
            DefenseParams.for_nrh(DefenseKind.FRRFM, 64))
        defended = run_mix(defended_cfg, apps)
        assert all(defended[k] > base[k] for k in base)

    def test_deterministic_runs(self):
        cfg = SystemConfig(refresh_policy=RefreshPolicy.NONE)
        apps = [app("a", 0), app("b", 1)]
        assert run_mix(cfg, apps) == run_mix(cfg, apps)
