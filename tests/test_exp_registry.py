"""Tests for the experiment registry."""

import pytest

from repro.exp.registry import (
    ExperimentSpec,
    RegistryError,
    all_experiments,
    experiment_names,
    get_experiment,
    register,
)


class TestCatalog:
    def test_every_paper_figure_is_registered(self):
        names = set(experiment_names())
        expected = {"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
                    "fig9", "fig10", "fig11", "fig12", "fig13", "sec63",
                    "sec91", "sec103", "sec114", "sec12", "table3",
                    "ablation-refresh", "ablation-trecv", "ablation-window"}
        assert expected <= names

    def test_specs_have_metadata(self):
        for spec in all_experiments():
            assert spec.name
            assert spec.figure
            assert spec.claim
            assert callable(spec.fn)

    def test_registration_order_is_stable(self):
        orders = [spec.order for spec in all_experiments()]
        assert orders == sorted(orders)

    def test_quick_specs_carry_checks(self):
        quick = [s for s in all_experiments() if s.quick is not None]
        assert len(quick) >= 6  # the report's headline experiments
        for spec in quick:
            assert spec.check is not None

    def test_sweeps_are_parallelizable(self):
        for name in ("fig4", "fig7", "fig11", "fig12", "fig13"):
            assert get_experiment(name).parallelizable
        assert not get_experiment("table3").parallelizable


class TestLookup:
    def test_get_by_name(self):
        spec = get_experiment("fig4")
        assert spec.name == "fig4"
        assert spec.figure == "Fig. 4"

    def test_get_by_alias(self):
        assert get_experiment("fig04") is get_experiment("fig4")
        assert get_experiment("table2") is get_experiment("fig10")

    def test_unknown_name_raises_with_catalog(self):
        with pytest.raises(RegistryError, match="unknown experiment"):
            get_experiment("fig99")

    def test_duplicate_registration_rejected(self):
        spec = get_experiment("fig4")
        with pytest.raises(RegistryError, match="already registered"):
            register(ExperimentSpec(name="fig4", fn=spec.fn,
                                    figure="x", claim="y"))

    def test_duplicate_alias_rejected(self):
        with pytest.raises(RegistryError, match="already registered"):
            register(ExperimentSpec(name="brand-new", fn=lambda: None,
                                    figure="x", claim="y",
                                    aliases=("table2",)))

    def test_registry_fn_matches_shim_export(self):
        from repro.analysis import experiments as E

        assert get_experiment("fig4").fn is E.fig4_prac_noise_sweep
        assert get_experiment("table3").fn is E.table3_leakage_model
