"""Tests for result-cache introspection: ResultCache.stats/prune and
the ``python -m repro cache`` subcommands."""

import os
import time

import pytest

from repro.__main__ import _parse_age, main
from repro.exp.cache import ResultCache

KEY_A = "aa" + "0" * 62
KEY_B = "bb" + "0" * 62
KEY_C = "bb" + "1" * 62


def _age_entry(cache: ResultCache, key: str, age_s: float) -> None:
    """Backdate one entry's mtime (prune keys off mtime)."""
    path = cache._path(key)
    stamp = time.time() - age_s
    os.utime(path, (stamp, stamp))


@pytest.fixture()
def cache(tmp_path) -> ResultCache:
    cache = ResultCache(tmp_path / "cc")
    cache.put(KEY_A, {"v": 1})
    cache.put(KEY_B, list(range(100)))
    cache.put(KEY_C, "tiny")
    return cache


class TestStats:
    def test_counts_bytes_and_ages(self, cache):
        _age_entry(cache, KEY_A, 3600)
        stats = cache.stats()
        assert stats["entries"] == 3
        assert stats["total_bytes"] > 0
        assert stats["oldest_age_s"] == pytest.approx(3600, abs=60)
        assert stats["newest_age_s"] < 60

    def test_empty_cache(self, tmp_path):
        stats = ResultCache(tmp_path / "none").stats()
        assert stats["entries"] == 0
        assert stats["oldest_age_s"] is None

    def test_hit_miss_put_counters(self, tmp_path):
        cache = ResultCache(tmp_path / "ctr")
        cache.get(KEY_A)            # miss
        cache.put(KEY_A, {"v": 1})  # put
        cache.get(KEY_A)            # hit
        cache.get(KEY_B)            # miss
        stats = cache.stats()
        assert stats["hit_count"] == 1
        assert stats["miss_count"] == 2
        assert stats["put_count"] == 1


class TestPrune:
    def test_prune_removes_only_old_entries(self, cache):
        _age_entry(cache, KEY_A, 8 * 86400)
        _age_entry(cache, KEY_B, 2 * 86400)
        removed, freed = cache.prune(7 * 86400)
        assert removed == 1 and freed > 0
        assert KEY_A not in cache
        assert KEY_B in cache and KEY_C in cache

    def test_prune_sweeps_empty_shard_dirs(self, cache):
        _age_entry(cache, KEY_A, 100)
        cache.prune(1)
        assert not (cache.directory / KEY_A[:2]).exists()
        assert (cache.directory / KEY_B[:2]).exists()


class TestParseAge:
    @pytest.mark.parametrize("text,expected", [
        ("45s", 45.0), ("30m", 1800.0), ("12h", 43200.0),
        ("7d", 604800.0), ("3600", 3600.0), ("1.5h", 5400.0),
    ])
    def test_suffixes(self, text, expected):
        assert _parse_age(text) == expected

    def test_garbage_rejected(self):
        with pytest.raises(ValueError, match="bad age"):
            _parse_age("fortnight")
        with pytest.raises(ValueError, match=">= 0"):
            _parse_age("-1d")


class TestCacheCommands:
    def test_stats_renders_a_table(self, cache, capsys):
        rc = main(["cache", "stats", "--cache-dir",
                   str(cache.directory)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "entries" in out and "3" in out

    def test_stats_json_is_the_stats_document(self, cache, capsys):
        import json

        rc = main(["cache", "stats", "--json", "--cache-dir",
                   str(cache.directory)])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        # The same dict ResultCache.stats() returns -- and therefore
        # the same document the server's GET /v1/cache/stats serves.
        assert doc["entries"] == 3
        assert doc["directory"] == str(cache.directory)
        assert doc["total_bytes"] > 0
        for counter in ("hit_count", "miss_count", "put_count"):
            assert counter in doc

    def test_prune_reports_what_it_freed(self, cache, capsys):
        _age_entry(cache, KEY_A, 8 * 86400)
        rc = main(["cache", "prune", "--older-than", "7d",
                   "--cache-dir", str(cache.directory)])
        assert rc == 0
        assert "pruned 1 entry" in capsys.readouterr().out
        assert len(cache) == 2

    def test_prune_bad_age_fails_cleanly(self, cache, capsys):
        rc = main(["cache", "prune", "--older-than", "soon",
                   "--cache-dir", str(cache.directory)])
        assert rc == 2
        assert "bad age" in capsys.readouterr().err

    def test_clear_empties_the_cache(self, cache, capsys):
        rc = main(["cache", "clear", "--cache-dir",
                   str(cache.directory)])
        assert rc == 0
        assert "cleared 3 entries" in capsys.readouterr().out
        assert len(cache) == 0

    def test_stats_and_clear_see_tmp_orphans(self, cache, capsys):
        import json

        path = cache._path(KEY_A)
        path.with_name(path.name + ".tmp").write_bytes(b"debris")
        rc = main(["cache", "stats", "--json", "--cache-dir",
                   str(cache.directory)])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["tmp_files"] == 1 and doc["tmp_bytes"] > 0
        rc = main(["cache", "clear", "--cache-dir",
                   str(cache.directory)])
        assert rc == 0
        # 3 entries + 1 orphaned .pkl.tmp
        assert "cleared 4 entries" in capsys.readouterr().out
        assert cache.stats()["tmp_files"] == 0
