"""Unit tests for the discrete-event engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.engine import MS, NS, PS, SEC, US, SimulationError, Simulator


class TestScheduling:
    def test_time_starts_at_zero(self):
        assert Simulator().now == 0

    def test_schedule_and_run_single_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(5 * NS, lambda: fired.append(sim.now))
        assert sim.run() == 1
        assert fired == [5 * NS]

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(42, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [42]

    def test_scheduling_in_the_past_raises(self):
        sim = Simulator()
        sim.schedule_at(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5, lambda: None)

    def test_zero_delay_event_runs_at_now(self):
        sim = Simulator()
        sim.schedule_at(7, lambda: sim.schedule(0, lambda: seen.append(sim.now)))
        seen = []
        sim.run()
        assert seen == [7]

    def test_pending_events_counter(self):
        sim = Simulator()
        sim.schedule(1, lambda: None)
        sim.schedule(2, lambda: None)
        assert sim.pending_events == 2
        sim.run()
        assert sim.pending_events == 0


class TestOrdering:
    def test_events_run_in_timestamp_order(self):
        sim = Simulator()
        order = []
        for t in (30, 10, 20):
            sim.schedule_at(t, lambda t=t: order.append(t))
        sim.run()
        assert order == [10, 20, 30]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        order = []
        for tag in "abc":
            sim.schedule_at(5, lambda tag=tag: order.append(tag))
        sim.run()
        assert order == ["a", "b", "c"]

    @given(st.lists(st.integers(min_value=0, max_value=10 ** 9),
                    min_size=1, max_size=50))
    def test_arbitrary_schedules_never_run_backwards(self, times):
        sim = Simulator()
        seen = []
        for t in times:
            sim.schedule_at(t, lambda: seen.append(sim.now))
        sim.run()
        assert seen == sorted(seen)
        assert len(seen) == len(times)

    def test_callback_scheduling_more_events(self):
        sim = Simulator()
        seen = []

        def chain(n):
            seen.append(n)
            if n < 5:
                sim.schedule(1, lambda: chain(n + 1))

        sim.schedule_at(0, lambda: chain(0))
        sim.run()
        assert seen == list(range(6))


class TestRunLimits:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(10, lambda: fired.append("early"))
        sim.schedule_at(100, lambda: fired.append("late"))
        sim.run(until=50)
        assert fired == ["early"]
        assert sim.now == 50

    def test_event_exactly_at_until_runs(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(50, lambda: fired.append(1))
        sim.run(until=50)
        assert fired == [1]

    def test_run_until_advances_time_with_empty_heap(self):
        sim = Simulator()
        sim.run(until=123)
        assert sim.now == 123

    def test_run_until_in_the_past_raises(self):
        """Regression: run(until=T) with T < now used to silently move
        simulated time backwards."""
        sim = Simulator()
        sim.run(until=100)
        with pytest.raises(SimulationError):
            sim.run(until=50)
        assert sim.now == 100

    def test_run_until_in_the_past_with_pending_events_raises(self):
        sim = Simulator()
        sim.schedule_at(100, lambda: None)
        sim.run(until=100)
        sim.schedule_at(200, lambda: None)
        with pytest.raises(SimulationError):
            sim.run(until=99)
        assert sim.now == 100
        assert sim.pending_events == 1  # future event untouched

    def test_run_until_now_is_a_noop(self):
        sim = Simulator()
        sim.run(until=100)
        assert sim.run(until=100) == 0
        assert sim.now == 100

    def test_max_events_limit(self):
        sim = Simulator()
        for t in range(10):
            sim.schedule_at(t, lambda: None)
        assert sim.run(max_events=3) == 3
        assert sim.pending_events == 7

    def test_events_run_accumulates(self):
        sim = Simulator()
        sim.schedule(1, lambda: None)
        sim.schedule(2, lambda: None)
        sim.run()
        assert sim.events_run == 2


class TestUnits:
    def test_unit_ratios(self):
        assert NS == 1000 * PS
        assert US == 1000 * NS
        assert MS == 1000 * US
        assert SEC == 1000 * MS
