"""End-to-end tests for the RFM-based covert channel (Section 7)."""

import pytest

from repro.core.rfm_channel import RfmChannelConfig, RfmCovertChannel
from repro.sim.config import DefenseKind
from repro.workloads.patterns import bits_from_text, standard_patterns


class TestBinaryTransmission:
    def test_micro_message_decodes_exactly(self):
        result = RfmCovertChannel().transmit_text("M")
        assert result.decoded == result.sent == bits_from_text("M")

    def test_all_patterns_error_free_noiseless(self):
        for name, bits in standard_patterns(12).items():
            result = RfmCovertChannel().transmit(bits)
            assert result.decoded == bits, f"pattern {name} failed"

    def test_raw_bit_rate_matches_paper(self):
        result = RfmCovertChannel().transmit([1, 0, 1])
        assert result.raw_bit_rate_bps == pytest.approx(50_000)

    def test_one_windows_reach_trecv(self):
        cfg = RfmChannelConfig()
        result = RfmCovertChannel(cfg).transmit([1, 0, 1, 0])
        for w in result.windows:
            if w.sent == 1:
                assert w.rfms >= cfg.trecv
            else:
                assert w.rfms < cfg.trecv

    def test_multiple_rfms_per_one_window(self):
        """The sender hammers the whole window: several RFMs fire per
        1-bit (the robustness mechanism of Section 7.3)."""
        result = RfmCovertChannel().transmit([1, 1])
        assert all(w.rfms >= 5 for w in result.windows)

    def test_ground_truth_rfms_match(self):
        result = RfmCovertChannel().transmit([1, 1])
        observed = sum(w.rfms for w in result.windows)
        assert observed <= result.ground_truth_rfms

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            RfmCovertChannel().transmit([0, 2])

    def test_trecv_filtering_absorbs_sparse_noise(self):
        """A couple of stray RFMs in a 0-window must not flip the bit."""
        cfg = RfmChannelConfig(noise_intensity=20.0)
        result = RfmCovertChannel(cfg).transmit([0] * 8)
        assert result.error_probability <= 0.25


class TestNoiseAndInterference:
    def test_extreme_noise_corrupts(self):
        cfg = RfmChannelConfig(noise_intensity=100.0)
        result = RfmCovertChannel(cfg).transmit([0] * 8)
        assert result.error_probability > 0.3

    def test_spec_interference_mild(self):
        cfg = RfmChannelConfig(spec_class="M")
        result = RfmCovertChannel(cfg).transmit([1, 0] * 6)
        assert result.error_probability <= 0.25


class TestAgainstFrRfm:
    def test_frrfm_defeats_the_channel(self):
        """Section 11.4: against FR-RFM the receiver's observations are
        independent of the sender, so decoding contains no signal."""
        cfg = RfmChannelConfig(defense_kind=DefenseKind.FRRFM)
        result = RfmCovertChannel(cfg).transmit([1, 0] * 8)
        decoded = set(result.decoded)
        assert len(decoded) == 1  # constant decode = zero information

    def test_frrfm_rfm_counts_near_constant_across_windows(self):
        """The RFM *issue* schedule is fixed; the small per-window
        count spread comes from the receiver's own sampling (an RFM can
        hide behind a refresh) -- residual memory *contention* effects
        are exactly the paper's footnote-9 out-of-scope channel."""
        cfg = RfmChannelConfig(defense_kind=DefenseKind.FRRFM)
        result = RfmCovertChannel(cfg).transmit([1, 0, 1, 0, 1, 0])
        counts = [w.rfms for w in result.windows]
        expected = cfg.window_ps / (cfg.trfm * 48_000)
        assert all(abs(c - expected) < 4 for c in counts)

    def test_rejects_prac_defense(self):
        cfg = RfmChannelConfig(defense_kind=DefenseKind.PRAC)
        with pytest.raises(ValueError):
            RfmCovertChannel(cfg).system_config()
