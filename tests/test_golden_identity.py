"""Golden-output pinning: the optimized hot path must be bit-identical
to the seed implementation.

The expected values live in ``tests/golden/golden_identity.json``,
captured from the *seed* (pre-optimization) simulator on fixed-seed
covert-channel trials.  Any change to the event engine, controller
scheduling, wake elision, steady-state fast-forward, bus arbitration,
address mapping or statistics bookkeeping that alters simulation
physics -- even a reordered tie-break -- fails here with a readable
per-field diff and the exact regeneration command.

If a test fails after an intentional *physics* change (e.g. a modeling
fix), regenerate the goldens with::

    PYTHONPATH=src python -m pytest tests/test_golden_identity.py --regen-golden

review the resulting diff of the JSON file, and say so loudly in the
commit; a perf-only PR must never need to.
"""

import pytest

from repro.core.prac_channel import PracChannelConfig, PracCovertChannel
from repro.core.rfm_channel import RfmChannelConfig, RfmCovertChannel
from repro.cpu.agent import run_agents
from repro.sim.engine import US

#: Fixed message used by every golden trial.
MESSAGE = [1, 0, 1, 1, 0, 0, 1, 0]

RFM_MESSAGE = [0, 1, 1, 0, 1, 0, 0, 1]


def run_prac_system(noise):
    cfg = PracChannelConfig(noise_intensity=noise)
    channel = PracCovertChannel(cfg)
    system, _, _, receiver, agents, end = channel._build(
        MESSAGE, cfg.noise_intensity, cfg.spec_class)
    run_agents(system, agents, hard_limit=end + 200 * US)
    return system, receiver


def prac_trial_capture(noise) -> dict:
    """The golden-relevant observables of one fixed-seed PRAC trial,
    in the exact shape of ``golden_identity.json``."""
    system, receiver = run_prac_system(noise)
    stats = system.stats
    first, last = stats.blocks[0], stats.blocks[-1]
    return {
        "counters": dict(stats.act_rate_summary),
        "precharges": stats.precharges,
        "n_blocks": len(stats.blocks),
        "first_block": [first.kind.value, first.start, first.end,
                        first.rank],
        "last_block": [last.kind.value, last.start, last.end, last.rank],
        "final_now": system.sim.now,
        "n_samples": len(receiver.samples),
        "delta_checksum": sum(s.delta for s in receiver.samples) % (1 << 31),
        "end_checksum": sum(s.end_time for s in receiver.samples) % (1 << 31),
    }


def transmission_capture(result) -> dict:
    return {
        "sent": list(result.sent),
        "decoded": list(result.decoded),
        "ground_truth_backoffs": result.ground_truth_backoffs,
        "ground_truth_rfms": result.ground_truth_rfms,
        "window_samples": [w.samples for w in result.windows],
    }


@pytest.mark.parametrize("noise", [None, 50.0])
def test_prac_trial_bit_identical_to_seed(noise, golden_store):
    key = "none" if noise is None else str(noise)
    golden_store.check(("prac_trial", key), prac_trial_capture(noise))


def test_prac_transmission_bit_identical_to_seed(golden_store):
    channel = PracCovertChannel(PracChannelConfig(noise_intensity=30.0))
    result = channel.transmit(list(MESSAGE))
    golden_store.check(("transmissions", "prac"),
                       transmission_capture(result))


def test_rfm_transmission_bit_identical_to_seed(golden_store):
    channel = RfmCovertChannel(RfmChannelConfig(noise_intensity=30.0))
    result = channel.transmit(list(RFM_MESSAGE))
    golden_store.check(("transmissions", "rfm"),
                       transmission_capture(result))


def test_golden_file_is_complete(golden_store):
    """Guard: the goldens file itself must cover every pinned trial --
    a missing key means someone regenerated with a subset of the tests
    selected, which would silently unpin physics."""
    golden_store.require_keys([
        ("prac_trial", "none"),
        ("prac_trial", "50.0"),
        ("transmissions", "prac"),
        ("transmissions", "rfm"),
    ])
