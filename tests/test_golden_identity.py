"""Golden-output pinning: the optimized hot path must be bit-identical
to the seed implementation.

The expected values below were captured by running the *seed* (pre-
optimization) simulator on fixed-seed covert-channel trials.  Any
change to the event engine, controller scheduling, bus arbitration,
address mapping or statistics bookkeeping that alters simulation
physics -- even a reordered tie-break -- shows up here as a counter,
interval, timestamp or checksum mismatch.

If one of these assertions fires after an intentional *physics* change
(e.g. a modeling fix), regenerate the constants and say so loudly in
the commit; a perf-only PR must never need to.
"""

import pytest

from repro.core.prac_channel import PracChannelConfig, PracCovertChannel
from repro.core.rfm_channel import RfmChannelConfig, RfmCovertChannel
from repro.cpu.agent import run_agents
from repro.sim.engine import US

#: Fixed message used by every golden trial.
MESSAGE = [1, 0, 1, 1, 0, 0, 1, 0]

#: Seed-captured ground truth for PracCovertChannel trials (noise level
#: -> expectations).  ``delta_checksum``/``end_checksum`` pin every
#: receiver sample; ``final_now`` pins the simulation end time.
GOLDEN_PRAC = {
    None: {
        "counters": {"activations": 1063, "backoffs": 4, "refreshes": 26,
                     "requests": 3149, "rfm_commands": 0,
                     "row_conflicts": 1034, "row_hits": 2086,
                     "row_misses": 29},
        "precharges": 1034,
        "n_blocks": 30,
        "first_block": ("ref", 7827330, 8417330, 0),
        "last_block": ("ref", 202800000, 203390000, 0),
        "final_now": 205020000,
        "n_samples": 2624,
        "delta_checksum": 160182890,
        "end_checksum": 3222544,
    },
    50.0: {
        "counters": {"activations": 1286, "backoffs": 4, "refreshes": 26,
                     "requests": 3014, "rfm_commands": 0,
                     "row_conflicts": 1256, "row_hits": 1728,
                     "row_misses": 30},
        "precharges": 1256,
        "n_blocks": 30,
        "first_block": ("ref", 7843330, 8433330, 0),
        "last_block": ("ref", 202800000, 203390000, 0),
        "final_now": 205020000,
        "n_samples": 2304,
        "delta_checksum": 151050810,
        "end_checksum": 1460731815,
    },
}

#: Seed-captured end-to-end transmission results.
GOLDEN_TRANSMISSIONS = {
    "prac": {
        "decoded": [1, 0, 1, 1, 0, 0, 1, 0],
        "ground_truth_backoffs": 4,
        "ground_truth_rfms": 0,
        "window_samples": [129, 482, 98, 131, 482, 483, 70, 481],
    },
    "rfm": {
        "sent": [0, 1, 1, 0, 1, 0, 0, 1],
        "decoded": [0, 1, 1, 0, 1, 0, 0, 1],
        "ground_truth_backoffs": 0,
        "ground_truth_rfms": 39,
        "window_samples": [385, 160, 161, 371, 157, 383, 372, 161],
    },
}


def run_prac_system(noise):
    cfg = PracChannelConfig(noise_intensity=noise)
    channel = PracCovertChannel(cfg)
    system, _, _, receiver, agents, end = channel._build(
        MESSAGE, cfg.noise_intensity, cfg.spec_class)
    run_agents(system, agents, hard_limit=end + 200 * US)
    return system, receiver


@pytest.mark.parametrize("noise", [None, 50.0])
def test_prac_trial_bit_identical_to_seed(noise):
    system, receiver = run_prac_system(noise)
    golden = GOLDEN_PRAC[noise]
    stats = system.stats

    assert stats.act_rate_summary == golden["counters"]
    assert stats.precharges == golden["precharges"]
    assert len(stats.blocks) == golden["n_blocks"]

    first, last = stats.blocks[0], stats.blocks[-1]
    assert (first.kind.value, first.start, first.end,
            first.rank) == golden["first_block"]
    assert (last.kind.value, last.start, last.end,
            last.rank) == golden["last_block"]

    assert system.sim.now == golden["final_now"]
    assert len(receiver.samples) == golden["n_samples"]
    assert sum(s.delta for s in receiver.samples) % (1 << 31) \
        == golden["delta_checksum"]
    assert sum(s.end_time for s in receiver.samples) % (1 << 31) \
        == golden["end_checksum"]


def test_prac_transmission_bit_identical_to_seed():
    channel = PracCovertChannel(PracChannelConfig(noise_intensity=30.0))
    result = channel.transmit(MESSAGE)
    golden = GOLDEN_TRANSMISSIONS["prac"]
    assert result.sent == MESSAGE
    assert result.decoded == golden["decoded"]
    assert result.ground_truth_backoffs == golden["ground_truth_backoffs"]
    assert result.ground_truth_rfms == golden["ground_truth_rfms"]
    assert [w.samples for w in result.windows] == golden["window_samples"]


def test_rfm_transmission_bit_identical_to_seed():
    channel = RfmCovertChannel(RfmChannelConfig(noise_intensity=30.0))
    golden = GOLDEN_TRANSMISSIONS["rfm"]
    result = channel.transmit(list(golden["sent"]))
    assert result.decoded == golden["decoded"]
    assert result.ground_truth_backoffs == golden["ground_truth_backoffs"]
    assert result.ground_truth_rfms == golden["ground_truth_rfms"]
    assert [w.samples for w in result.windows] == golden["window_samples"]
