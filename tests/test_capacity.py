"""Tests for channel-capacity math (Eq. 1) and rate helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.capacity import (
    binary_entropy,
    channel_capacity_bps,
    error_probability,
    raw_bit_rate_bps,
)
from repro.sim.engine import US


class TestBinaryEntropy:
    def test_zero_error_has_zero_entropy(self):
        assert binary_entropy(0.0) == 0.0
        assert binary_entropy(1.0) == 0.0

    def test_maximum_at_half(self):
        assert binary_entropy(0.5) == 1.0

    def test_known_value(self):
        # H(0.11) ~ 0.4999, the classic near-half-bit example.
        assert abs(binary_entropy(0.11) - 0.4999) < 0.001

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            binary_entropy(-0.1)
        with pytest.raises(ValueError):
            binary_entropy(1.1)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_bounded_in_unit_interval(self, e):
        assert 0.0 <= binary_entropy(e) <= 1.0

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_symmetry(self, e):
        assert abs(binary_entropy(e) - binary_entropy(1.0 - e)) < 1e-9

    @given(st.floats(min_value=0.001, max_value=0.499))
    def test_monotone_up_to_half(self, e):
        assert binary_entropy(e) < binary_entropy(e + 0.001)


class TestChannelCapacity:
    def test_error_free_capacity_is_raw_rate(self):
        assert channel_capacity_bps(39_000, 0.0) == 39_000

    def test_half_error_capacity_is_zero(self):
        assert channel_capacity_bps(39_000, 0.5) == 0.0

    def test_paper_fig4_point(self):
        # 40 Kbps raw at e = 0.05 -> ~28.6 Kbps (paper reports 28.8 at
        # its 39.0 Kbps raw rate).
        capacity = channel_capacity_bps(40_000, 0.05)
        assert 28_000 < capacity < 30_000

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            channel_capacity_bps(-1, 0.1)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_capacity_never_exceeds_raw_rate(self, e):
        assert 0.0 <= channel_capacity_bps(50_000, e) <= 50_000


class TestErrorProbability:
    def test_all_correct(self):
        assert error_probability([1, 0, 1], [1, 0, 1]) == 0.0

    def test_all_wrong(self):
        assert error_probability([1, 1], [0, 0]) == 1.0

    def test_partial(self):
        assert error_probability([1, 0, 1, 0], [1, 1, 1, 0]) == 0.25

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            error_probability([1], [1, 0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            error_probability([], [])

    @given(st.lists(st.integers(0, 3), min_size=1, max_size=100))
    def test_identity_is_error_free(self, symbols):
        assert error_probability(symbols, list(symbols)) == 0.0


class TestRawBitRate:
    def test_25us_window_is_40kbps(self):
        assert raw_bit_rate_bps(25 * US, 1.0) == pytest.approx(40_000)

    def test_20us_window_is_50kbps(self):
        assert raw_bit_rate_bps(20 * US, 1.0) == pytest.approx(50_000)

    def test_quaternary_doubles_rate(self):
        binary = raw_bit_rate_bps(25 * US, 1.0)
        quaternary = raw_bit_rate_bps(25 * US, math.log2(4))
        assert quaternary == pytest.approx(2 * binary)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            raw_bit_rate_bps(0, 1.0)
