"""Tests for metrics and model selection, checked against hand-computed
values."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    f1_score,
    precision_score,
    recall_score,
)
from repro.ml.model_selection import (
    StratifiedKFold,
    cross_validate,
    train_test_split,
)
from repro.ml.tree import DecisionTreeClassifier

from tests.test_ml_tree import blobs


class TestMetrics:
    def test_accuracy_hand_computed(self):
        assert accuracy_score([1, 0, 1, 1], [1, 1, 1, 0]) == 0.5

    def test_confusion_matrix_hand_computed(self):
        cm = confusion_matrix([0, 0, 1, 1, 1], [0, 1, 1, 1, 0])
        assert cm.tolist() == [[1, 1], [1, 2]]

    def test_confusion_matrix_with_labels(self):
        cm = confusion_matrix([0, 1], [0, 1], labels=[0, 1, 2])
        assert cm.shape == (3, 3)
        assert cm[2].sum() == 0

    def test_precision_recall_f1_hand_computed(self):
        # y_true: [1 1 1 0 0], y_pred: [1 0 1 0 1]
        # class 1: tp=2 fp=1 fn=1 -> P=2/3 R=2/3 F1=2/3
        # class 0: tp=1 fp=1 fn=1 -> P=1/2 R=1/2 F1=1/2
        y_true = [1, 1, 1, 0, 0]
        y_pred = [1, 0, 1, 0, 1]
        assert precision_score(y_true, y_pred) == pytest.approx(7 / 12)
        assert recall_score(y_true, y_pred) == pytest.approx(7 / 12)
        assert f1_score(y_true, y_pred) == pytest.approx(7 / 12)

    def test_weighted_average_weighs_by_support(self):
        y_true = [1, 1, 1, 0]
        y_pred = [1, 1, 1, 1]
        # class 1: P=3/4 R=1 F1=6/7; class 0: all 0.
        assert f1_score(y_true, y_pred, average="weighted") == \
            pytest.approx((6 / 7) * 0.75)

    def test_perfect_prediction_scores_one(self):
        y = [0, 1, 2, 2, 1]
        assert accuracy_score(y, y) == 1.0
        assert f1_score(y, y) == 1.0
        assert precision_score(y, y) == 1.0
        assert recall_score(y, y) == 1.0

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            accuracy_score([1], [1, 2])

    def test_rejects_unknown_average(self):
        with pytest.raises(ValueError):
            f1_score([0, 1], [0, 1], average="micro")

    @given(st.lists(st.integers(0, 3), min_size=2, max_size=50),
           st.lists(st.integers(0, 3), min_size=2, max_size=50))
    def test_f1_bounded(self, a, b):
        n = min(len(a), len(b))
        assert 0.0 <= f1_score(a[:n], b[:n]) <= 1.0

    @given(st.lists(st.integers(0, 2), min_size=3, max_size=40))
    def test_confusion_diagonal_counts_accuracy(self, y):
        cm = confusion_matrix(y, y)
        assert np.trace(cm) == len(y)


class TestTrainTestSplit:
    def test_sizes(self):
        X, y = blobs(n_per=20, k=2)
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.25, seed=1)
        assert len(Xte) == 10
        assert len(Xtr) + len(Xte) == len(X)

    def test_stratification_preserves_proportions(self):
        X, y = blobs(n_per=40, k=2)
        _, _, ytr, yte = train_test_split(X, y, test_size=0.25, seed=2)
        assert list(np.bincount(yte)) == [10, 10]

    def test_no_overlap(self):
        X = np.arange(40, dtype=float).reshape(-1, 1)
        y = np.tile([0, 1], 20)
        Xtr, Xte, _, _ = train_test_split(X, y, test_size=0.3, seed=3)
        assert not set(Xtr[:, 0]) & set(Xte[:, 0])

    def test_rejects_bad_test_size(self):
        X, y = blobs()
        with pytest.raises(ValueError):
            train_test_split(X, y, test_size=0.0)


class TestStratifiedKFold:
    def test_folds_partition_dataset(self):
        _, y = blobs(n_per=20, k=3)
        folds = StratifiedKFold(n_splits=5, seed=1).split(y)
        all_test = np.concatenate([test for _, test in folds])
        assert sorted(all_test.tolist()) == list(range(len(y)))

    def test_train_test_disjoint_per_fold(self):
        _, y = blobs(n_per=20, k=2)
        for train, test in StratifiedKFold(4, seed=0).split(y):
            assert not set(train) & set(test)

    def test_stratification_within_folds(self):
        y = np.tile([0, 1], 25)
        for _, test in StratifiedKFold(5, seed=0).split(y):
            counts = np.bincount(y[test], minlength=2)
            assert abs(counts[0] - counts[1]) <= 1

    def test_rejects_too_few_splits(self):
        with pytest.raises(ValueError):
            StratifiedKFold(n_splits=1)

    def test_rejects_more_splits_than_members(self):
        y = np.array([0, 0, 1, 1])
        with pytest.raises(ValueError):
            StratifiedKFold(n_splits=5, seed=0).split(y)

    @given(st.integers(min_value=2, max_value=6))
    def test_fold_count(self, k):
        y = np.tile([0, 1, 2], 12)
        folds = StratifiedKFold(n_splits=k, seed=1).split(y)
        assert len(folds) == k


class TestCrossValidate:
    def test_reports_all_metrics(self):
        X, y = blobs(n_per=25, k=2)
        out = cross_validate(lambda: DecisionTreeClassifier(seed=1),
                             X, y, n_splits=5)
        for metric in ("accuracy", "f1", "precision", "recall"):
            assert 0.0 <= out[f"{metric}_mean"] <= 1.0
            assert out[f"{metric}_std"] >= 0.0
        assert out["n_splits"] == 5

    def test_separable_data_scores_high(self):
        X, y = blobs(n_per=30, k=3)
        out = cross_validate(lambda: DecisionTreeClassifier(seed=1),
                             X, y, n_splits=5)
        assert out["accuracy_mean"] > 0.9

    def test_fresh_model_per_fold(self):
        X, y = blobs(n_per=15, k=2)
        created = []

        def factory():
            model = DecisionTreeClassifier(seed=len(created))
            created.append(model)
            return model
        cross_validate(factory, X, y, n_splits=3)
        assert len(created) == 3
