"""Unit tests for the FR-FCFS memory controller."""

import pytest

from repro.sim.config import RefreshPolicy, SystemConfig
from repro.sim.stats import BlockKind
from repro.system import MemorySystem

from tests.conftest import single_read


@pytest.fixture
def system() -> MemorySystem:
    return MemorySystem(SystemConfig(refresh_policy=RefreshPolicy.NONE))


def t_of(system):
    return system.config.timing


class TestRowBufferLatencies:
    def test_first_access_is_a_miss(self, system):
        addr = system.mapper.encode(row=7)
        req = single_read(system, addr)
        assert req.kind == "miss"
        t = t_of(system)
        assert req.latency == t.tRCD + t.tCL + t.tBL

    def test_second_access_same_row_is_a_hit(self, system):
        addr = system.mapper.encode(row=7)
        single_read(system, addr)
        req = single_read(system, addr)
        assert req.kind == "hit"
        t = t_of(system)
        assert req.latency == t.tCL + t.tBL

    def test_different_row_same_bank_is_a_conflict(self, system):
        single_read(system, system.mapper.encode(row=7))
        req = single_read(system, system.mapper.encode(row=8))
        assert req.kind == "conflict"
        t = t_of(system)
        # PRE waits for tRAS from the previous ACT; with the hit/miss
        # already elapsed this may add restore time on top of
        # tRP + tRCD + tCL + tBL.
        assert req.latency >= t.tRP + t.tRCD + t.tCL + t.tBL

    def test_different_banks_do_not_conflict(self, system):
        single_read(system, system.mapper.encode(bankgroup=0, row=7))
        req = single_read(system, system.mapper.encode(bankgroup=1, row=8))
        assert req.kind == "miss"

    def test_tras_enforced_between_act_and_pre(self, system):
        t = t_of(system)
        addr_a = system.mapper.encode(row=1)
        addr_b = system.mapper.encode(row=2)
        first = single_read(system, addr_a)
        # Immediately conflict: PRE cannot happen before ACT + tRAS.
        req = single_read(system, addr_b)
        act_time_a = first.complete - t.tBL - t.tCL - t.tRCD
        assert req.start_service is not None
        pre_time = req.complete - t.tBL - t.tCL - t.tRCD - t.tRP
        assert pre_time >= act_time_a + t.tRAS

    def test_write_requests_complete(self, system):
        done = []
        system.submit(system.mapper.encode(row=3), done.append,
                      is_write=True)
        system.sim.run(until=1_000_000)
        assert done and done[0].is_write
        assert system.stats.writes == 1


class TestStats:
    def test_activation_and_precharge_counting(self, system):
        a = system.mapper.encode(row=1)
        b = system.mapper.encode(row=2)
        for addr in (a, b, a):
            single_read(system, addr)
        stats = system.stats
        assert stats.activations == 3
        assert stats.row_conflicts == 2
        assert stats.row_misses == 1
        assert stats.precharges == 2
        assert stats.requests_served == 3

    def test_row_hits_counted(self, system):
        addr = system.mapper.encode(row=1)
        for _ in range(4):
            single_read(system, addr)
        assert system.stats.row_hits == 3


class TestFrFcfs:
    def test_row_hit_prioritized_over_older_conflict(self, system):
        """A younger row-hit request is served before an older request
        to a different row of the same bank (the FR in FR-FCFS)."""
        sim = system.sim
        row1 = system.mapper.encode(row=1)
        row1b = system.mapper.encode(row=1, col=2)
        row2 = system.mapper.encode(row=2)
        single_read(system, row1)  # open row 1
        order = []
        system.controller.submit(row2, lambda r: order.append("conflict"))
        system.controller.submit(row1b, lambda r: order.append("hit"))
        sim.run(until=sim.now + 1_000_000)
        assert order == ["hit", "conflict"]

    def test_column_cap_limits_hit_streak(self):
        """After `column_cap` consecutive hits, an older conflicting
        request wins (starvation avoidance)."""
        system = MemorySystem(SystemConfig(
            refresh_policy=RefreshPolicy.NONE, column_cap=2))
        sim = system.sim
        hit_addr = system.mapper.encode(row=1)
        conflict_addr = system.mapper.encode(row=2)
        single_read(system, hit_addr)  # open row 1; streak = 1
        order = []
        system.controller.submit(conflict_addr,
                                 lambda r: order.append("conflict"))
        for i in range(3):
            system.controller.submit(
                hit_addr + 64 * (i + 1),
                lambda r, i=i: order.append(f"hit{i}"))
        sim.run(until=sim.now + 10_000_000)
        # streak hits the cap of 2 after hit0, so the conflict goes next.
        assert order[0] == "hit0"
        assert order[1] == "conflict"

    def test_fcfs_between_equal_requests(self, system):
        sim = system.sim
        order = []
        for i, row in enumerate((10, 20, 30)):
            system.controller.submit(system.mapper.encode(row=row),
                                     lambda r, i=i: order.append(i))
        sim.run(until=sim.now + 10_000_000)
        assert order == [0, 1, 2]


class TestBusReservation:
    def test_hit_on_other_bank_not_serialized_behind_conflict(self, system):
        """A row hit must not wait for an in-flight conflict's full
        PRE+ACT+RD pipeline on another bank (only for the data burst)."""
        t = t_of(system)
        hit_addr = system.mapper.encode(bankgroup=1, row=5)
        single_read(system, hit_addr)  # open the row
        single_read(system, system.mapper.encode(bankgroup=0, row=1))
        conflict_addr = system.mapper.encode(bankgroup=0, row=2)
        results = {}
        system.controller.submit(conflict_addr,
                                 lambda r: results.setdefault("conflict", r))
        system.controller.submit(hit_addr + 64,
                                 lambda r: results.setdefault("hit", r))
        system.sim.run(until=system.sim.now + 10_000_000)
        hit_latency = results["hit"].latency
        assert hit_latency <= t.tCL + 2 * t.tBL

    def test_bus_serializes_simultaneous_bursts(self, system):
        """Two hits on different banks ready at the same instant must
        stagger their data bursts by at least tBL."""
        t = t_of(system)
        a = system.mapper.encode(bankgroup=0, row=5)
        b = system.mapper.encode(bankgroup=1, row=5)
        single_read(system, a)
        single_read(system, b)
        results = []
        system.controller.submit(a + 64, results.append)
        system.controller.submit(b + 64, results.append)
        system.sim.run(until=system.sim.now + 10_000_000)
        completes = sorted(r.complete for r in results)
        assert completes[1] - completes[0] >= t.tBL


class TestBlocking:
    def test_block_banks_delays_requests(self, system):
        sim = system.sim
        addr = system.mapper.encode(row=1)
        single_read(system, addr)
        end = system.controller.block_banks(
            0, None, sim.now, 500_000, BlockKind.RFM)
        req = single_read(system, addr)
        assert req.complete is not None and req.complete >= end

    def test_block_closes_rows(self, system):
        addr = system.mapper.encode(row=1)
        single_read(system, addr)
        system.controller.block_banks(0, None, system.sim.now, 1000,
                                      BlockKind.REF)
        req = single_read(system, addr)
        assert req.kind == "miss"

    def test_partial_block_leaves_other_banks_usable(self, system):
        sim = system.sim
        blocked = system.mapper.decode(system.mapper.encode(bankgroup=0))
        flat = system.mapper.flat_bank(blocked)
        system.controller.block_banks(0, frozenset((flat,)), sim.now,
                                      10_000_000, BlockKind.RFM)
        req = single_read(system, system.mapper.encode(bankgroup=5, row=2))
        assert req.latency < 1_000_000

    def test_block_recorded_in_stats(self, system):
        system.controller.block_banks(0, None, 0, 100, BlockKind.BACKOFF)
        assert system.stats.backoffs == 1
        interval = system.stats.blocks[-1]
        assert interval.kind is BlockKind.BACKOFF
        assert interval.duration == 100
        assert interval.blocks_bank(17)

    def test_align_to_busy_defers_block_start(self, system):
        addr = system.mapper.encode(row=1)
        done = []
        system.submit(addr, done.append)
        # Block immediately: with alignment the block starts only after
        # the in-flight service's bank time.
        end = system.controller.block_banks(0, None, 0, 1000, BlockKind.REF)
        assert end >= 1000
        system.sim.run(until=1_000_000)
        assert done


class TestQueueManagement:
    def test_backlog_absorbs_overflow(self):
        system = MemorySystem(SystemConfig(
            refresh_policy=RefreshPolicy.NONE, queue_size=2))
        done = []
        for row in range(8):
            system.submit(system.mapper.encode(row=row), done.append)
        system.sim.run(until=10_000_000)
        assert len(done) == 8
        assert system.controller.queue_high_water >= 3

    def test_queued_requests_property(self, system):
        system.controller.submit(system.mapper.encode(row=1), lambda r: None)
        assert system.controller.queued_requests >= 0
