"""Tests for the quick-report assembly (not the heavy experiments)."""

import pytest

from repro.analysis.report import ReportSection, ReproductionReport


class TestReportAssembly:
    def test_empty_report_passes(self):
        assert ReproductionReport().all_passed

    def test_add_and_status(self):
        report = ReproductionReport()
        report.add("a", "body", True)
        assert report.all_passed
        report.add("b", "body", False)
        assert not report.all_passed

    def test_markdown_contains_sections_and_status(self):
        report = ReproductionReport()
        report.add("First Check", "some output", True)
        report.add("Second Check", "other output", False)
        text = report.to_markdown()
        assert "# LeakyHammer reproduction" in text
        assert "[PASS] First Check" in text
        assert "[FAIL] Second Check" in text
        assert "CHECK FAILURES BELOW" in text
        assert "some output" in text

    def test_all_pass_banner(self):
        report = ReproductionReport()
        report.add("x", "y", True)
        assert "**PASS**" in report.to_markdown()

    def test_save_roundtrip(self, tmp_path):
        report = ReproductionReport()
        report.add("x", "y", True)
        path = report.save(tmp_path / "report.md")
        assert "x" in path.read_text()

    def test_section_dataclass(self):
        section = ReportSection("t", "b", True)
        assert section.title == "t" and section.passed
