"""Smoke tests for the experiment drivers (small scales).

The full-scale versions run in benchmarks/; these verify each driver
produces well-formed results with the expected qualitative shape.
"""

import pytest

from repro.analysis import experiments as E
from repro.sim.engine import US


class TestFig2:
    def test_levels_and_backoff_position(self):
        out = E.fig2_latency_observability(n_samples=300, nbo=64)
        events = out["table"].column("event")
        assert "conflict" in events and "backoff" in events
        # First back-off after ~2 * N_BO requests.
        assert abs(out["first_backoff_index"] - 2 * 64) < 24

    def test_backoff_is_highest_latency(self):
        out = E.fig2_latency_observability(n_samples=300, nbo=64)
        table = out["table"]
        means = dict(zip(table.column("event"),
                         table.column("mean latency (ns)")))
        assert means["backoff"] > means["refresh"] > means["conflict"]


class TestMessages:
    def test_fig3_decodes_micro(self):
        out = E.fig3_prac_message(text="MI", pattern_bits=8)
        assert out["result"].sent == out["result"].decoded
        assert 35_000 < out["rates"]["raw_bit_rate_bps"] < 45_000

    def test_fig6_decodes_micro(self):
        out = E.fig6_rfm_message(text="MI", pattern_bits=8)
        assert out["result"].sent == out["result"].decoded
        assert 45_000 < out["rates"]["raw_bit_rate_bps"] < 55_000


class TestSweeps:
    def test_fig4_capacity_degrades_with_noise(self):
        table = E.fig4_prac_noise_sweep(intensities=(1, 100), n_bits=8)
        caps = table.column("capacity (Kbps)")
        assert caps[0] > caps[-1]

    def test_fig7_capacity_degrades_with_noise(self):
        table = E.fig7_rfm_noise_sweep(intensities=(1, 100), n_bits=8)
        caps = table.column("capacity (Kbps)")
        assert caps[0] > caps[-1]

    def test_fig5_channel_survives_interference(self):
        table = E.fig5_prac_app_noise(n_bits=8)
        caps = table.column("capacity (Kbps)")
        assert min(caps) > 15.0

    def test_fig12_dies_below_resolution(self):
        table = E.fig12_preventive_latency(latencies_ns=(0, 96), n_bits=8)
        caps = table.column("capacity (Kbps)")
        assert caps[0] < 1.0  # 0 ns: no channel
        assert caps[1] > 30.0  # 96 ns: alive


class TestMultibitAndLeak:
    def test_sec63_rates_scale_with_levels(self):
        table = E.sec63_multibit(n_symbols=8, noise_intensity=None)
        raw = table.column("raw bit rate (Kbps)")
        assert raw[0] < raw[1] < raw[2]

    def test_sec91_counter_leak_shape(self):
        out = E.sec91_counter_leak(secrets=[10, 70])
        metrics = dict(zip(out["table"].column("metric"),
                           out["table"].column("value")))
        assert metrics["bits per value"] == 7.0
        assert metrics["throughput (Kbps)"] > 100


class TestCountermeasures:
    def test_sec114_frrfm_eliminates_channel(self):
        table = E.sec114_capacity_reduction(n_bits=8, noise_intensity=30.0)
        rows = {(r[0], r[1]): r for r in table.rows}
        frrfm = rows[("FR-RFM", "none")]
        assert frrfm[4] >= 99.0  # reduction vs insecure baseline (%)

    def test_fig13_small_scale_shape(self):
        out = E.fig13_performance(nrh_values=(1024, 64), n_mixes=1,
                                  n_requests=2500)
        table = out["table"]
        frrfm = table.column("FR-RFM")
        assert frrfm[0] > 0.9  # near-baseline at N_RH = 1024
        assert frrfm[1] < 0.6  # collapse at N_RH = 64
        riac = table.column("PRAC-RIAC")
        assert riac[1] > frrfm[1]


class TestExtensions:
    def test_para_resistance_reduces_reliability(self):
        table = E.sec12_para_resistance(n_bits=8)
        metrics = dict(zip(table.column("metric"), table.column("value")))
        assert metrics["decode error probability"] >= 0.0
        assert metrics["capacity (Kbps)"] <= 40.0

    def test_ablation_refresh_postponing_levels(self):
        table = E.ablation_refresh_postponing()
        assert len(table.rows) == 2
        for row in table.rows:
            assert row[2] > row[1]  # backoff above refresh either way

    def test_ablation_trecv_shape(self):
        table = E.ablation_trecv(trecv_values=(1, 3), n_bits=8)
        caps = dict(zip(table.column("T_recv"),
                        table.column("capacity (Kbps)")))
        assert caps[3] >= caps[1]

    def test_ablation_window_rates(self):
        table = E.ablation_window_size(windows_us=(20, 40), n_bits=8)
        raw = table.column("raw rate (Kbps)")
        assert raw[0] == 2 * raw[1]
