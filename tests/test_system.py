"""Tests for the MemorySystem facade."""

import pytest

from repro.sim.config import (
    DefenseKind,
    DefenseParams,
    RefreshPolicy,
    SystemConfig,
)
from repro.system import MemorySystem


class TestConstruction:
    def test_builds_configured_defense(self):
        system = MemorySystem(SystemConfig(
            defense=DefenseParams(kind=DefenseKind.PRAC)))
        assert system.defense.kind is DefenseKind.PRAC
        assert system.controller.defense is system.defense

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            MemorySystem(SystemConfig(column_cap=0))

    def test_unknown_defense_kind_rejected(self, monkeypatch):
        from repro.defenses import factory
        monkeypatch.setitem(factory._REGISTRY, DefenseKind.PRAC,
                            factory._REGISTRY.pop(DefenseKind.PRAC))
        monkeypatch.delitem(factory._REGISTRY, DefenseKind.PRAC)
        with pytest.raises(ValueError):
            MemorySystem(SystemConfig(
                defense=DefenseParams(kind=DefenseKind.PRAC)))


class TestSubmit:
    def test_callback_includes_frontend_latency(self):
        cfg = SystemConfig(refresh_policy=RefreshPolicy.NONE)
        system = MemorySystem(cfg)
        delivered = []
        system.submit(system.mapper.encode(row=1),
                      lambda req: delivered.append(system.sim.now))
        system.sim.run(until=10_000_000)
        req_complete = delivered[0] - cfg.frontend_latency
        assert req_complete > 0

    def test_run_until_predicate(self):
        system = MemorySystem(SystemConfig(
            refresh_policy=RefreshPolicy.NONE))
        done = []
        system.submit(system.mapper.encode(row=1), done.append)
        system.run_until(lambda: bool(done), step=1_000,
                         hard_limit=100_000_000)
        assert done

    def test_run_until_hard_limit_raises(self):
        system = MemorySystem(SystemConfig(
            refresh_policy=RefreshPolicy.NONE))
        with pytest.raises(RuntimeError):
            system.run_until(lambda: False, step=1_000, hard_limit=10_000)

    def test_now_property(self):
        system = MemorySystem(SystemConfig(
            refresh_policy=RefreshPolicy.NONE))
        system.sim.run(until=5_000)
        assert system.now == 5_000
