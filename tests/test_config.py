"""Unit tests for configuration dataclasses and security mappings."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.config import (
    DefenseKind,
    DefenseParams,
    DramOrg,
    DramTiming,
    RefreshPolicy,
    SystemConfig,
    nbo_for_nrh,
    trfm_for_nrh,
)


class TestDramTiming:
    def test_defaults_are_consistent(self):
        DramTiming().validate()

    def test_trc_is_tras_plus_trp(self):
        t = DramTiming()
        assert t.tRC == t.tRAS + t.tRP

    def test_rejects_nonpositive_parameter(self):
        with pytest.raises(ValueError):
            DramTiming(tRCD=0).validate()

    def test_rejects_tras_below_trcd(self):
        with pytest.raises(ValueError):
            DramTiming(tRAS=1, tRCD=2_000_000).validate()

    def test_rejects_refw_below_refi(self):
        with pytest.raises(ValueError):
            DramTiming(tREFW=1, tREFI=2).validate()


class TestDramOrg:
    def test_defaults_match_paper_table1(self):
        org = DramOrg()
        assert org.bankgroups == 8
        assert org.banks_per_group == 4
        assert org.rows_per_bank == 128 * 1024
        assert org.banks_per_rank == 32

    def test_total_banks_counts_ranks(self):
        assert DramOrg(ranks=2).total_banks == 64

    def test_rejects_nonpositive_field(self):
        with pytest.raises(ValueError):
            DramOrg(bankgroups=0).validate()


class TestSecurityMappings:
    def test_nbo_default_fraction(self):
        assert nbo_for_nrh(1024) == 256
        assert nbo_for_nrh(64) == 16

    def test_trfm_scales_with_nrh(self):
        assert trfm_for_nrh(1024) == 128
        assert trfm_for_nrh(64) == 8

    def test_rejects_tiny_nrh(self):
        with pytest.raises(ValueError):
            nbo_for_nrh(1)
        with pytest.raises(ValueError):
            trfm_for_nrh(0)

    @given(st.integers(min_value=2, max_value=1 << 20))
    def test_mappings_are_positive_and_monotone(self, nrh):
        assert 1 <= nbo_for_nrh(nrh) <= nrh
        assert 1 <= trfm_for_nrh(nrh) <= nrh
        assert nbo_for_nrh(2 * nrh) >= nbo_for_nrh(nrh)
        assert trfm_for_nrh(2 * nrh) >= trfm_for_nrh(nrh)

    def test_for_nrh_builds_secure_params(self):
        params = DefenseParams.for_nrh(DefenseKind.PRAC, 512)
        assert params.kind is DefenseKind.PRAC
        assert params.nbo == nbo_for_nrh(512)
        assert params.trfm == trfm_for_nrh(512)

    def test_for_nrh_accepts_overrides(self):
        params = DefenseParams.for_nrh(DefenseKind.PRFM, 512, trfm=40)
        assert params.trfm == 40


class TestSystemConfig:
    def test_default_validates(self):
        SystemConfig().validate()

    def test_rejects_bad_column_cap(self):
        with pytest.raises(ValueError):
            SystemConfig(column_cap=0).validate()

    def test_rejects_bad_queue_size(self):
        with pytest.raises(ValueError):
            SystemConfig(queue_size=0).validate()

    def test_with_defense_returns_new_config(self):
        base = SystemConfig()
        new = base.with_defense(DefenseParams(kind=DefenseKind.PRAC))
        assert base.defense.kind is DefenseKind.NONE
        assert new.defense.kind is DefenseKind.PRAC

    def test_with_overrides_arbitrary_fields(self):
        cfg = SystemConfig().with_(column_cap=4)
        assert cfg.column_cap == 4

    def test_refresh_policy_enum_values(self):
        assert RefreshPolicy("postpone-pair") is RefreshPolicy.POSTPONE_PAIR
        assert DefenseKind("fr-rfm") is DefenseKind.FRRFM


def _nondefault_config() -> SystemConfig:
    return SystemConfig(
        timing=DramTiming(tRCD=17_000, tRFC=300_000),
        org=DramOrg(ranks=2, bankgroups=4),
        defense=DefenseParams.for_nrh(DefenseKind.PRAC_RIAC, 512,
                                      backoff_latency_override=5_000),
        refresh_policy=RefreshPolicy.EVERY_TREFI,
        column_cap=8, queue_size=32, frontend_latency=20_000,
        loop_overhead=11_000, seed=42)


class TestSerialization:
    @pytest.mark.parametrize("config", [
        SystemConfig(), _nondefault_config(),
    ], ids=["default", "nondefault"])
    def test_to_dict_round_trips(self, config):
        assert SystemConfig.from_dict(config.to_dict()) == config

    def test_to_dict_is_json_serializable(self):
        import json

        text = json.dumps(_nondefault_config().to_dict())
        assert SystemConfig.from_dict(json.loads(text)) == _nondefault_config()

    def test_enums_serialize_as_values(self):
        data = _nondefault_config().to_dict()
        assert data["refresh_policy"] == "every-trefi"
        assert data["defense"]["kind"] == "prac-riac"

    def test_from_dict_rejects_unknown_fields(self):
        data = SystemConfig().to_dict()
        data["bogus"] = 1
        with pytest.raises(ValueError):
            SystemConfig.from_dict(data)

    def test_nested_from_dict(self):
        timing = DramTiming(tRP=17_000)
        assert DramTiming.from_dict(timing.to_dict()) == timing
        org = DramOrg(ranks=2)
        assert DramOrg.from_dict(org.to_dict()) == org
        defense = DefenseParams(kind=DefenseKind.PARA)
        assert DefenseParams.from_dict(defense.to_dict()) == defense


class TestCacheKey:
    def test_key_is_hex_sha256(self):
        key = SystemConfig().cache_key()
        assert len(key) == 64
        int(key, 16)  # raises on non-hex

    def test_equal_configs_share_a_key(self):
        assert SystemConfig().cache_key() == SystemConfig().cache_key()
        assert (_nondefault_config().cache_key()
                == _nondefault_config().cache_key())

    def test_any_field_change_changes_the_key(self):
        base = SystemConfig()
        variants = [
            base.with_(column_cap=base.column_cap + 1),
            base.with_(queue_size=base.queue_size + 1),
            base.with_(frontend_latency=base.frontend_latency + 1),
            base.with_(loop_overhead=base.loop_overhead + 1),
            base.with_(seed=base.seed + 1),
            base.with_(refresh_policy=RefreshPolicy.EVERY_TREFI),
            base.with_(timing=DramTiming(tRCD=base.timing.tRCD + 1)),
            base.with_(org=DramOrg(ranks=base.org.ranks + 1)),
            base.with_defense(DefenseParams(kind=DefenseKind.PRAC)),
            base.with_defense(DefenseParams(nbo=base.defense.nbo + 1)),
        ]
        keys = {cfg.cache_key() for cfg in variants}
        assert base.cache_key() not in keys
        assert len(keys) == len(variants)  # all distinct from each other

    def test_key_survives_pickling_across_instances(self):
        import pickle

        config = _nondefault_config()
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config
        assert clone.cache_key() == config.cache_key()
