"""Unit tests for configuration dataclasses and security mappings."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.config import (
    DefenseKind,
    DefenseParams,
    DramOrg,
    DramTiming,
    RefreshPolicy,
    SystemConfig,
    nbo_for_nrh,
    trfm_for_nrh,
)


class TestDramTiming:
    def test_defaults_are_consistent(self):
        DramTiming().validate()

    def test_trc_is_tras_plus_trp(self):
        t = DramTiming()
        assert t.tRC == t.tRAS + t.tRP

    def test_rejects_nonpositive_parameter(self):
        with pytest.raises(ValueError):
            DramTiming(tRCD=0).validate()

    def test_rejects_tras_below_trcd(self):
        with pytest.raises(ValueError):
            DramTiming(tRAS=1, tRCD=2_000_000).validate()

    def test_rejects_refw_below_refi(self):
        with pytest.raises(ValueError):
            DramTiming(tREFW=1, tREFI=2).validate()


class TestDramOrg:
    def test_defaults_match_paper_table1(self):
        org = DramOrg()
        assert org.bankgroups == 8
        assert org.banks_per_group == 4
        assert org.rows_per_bank == 128 * 1024
        assert org.banks_per_rank == 32

    def test_total_banks_counts_ranks(self):
        assert DramOrg(ranks=2).total_banks == 64

    def test_rejects_nonpositive_field(self):
        with pytest.raises(ValueError):
            DramOrg(bankgroups=0).validate()


class TestSecurityMappings:
    def test_nbo_default_fraction(self):
        assert nbo_for_nrh(1024) == 256
        assert nbo_for_nrh(64) == 16

    def test_trfm_scales_with_nrh(self):
        assert trfm_for_nrh(1024) == 128
        assert trfm_for_nrh(64) == 8

    def test_rejects_tiny_nrh(self):
        with pytest.raises(ValueError):
            nbo_for_nrh(1)
        with pytest.raises(ValueError):
            trfm_for_nrh(0)

    @given(st.integers(min_value=2, max_value=1 << 20))
    def test_mappings_are_positive_and_monotone(self, nrh):
        assert 1 <= nbo_for_nrh(nrh) <= nrh
        assert 1 <= trfm_for_nrh(nrh) <= nrh
        assert nbo_for_nrh(2 * nrh) >= nbo_for_nrh(nrh)
        assert trfm_for_nrh(2 * nrh) >= trfm_for_nrh(nrh)

    def test_for_nrh_builds_secure_params(self):
        params = DefenseParams.for_nrh(DefenseKind.PRAC, 512)
        assert params.kind is DefenseKind.PRAC
        assert params.nbo == nbo_for_nrh(512)
        assert params.trfm == trfm_for_nrh(512)

    def test_for_nrh_accepts_overrides(self):
        params = DefenseParams.for_nrh(DefenseKind.PRFM, 512, trfm=40)
        assert params.trfm == 40


class TestSystemConfig:
    def test_default_validates(self):
        SystemConfig().validate()

    def test_rejects_bad_column_cap(self):
        with pytest.raises(ValueError):
            SystemConfig(column_cap=0).validate()

    def test_rejects_bad_queue_size(self):
        with pytest.raises(ValueError):
            SystemConfig(queue_size=0).validate()

    def test_with_defense_returns_new_config(self):
        base = SystemConfig()
        new = base.with_defense(DefenseParams(kind=DefenseKind.PRAC))
        assert base.defense.kind is DefenseKind.NONE
        assert new.defense.kind is DefenseKind.PRAC

    def test_with_overrides_arbitrary_fields(self):
        cfg = SystemConfig().with_(column_cap=4)
        assert cfg.column_cap == 4

    def test_refresh_policy_enum_values(self):
        assert RefreshPolicy("postpone-pair") is RefreshPolicy.POSTPONE_PAIR
        assert DefenseKind("fr-rfm") is DefenseKind.FRRFM
