"""Tests for the content-addressed result cache."""

import os

import pytest

from repro.analysis.figures import FigureTable
from repro.exp.cache import (
    CACHE_DIR_ENV,
    ResultCache,
    canonicalize,
    code_fingerprint,
    stable_key,
)
from repro.sim.config import DefenseKind, SystemConfig


class TestStableKey:
    def test_deterministic(self):
        payload = {"experiment": "fig4", "params": {"n_bits": 4}}
        assert stable_key(payload) == stable_key(payload)

    def test_dict_order_irrelevant(self):
        assert (stable_key({"a": 1, "b": 2})
                == stable_key({"b": 2, "a": 1}))

    def test_tuple_and_list_canonicalize_identically(self):
        assert stable_key({"xs": (1, 2)}) == stable_key({"xs": [1, 2]})

    def test_value_changes_change_the_key(self):
        assert stable_key({"a": 1}) != stable_key({"a": 2})
        assert stable_key({"a": 1}) != stable_key({"b": 1})

    def test_canonicalize_handles_enums_and_configs(self):
        assert canonicalize(DefenseKind.PRAC) == "prac"
        assert canonicalize(SystemConfig()) == canonicalize(
            SystemConfig().to_dict())
        assert canonicalize({1: "x"}) == {"1": "x"}
        assert canonicalize({3, 1, 2}) == [1, 2, 3]

    def test_code_fingerprint_is_stable_hex(self):
        fp = code_fingerprint()
        assert fp == code_fingerprint()
        assert len(fp) == 64


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_key({"k": 1})
        assert cache.get(key) == (False, None)
        cache.put(key, {"answer": 42})
        hit, value = cache.get(key)
        assert hit and value == {"answer": 42}
        assert key in cache

    def test_round_trips_figure_tables(self, tmp_path):
        cache = ResultCache(tmp_path)
        table = FigureTable("t", ["a", "b"])
        table.add_row(1, 2.5)
        table.add_note("n")
        cache.put("0" * 64, table)
        _, loaded = cache.get("0" * 64)
        assert loaded.rows == table.rows
        assert loaded.notes == table.notes
        assert loaded.to_text() == table.to_text()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_key({"k": 2})
        path = cache.put(key, [1, 2, 3])
        path.write_bytes(b"not a pickle")
        assert cache.get(key) == (False, None)
        assert key not in cache  # corrupt file was removed

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        for i in range(3):
            cache.put(stable_key({"i": i}), i)
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_env_var_overrides_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "envcache"))
        cache = ResultCache()
        assert cache.directory == tmp_path / "envcache"

    def test_explicit_dir_beats_env_var(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "envcache"))
        cache = ResultCache(tmp_path / "explicit")
        assert cache.directory == tmp_path / "explicit"

    def test_entries_are_sharded_by_key_prefix(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_key({"k": 3})
        path = cache.put(key, None)
        assert path.parent.name == key[:2]
