"""Tests for the content-addressed result cache."""

import os
from pathlib import Path

import pytest

from repro.analysis.figures import FigureTable
from repro.exp.cache import (
    CACHE_DIR_ENV,
    ResultCache,
    canonicalize,
    code_fingerprint,
    stable_key,
)
from repro.sim.config import DefenseKind, SystemConfig


class TestStableKey:
    def test_deterministic(self):
        payload = {"experiment": "fig4", "params": {"n_bits": 4}}
        assert stable_key(payload) == stable_key(payload)

    def test_dict_order_irrelevant(self):
        assert (stable_key({"a": 1, "b": 2})
                == stable_key({"b": 2, "a": 1}))

    def test_tuple_and_list_canonicalize_identically(self):
        assert stable_key({"xs": (1, 2)}) == stable_key({"xs": [1, 2]})

    def test_value_changes_change_the_key(self):
        assert stable_key({"a": 1}) != stable_key({"a": 2})
        assert stable_key({"a": 1}) != stable_key({"b": 1})

    def test_canonicalize_handles_enums_and_configs(self):
        assert canonicalize(DefenseKind.PRAC) == "prac"
        assert canonicalize(SystemConfig()) == canonicalize(
            SystemConfig().to_dict())
        assert canonicalize({1: "x"}) == {"1": "x"}
        assert canonicalize({3, 1, 2}) == [1, 2, 3]

    def test_code_fingerprint_is_stable_hex(self):
        fp = code_fingerprint()
        assert fp == code_fingerprint()
        assert len(fp) == 64


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_key({"k": 1})
        assert cache.get(key) == (False, None)
        cache.put(key, {"answer": 42})
        hit, value = cache.get(key)
        assert hit and value == {"answer": 42}
        assert key in cache

    def test_round_trips_figure_tables(self, tmp_path):
        cache = ResultCache(tmp_path)
        table = FigureTable("t", ["a", "b"])
        table.add_row(1, 2.5)
        table.add_note("n")
        cache.put("0" * 64, table)
        _, loaded = cache.get("0" * 64)
        assert loaded.rows == table.rows
        assert loaded.notes == table.notes
        assert loaded.to_text() == table.to_text()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_key({"k": 2})
        path = cache.put(key, [1, 2, 3])
        path.write_bytes(b"not a pickle")
        assert cache.get(key) == (False, None)
        assert key not in cache  # corrupt file was removed

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        for i in range(3):
            cache.put(stable_key({"i": i}), i)
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_env_var_overrides_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "envcache"))
        cache = ResultCache()
        assert cache.directory == tmp_path / "envcache"

    def test_explicit_dir_beats_env_var(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "envcache"))
        cache = ResultCache(tmp_path / "explicit")
        assert cache.directory == tmp_path / "explicit"

    def test_entries_are_sharded_by_key_prefix(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_key({"k": 3})
        path = cache.put(key, None)
        assert path.parent.name == key[:2]


def _orphan_tmp(cache: ResultCache, key: str) -> Path:
    """Plant the debris of a put() that died between write and rename."""
    tmp = cache._path(key).with_name(f"{key}.pkl.tmp")
    tmp.parent.mkdir(parents=True, exist_ok=True)
    tmp.write_bytes(b"half-written")
    return tmp


class TestClearRace:
    def test_clear_survives_an_entry_vanishing_mid_iteration(
            self, tmp_path, monkeypatch):
        """Regression: an unguarded ``path.unlink()`` crashed clear()
        with OSError when a concurrent prune/clear removed an entry
        first — and the survivor count must not include it."""
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.put(stable_key({"i": i}), i)
        victim = sorted(cache.directory.glob("*/*.pkl"))[0]
        real_unlink = Path.unlink

        def racing_unlink(self, *args, **kwargs):
            if self == victim:
                real_unlink(self)  # the concurrent remover won
                raise FileNotFoundError(str(self))
            return real_unlink(self, *args, **kwargs)

        monkeypatch.setattr(Path, "unlink", racing_unlink)
        assert cache.clear() == 2  # the vanished entry is not counted
        assert len(cache) == 0


class TestTmpOrphans:
    def test_stats_reports_orphans(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(stable_key({"k": 1}), [1, 2, 3])
        _orphan_tmp(cache, "ab" + "0" * 62)
        stats = cache.stats()
        assert stats["entries"] == 1  # orphans are not entries
        assert stats["tmp_files"] == 1
        assert stats["tmp_bytes"] > 0

    def test_clear_sweeps_orphans(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(stable_key({"k": 1}), 1)
        tmp = _orphan_tmp(cache, "cd" + "0" * 62)
        assert cache.clear() == 2  # the entry and the orphan
        assert not tmp.exists()
        assert cache.stats()["tmp_files"] == 0

    def test_prune_sweeps_only_old_orphans(self, tmp_path):
        import time

        cache = ResultCache(tmp_path)
        old = _orphan_tmp(cache, "ab" + "0" * 62)
        stamp = time.time() - 7200
        os.utime(old, (stamp, stamp))
        fresh = _orphan_tmp(cache, "cd" + "0" * 62)
        removed, freed = cache.prune(3600)
        assert removed == 1 and freed > 0
        assert not old.exists() and fresh.exists()

    def test_failed_put_cleans_its_tmp_file(self, tmp_path,
                                            monkeypatch):
        cache = ResultCache(tmp_path)

        def doomed_replace(self, target):
            raise OSError("disk full")

        monkeypatch.setattr(Path, "replace", doomed_replace)
        key = stable_key({"k": 9})
        with pytest.raises(OSError, match="disk full"):
            cache.put(key, {"big": "value"})
        monkeypatch.undo()
        assert key not in cache
        assert cache.stats()["tmp_files"] == 0
