"""Unit tests for the shared covert-channel machinery and stats log."""

import math

import pytest

from repro.core.covert import (
    TransmissionResult,
    WindowedSender,
    bits_per_symbol,
)
from repro.core.probe import LatencyClassifier
from repro.sim.config import DefenseKind, DefenseParams, SystemConfig
from repro.sim.engine import US
from repro.sim.stats import BlockInterval, BlockKind, MemoryStats
from repro.system import MemorySystem


class TestBitsPerSymbol:
    def test_binary(self):
        assert bits_per_symbol(2) == 1.0

    def test_quaternary(self):
        assert bits_per_symbol(4) == 2.0

    def test_ternary(self):
        assert bits_per_symbol(3) == pytest.approx(math.log2(3))

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            bits_per_symbol(1)


class TestTransmissionResult:
    def _result(self, sent, decoded, window_us=25):
        return TransmissionResult(sent=sent, decoded=decoded,
                                  window_ps=window_us * US,
                                  bits_per_symbol=1.0)

    def test_error_free_capacity_equals_raw(self):
        result = self._result([1, 0, 1], [1, 0, 1])
        assert result.capacity_bps == result.raw_bit_rate_bps

    def test_error_probability(self):
        result = self._result([1, 0, 1, 0], [1, 1, 1, 0])
        assert result.error_probability == 0.25

    def test_summary_keys(self):
        summary = self._result([1], [1]).summary()
        assert {"raw_bit_rate_kbps", "error_probability",
                "capacity_kbps"} <= set(summary)

    def test_kbps_scaling(self):
        result = self._result([1, 0], [1, 0])
        assert result.kbps == pytest.approx(result.capacity_bps / 1e3)


class TestWindowedSenderValidation:
    def test_rejects_symbols_without_gap_entry(self):
        system = MemorySystem(SystemConfig(
            defense=DefenseParams(kind=DefenseKind.PRAC)))
        classifier = LatencyClassifier(system.config)
        with pytest.raises(ValueError):
            WindowedSender(system, 0, [0, 7], epoch=0, window_ps=25 * US,
                           gaps={0: None, 1: 0}, classifier=classifier)


class TestStatsBlockLog:
    def test_blocks_in_window_overlap_semantics(self):
        stats = MemoryStats()
        stats.record_block(BlockInterval(BlockKind.REF, 100, 200, 0))
        stats.record_block(BlockInterval(BlockKind.RFM, 300, 400, 0))
        # Half-open query window [150, 350) overlaps both.
        assert len(stats.blocks_in(150, 350)) == 2
        # [200, 300) touches neither (end-exclusive on both sides).
        assert stats.blocks_in(200, 300) == []

    def test_blocks_in_kind_filter(self):
        stats = MemoryStats()
        stats.record_block(BlockInterval(BlockKind.REF, 0, 10, 0))
        stats.record_block(BlockInterval(BlockKind.BACKOFF, 5, 15, 0))
        only = stats.blocks_in(0, 20, kind=BlockKind.BACKOFF)
        assert len(only) == 1 and only[0].kind is BlockKind.BACKOFF

    def test_counters_follow_block_kinds(self):
        stats = MemoryStats()
        for kind, attr in ((BlockKind.REF, "refreshes"),
                           (BlockKind.RFM, "rfm_commands"),
                           (BlockKind.BACKOFF, "backoffs"),
                           (BlockKind.PARA, "para_refreshes")):
            before = getattr(stats, attr)
            stats.record_block(BlockInterval(kind, 0, 1, 0))
            assert getattr(stats, attr) == before + 1

    def test_partial_bank_block_membership(self):
        interval = BlockInterval(BlockKind.RFM, 0, 1, 0,
                                 banks=frozenset((3, 7)))
        assert interval.blocks_bank(3)
        assert not interval.blocks_bank(4)

    def test_summary_dict(self):
        stats = MemoryStats()
        stats.activations = 5
        assert stats.act_rate_summary["activations"] == 5
