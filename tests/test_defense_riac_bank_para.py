"""Tests for PRAC-RIAC, Bank-Level PRAC, and PARA."""

import random

from repro.sim.config import DefenseKind
from repro.sim.stats import BlockKind
from repro.system import MemorySystem

from tests.conftest import make_system, single_read


def hammer(system, addrs, n):
    for i in range(n):
        single_read(system, addrs[i % len(addrs)])


class TestRiac:
    def test_initial_counts_randomized_in_range(self):
        system = make_system(DefenseKind.PRAC_RIAC, nbo=64)
        defense = system.defense
        values = [defense.counter_value(0, 0, row) for row in range(100)]
        assert all(0 <= v < 64 for v in values)
        assert len(set(values)) > 5  # not all equal

    def test_different_seeds_give_different_inits(self):
        a = make_system(DefenseKind.PRAC_RIAC, nbo=64, seed=1)
        b = make_system(DefenseKind.PRAC_RIAC, nbo=64, seed=2)
        va = [a.defense.counter_value(0, 0, r) for r in range(40)]
        vb = [b.defense.counter_value(0, 0, r) for r in range(40)]
        assert va != vb

    def test_same_seed_reproducible(self):
        a = make_system(DefenseKind.PRAC_RIAC, nbo=64, seed=9)
        b = make_system(DefenseKind.PRAC_RIAC, nbo=64, seed=9)
        va = [a.defense.counter_value(0, 0, r) for r in range(40)]
        vb = [b.defense.counter_value(0, 0, r) for r in range(40)]
        assert va == vb

    def test_init_distribution_roughly_uniform(self):
        system = make_system(DefenseKind.PRAC_RIAC, nbo=64)
        values = [system.defense.counter_value(0, 0, r)
                  for r in range(2000)]
        mean = sum(values) / len(values)
        assert 24 < mean < 40  # uniform mean would be 31.5

    def test_backoffs_fire_earlier_than_plain_prac(self):
        """Random inits make the threshold crossing come sooner on
        average -- RIAC's channel-noise mechanism."""
        def acts_to_first_backoff(kind, seed):
            system = make_system(kind, nbo=64, seed=seed)
            addrs = system.mapper.same_bank_rows(2, stride=8)
            count = 0
            while system.stats.backoffs == 0 and count < 400:
                single_read(system, addrs[count % 2])
                count += 1
            system.sim.run(until=system.sim.now + 3_000_000)
            return count

        prac = acts_to_first_backoff(DefenseKind.PRAC, 3)
        riac = [acts_to_first_backoff(DefenseKind.PRAC_RIAC, s)
                for s in range(6)]
        assert sum(riac) / len(riac) < prac

    def test_reset_rerandomizes(self):
        system = make_system(DefenseKind.PRAC_RIAC, nbo=16, seed=4)
        addrs = system.mapper.same_bank_rows(2, stride=8)
        hammer(system, addrs, 64)
        system.sim.run(until=system.sim.now + 10_000_000)
        assert system.stats.backoffs >= 1
        # After resets the counters are re-randomized, not zeroed; with
        # several resets at least one non-zero re-init is overwhelming.
        values = [system.defense.counters[0][0].get(r)
                  for r in (0, 8)]
        assert any(v not in (None, 0) for v in values) or \
            system.stats.backoffs > 2

    def test_describe_mentions_random_init(self):
        info = make_system(DefenseKind.PRAC_RIAC, nbo=32).defense.describe()
        assert "uniform" in info["counter_init"]


class TestBankLevelPrac:
    def test_backoff_blocks_only_triggering_bank(self):
        system = make_system(DefenseKind.PRAC_BANK, nbo=8)
        addrs = system.mapper.same_bank_rows(2, stride=8, bankgroup=2,
                                             bank=1)
        hammer(system, addrs, 20)
        system.sim.run(until=system.sim.now + 5_000_000)
        backoff = system.stats.blocks_of(BlockKind.BACKOFF)[0]
        flat = 2 * system.config.org.banks_per_group + 1
        assert backoff.banks == frozenset((flat,))

    def test_other_banks_unaffected_during_backoff(self):
        system = make_system(DefenseKind.PRAC_BANK, nbo=8)
        addrs = system.mapper.same_bank_rows(2, stride=8)
        hammer(system, addrs, 17)  # trigger pending ABO on bank 0
        req = single_read(system, system.mapper.encode(bankgroup=5, row=3))
        assert req.latency < 200_000

    def test_independent_banks_can_back_off_concurrently(self):
        system = make_system(DefenseKind.PRAC_BANK, nbo=8)
        a = system.mapper.same_bank_rows(2, stride=8, bankgroup=0)
        b = system.mapper.same_bank_rows(2, stride=8, bankgroup=3)
        for i in range(20):
            single_read(system, a[i % 2])
            single_read(system, b[i % 2])
        system.sim.run(until=system.sim.now + 10_000_000)
        backoffs = system.stats.blocks_of(BlockKind.BACKOFF)
        banks = {next(iter(x.banks)) for x in backoffs}
        assert len(banks) == 2

    def test_describe_scope(self):
        info = make_system(DefenseKind.PRAC_BANK, nbo=8).defense.describe()
        assert info["scope"] == "per-bank"


class TestPara:
    def test_no_refreshes_with_zero_probability(self):
        system = make_system(DefenseKind.PARA, para_probability=0.0)
        addrs = system.mapper.same_bank_rows(2, stride=8)
        hammer(system, addrs, 50)
        system.sim.run(until=system.sim.now + 5_000_000)
        assert system.stats.para_refreshes == 0

    def test_always_refreshes_with_probability_one(self):
        system = make_system(DefenseKind.PARA, para_probability=1.0)
        addrs = system.mapper.same_bank_rows(2, stride=8)
        hammer(system, addrs, 10)
        system.sim.run(until=system.sim.now + 5_000_000)
        assert system.stats.para_refreshes == 10

    def test_refresh_rate_tracks_probability(self):
        system = make_system(DefenseKind.PARA, para_probability=0.3,
                             seed=42)
        addrs = system.mapper.same_bank_rows(2, stride=8)
        hammer(system, addrs, 300)
        system.sim.run(until=system.sim.now + 20_000_000)
        rate = system.stats.para_refreshes / 300
        assert 0.15 < rate < 0.45

    def test_attacker_cannot_predict_timing(self):
        """PARA is stateless: identical hammering with different seeds
        produces different preventive-action timings (Section 12)."""
        def timing(seed):
            system = make_system(DefenseKind.PARA, para_probability=0.2,
                                 seed=seed)
            addrs = system.mapper.same_bank_rows(2, stride=8)
            hammer(system, addrs, 100)
            system.sim.run(until=system.sim.now + 10_000_000)
            return [b.start for b in
                    system.stats.blocks_of(BlockKind.PARA)]
        assert timing(1) != timing(2)

    def test_para_blocks_single_bank(self):
        system = make_system(DefenseKind.PARA, para_probability=1.0)
        addrs = system.mapper.same_bank_rows(2, stride=8, bankgroup=1)
        hammer(system, addrs, 4)
        system.sim.run(until=system.sim.now + 5_000_000)
        block = system.stats.blocks_of(BlockKind.PARA)[0]
        flat = 1 * system.config.org.banks_per_group
        assert block.banks == frozenset((flat,))
