"""Tests for the TCP fleet transport: dial-in workers, the
challenge/hello handshake (auth, version, fingerprint refusals with
diagnostics), SIGKILL crash recovery across the socket, the status
protocol, and the sweep-equivalence contract over TCP."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

import dist_trials
from repro.dist import execution
from repro.dist.base import BackendUnavailable, register_backend
from repro.dist.net import parse_hostport, query_status
from repro.dist.protocol import HandshakeError, PROTOCOL_VERSION
from repro.dist.shards import ShardsBackend
from repro.exp.cache import canonicalize, stable_key
from repro.exp.registry import get_experiment
from repro.exp.runner import map_trials

SECRET = "fleet-test-secret"


def _worker_cmd(address, *extra):
    return [sys.executable, "-m", "repro", "worker", "--no-warm",
            "--connect", address, *extra]


def _worker_env(extra=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    env["REPRO_FLEET_SECRET"] = SECRET
    env.update(extra or {})
    return env


def _wait_for_join(backend, count=1, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if sum(1 for s in backend._fleet
               if s.remote and s.alive and s.ready) >= count:
            return
        time.sleep(0.05)
    raise AssertionError(
        f"no {count} remote worker(s) joined within {timeout:g}s")


@pytest.fixture()
def fleet():
    """A private remote-only listening backend plus a worker spawner;
    every spawned worker is torn down hard after the test."""
    backend = ShardsBackend(listen="127.0.0.1:0", secret=SECRET,
                            spawn_local=False, join_wait=60.0)
    procs = []

    def spawn(env_extra=None, *extra_args):
        proc = subprocess.Popen(
            _worker_cmd(backend.server.address, *extra_args),
            stderr=subprocess.DEVNULL, env=_worker_env(env_extra))
        procs.append(proc)
        return proc

    yield backend, spawn
    backend.close()
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=10)


class TestFleetRoundTrip:
    def test_remote_workers_run_the_sweep(self, fleet):
        backend, spawn = fleet
        spawn()
        points = list(range(8))
        out = backend.run(dist_trials.square, points, [None] * 8,
                          workers=2)
        assert out == [p * p for p in points]
        assert backend.last_stats["remote_workers_used"] == 1

    def test_status_doc_shows_joined_workers(self, fleet):
        backend, spawn = fleet
        spawn()
        _wait_for_join(backend)
        doc = backend.server.status_doc()
        assert doc["protocol_version"] == PROTOCOL_VERSION
        assert len(doc["workers"]) == 1
        worker = doc["workers"][0]
        assert worker["transport"] == "tcp"
        assert worker["ready"] and worker["alive"]
        assert worker["version"] == PROTOCOL_VERSION

    def test_fleet_is_reused_across_sweeps(self, fleet):
        backend, spawn = fleet
        spawn()
        backend.run(dist_trials.square, [1, 2], [None] * 2, workers=2)
        remote = [s for s in backend._fleet if s.remote]
        backend.run(dist_trials.square, [3, 4], [None] * 2, workers=2)
        assert [s for s in backend._fleet if s.remote] == remote


class TestFleetCrashRecovery:
    def test_sigkill_mid_trial_recovers_with_serial_checksum(
            self, fleet, tmp_path):
        """kill -9 a remote worker while it runs a trial: the
        coordinator must see the socket EOF, requeue the point on a
        surviving worker, and finish with results bit-identical to the
        serial backend."""
        backend, spawn = fleet
        spawn()
        spawn()
        _wait_for_join(backend, count=2)
        marker = tmp_path / "victim-pid"
        points = [{"v": v, "marker": str(marker) if v == 2 else None}
                  for v in range(6)]

        import threading

        def assassin():
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if marker.exists() and marker.read_text().strip():
                    os.kill(int(marker.read_text()), signal.SIGKILL)
                    return
                time.sleep(0.05)

        killer = threading.Thread(target=assassin, daemon=True)
        killer.start()
        with pytest.warns(RuntimeWarning, match="died.*requeueing"):
            out = backend.run(dist_trials.report_pid_and_hang_once,
                              points, [None] * 6, workers=2)
        killer.join(timeout=5)
        assert backend.last_stats["crashes"] == 1
        # Bit-identity with the reference semantics: the marker exists
        # now, so the serial run takes the instant path on every point.
        serial = map_trials(dist_trials.report_pid_and_hang_once,
                            points, backend="serial")
        assert (stable_key(canonicalize(out))
                == stable_key(canonicalize(serial)))
        assert out == [v + 1 for v in range(6)]


class TestFleetRefusals:
    def _refused_worker(self, address, env_extra):
        proc = subprocess.run(
            _worker_cmd(address, "--retry", "5"),
            stderr=subprocess.PIPE, text=True, timeout=60,
            env=_worker_env(env_extra))
        return proc.returncode, proc.stderr

    def test_wrong_secret_refused_with_diagnostic(self, fleet):
        backend, _ = fleet
        code, err = self._refused_worker(
            backend.server.address, {"REPRO_FLEET_SECRET": "wrong"})
        assert code == 77  # permanent refusal, not a retryable error
        assert "authentication failed" in err
        assert backend.server.refused_count == 1
        assert "authentication failed" in backend.server.last_refusal

    def test_wrong_fingerprint_refused_naming_both_trees(self, fleet):
        backend, _ = fleet
        code, err = self._refused_worker(
            backend.server.address,
            {"REPRO_WORKER_FINGERPRINT": "deadbeef"})
        assert code == 77
        assert "fingerprint mismatch" in err
        assert "deadbeef" in err  # the worker's claimed tree...
        expected = backend._expected_fingerprint()[:12]
        assert expected in err  # ...and the coordinator's own

    def test_wrong_version_refused_naming_both_versions(self, fleet):
        backend, _ = fleet
        code, err = self._refused_worker(
            backend.server.address,
            {"REPRO_WORKER_PROTOCOL_VERSION": "1"})
        assert code == 77
        assert "version mismatch" in err
        assert "speaks 1" in err
        assert f"requires {PROTOCOL_VERSION}" in err

    def test_missing_secret_is_a_config_error(self, fleet):
        backend, _ = fleet
        env = _worker_env()
        del env["REPRO_FLEET_SECRET"]
        proc = subprocess.run(
            _worker_cmd(backend.server.address),
            stderr=subprocess.PIPE, text=True, timeout=60, env=env)
        assert proc.returncode == 2
        assert "REPRO_FLEET_SECRET" in proc.stderr

    def test_refused_worker_never_joins_the_fleet(self, fleet):
        backend, _ = fleet
        self._refused_worker(backend.server.address,
                             {"REPRO_WORKER_FINGERPRINT": "deadbeef"})
        assert not [s for s in backend._fleet if s.remote]


class TestFleetStatusProtocol:
    def test_query_status_round_trips(self, fleet):
        backend, spawn = fleet
        spawn()
        _wait_for_join(backend)
        host, port = parse_hostport(backend.server.address)
        doc = query_status(host, port, secret=SECRET)
        assert doc["listen"] == backend.server.address
        assert len(doc["workers"]) == 1
        assert doc["refused_count"] == 0

    def test_query_status_requires_the_secret(self, fleet):
        backend, _ = fleet
        host, port = parse_hostport(backend.server.address)
        with pytest.raises(HandshakeError, match="authentication"):
            query_status(host, port, secret="wrong")

    def test_fleet_status_cli_json(self, fleet):
        backend, spawn = fleet
        spawn()
        _wait_for_join(backend)
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "fleet", "status",
             "--connect", backend.server.address, "--json"],
            stdout=subprocess.PIPE, text=True, timeout=60,
            env=_worker_env())
        assert proc.returncode == 0
        doc = json.loads(proc.stdout)
        assert doc["protocol_version"] == PROTOCOL_VERSION
        assert len(doc["workers"]) == 1


class TestRemoteOnlyLiveness:
    def test_starved_remote_only_sweep_gives_up_loudly(self):
        backend = ShardsBackend(listen="127.0.0.1:0", secret=SECRET,
                                spawn_local=False, join_wait=1.0)
        try:
            with pytest.raises(BackendUnavailable,
                               match="no authenticated remote worker"):
                backend.run(dist_trials.square, [1, 2], [None] * 2,
                            workers=2)
        finally:
            backend.close()

    def test_remote_only_without_listener_is_rejected(self):
        from repro.dist.base import BackendError

        with pytest.raises(BackendError, match="never run a trial"):
            ShardsBackend(listen=None, secret=None, spawn_local=False)


class TestFleetSweepEquivalence:
    """The subsystem contract, now over TCP: a registry experiment
    swept through a remote-only localhost fleet is bit-identical
    (canonical-JSON checksum) to the serial sweep."""

    def test_fig4_checksum_identical_serial_vs_fleet(self, fleet):
        backend, spawn = fleet
        spawn()
        spawn()
        register_backend("fleet-under-test", lambda: backend)
        try:
            fig4 = get_experiment("fig4").fn
            serial = fig4(intensities=(1, 50), n_bits=4)
            with execution(backend="fleet-under-test"):
                fleeted = fig4(intensities=(1, 50), n_bits=4, workers=2)
            assert (stable_key(canonicalize(serial.rows))
                    == stable_key(canonicalize(fleeted.rows)))
            assert backend.last_stats["remote_workers_used"] >= 1
        finally:
            # Unregister without closing: the fixture owns the backend.
            from repro.dist import base as dist_base

            dist_base._instances.pop("fleet-under-test", None)
            dist_base._FACTORIES.pop("fleet-under-test", None)
