"""Tests for the dist wire protocol: value encoding, fn addressing,
frames, and remote-error reconstruction."""

import math

import pytest

import dist_trials
from repro.dist.protocol import (
    FINGERPRINT_ENV,
    PROTOCOL_VERSION,
    ProtocolError,
    RemoteTrialError,
    VERSION_ENV,
    auth_digest,
    decode_value,
    dump_frame,
    encode_value,
    error_frame,
    fn_ref,
    hello_frame,
    new_nonce,
    parse_frame,
    raise_remote,
    resolve_fn,
    task_frame,
    validate_hello,
)


class TestValueEncoding:
    def test_json_native_payloads_stay_readable(self):
        value = {"rate": 1.5, "bits": [1, 0, 1], "name": "x", "none": None}
        encoded = encode_value(value)
        assert "j" in encoded  # human-readable on the wire
        assert decode_value(encoded) == value

    def test_floats_survive_exactly(self):
        value = {"e": 0.1 + 0.2, "tiny": 5e-324}
        assert decode_value(encode_value(value)) == value

    @pytest.mark.parametrize("value", [
        (1, 2, 3),                  # tuple != list after JSON
        {1: "int key"},             # keys coerced to str by JSON
        {"nested": ("a", "b")},
        b"bytes",
    ])
    def test_non_roundtrippable_values_take_the_pickle_leg(self, value):
        encoded = encode_value(value)
        assert "p" in encoded
        decoded = decode_value(encoded)
        assert decoded == value
        assert type(decoded) is type(value)

    def test_nan_takes_the_pickle_leg(self):
        decoded = decode_value(encode_value(float("nan")))
        assert math.isnan(decoded)

    def test_undecodable_frame_rejected(self):
        with pytest.raises(ProtocolError):
            decode_value({"bogus": 1})


class TestFnRef:
    def test_module_level_function_round_trips(self):
        ref = fn_ref(dist_trials.square)
        assert ref == "dist_trials:square"
        assert resolve_fn(ref) is dist_trials.square

    def test_repro_trial_functions_are_addressable(self):
        from repro.exp.drivers.common import _pattern_trial

        assert fn_ref(_pattern_trial) == (
            "repro.exp.drivers.common:_pattern_trial")

    def test_lambda_and_nested_are_not_addressable(self):
        assert fn_ref(lambda p: p) is None

        def nested(p):
            return p

        assert fn_ref(nested) is None

    def test_main_module_functions_are_not_addressable(self):
        def fake():
            pass

        fake.__module__ = "__main__"
        fake.__qualname__ = "fake"
        assert fn_ref(fake) is None

    def test_resolve_unknown_attribute_fails_loudly(self):
        with pytest.raises(ProtocolError, match="no attribute"):
            resolve_fn("dist_trials:not_there")
        with pytest.raises(ProtocolError, match="bad trial-function"):
            resolve_fn("no-colon")


class TestFrames:
    def test_task_frame_round_trips_one_line(self):
        frame = task_frame("3:17", "dist_trials:square", {"v": 2}, 99,
                           "off")
        line = dump_frame(frame)
        assert line.endswith("\n") and line.count("\n") == 1
        parsed = parse_frame(line)
        assert parsed == frame
        assert decode_value(parsed["point"]) == {"v": 2}

    def test_noise_lines_are_ignored_not_fatal(self):
        assert parse_frame("") is None
        assert parse_frame("stray print output\n") is None
        assert parse_frame("{not json}\n") is None
        assert parse_frame("[1, 2]\n") is None  # non-dict JSON


FP = "f" * 64


class TestHandshake:
    def _hello(self, *, secret=None, server_nonce="", fingerprint=FP):
        worker_nonce = new_nonce()
        auth = (auth_digest(secret, "worker", server_nonce, worker_nonce)
                if secret is not None else None)
        return hello_frame(fingerprint, nonce=worker_nonce, auth=auth)

    def test_matching_hello_accepted(self):
        frame = self._hello()
        assert validate_hello(frame, fingerprint=FP) is None

    def test_matching_authenticated_hello_accepted(self):
        nonce = new_nonce()
        frame = self._hello(secret="s3", server_nonce=nonce)
        assert validate_hello(frame, fingerprint=FP, secret="s3",
                              nonce=nonce) is None

    def test_wrong_secret_named(self):
        nonce = new_nonce()
        frame = self._hello(secret="wrong", server_nonce=nonce)
        reason = validate_hello(frame, fingerprint=FP, secret="right",
                                nonce=nonce)
        assert "authentication failed" in reason

    def test_auth_checked_before_version_or_fingerprint(self):
        # An unauthenticated peer must learn nothing about our
        # version/fingerprint from the refusal reason.
        frame = self._hello(secret="wrong", server_nonce="n",
                            fingerprint="also-wrong")
        frame["version"] = -1
        reason = validate_hello(frame, fingerprint=FP, secret="right",
                                nonce="n")
        assert "authentication failed" in reason

    def test_version_mismatch_names_both_sides(self):
        frame = self._hello()
        frame["version"] = 1
        reason = validate_hello(frame, fingerprint=FP)
        assert "version mismatch" in reason
        assert "speaks 1" in reason
        assert f"requires {PROTOCOL_VERSION}" in reason

    def test_fingerprint_mismatch_names_both_prefixes(self):
        frame = self._hello(fingerprint="a" * 64)
        reason = validate_hello(frame, fingerprint="b" * 64)
        assert "fingerprint mismatch" in reason
        assert "a" * 12 in reason and "b" * 12 in reason

    def test_missing_auth_refused_on_authenticated_transport(self):
        frame = self._hello()  # no auth field at all
        reason = validate_hello(frame, fingerprint=FP, secret="s3",
                                nonce=new_nonce())
        assert "authentication failed" in reason

    def test_role_separation_blocks_reflection(self):
        # A worker replaying the coordinator's own proof (or vice
        # versa) must never authenticate the other direction.
        nonce, peer = new_nonce(), new_nonce()
        assert (auth_digest("s3", "worker", nonce, peer)
                != auth_digest("s3", "coordinator", nonce, peer))
        assert (auth_digest("s3", "worker", nonce, peer)
                != auth_digest("s3", "status", nonce, peer))

    def test_env_hooks_override_the_claim(self, monkeypatch):
        monkeypatch.setenv(FINGERPRINT_ENV, "claimed-fp")
        monkeypatch.setenv(VERSION_ENV, "1")
        frame = hello_frame(FP)
        assert frame["fingerprint"] == "claimed-fp"
        assert frame["version"] == 1


class TestRemoteErrors:
    def _frame_for(self, exc):
        try:
            raise exc
        except Exception as caught:
            import traceback

            return error_frame("1:0", caught, traceback.format_exc())

    def test_original_exception_type_is_reraised(self):
        frame = self._frame_for(ValueError("boom 7"))
        with pytest.raises(ValueError, match="boom 7") as info:
            raise_remote(frame)
        # The remote traceback rides along as the cause.
        assert isinstance(info.value.__cause__, RemoteTrialError)
        assert "boom 7" in str(info.value.__cause__)

    def test_unshippable_exception_degrades_to_remote_trial_error(self):
        frame = self._frame_for(ValueError("boom"))
        del frame["error"]
        with pytest.raises(RemoteTrialError, match="boom"):
            raise_remote(frame)
