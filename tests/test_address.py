"""Unit and property tests for the address mapper."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dram.address import AddressMapper, Coord
from repro.sim.config import DramOrg


@pytest.fixture
def mapper() -> AddressMapper:
    return AddressMapper(DramOrg())


class TestEncodeDecode:
    def test_zero_maps_to_origin(self, mapper):
        coord = mapper.decode(0)
        assert coord == Coord(rank=0, bankgroup=0, bank=0, row=0, col=0)

    def test_encode_decode_roundtrip_simple(self, mapper):
        addr = mapper.encode(bankgroup=3, bank=2, row=777, col=5)
        coord = mapper.decode(addr)
        assert (coord.bankgroup, coord.bank, coord.row, coord.col) == \
            (3, 2, 777, 5)

    def test_distinct_rows_differ_only_in_row_bits(self, mapper):
        a = mapper.decode(mapper.encode(bankgroup=1, bank=1, row=10))
        b = mapper.decode(mapper.encode(bankgroup=1, bank=1, row=11))
        assert a.row != b.row
        assert (a.bankgroup, a.bank, a.col) == (b.bankgroup, b.bank, b.col)

    def test_rejects_out_of_range_coordinates(self, mapper):
        with pytest.raises(ValueError):
            mapper.encode(bankgroup=8)
        with pytest.raises(ValueError):
            mapper.encode(bank=4)
        with pytest.raises(ValueError):
            mapper.encode(row=1 << 17)
        with pytest.raises(ValueError):
            mapper.encode(rank=1)
        with pytest.raises(ValueError):
            mapper.encode(col=1 << 7)

    def test_rejects_out_of_range_address(self, mapper):
        with pytest.raises(ValueError):
            mapper.decode(-1)
        with pytest.raises(ValueError):
            mapper.decode(1 << mapper.address_bits)

    @given(st.data())
    def test_roundtrip_bijection(self, data):
        org = DramOrg(ranks=2)
        mapper = AddressMapper(org)
        rank = data.draw(st.integers(0, org.ranks - 1))
        bg = data.draw(st.integers(0, org.bankgroups - 1))
        bank = data.draw(st.integers(0, org.banks_per_group - 1))
        row = data.draw(st.integers(0, org.rows_per_bank - 1))
        col = data.draw(st.integers(0, org.cols_per_row - 1))
        addr = mapper.encode(rank=rank, bankgroup=bg, bank=bank, row=row,
                             col=col)
        coord = mapper.decode(addr)
        assert coord == Coord(rank=rank, bankgroup=bg, bank=bank, row=row,
                              col=col)
        assert mapper.encode(rank=coord.rank, bankgroup=coord.bankgroup,
                             bank=coord.bank, row=coord.row,
                             col=coord.col) == addr

    @given(st.integers(min_value=0))
    def test_decode_encode_identity(self, seed):
        mapper = AddressMapper(DramOrg())
        addr = seed % (1 << mapper.address_bits)
        # Clear the line-offset bits: the mapper addresses lines.
        addr &= ~(mapper.org.line_bytes - 1)
        coord = mapper.decode(addr)
        assert mapper.encode(rank=coord.rank, bankgroup=coord.bankgroup,
                             bank=coord.bank, row=coord.row,
                             col=coord.col) == addr


class TestBankFlattening:
    def test_flat_bank_is_bankgroup_major(self, mapper):
        coord = mapper.decode(mapper.encode(bankgroup=3, bank=2))
        assert mapper.flat_bank(coord) == 3 * 4 + 2

    def test_unflatten_inverts_flatten(self, mapper):
        for flat in range(mapper.org.banks_per_rank):
            bg, bank = mapper.unflatten_bank(flat)
            coord = mapper.decode(mapper.encode(bankgroup=bg, bank=bank))
            assert mapper.flat_bank(coord) == flat

    def test_unflatten_rejects_out_of_range(self, mapper):
        with pytest.raises(ValueError):
            mapper.unflatten_bank(32)


class TestSameBankRows:
    def test_rows_share_the_bank(self, mapper):
        addrs = mapper.same_bank_rows(4, bankgroup=2, bank=1)
        coords = [mapper.decode(a) for a in addrs]
        assert len({(c.bankgroup, c.bank) for c in coords}) == 1
        assert len({c.row for c in coords}) == 4

    def test_stride_spaces_rows(self, mapper):
        addrs = mapper.same_bank_rows(3, stride=8)
        rows = [mapper.decode(a).row for a in addrs]
        assert rows == [0, 8, 16]

    def test_rejects_overflowing_rows(self, mapper):
        with pytest.raises(ValueError):
            mapper.same_bank_rows(10, first_row=(1 << 17) - 4)

    def test_rejects_non_power_of_two_geometry(self):
        with pytest.raises(ValueError):
            AddressMapper(DramOrg(bankgroups=3))
