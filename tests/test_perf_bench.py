"""Tests for the ``repro bench`` perf harness (quick scales only)."""

import json

import pytest

from repro.perf.bench import (
    BenchConfig,
    collect_metrics,
    compare,
    find_previous,
    run_bench,
)


@pytest.fixture(scope="module")
def tiny_config() -> BenchConfig:
    return BenchConfig(engine_events=2_000, controller_requests=500,
                       scenario_builds=10, dispatch_points=4, repeats=1,
                       full_report=False)


@pytest.fixture(scope="module")
def metrics(tiny_config) -> dict:
    return collect_metrics(tiny_config)


class TestMetrics:
    def test_suite_reports_all_quick_metrics(self, metrics):
        assert set(metrics) == {
            "engine_events_per_sec",
            "controller_hit_requests_per_sec",
            "controller_conflict_requests_per_sec",
            "covert_trial_seconds",
            "covert_trial_canary_ok",
            "covert_steadystate_trial_seconds",
            "covert_steadystate_ff_speedup",
            "covert_steadystate_identical",
            "scenario_build_per_sec",
            "scenario_trial_seconds",
            "backend_dispatch_overhead_seconds",
            "fleet_dispatch_overhead_seconds",
            "serve_cached_hit_latency_seconds",
            "serve_cached_requests_per_sec",
            "report_slice_seconds",
            "telemetry_engine_overhead_pct",
            "telemetry_overhead_canary_ok",
        }

    def test_rates_positive(self, metrics):
        assert metrics["engine_events_per_sec"] > 0
        assert metrics["controller_hit_requests_per_sec"] > 0
        assert metrics["controller_conflict_requests_per_sec"] > 0
        assert metrics["scenario_build_per_sec"] > 0
        assert metrics["scenario_trial_seconds"] > 0
        assert metrics["backend_dispatch_overhead_seconds"] > 0
        assert metrics["fleet_dispatch_overhead_seconds"] > 0
        assert metrics["serve_cached_hit_latency_seconds"] > 0
        assert metrics["serve_cached_requests_per_sec"] > 0

    def test_canary_passes_on_faithful_simulator(self, metrics):
        assert metrics["covert_trial_canary_ok"] is True

    def test_steadystate_equivalence_canary(self, metrics):
        assert metrics["covert_steadystate_identical"] is True
        assert metrics["covert_steadystate_trial_seconds"] > 0

    def test_telemetry_overhead_canary(self, metrics):
        assert metrics["telemetry_engine_overhead_pct"] >= 0.0
        assert metrics["telemetry_overhead_canary_ok"] is True


class TestCompare:
    def test_rates_and_durations_normalized_to_faster_is_gt_one(self):
        current = {"metrics": {"engine_events_per_sec": 200,
                               "covert_trial_seconds": 1.0}}
        previous = {"metrics": {"engine_events_per_sec": 100,
                                "covert_trial_seconds": 2.0}}
        ratios = compare(current, previous)
        assert ratios["engine_events_per_sec"]["speedup"] == 2.0
        assert ratios["covert_trial_seconds"]["speedup"] == 2.0

    def test_missing_and_non_numeric_metrics_skipped(self):
        current = {"metrics": {"new_metric": 5, "canary_ok": True,
                               "x_seconds": 1.0}}
        previous = {"metrics": {"x_seconds": 0.0, "canary_ok": True}}
        assert compare(current, previous) == {}


class TestFindPrevious:
    def test_quick_and_full_trajectories_do_not_mix(self, tmp_path):
        import json as _json

        (tmp_path / "BENCH_20250101T000000Z.json").write_text(
            _json.dumps({"quick": False, "label": "full-old",
                         "metrics": {}}))
        (tmp_path / "BENCH_20250102T000000Z.json").write_text(
            _json.dumps({"quick": True, "label": "quick-new",
                         "metrics": {}}))
        full = find_previous(tmp_path, quick=False)
        quick = find_previous(tmp_path, quick=True)
        assert full is not None and "20250101" in full.name
        assert quick is not None and "20250102" in quick.name
        # Unfiltered: latest file wins.
        latest = find_previous(tmp_path)
        assert latest is not None and "20250102" in latest.name

    def test_corrupt_previous_skipped(self, tmp_path):
        (tmp_path / "BENCH_20250101T000000Z.json").write_text("{not json")
        assert find_previous(tmp_path, quick=True) is None


class TestRunBench:
    def test_writes_json_and_compares_to_previous(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setattr(
            "repro.perf.bench.BenchConfig.quick",
            classmethod(lambda cls: BenchConfig(
                engine_events=2_000, controller_requests=500,
                repeats=1, full_report=False)))
        first = run_bench(quick=True, label="one", out_dir=tmp_path)
        assert "comparison" not in first
        path = find_previous(tmp_path)
        assert path is not None
        on_disk = json.loads(path.read_text())
        assert on_disk["label"] == "one"
        assert on_disk["metrics"]["covert_trial_canary_ok"] is True

        second = run_bench(quick=True, label="two", out_dir=tmp_path)
        assert second["comparison"]["previous_label"] == "one"
        ratios = second["comparison"]["ratios"]
        assert "engine_events_per_sec" in ratios
        assert len(list(tmp_path.glob("BENCH_*.json"))) == 2

    def test_no_compare_flag(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            "repro.perf.bench.BenchConfig.quick",
            classmethod(lambda cls: BenchConfig(
                engine_events=2_000, controller_requests=500,
                repeats=1, full_report=False)))
        run_bench(quick=True, out_dir=tmp_path)
        doc = run_bench(quick=True, out_dir=tmp_path, no_compare=True)
        assert "comparison" not in doc


class TestCompareCli:
    """``repro bench --compare A.json B.json`` (committed-file ratios)."""

    @staticmethod
    def _write(path, label, quick, metrics):
        doc = {"schema": 1, "label": label, "quick": quick,
               "timestamp": "x", "metrics": metrics}
        path.write_text(json.dumps(doc))

    def test_ratio_table_between_two_files(self, tmp_path, capsys):
        from repro.__main__ import main

        old = tmp_path / "BENCH_a.json"
        new = tmp_path / "BENCH_b.json"
        self._write(old, "before", False,
                    {"controller_hit_requests_per_sec": 100_000,
                     "report_no_cache_seconds": 1.0})
        self._write(new, "after", False,
                    {"controller_hit_requests_per_sec": 200_000,
                     "report_no_cache_seconds": 0.5})
        rc = main(["bench", "--compare", str(old), str(new)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2.00x" in out  # both the rate and the duration doubled
        assert "bench compare" in out
        assert "after" in out and "before" in out

    def test_quick_vs_full_refused(self, tmp_path, capsys):
        from repro.__main__ import main

        old = tmp_path / "BENCH_a.json"
        new = tmp_path / "BENCH_b.json"
        self._write(old, "q", True, {"engine_events_per_sec": 1})
        self._write(new, "f", False, {"engine_events_per_sec": 1})
        assert main(["bench", "--compare", str(old), str(new)]) == 2
        assert "not comparable" in capsys.readouterr().err

    def test_missing_file_is_a_clean_error(self, tmp_path, capsys):
        from repro.__main__ import main

        rc = main(["bench", "--compare", str(tmp_path / "nope.json"),
                   str(tmp_path / "also-nope.json")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err
