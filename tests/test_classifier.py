"""Tests for the latency classifier (Section 6.2 observability)."""

import pytest

from repro.core.probe import EventKind, LatencyClassifier
from repro.sim.config import (
    DefenseKind,
    DefenseParams,
    RefreshPolicy,
    SystemConfig,
)
from repro.sim.engine import NS


def config_for(kind: DefenseKind, policy=RefreshPolicy.POSTPONE_PAIR,
               **defense_kwargs) -> SystemConfig:
    return SystemConfig(defense=DefenseParams(kind=kind, **defense_kwargs),
                        refresh_policy=policy)


class TestLevelConstruction:
    def test_plain_system_has_hit_conflict_refresh(self):
        clf = LatencyClassifier(config_for(DefenseKind.NONE))
        kinds = [lv.kind for lv in clf.levels]
        assert kinds == [EventKind.HIT, EventKind.CONFLICT,
                         EventKind.REFRESH]

    def test_no_refresh_level_without_refresh(self):
        clf = LatencyClassifier(config_for(DefenseKind.NONE,
                                           policy=RefreshPolicy.NONE))
        assert all(lv.kind is not EventKind.REFRESH for lv in clf.levels)

    def test_prac_adds_backoff_level(self):
        clf = LatencyClassifier(config_for(DefenseKind.PRAC))
        assert clf.level_of(EventKind.BACKOFF) > clf.level_of(
            EventKind.REFRESH)

    def test_prfm_adds_rfm_level(self):
        clf = LatencyClassifier(config_for(DefenseKind.PRFM))
        cfg = config_for(DefenseKind.PRFM)
        expected = (cfg.frontend_latency + cfg.loop_overhead
                    + cfg.timing.tRP + cfg.timing.tRCD + cfg.timing.tCL
                    + cfg.timing.tBL + cfg.timing.tRFM_SB)
        assert clf.level_of(EventKind.RFM) == expected

    def test_levels_sorted_ascending(self):
        clf = LatencyClassifier(config_for(DefenseKind.PRAC))
        deltas = [lv.delta_ps for lv in clf.levels]
        assert deltas == sorted(deltas)

    def test_level_of_missing_kind_raises(self):
        clf = LatencyClassifier(config_for(DefenseKind.NONE))
        with pytest.raises(KeyError):
            clf.level_of(EventKind.BACKOFF)

    def test_backoff_override_moves_level(self):
        clf = LatencyClassifier(config_for(
            DefenseKind.PRAC, backoff_latency_override=50 * NS))
        gap = (clf.level_of(EventKind.BACKOFF)
               - clf.level_of(EventKind.CONFLICT))
        assert gap == 50 * NS


class TestClassification:
    def test_exact_levels_classify_to_themselves(self):
        clf = LatencyClassifier(config_for(DefenseKind.PRAC))
        for level in clf.levels:
            assert clf.classify(level.delta_ps) is level.kind

    def test_between_levels_goes_to_nearest(self):
        clf = LatencyClassifier(config_for(DefenseKind.PRAC))
        hit = clf.level_of(EventKind.HIT)
        conflict = clf.level_of(EventKind.CONFLICT)
        assert clf.classify(hit + 1) is EventKind.HIT
        assert clf.classify(conflict - 1) is EventKind.CONFLICT

    def test_huge_latency_is_backoff(self):
        clf = LatencyClassifier(config_for(DefenseKind.PRAC))
        assert clf.classify(10_000 * NS) is EventKind.BACKOFF

    def test_is_preventive_predicates(self):
        clf = LatencyClassifier(config_for(DefenseKind.PRAC))
        backoff = clf.level_of(EventKind.BACKOFF)
        assert clf.is_backoff(backoff)
        assert clf.is_preventive(backoff)
        assert not clf.is_preventive(clf.level_of(EventKind.HIT))

    def test_histogram(self):
        clf = LatencyClassifier(config_for(DefenseKind.PRAC))
        deltas = [clf.level_of(EventKind.HIT)] * 3 + \
            [clf.level_of(EventKind.BACKOFF)]
        hist = clf.histogram(deltas)
        assert hist[EventKind.HIT] == 3
        assert hist[EventKind.BACKOFF] == 1


class TestResolutionGuard:
    def test_tiny_preventive_latency_indistinguishable(self):
        """Fig. 12's key mechanism: below the measurement resolution,
        a back-off collapses into the row-conflict level."""
        clf = LatencyClassifier(config_for(
            DefenseKind.PRAC, backoff_latency_override=5 * NS))
        backoff_level = clf.level_of(EventKind.BACKOFF)
        assert clf.classify(backoff_level) is EventKind.CONFLICT

    def test_latency_above_resolution_distinguishable(self):
        clf = LatencyClassifier(config_for(
            DefenseKind.PRAC, backoff_latency_override=25 * NS))
        assert clf.classify(clf.level_of(EventKind.BACKOFF)) \
            is EventKind.BACKOFF

    def test_custom_resolution(self):
        # At 30 ns resolution a 25 ns back-off merges into the conflict
        # level, while conflict vs hit (32 ns apart) stays separable.
        clf = LatencyClassifier(config_for(
            DefenseKind.PRAC, backoff_latency_override=25 * NS),
            resolution_ps=30 * NS)
        assert clf.classify(clf.level_of(EventKind.BACKOFF)) \
            is EventKind.CONFLICT

    def test_coarse_resolution_merges_transitively(self):
        # At 40 ns resolution hit/conflict/short-back-off all collapse.
        clf = LatencyClassifier(config_for(
            DefenseKind.PRAC, backoff_latency_override=25 * NS),
            resolution_ps=40 * NS)
        assert clf.classify(clf.level_of(EventKind.BACKOFF)) \
            is EventKind.HIT

    def test_sample_classification(self):
        from repro.cpu.probe import LatencySample
        clf = LatencyClassifier(config_for(DefenseKind.PRAC))
        sample = LatencySample(end_time=100,
                               delta=clf.level_of(EventKind.REFRESH),
                               addr=0)
        assert clf.classify_sample(sample) is EventKind.REFRESH
