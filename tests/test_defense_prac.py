"""Tests for PRAC: counters, the ABO protocol, and the security bound."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.config import DefenseKind, DefenseParams, RefreshPolicy, SystemConfig
from repro.sim.stats import BlockKind
from repro.system import MemorySystem

from tests.conftest import make_system, single_read


def prac_system(nbo=8, n_rfms=4, refresh=RefreshPolicy.NONE,
                **kwargs) -> MemorySystem:
    return make_system(DefenseKind.PRAC, refresh=refresh, nbo=nbo,
                       n_rfms=n_rfms, **kwargs)


def hammer(system, addrs, n):
    """n interleaved single reads over the address list."""
    for i in range(n):
        single_read(system, addrs[i % len(addrs)])


class TestCounters:
    def test_counter_increments_on_row_close(self):
        system = prac_system(nbo=100)
        a, b = system.mapper.same_bank_rows(2, stride=8, first_row=64)
        defense = system.defense
        single_read(system, a)  # opens row 64 -- not yet counted
        assert defense.counter_value(0, 0, 64) == 0
        single_read(system, b)  # closes row 64 -> counted
        assert defense.counter_value(0, 0, 64) == 1

    def test_alternating_rows_count_together(self):
        system = prac_system(nbo=1000)
        addrs = system.mapper.same_bank_rows(2, stride=8, first_row=64)
        hammer(system, addrs, 21)
        assert system.defense.counter_value(0, 0, 64) == 10
        assert system.defense.counter_value(0, 0, 72) == 10

    def test_row_hits_do_not_count(self):
        system = prac_system(nbo=4)
        addr = system.mapper.encode(row=64)
        for _ in range(20):
            single_read(system, addr)
        assert system.stats.backoffs == 0


class TestAboProtocol:
    def test_backoff_fires_at_threshold(self):
        system = prac_system(nbo=8)
        addrs = system.mapper.same_bank_rows(2, stride=8, first_row=64)
        hammer(system, addrs, 2 * 8 + 2)
        system.sim.run(until=system.sim.now + 3_000_000)
        assert system.stats.backoffs == 1

    def test_no_backoff_below_threshold(self):
        system = prac_system(nbo=8)
        addrs = system.mapper.same_bank_rows(2, stride=8, first_row=64)
        hammer(system, addrs, 10)
        system.sim.run(until=system.sim.now + 3_000_000)
        assert system.stats.backoffs == 0

    def test_backoff_duration_is_n_rfms_times_trfm(self):
        for n_rfms in (1, 2, 4):
            system = prac_system(nbo=8, n_rfms=n_rfms)
            addrs = system.mapper.same_bank_rows(2, stride=8, first_row=64)
            hammer(system, addrs, 20)
            system.sim.run(until=system.sim.now + 5_000_000)
            backoff = system.stats.blocks_of(BlockKind.BACKOFF)[0]
            assert backoff.duration == n_rfms * system.config.timing.tRFM_AB

    def test_backoff_latency_override(self):
        system = prac_system(nbo=8, backoff_latency_override=77_000)
        addrs = system.mapper.same_bank_rows(2, stride=8, first_row=64)
        hammer(system, addrs, 20)
        system.sim.run(until=system.sim.now + 5_000_000)
        assert system.stats.blocks_of(BlockKind.BACKOFF)[0].duration == 77_000

    def test_recovery_starts_after_tabo_act_window(self):
        system = prac_system(nbo=8)
        t = system.config.timing
        addrs = system.mapper.same_bank_rows(2, stride=8, first_row=64)
        hammer(system, addrs, 17)
        system.sim.run(until=system.sim.now + 5_000_000)
        (rank, assert_time), = system.defense.abo_log[:1]
        backoff = system.stats.blocks_of(BlockKind.BACKOFF)[0]
        assert backoff.start >= assert_time + t.tABO_ACT

    def test_backoff_blocks_whole_rank(self):
        system = prac_system(nbo=8)
        addrs = system.mapper.same_bank_rows(2, stride=8, first_row=64)
        hammer(system, addrs, 20)
        system.sim.run(until=system.sim.now + 5_000_000)
        assert system.stats.blocks_of(BlockKind.BACKOFF)[0].banks is None

    def test_recovery_resets_top_counters(self):
        system = prac_system(nbo=8, n_rfms=4)
        addrs = system.mapper.same_bank_rows(2, stride=8, first_row=64)
        hammer(system, addrs, 20)
        system.sim.run(until=system.sim.now + 5_000_000)
        assert system.defense.counter_value(0, 0, 64) <= 2
        assert system.defense.counter_value(0, 0, 72) <= 2

    def test_repeated_backoffs_with_continued_hammering(self):
        system = prac_system(nbo=8)
        addrs = system.mapper.same_bank_rows(2, stride=8, first_row=64)
        hammer(system, addrs, 80)
        system.sim.run(until=system.sim.now + 10_000_000)
        assert system.stats.backoffs >= 3

    def test_cooldown_spaces_backoffs(self):
        system = prac_system(nbo=8)
        t = system.config.timing
        addrs = system.mapper.same_bank_rows(2, stride=8, first_row=64)
        hammer(system, addrs, 80)
        system.sim.run(until=system.sim.now + 10_000_000)
        backoffs = system.stats.blocks_of(BlockKind.BACKOFF)
        for first, second in zip(backoffs, backoffs[1:]):
            assert second.start - first.end >= t.tABO_COOLDOWN


class TestRefreshHygiene:
    def test_refresh_hook_clears_swept_counters(self):
        system = prac_system(nbo=10 ** 6)
        defense = system.defense
        cursor = defense._ref_cursor[0]
        addrs = [system.mapper.encode(row=cursor),
                 system.mapper.encode(row=cursor + 1)]
        hammer(system, addrs, 10)
        assert defense.counter_value(0, 0, cursor) > 0
        defense.on_refresh(0, system.sim.now)
        assert defense.counter_value(0, 0, cursor) == 0

    def test_refresh_hook_leaves_unswept_rows_alone(self):
        system = prac_system(nbo=10 ** 6)
        defense = system.defense
        addrs = system.mapper.same_bank_rows(2, stride=8, first_row=64)
        hammer(system, addrs, 10)
        before = defense.counter_value(0, 0, 64)
        defense.on_refresh(0, system.sim.now)  # sweeps mid-bank rows
        assert defense.counter_value(0, 0, 64) == before

    def test_refresh_cursor_advances(self):
        system = prac_system(nbo=10 ** 6)
        defense = system.defense
        start = defense._ref_cursor[0]
        defense.on_refresh(0, 0)
        defense.on_refresh(0, 1)
        assert defense._ref_cursor[0] == (start + 32) % \
            system.config.org.rows_per_bank


class TestSecurityInvariant:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10 ** 6))
    def test_no_row_exceeds_bound_under_random_patterns(self, seed):
        """PRAC's purpose: under arbitrary (random) access patterns, no
        counter value observed at any PRE exceeds N_BO plus the
        overshoot possible while an ABO is pending/cooling down."""
        nbo = 6
        system = prac_system(nbo=nbo)
        rng = random.Random(seed)
        rows = [system.mapper.encode(row=r, bankgroup=rng.randrange(2))
                for r in range(0, 24, 8)]
        max_seen = 0
        defense = system.defense
        original = defense.on_precharge

        def spy(rank, bank, row, t):
            nonlocal max_seen
            original(rank, bank, row, t)
            counters = defense.counters[rank][bank]
            max_seen = max(max_seen, max(counters.values(), default=0))

        defense.on_precharge = spy
        system.controller.defense = defense
        for _ in range(150):
            single_read(system, rng.choice(rows))
        system.sim.run(until=system.sim.now + 10_000_000)
        # Overshoot bound: ACTs that fit in ABO delay + tABOACT +
        # recovery + cool-down at one ACT per tRC, plus the rows beyond
        # the top-n_rfms mitigation budget cannot accumulate unboundedly
        # because the hammering set is small.
        t = system.config.timing
        window = (t.tABO_DELAY + t.tABO_ACT + 4 * t.tRFM_AB
                  + t.tABO_COOLDOWN)
        overshoot = window // t.tRC + 1
        assert max_seen <= nbo + overshoot

    def test_describe_reports_parameters(self):
        system = prac_system(nbo=32)
        info = system.defense.describe()
        assert info["kind"] == "prac"
        assert info["nbo"] == 32
