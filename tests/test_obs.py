"""Tests for the telemetry subsystem (:mod:`repro.obs`): the metrics
registry, its instrumentation hooks across engine/cache/dist/serve,
trial-lifecycle tracing, and the observability satellites (bench
metric-set diff, monotonic job durations, progress line)."""

from __future__ import annotations

import io
import json
import time
import warnings

import pytest

import dist_trials
from repro.obs import metrics, trace
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    REGISTRY,
    Registry,
)


@pytest.fixture(autouse=True)
def _telemetry_on():
    """Every test here runs with telemetry enabled and tracing off,
    whatever the ambient environment says."""
    was = metrics.enabled()
    metrics.set_enabled(True)
    yield
    metrics.set_enabled(was)
    if trace.active():
        trace.stop()


# ----------------------------------------------------------------------
# Registry unit tests
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_inc_and_labels(self):
        reg = Registry()
        c = reg.counter("t_total", "help me")
        c.inc()
        c.inc(2, kind="a")
        c.inc(kind="a")
        assert reg.get_value("t_total") == 1
        assert reg.get_value("t_total", kind="a") == 3
        assert reg.get_value("t_total", kind="zzz") == 0.0

    def test_gauge_set_inc_dec(self):
        reg = Registry()
        g = reg.gauge("t_depth")
        g.set(5)
        g.inc()
        g.dec(2)
        assert reg.get_value("t_depth") == 4

    def test_histogram_buckets_and_series(self):
        reg = Registry()
        h = reg.histogram("t_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 3.0):
            h.observe(v)
        ((labels, buckets, count, total),) = h.series()
        assert labels == {}
        assert buckets == [1, 2]  # cumulative: <=0.1, <=1.0
        assert count == 3
        assert total == pytest.approx(3.55)

    def test_declare_is_idempotent_but_kind_checked(self):
        reg = Registry()
        first = reg.counter("t_total")
        assert reg.counter("t_total") is first
        with pytest.raises(TypeError):
            reg.gauge("t_total")

    def test_disabled_fast_path_records_nothing(self):
        reg = Registry()
        c = reg.counter("t_total")
        metrics.set_enabled(False)
        c.inc(100)
        metrics.set_enabled(True)
        assert reg.get_value("t_total") == 0.0

    def test_prometheus_exposition_shape(self):
        reg = Registry()
        reg.counter("t_total", 'with "quotes"\nand newline').inc(
            3, route="/v1/jobs")
        reg.histogram("t_seconds", buckets=(0.5,)).observe(0.1)
        text = reg.to_prometheus()
        assert text.endswith("\n")
        assert "# TYPE t_total counter" in text
        assert '# HELP t_total with \\"quotes\\"\\nand newline' in text
        assert 't_total{route="/v1/jobs"} 3' in text
        assert '# TYPE t_seconds histogram' in text
        assert 't_seconds_bucket{le="0.5"} 1' in text
        assert 't_seconds_bucket{le="+Inf"} 1' in text
        assert "t_seconds_sum 0.1" in text
        assert "t_seconds_count 1" in text

    def test_snapshot_prefix_filter(self):
        reg = Registry()
        reg.counter("aaa_total").inc()
        reg.counter("bbb_total").inc()
        snap = reg.snapshot(prefix="aaa")
        assert set(snap) == {"aaa_total"}
        assert snap["aaa_total"]["samples"] == [
            {"labels": {}, "value": 1}]

    def test_reset_zeroes_everything(self):
        reg = Registry()
        reg.counter("t_total").inc(9)
        reg.gauge("t_depth").set(4)
        reg.reset()
        assert reg.get_value("t_total") == 0.0
        assert reg.get_value("t_depth") == 0.0

    def test_collector_replace_by_name(self):
        reg = Registry()
        g = reg.gauge("t_depth")
        reg.add_collector("probe", lambda r: g.set(1))
        reg.add_collector("probe", lambda r: g.set(2))
        reg.collect()
        assert reg.get_value("t_depth") == 2
        reg.remove_collector("probe")

    def test_registry_singleton_has_core_collectors(self):
        names = list(REGISTRY._collectors)
        assert "engine" in names
        assert "fastforward" in names


# ----------------------------------------------------------------------
# Instrumentation: engine + cache
# ----------------------------------------------------------------------
class TestEngineCounters:
    def test_run_publishes_global_event_counts(self):
        from repro.sim import engine as engine_mod
        from repro.sim.engine import NS, Simulator

        before = engine_mod.global_counters()["events_run"]
        reg_before = _collected("repro_engine_events_run_total")
        sim = Simulator()
        for i in range(10):
            sim.schedule(i * NS, lambda: None)
        sim.run()
        after = engine_mod.global_counters()["events_run"]
        assert after - before == 10
        assert (_collected("repro_engine_events_run_total")
                - reg_before) == 10

    def test_absorb_counters_folds_remote_deltas(self):
        from repro.sim import engine as engine_mod

        before = engine_mod.global_counters()
        engine_mod.absorb_counters({"events_run": 5, "events_elided": 2,
                                    "bogus": 99, "events_run2": -1})
        after = engine_mod.global_counters()
        assert after["events_run"] - before["events_run"] == 5
        assert after["events_elided"] - before["events_elided"] == 2
        assert "bogus" not in after


def _collected(name: str, **labels) -> float:
    REGISTRY.collect()
    return REGISTRY.get_value(name, **labels)


class TestCacheCounters:
    def test_hit_miss_put_counters(self, tmp_path):
        from repro.exp.cache import ResultCache

        cache = ResultCache(tmp_path)
        hits0 = REGISTRY.get_value("repro_cache_hits_total")
        misses0 = REGISTRY.get_value("repro_cache_misses_total")
        puts0 = REGISTRY.get_value("repro_cache_puts_total")
        bytes0 = REGISTRY.get_value("repro_cache_put_bytes_total")

        hit, _ = cache.get("k" * 64)
        assert not hit
        cache.put("k" * 64, {"x": 1})
        hit, value = cache.get("k" * 64)
        assert hit and value == {"x": 1}

        assert REGISTRY.get_value("repro_cache_hits_total") - hits0 == 1
        assert REGISTRY.get_value("repro_cache_misses_total") - misses0 == 1
        assert REGISTRY.get_value("repro_cache_puts_total") - puts0 == 1
        assert REGISTRY.get_value("repro_cache_put_bytes_total") > bytes0

    def test_clear_counts_tmp_orphans(self, tmp_path):
        from repro.exp.cache import ResultCache

        cache = ResultCache(tmp_path)
        shard = tmp_path / "aa"
        shard.mkdir()
        (shard / ("a" * 64 + ".pkl.tmp")).write_bytes(b"orphan")
        orphans0 = REGISTRY.get_value(
            "repro_cache_tmp_orphans_swept_total")
        cache.clear()
        assert (REGISTRY.get_value("repro_cache_tmp_orphans_swept_total")
                - orphans0) == 1


# ----------------------------------------------------------------------
# Instrumentation: shards coordinator (per-sweep gauges reset, dist
# counters accumulate)
# ----------------------------------------------------------------------
@pytest.fixture()
def backend():
    from repro.dist.shards import ShardsBackend

    instance = ShardsBackend()
    yield instance
    instance.close()


class TestSweepMetrics:
    def test_ff_gauges_reset_per_sweep_counters_accumulate(self, backend):
        dispatched0 = REGISTRY.get_value(
            "repro_dist_tasks_dispatched_total")

        first = backend.run(dist_trials.ff_jumping_trial, [0, 1],
                            [None] * 2, workers=1)
        assert REGISTRY.get_value("repro_sweep_ff_jumps") == sum(first)
        assert (REGISTRY.get_value("repro_sweep_ff_jumps")
                == backend.last_stats["ff_totals"]["jumps"])

        second = backend.run(dist_trials.ff_jumping_trial, [0],
                             [None], workers=1)
        # The per-sweep gauge reports the second sweep only ...
        assert REGISTRY.get_value("repro_sweep_ff_jumps") == sum(second)
        assert sum(second) < sum(first) + sum(second)
        # ... while the process-lifetime dispatch counter accumulates.
        assert (REGISTRY.get_value("repro_dist_tasks_dispatched_total")
                - dispatched0) == 3

    def test_crash_requeue_lands_in_registry(self, backend, tmp_path):
        requeues0 = REGISTRY.get_value("repro_dist_requeues_total")
        marker = str(tmp_path / "crashed-once")
        points = [{"v": v, "marker": marker if v == 2 else None}
                  for v in range(4)]
        with pytest.warns(RuntimeWarning, match="died.*requeueing"):
            backend.run(dist_trials.crash_once, points, [None] * 4,
                        workers=2)
        assert (REGISTRY.get_value("repro_dist_requeues_total")
                - requeues0) == 1
        assert REGISTRY.get_value("repro_sweep_requeues") == 1
        assert REGISTRY.get_value("repro_sweep_crashes") == 1
        # Clean follow-up sweep: the per-sweep gauges start over.
        backend.run(dist_trials.square, [1], [None], workers=1)
        assert REGISTRY.get_value("repro_sweep_requeues") == 0
        assert REGISTRY.get_value("repro_sweep_crashes") == 0

    def test_worker_trial_counts(self, backend):
        backend.run(dist_trials.square, list(range(6)), [None] * 6,
                    workers=2)
        per_worker = backend.last_stats["worker_trials"]
        assert sum(per_worker.values()) == 6
        for worker_id, count in per_worker.items():
            assert REGISTRY.get_value("repro_dist_worker_trials_total",
                                      worker=worker_id) >= count


# ----------------------------------------------------------------------
# Trial-lifecycle tracing
# ----------------------------------------------------------------------
class TestTrace:
    def test_crash_requeued_trial_reconstructs_both_attempts(
            self, tmp_path):
        from repro.dist import shutdown_backends
        from repro.exp.runner import map_trials

        marker = str(tmp_path / "crashed-once")
        points = [{"v": v, "marker": marker if v == 2 else None}
                  for v in range(4)]
        path = tmp_path / "sweep.ndjson"
        trace.start(str(path))
        try:
            with pytest.warns(RuntimeWarning, match="died.*requeueing"):
                out = map_trials(dist_trials.crash_once, points,
                                 backend="shards", workers=2)
        finally:
            events = trace.stop()
            shutdown_backends()
        assert out == [0, 1, 4, 9]

        lives = trace.lifecycles(events)
        assert len(lives) == 4
        # Exactly one trial was requeued because its worker died (any
        # in-flight mates are requeued alongside it with why="mate").
        died = [trial for trial, life in lives.items()
                if any(ev["ev"] == "requeued" and ev.get("why") != "mate"
                       for ev in life["events"])]
        assert len(died) == 1
        assert lives[died[0]]["attempts"] == 2
        assert all(life["outcome"] == "completed"
                   for life in lives.values())
        # Every trial dispatched twice has the requeue that explains it.
        assert all(life["requeues"] >= life["attempts"] - 1
                   for life in lives.values())

        summary = trace.summarize(events)
        assert summary["trials"] == 4
        assert summary["completed"] == 4
        assert summary["requeues"] >= 1
        assert summary["max_attempts"] == 2

        # The NDJSON sink round-trips the in-memory buffer.
        assert trace.load_ndjson(str(path)) == events

        # The Chrome export carries a lifecycle span per trial, the
        # crash-requeued one showing both attempts in its args.
        doc = trace.chrome_trace(events)
        spans = [ev for ev in doc["traceEvents"]
                 if ev.get("ph") == "X" and ev.get("pid") == 2]
        assert len(spans) == 4
        assert max(ev["args"]["attempts"] for ev in spans) == 2

    def test_cache_hits_traced_as_cached(self, tmp_path):
        from repro.exp.cache import ResultCache
        from repro.exp.runner import map_trials

        cache = ResultCache(tmp_path / "cache")
        trace.start()
        try:
            map_trials(dist_trials.square, [1, 2], trial_cache=cache)
            map_trials(dist_trials.square, [1, 2], trial_cache=cache)
        finally:
            events = trace.stop()
        outcomes = [life["outcome"]
                    for life in trace.lifecycles(events).values()]
        assert sorted(outcomes) == ["cached", "cached",
                                    "completed", "completed"]

    def test_inactive_trace_emits_nothing(self):
        from repro.exp.runner import map_trials

        assert not trace.active()
        before = trace.events()
        map_trials(dist_trials.square, [1, 2])
        assert trace.events() == before

    def test_corrupt_ndjson_lines_are_skipped(self, tmp_path):
        path = tmp_path / "t.ndjson"
        path.write_text('{"ev": "queued", "trial": "s1:0", "t": 1.0}\n'
                        "not json\n\n"
                        '{"ev": "completed", "trial": "s1:0", "t": 2.0}\n')
        events = trace.load_ndjson(str(path))
        assert [ev["ev"] for ev in events] == ["queued", "completed"]


# ----------------------------------------------------------------------
# Satellites: bench metric-set diff, monotonic job durations, progress
# ----------------------------------------------------------------------
class TestMetricSetDiff:
    def test_disjoint_sets_are_reported(self):
        from repro.perf.bench import compare, metric_set_diff

        old = {"metrics": {"gone_seconds": 1.0}}
        new = {"metrics": {"fresh_per_sec": 10}}
        # compare() stays silent on disjoint sets (pinned elsewhere);
        # metric_set_diff is the loud counterpart.
        assert compare(new, old) == {}
        assert metric_set_diff(new, old) == {
            "added": ["fresh_per_sec"], "removed": ["gone_seconds"]}

    def test_identical_sets_diff_empty(self):
        from repro.perf.bench import metric_set_diff

        doc = {"metrics": {"a": 1, "b": 2}}
        assert metric_set_diff(doc, doc) == {"added": [], "removed": []}


class TestJobDurations:
    def test_duration_survives_wall_clock_stepping_backwards(
            self, monkeypatch):
        from repro.serve import jobs as jobs_mod

        real_time = time

        class _SteppingClock:
            """Wall clock that steps 1 hour backwards mid-job."""

            def __init__(self):
                self.wall = 1_000_000.0

            def time(self):
                self.wall -= 3600.0
                return self.wall

            def monotonic(self):
                return real_time.monotonic()

        monkeypatch.setattr(jobs_mod, "time", _SteppingClock())
        job = jobs_mod.Job("experiment", "t", "k", work=None)
        job._set_running()

        class _Run:
            trials = 1
            elapsed_s = 0.0

        job._finish(_Run(), "abc")
        doc = job.to_doc()
        assert doc["finished"] < doc["started"]  # wall went backwards
        assert doc["duration_s"] is not None
        assert 0.0 <= doc["duration_s"] < 5.0  # monotonic, not wall


class TestProgressLine:
    def test_line_includes_fleet_state_when_live(self):
        from repro.dist.progress import SweepProgress

        workers = REGISTRY.gauge("repro_dist_workers_active")
        requeues = REGISTRY.gauge("repro_sweep_requeues")
        old = (workers.value(), requeues.value())
        stream = io.StringIO()
        progress = SweepProgress(stream)
        try:
            workers.set(0)
            requeues.set(0)
            progress(3, 10, 1)
            assert "3/10 trials (cache: 1 hits)" in stream.getvalue()
            workers.set(4)
            requeues.set(2)
            progress(4, 10, 1)
            assert ("4/10 trials (cache: 1 hits, workers: 4, "
                    "requeues: 2)") in stream.getvalue()
        finally:
            workers.set(old[0])
            requeues.set(old[1])


# ----------------------------------------------------------------------
# /metrics endpoint
# ----------------------------------------------------------------------
class TestMetricsEndpoint:
    @pytest.fixture()
    def server(self, tmp_path):
        from repro.exp.cache import ResultCache
        from repro.serve.server import ServerThread

        with ServerThread(cache=ResultCache(tmp_path)) as srv:
            yield srv

    def _get(self, server, path):
        import http.client

        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            return response.status, dict(response.getheaders()), \
                response.read()
        finally:
            conn.close()

    def test_prometheus_text(self, server):
        status, headers, body = self._get(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in headers["Content-Type"]
        text = body.decode("utf-8")
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "# TYPE repro_serve_request_seconds histogram" in text
        assert "# TYPE repro_serve_job_queue_depth gauge" in text

    def test_json_snapshot_and_self_observation(self, server):
        self._get(server, "/metrics")
        status, _, body = self._get(server, "/metrics?format=json")
        assert status == 200
        doc = json.loads(body)["metrics"]
        samples = doc["repro_serve_requests_total"]["samples"]
        by_route = {s["labels"].get("route"): s["value"]
                    for s in samples}
        assert by_route.get("/metrics", 0) >= 1
