"""Tests for the trial runner: parallel fan-out, seeds, cached runs."""

import pytest

from repro.exp.cache import ResultCache
from repro.exp.runner import (
    derive_seed,
    experiment_key,
    map_trials,
    run_experiment,
    trials_executed,
)
from repro.exp.registry import get_experiment


def _square(point):
    return point * point


def _seeded(point, seed):
    return (point, seed)


class TestMapTrials:
    def test_serial_results_in_point_order(self):
        assert map_trials(_square, [3, 1, 2]) == [9, 1, 4]

    def test_parallel_matches_serial(self):
        points = list(range(8))
        assert (map_trials(_square, points, workers=4)
                == map_trials(_square, points))

    def test_trial_counter_advances(self):
        before = trials_executed()
        map_trials(_square, [1, 2, 3])
        assert trials_executed() - before == 3

    def test_trial_counter_counts_parallel_trials(self):
        before = trials_executed()
        map_trials(_square, [1, 2, 3, 4], workers=2)
        assert trials_executed() - before == 4

    def test_empty_points(self):
        assert map_trials(_square, []) == []

    def test_single_point_stays_serial_under_workers(self):
        assert map_trials(_square, [5], workers=8) == [25]


class TestSeeds:
    def test_derive_seed_deterministic(self):
        assert derive_seed(7, 0) == derive_seed(7, 0)

    def test_derive_seed_varies_with_index_and_base(self):
        seeds = {derive_seed(7, i) for i in range(100)}
        assert len(seeds) == 100
        assert derive_seed(7, 0) != derive_seed(8, 0)

    def test_seeded_trials_serial(self):
        results = map_trials(_seeded, ["a", "b"], seed=7)
        assert results == [("a", derive_seed(7, 0)),
                           ("b", derive_seed(7, 1))]

    def test_seeded_trials_parallel_match_serial(self):
        serial = map_trials(_seeded, list("abcd"), seed=3)
        parallel = map_trials(_seeded, list("abcd"), seed=3, workers=2)
        assert serial == parallel


class TestParallelSweepsBitIdentical:
    """Acceptance: `run fig4 --workers N` must equal the serial path."""

    def test_fig4_parallel_rows_equal_serial(self):
        fig4 = get_experiment("fig4").fn
        serial = fig4(intensities=(1, 50), n_bits=4)
        parallel = fig4(intensities=(1, 50), n_bits=4, workers=4)
        assert serial.rows == parallel.rows

    def test_fig13_parallel_equals_serial(self):
        fig13 = get_experiment("fig13").fn
        serial = fig13(nrh_values=(1024,), n_mixes=1, n_requests=400)
        parallel = fig13(nrh_values=(1024,), n_mixes=1, n_requests=400,
                         workers=2)
        assert serial["table"].rows == parallel["table"].rows
        assert serial["per_mix"] == parallel["per_mix"]


class TestRunExperiment:
    PARAMS = {"intensities": (1,), "n_bits": 4}

    def test_first_run_executes_then_cache_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_experiment("fig4", dict(self.PARAMS), cache=cache)
        assert not first.cached
        assert first.trials == 1  # one intensity = one trial executed

        second = run_experiment("fig4", dict(self.PARAMS), cache=cache)
        assert second.cached
        assert second.trials == 0  # no work: served from cache
        assert second.value.rows == first.value.rows
        assert second.key == first.key

    def test_param_change_misses_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_experiment("fig4", dict(self.PARAMS), cache=cache)
        other = run_experiment("fig4", {"intensities": (1,), "n_bits": 5},
                               cache=cache)
        assert not other.cached

    def test_workers_do_not_change_the_key(self):
        spec = get_experiment("fig4")
        assert (experiment_key(spec, dict(self.PARAMS))
                == experiment_key(spec, dict(self.PARAMS)))

    def test_spelled_out_default_shares_the_key(self):
        """The key is over *resolved* params: passing a driver default
        explicitly must hit the cache entry of the bare run."""
        spec = get_experiment("fig4")
        assert (experiment_key(spec, {})
                == experiment_key(spec, {"n_bits": 24}))
        assert (experiment_key(spec, {})
                != experiment_key(spec, {"n_bits": 23}))

    def test_parallel_run_hits_serial_runs_cache(self, tmp_path):
        """The cache is execution-agnostic: a --workers run reuses the
        result a serial run stored (and vice versa)."""
        cache = ResultCache(tmp_path)
        serial = run_experiment("fig4", dict(self.PARAMS), cache=cache)
        parallel = run_experiment("fig4", dict(self.PARAMS), cache=cache,
                                  workers=4)
        assert parallel.cached
        assert parallel.value.rows == serial.value.rows

    def test_no_cache_always_executes(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_experiment("fig4", dict(self.PARAMS), cache=cache)
        fresh = run_experiment("fig4", dict(self.PARAMS), use_cache=False)
        assert not fresh.cached
        assert fresh.trials == 1

    def test_unknown_param_rejected(self):
        from repro.exp.runner import ExperimentParamError

        with pytest.raises(ExperimentParamError, match="does not accept"):
            run_experiment("fig4", {"bogus": 1}, use_cache=False)

    def test_seed_forwarded_when_accepted(self, tmp_path):
        cache = ResultCache(tmp_path)
        run = run_experiment(
            "fig13", {"nrh_values": (1024,), "n_mixes": 1,
                      "n_requests": 400},
            seed=5, cache=cache)
        assert run.params["seed"] == 5

    def test_seed_warns_when_not_accepted(self):
        with pytest.warns(RuntimeWarning, match="takes no seed"):
            run_experiment("ablation-refresh", seed=5, use_cache=False)
