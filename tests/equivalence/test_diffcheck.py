"""The differential harness itself: fuzzer determinism, deep capture,
first-diff localization, shrinking, artifacts, and the CLI."""

from __future__ import annotations

import json

import pytest

from repro.exp.registry import experiment_names
from repro.perf.diffcheck import (
    EXPERIMENT_PARAMS,
    DiffOutcome,
    deep_scenario_run,
    diff_experiment,
    diff_scenario,
    first_diff,
    run_diffcheck,
    shrink_spec,
    write_artifact,
)
from repro.scenario.spec import ScenarioSpec
from tests.equivalence.strategies import (
    corpus,
    random_multiagent_spec,
    random_spec,
)


class TestFuzzer:
    def test_same_seed_same_spec(self):
        assert random_spec(42).to_dict() == random_spec(42).to_dict()
        assert (random_spec(42).cache_key()
                == ScenarioSpec.from_dict(random_spec(42).to_dict())
                .cache_key())

    def test_distinct_seeds_distinct_specs(self):
        keys = {random_spec(seed).cache_key() for seed in range(30)}
        assert len(keys) > 25  # near-certain distinctness

    def test_specs_are_valid_and_bounded(self):
        for seed, spec in corpus():
            assert spec.agents, seed
            assert spec.agents[0].kind == "probe"
            # Round-trips as pure data.
            assert ScenarioSpec.from_dict(
                json.loads(spec.to_json())) == spec

    def test_corpus_covers_multiple_defenses(self):
        kinds = {spec.system.defense.kind.value
                 for _seed, spec in corpus()}
        assert len(kinds) >= 3


class TestMultiAgentFuzzer:
    """The joint fast-forward fuzz profile: two/three-agent periodic
    casts (``--fuzz-multi``)."""

    def test_same_seed_same_spec(self):
        assert (random_multiagent_spec(42).to_dict()
                == random_multiagent_spec(42).to_dict())

    def test_casts_cover_the_multiagent_shapes(self):
        sizes = set()
        kinds = set()
        for seed in range(2000, 2060):
            spec = random_multiagent_spec(seed)
            sizes.add(len(spec.agents))
            kinds.update(a.kind for a in spec.agents)
        assert {2, 3} <= sizes  # two- and three-agent mixes
        assert {"probe", "noise", "sender", "receiver"} <= kinds

    def test_specs_are_periodic_and_round_trip(self):
        for seed in range(2000, 2012):
            spec = random_multiagent_spec(seed)
            assert len(spec.agents) >= 2, seed
            for agent in spec.agents:
                # Periodic-friendly by construction: no jitter, no
                # stop-on watchers on the probes.
                assert "jitter_ps" not in agent.params, seed
                assert "stop_on" not in agent.params, seed
            assert ScenarioSpec.from_dict(
                json.loads(spec.to_json())) == spec


class TestFirstDiff:
    def test_equal_values(self):
        assert first_diff({"a": [1, {"b": 2}]}, {"a": [1, {"b": 2}]}) is None

    def test_scalar_and_path(self):
        diff = first_diff({"a": {"b": [1, 2]}}, {"a": {"b": [1, 3]}})
        assert diff == "$.a.b[1]: 2 != 3"

    def test_length_and_missing_key(self):
        assert "length" in first_diff([1], [1, 2])
        assert "only in" in first_diff({"a": 1}, {"a": 1, "b": 2})
        assert "type" in first_diff(1, "1")


class TestDifferential:
    @pytest.mark.parametrize("seed", [1200, 1201, 1202, 1203])
    def test_fuzzed_specs_bit_identical(self, seed):
        outcome = diff_scenario(random_spec(seed), shrink=False)
        assert outcome.identical, outcome.detail

    def test_experiment_bit_identical_with_engagement(self):
        outcome = diff_experiment("fig2", {"n_samples": 200, "nbo": 48})
        assert outcome.identical, outcome.detail
        assert outcome.jumps > 0

    def test_deep_capture_contains_ground_truth(self):
        doc = deep_scenario_run(random_spec(1204))
        truth = doc["ground_truth"]
        assert {"final_now", "counters", "blocks", "agents"} <= set(truth)
        probe = truth["agents"]["probe-0"]
        assert probe["done"] is True
        assert probe["samples"][0] > 0  # sample count

    def test_every_registered_experiment_has_diff_params(self):
        assert set(EXPERIMENT_PARAMS) == set(experiment_names())

    @pytest.mark.parametrize("seed", [2005,   # two same/split-bank probes
                                      2029,   # three probes
                                      2000])  # covert sender + receiver
    def test_multiagent_specs_bit_identical(self, seed):
        outcome = diff_scenario(random_multiagent_spec(seed),
                                shrink=False)
        assert outcome.identical, outcome.detail


class TestShrinking:
    def test_shrinks_to_minimal_failing_spec(self, monkeypatch):
        """Drive the shrinker with a synthetic failure predicate: any
        spec that still contains an app agent 'fails'."""
        import repro.perf.diffcheck as dc

        def fake_mismatch(spec):
            return any(a.kind == "app" for a in spec.agents)

        monkeypatch.setattr(dc, "_mismatches", fake_mismatch)
        spec = None
        for seed in range(100, 200):
            candidate = random_spec(seed)
            if (len(candidate.agents) >= 3
                    and any(a.kind == "app" for a in candidate.agents)):
                spec = candidate
                break
        assert spec is not None, "fuzz corpus never produced an app mix"
        minimal = shrink_spec(spec)
        # Shrunk as far as the predicate allows: the app plus the one
        # probe the generator guarantees cannot be dropped (the
        # candidate generator never removes the last agent).
        assert any(a.kind == "app" for a in minimal.agents)
        assert len(minimal.agents) < len(spec.agents) or \
            len(spec.agents) == 1

    def test_two_agent_injected_divergence_yields_minimal_artifact(
            self, monkeypatch, tmp_path):
        """Full path on a two-probe periodic spec: poison every
        fast-forward-on deep run, so diff_scenario detects the
        divergence, shrinks, and writes the failing-spec artifact."""
        import repro.perf.diffcheck as dc

        real_run = dc.deep_scenario_run
        calls = {"n": 0}

        def poisoned(spec):
            doc = real_run(spec)
            calls["n"] += 1
            if calls["n"] % 2 == 0:  # every second run is the FF world
                doc["injected_divergence"] = True
            return doc

        monkeypatch.setattr(dc, "deep_scenario_run", poisoned)
        spec = random_multiagent_spec(2005)  # two probes
        assert len(spec.agents) == 2
        outcome = dc.diff_scenario(spec, artifact_dir=str(tmp_path))
        assert not outcome.identical
        assert "injected_divergence" in outcome.detail
        data = json.loads((tmp_path / outcome.artifact.rsplit("/", 1)[-1])
                          .read_text())
        minimal = ScenarioSpec.from_dict(data["scenario"])
        # The injected failure survives every shrink, so the artifact
        # holds the fully-minimized spec: one agent, scales floored.
        assert len(minimal.agents) == 1
        assert minimal.agents[0].params["max_samples"] <= 8
        assert data["first_mismatch"] == outcome.detail

    def test_three_agent_shrink_keeps_the_failing_pair(self,
                                                       monkeypatch):
        """Synthetic predicate on a three-probe spec: a mismatch that
        needs two co-running probes must shrink to exactly that pair,
        not below it."""
        import repro.perf.diffcheck as dc

        def fake_mismatch(spec):
            return sum(a.kind == "probe" for a in spec.agents) >= 2

        monkeypatch.setattr(dc, "_mismatches", fake_mismatch)
        spec = random_multiagent_spec(2029)  # three probes
        assert len(spec.agents) == 3
        minimal = shrink_spec(spec)
        assert len(minimal.agents) == 2
        assert all(a.kind == "probe" for a in minimal.agents)
        assert not minimal.measurements  # stripped to ground truth
        assert all(a.params["max_samples"] <= 8 for a in minimal.agents)

    def test_artifact_round_trips_through_spec_cli(self, tmp_path):
        spec = random_spec(1205)
        outcome = DiffOutcome(name=spec.name, kind="scenario",
                              identical=False, detail="$.x: 1 != 2")
        path = write_artifact(spec, outcome, str(tmp_path))
        data = json.loads((tmp_path / f"diffcheck-failure-"
                           f"{spec.name}.json").read_text())
        assert data["first_mismatch"] == "$.x: 1 != 2"
        assert ScenarioSpec.from_dict(data["scenario"]) == spec
        assert path.endswith(".json")


class TestCli:
    def test_diffcheck_subcommand_reports_identical(self, capsys):
        from repro.__main__ import main

        rc = main(["diffcheck", "fig2", "--fuzz", "2",
                   "--fuzz-seed", "1300"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fig2" in out
        assert "fuzz-1300" in out
        assert "0 mismatched" in out

    def test_diffcheck_unknown_experiment(self, capsys):
        from repro.__main__ import main

        assert main(["diffcheck", "no-such-exp"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_diffcheck_spec_files(self, tmp_path):
        spec = random_spec(1206)
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        report = run_diffcheck(experiments=[], fuzz=0,
                               spec_files=[str(path)],
                               artifact_dir=str(tmp_path))
        assert report.ok
        assert report.outcomes[0].name == spec.name

    def test_report_rendering_flags_mismatch(self):
        from repro.perf.diffcheck import DiffReport

        report = DiffReport(outcomes=[
            DiffOutcome(name="x", kind="scenario", identical=False,
                        detail="$.a: 1 != 2", artifact="x.json"),
            DiffOutcome(name="y", kind="experiment", identical=True),
        ])
        assert not report.ok
        text = report.to_text()
        assert "NO" in text and "$.a: 1 != 2" in text
        assert "1 mismatched" in text
