"""Property-based scenario strategies for the equivalence suite.

The generators live in :mod:`repro.scenario.fuzz` (the ``repro
diffcheck`` CLI sweeps them without importing the test tree); this
module re-exports them for test-suite use and adds the pytest-facing
corpus helpers.

>>> from tests.equivalence.strategies import random_spec
>>> random_spec(7).cache_key() == random_spec(7).cache_key()
True
"""

from __future__ import annotations

from repro.scenario.fuzz import (  # noqa: F401  (re-exports)
    FUZZ_DEFENSES,
    random_multiagent_spec,
    random_spec,
    random_specs,
    random_system,
)

#: Seeds the in-tree equivalence tests sweep.  Distinct from the CLI
#: default corpus so CI exercises fresh specs beyond the smoke sweep.
TEST_CORPUS_SEEDS = tuple(range(1200, 1212))


def corpus():
    """The test corpus as (seed, spec) pairs."""
    return [(seed, random_spec(seed)) for seed in TEST_CORPUS_SEEDS]
