"""Steady-state fast-forward: unit equivalence + engine edge cases.

Every test here runs the same workload twice -- fast-forward forced
off, then on -- and asserts bit-identical observables.  The edge cases
pin the jump-bound semantics the optimization's safety argument leans
on: an event exactly at the quiescence horizon, zero-length jumps,
interruption by a stale controller wake, and ``run(until)`` chunk
boundaries landing inside a jumped window.
"""

from __future__ import annotations

import pytest

from repro.cpu.probe import LatencyProbe
from repro.sim import fastforward
from repro.sim.config import (
    DefenseKind,
    DefenseParams,
    RefreshPolicy,
    SystemConfig,
)
from repro.sim.engine import Simulator
from repro.system import MemorySystem


def build_probe_system(mode, *, rows=(5,), max_samples=60, nbo=None,
                       refresh=RefreshPolicy.NONE, accesses_per_addr=1):
    defense = (DefenseParams() if nbo is None
               else DefenseParams(kind=DefenseKind.PRAC, nbo=nbo))
    with fastforward.forced(mode):
        system = MemorySystem(SystemConfig(
            defense=defense, refresh_policy=refresh))
    addrs = [system.mapper.encode(row=r) for r in rows]
    probe = LatencyProbe(system, addrs, max_samples=max_samples,
                         accesses_per_addr=accesses_per_addr)
    return system, probe


def run_to_completion(system, probe, step=1_000_000):
    """Advance in chunks until the probe finishes (a perpetual refresh
    scheduler means the event queue never drains on its own)."""
    probe.start()
    deadline = 1_000_000_000  # 1 ms of simulated time, far beyond need
    while not probe.done:
        system.sim.run(until=system.sim.now + step)
        assert system.sim.now < deadline, "probe never finished"
    return probe


def observables(system, probe):
    stats = system.stats
    bank = probe.addrs and system.controller.banks[0][0]
    return {
        "samples": list(probe.samples),
        "finish": probe.finish_time,
        "counters": dict(stats.act_rate_summary),
        "precharges": stats.precharges,
        "blocks": list(stats.blocks),
        "bank": (bank.open_row, bank.busy_until, bank.act_time,
                 bank.hit_streak),
    }


def both_worlds(**kwargs):
    base_sys, base_probe = build_probe_system("off", **kwargs)
    run_to_completion(base_sys, base_probe)
    ff_sys, ff_probe = build_probe_system("on", **kwargs)
    run_to_completion(ff_sys, ff_probe)
    return (base_sys, base_probe), (ff_sys, ff_probe)


class TestJumpEquivalence:
    def test_hit_stream_identical_and_jumps(self):
        (bs, bp), (fs, fp) = both_worlds(rows=(5,), max_samples=200)
        assert observables(bs, bp) == observables(fs, fp)
        assert fs.fast_forward.jumps > 0
        assert fs.sim.events_elided > 0
        # The jump's whole point: far fewer dispatched events.
        assert fs.sim.events_run < bs.sim.events_run

    def test_conflict_stream_under_prac_identical(self):
        (bs, bp), (fs, fp) = both_worlds(
            rows=(5, 13), max_samples=400, nbo=48,
            refresh=RefreshPolicy.EVERY_TREFI)
        assert observables(bs, bp) == observables(fs, fp)
        assert fs.fast_forward.jumps > 0
        # Back-offs occurred (threshold crossings ran live, not jumped).
        assert fs.stats.backoffs > 0
        # Defense counters aged exactly.
        assert fs.defense.counters == bs.defense.counters

    def test_jump_state_matches_elision_only_execution(self):
        """The extrapolated state equals event-accurate (elision-only)
        execution field by field -- including the logical event count
        (dispatched + elided) and engine/controller seq counters."""
        fs, fp = build_probe_system("on", rows=(5, 13), max_samples=300,
                                    nbo=64)
        run_to_completion(fs, fp)
        assert fs.fast_forward.jumps > 0

        orig = fastforward.FastForward.consider
        fastforward.FastForward.consider = lambda self, probe: None
        try:
            es, ep = build_probe_system("on", rows=(5, 13),
                                        max_samples=300, nbo=64)
            run_to_completion(es, ep)
        finally:
            fastforward.FastForward.consider = orig

        assert ep.samples == fp.samples
        assert es.sim._seq == fs.sim._seq
        assert es.controller._next_seq == fs.controller._next_seq
        assert es.stats.act_rate_summary == fs.stats.act_rate_summary
        assert es.defense.counters == fs.defense.counters
        assert (es.sim.events_run ==
                fs.sim.events_run + fs.sim.events_elided)


class TestEdgeCases:
    def test_event_exactly_at_quiescence_horizon(self):
        """A pending event whose timestamp coincides exactly with a
        would-be synthetic iteration must fire *before* that iteration
        is simulated: jumps stop strictly short of the horizon."""
        base_sys, base_probe = build_probe_system("off", max_samples=120)
        run_to_completion(base_sys, base_probe)
        # Sentinel exactly at an iteration-completion timestamp, deep
        # inside the steady stretch.
        sentinel_time = base_probe.samples[70].end_time

        def run_with_sentinel(mode):
            system, probe = build_probe_system(mode, max_samples=120)
            seen = []
            system.sim.schedule_at(sentinel_time,
                                   lambda: seen.append(len(probe.samples)))
            run_to_completion(system, probe)
            return system, probe, seen

        bs, bp, base_seen = run_with_sentinel("off")
        fs, fp, ff_seen = run_with_sentinel("on")
        assert fs.fast_forward.jumps > 0
        # The sentinel observed the same number of recorded samples:
        # fast-forward never synthesized at or past the horizon.
        assert ff_seen == base_seen
        assert observables(bs, bp) == observables(fs, fp)

    def test_zero_length_fast_forward(self):
        """A horizon tighter than one period makes every would-be jump
        zero-length: the engine must decline (not crash, not drift) and
        results stay identical."""
        base_sys, base_probe = build_probe_system("off", max_samples=40)
        run_to_completion(base_sys, base_probe)
        period = (base_probe.samples[21].end_time
                  - base_probe.samples[20].end_time)

        def run_with_ticks(mode):
            system, probe = build_probe_system(mode, max_samples=40)
            # A sentinel chain denser than the probe period: the
            # quiescence horizon is always closer than one cycle.
            def tick():
                system.sim.schedule(max(period // 2, 1), tick)
            system.sim.schedule(1, tick)
            probe.start()
            limit = base_probe.finish_time + 20_000_000
            while not probe.done:
                system.sim.run(until=system.sim.now + 1_000_000)
                assert system.sim.now < limit  # loop guard only
            return system, probe

        bs, bp = run_with_ticks("off")
        fs, fp = run_with_ticks("on")
        assert fs.fast_forward.jumps == 0
        assert fs.fast_forward.cycles_skipped == 0
        assert bp.samples == fp.samples
        assert bp.finish_time == fp.finish_time

    def test_interrupted_by_stale_wake(self):
        """An armed future controller wake (here: from a blocking
        interval on an unrelated bank) bounds the jump; when it fires
        it is stale and must be a no-op in both worlds."""
        from repro.sim.stats import BlockKind

        def run_with_block(mode):
            system, probe = build_probe_system(mode, max_samples=160)
            # Block a far bank long enough that its wake lands mid-
            # stream; the probe's bank is unaffected.
            system.controller.block_banks(
                0, frozenset((31,)), 0, 2_000_000, BlockKind.RFM)
            run_to_completion(system, probe)
            return system, probe

        bs, bp = run_with_block("off")
        fs, fp = run_with_block("on")
        assert fs.fast_forward.jumps > 0
        assert observables(bs, bp) == observables(fs, fp)
        # The stale wake fired in both worlds without rescheduling
        # anything: the controller ends unarmed.
        assert bs.controller._wake_at is None
        assert fs.controller._wake_at is None

    def test_run_until_landing_mid_jump(self):
        """Jumps are clamped to the active `run(until=T)` horizon, so
        even *mid-run* state at every chunk boundary is bit-identical
        to event-accurate execution -- not merely convergent."""
        base_sys, base_probe = build_probe_system("off", max_samples=200)
        run_to_completion(base_sys, base_probe)
        period = (base_probe.samples[21].end_time
                  - base_probe.samples[20].end_time)
        step = 11 * period  # a chunk covers ~11 iterations

        bs, bp = build_probe_system("off", max_samples=200)
        fs, fp = build_probe_system("on", max_samples=200)
        bp.start()
        fp.start()
        while not (bp.done and fp.done):
            bs.sim.run(until=bs.sim.now + step)
            fs.sim.run(until=fs.sim.now + step)
            assert fs.sim.now == bs.sim.now
            assert fp.samples == bp.samples
        assert fs.fast_forward.jumps > 0
        assert observables(bs, bp) == observables(fs, fp)

    def test_state_mutated_between_paused_runs(self):
        """A caller that pauses `run(until)` and then mutates system
        state (here: a blocking interval through the public
        `block_banks` API) must observe and influence exactly the
        event-accurate physics -- the jump clamp makes synthesized-
        ahead state impossible."""
        from repro.sim.stats import BlockKind

        def run_with_midway_block(mode):
            system, probe = build_probe_system(mode, max_samples=400)
            probe.start()
            system.sim.run(until=3_000_000)
            # Mutate between runs: block the probe's own bank.
            system.controller.block_banks(
                0, frozenset((0,)), system.sim.now + 5_000, 200_000,
                BlockKind.RFM)
            while not probe.done:
                system.sim.run(until=system.sim.now + 1_000_000)
                assert system.sim.now < 1_000_000_000
            return system, probe

        bs, bp = run_with_midway_block("off")
        fs, fp = run_with_midway_block("on")
        assert fs.fast_forward.jumps > 0
        # The block must show up as a perturbed iteration in *both*
        # worlds identically.
        assert max(s.delta for s in fp.samples) > 200_000
        assert observables(bs, bp) == observables(fs, fp)

    def test_probe_without_bounds_never_jumps(self):
        """A probe with neither max_samples nor stop_time has no safe
        jump bound and must run event-accurately."""
        fs, fp = build_probe_system("on", max_samples=None)
        fp.stop_time = None
        fp.start()
        fs.sim.run(until=5_000_000)
        assert fs.fast_forward.jumps == 0
        assert len(fp.samples) > 20  # it did run


class TestJointEquivalence:
    """Superposed periodic steady states: multi-agent casts must be
    bit-identical with joint fast-forward on, and the periodic-friendly
    shapes must actually engage the joint detector."""

    @staticmethod
    def _probe(name, bank, row, max_samples=240):
        from repro.scenario.spec import AgentSpec

        return AgentSpec("probe", name=name, params={
            "bank": bank, "rows": [row], "max_samples": max_samples,
            "accesses_per_addr": 1})

    @staticmethod
    def _spec(name, agents):
        from repro.scenario.spec import (
            MeasurementSpec,
            ScenarioSpec,
            StopSpec,
        )
        from repro.sim.engine import MS

        measurements = [MeasurementSpec("counters")]
        for agent in agents:
            if agent.kind in ("probe", "receiver"):
                measurements.append(MeasurementSpec(
                    "samples", label=f"samples-{agent.name}",
                    params={"agent": agent.name, "raw": True}))
        return ScenarioSpec(
            name=name,
            system=SystemConfig(
                defense=DefenseParams(kind=DefenseKind.PRAC, nbo=64),
                refresh_policy=RefreshPolicy.POSTPONE_PAIR),
            agents=tuple(agents),
            stop=StopSpec(hard_limit_ps=400 * MS),
            measurements=tuple(measurements))

    @staticmethod
    def _both_worlds(spec):
        """(first_diff, totals delta) for one spec run off then on."""
        from repro.perf.diffcheck import deep_scenario_run, first_diff

        with fastforward.forced("off"):
            base = deep_scenario_run(spec)
        before = fastforward.totals()
        with fastforward.forced("on"):
            fast = deep_scenario_run(spec)
        after = fastforward.totals()
        return (first_diff(fast, base),
                {k: after[k] - before[k] for k in after})

    def test_two_split_bank_probes_joint_jump(self):
        """Two commensurate probes on different banks: neither can jump
        alone (the other's wakes foul its horizon), so any jumps here
        are the joint detector's."""
        diff, delta = self._both_worlds(self._spec("joint-split", [
            self._probe("p0", (0, 0), 5),
            self._probe("p1", (1, 0), 9)]))
        assert diff is None, diff
        assert delta["joint_jumps"] > 0

    def test_two_same_bank_probes_identical(self):
        """Interleaving in one bank FIFO: harder physics the joint path
        must jump bit-identically or soundly decline."""
        diff, _delta = self._both_worlds(self._spec("joint-same", [
            self._probe("p0", (0, 0), 5),
            self._probe("p1", (0, 0), 13)]))
        assert diff is None, diff

    def test_sender_receiver_joint_jump_and_replay(self):
        """The paper's covert pair: window-synchronized sender +
        receiver.  The raw per-sample capture pins the receiver's
        batched ``on_sample`` observer replay sample by sample."""
        from repro.scenario.spec import AgentSpec
        from repro.sim.engine import US

        sender = AgentSpec("sender", name="sender", params={
            "bank": (0, 0), "rows": (0,), "symbols": [1, 0, 1, 0],
            "epoch": 2 * US, "window_ps": 25 * US,
            "gaps": {0: None, 1: 0}, "stop_on_backoff": False})
        receiver = AgentSpec("receiver", name="receiver", params={
            "bank": (0, 0), "rows": (8,), "n_windows": 4,
            "epoch": 2 * US, "window_ps": 25 * US,
            "sleep_on_backoff": False})
        diff, delta = self._both_worlds(
            self._spec("joint-covert", [sender, receiver]))
        assert diff is None, diff
        assert delta["joint_jumps"] > 0
        assert delta["samples"] > 0  # synthesized receiver samples

    def test_probe_with_rw_noise_excluded_but_identical(self):
        """A read/write-mix noise agent is ineligible (writes change
        bank state the extrapolator does not model): the joint path
        must refuse while it lives, and the run stays bit-identical.
        Single-agent jumps may still fire once the noise retires."""
        from repro.scenario.spec import AgentSpec
        from repro.sim.engine import US

        noise = AgentSpec("mixed-noise", name="rw", params={
            "bank": (1, 0), "rows": [70, 100], "intensity": 30.0,
            "stop_time": 300 * US, "burst": 1, "write_ratio": 0.5})
        diff, delta = self._both_worlds(self._spec("joint-rw", [
            self._probe("p0", (0, 0), 5), noise]))
        assert diff is None, diff
        assert delta["joint_jumps"] == 0
        assert delta["jumps"] > 0  # post-retirement single jumps


class TestWakeElision:
    def test_tail_submit_matches_plain_submit(self):
        """The elided-wake service path is bit-identical to the
        deferred-wake path for a closed loop."""

        def run(tail: bool, mode: str):
            with fastforward.forced(mode):
                system = MemorySystem(SystemConfig(
                    refresh_policy=RefreshPolicy.NONE))
            addrs = [system.mapper.encode(row=r) for r in (3, 9)]
            log = []
            submit = (system.submit_tail if tail else system.submit)

            def callback(req):
                log.append((req.arrive, req.start_service, req.complete,
                            req.kind, system.sim.now))
                if len(log) < 300:
                    submit(addrs[len(log) % 2], callback)

            submit(addrs[0], callback)
            system.sim.run(until=1 << 50)
            return system, log

        base_system, base_log = run(tail=False, mode="off")
        ff_system, ff_log = run(tail=True, mode="on")
        assert ff_log == base_log
        assert ff_system.controller.wakes_elided > 0
        assert ff_system.stats.act_rate_summary == \
            base_system.stats.act_rate_summary

    def test_submit_tail_falls_back_when_disabled(self):
        with fastforward.forced("off"):
            system = MemorySystem(SystemConfig(
                refresh_policy=RefreshPolicy.NONE))
        done = []
        system.submit_tail(system.mapper.encode(row=1), done.append)
        system.sim.run(until=10_000_000)
        assert len(done) == 1
        assert system.controller.wakes_elided == 0


class TestSwitches:
    def test_forced_overrides_config_field(self):
        with fastforward.forced("off"):
            system = MemorySystem(SystemConfig(
                refresh_policy=RefreshPolicy.NONE, fast_forward=True))
        assert system.fast_forward is None
        with fastforward.forced("on"):
            system = MemorySystem(SystemConfig(
                refresh_policy=RefreshPolicy.NONE, fast_forward=False))
        assert system.fast_forward is not None

    def test_env_var_disables_default(self, monkeypatch):
        monkeypatch.setenv(fastforward.ENV_VAR, "off")
        assert fastforward.resolve_enabled(None) is False
        assert fastforward.resolve_enabled(True) is True
        monkeypatch.delenv(fastforward.ENV_VAR)
        assert fastforward.resolve_enabled(None) is True

    def test_forced_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            with fastforward.forced("sideways"):
                pass  # pragma: no cover

    def test_unknown_defense_subclass_disables_jumps(self):
        from repro.defenses.base import Defense

        class MysteryDefense(Defense):
            pass

        with fastforward.forced("on"):
            system = MemorySystem(SystemConfig(
                refresh_policy=RefreshPolicy.NONE))
        mystery = MysteryDefense(system.sim, system.controller,
                                 system.config, system.stats)
        assert mystery.ff_supported is False
        assert Defense(system.sim, system.controller, system.config,
                       system.stats).ff_supported is True

    def test_quiescence_introspection(self):
        sim = Simulator()
        assert sim.next_event_time() is None
        assert sim.quiescent_now()
        sim.schedule(100, lambda: None)
        assert sim.next_event_time() == 100
        assert sim.quiescent_now()  # pending, but not at this instant
        sim.schedule(0, lambda: None)
        assert not sim.quiescent_now()
        sim.run()
        assert sim.quiescent_now()
