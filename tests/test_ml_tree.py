"""Tests for CART decision trees."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor


def blobs(n_per=30, k=3, dim=4, seed=0, spread=0.5):
    rng = np.random.default_rng(seed)
    X = np.vstack([rng.normal(loc=3.0 * i, scale=spread, size=(n_per, dim))
                   for i in range(k)])
    y = np.repeat(np.arange(k), n_per)
    return X, y


class TestClassifier:
    def test_fits_separable_blobs_perfectly(self):
        X, y = blobs()
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.score(X, y) == 1.0

    def test_learns_xor(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-1, 1, size=(300, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        tree = DecisionTreeClassifier(max_depth=6).fit(X, y)
        assert tree.score(X, y) > 0.98

    def test_max_depth_limits_depth(self):
        X, y = blobs(k=4)
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert tree.depth <= 2

    def test_depth_zero_stump_is_majority_vote(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([0, 1, 1])
        tree = DecisionTreeClassifier(max_depth=0).fit(X, y)
        assert list(tree.predict(X)) == [1, 1, 1]

    def test_single_class_predicts_it(self):
        X = np.random.default_rng(0).normal(size=(10, 3))
        tree = DecisionTreeClassifier().fit(X, np.zeros(10, dtype=int))
        assert (tree.predict(X) == 0).all()

    def test_string_labels_roundtrip(self):
        X, y = blobs(k=2)
        labels = np.where(y == 0, "cat", "dog")
        tree = DecisionTreeClassifier().fit(X, labels)
        assert set(tree.predict(X)) <= {"cat", "dog"}
        assert tree.score(X, labels) == 1.0

    def test_predict_proba_sums_to_one(self):
        X, y = blobs()
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        probs = tree.predict_proba(X)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_sample_weight_shifts_decision(self):
        X = np.array([[0.0], [0.1], [1.0]])
        y = np.array([0, 0, 1])
        weights = np.array([0.01, 0.01, 10.0])
        stump = DecisionTreeClassifier(max_depth=0).fit(
            X, y, sample_weight=weights)
        assert list(stump.predict(X)) == [1, 1, 1]

    def test_min_samples_leaf_enforced(self):
        X, y = blobs(n_per=10, k=2)
        tree = DecisionTreeClassifier(min_samples_leaf=8).fit(X, y)

        def leaves(node):
            if node.feature is None:
                return [node]
            return leaves(node.left) + leaves(node.right)
        # No direct sample count on leaves; verify via prediction
        # stability: a tree with large leaves has few distinct probs.
        assert len(leaves(tree._root)) <= len(X) // 8 + 1

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict([[1.0]])

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit([[1.0]], [1, 2])
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit([], [])
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_split=1)

    def test_max_features_subsampling_still_learns(self):
        X, y = blobs(dim=8)
        tree = DecisionTreeClassifier(max_features="sqrt", seed=3).fit(X, y)
        assert tree.score(X, y) > 0.9

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10 ** 6))
    def test_training_accuracy_beats_majority_class(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(60, 3))
        y = (X[:, 0] + 0.3 * rng.normal(size=60) > 0).astype(int)
        if len(np.unique(y)) < 2:
            return
        tree = DecisionTreeClassifier(max_depth=5).fit(X, y)
        majority = max(np.mean(y), 1 - np.mean(y))
        assert tree.score(X, y) >= majority


class TestRegressor:
    def test_fits_step_function(self):
        X = np.linspace(0, 1, 50).reshape(-1, 1)
        y = (X[:, 0] > 0.5).astype(float) * 2.0
        reg = DecisionTreeRegressor(max_depth=1).fit(X, y)
        pred = reg.predict(X)
        assert np.allclose(pred, y, atol=0.01)

    def test_depth_limits_piecewise_segments(self):
        X = np.linspace(0, 1, 64).reshape(-1, 1)
        y = np.sin(6 * X[:, 0])
        reg = DecisionTreeRegressor(max_depth=2).fit(X, y)
        assert len(np.unique(reg.predict(X))) <= 4

    def test_constant_target(self):
        X = np.random.default_rng(0).normal(size=(20, 2))
        reg = DecisionTreeRegressor().fit(X, np.full(20, 3.3))
        assert np.allclose(reg.predict(X), 3.3)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict([[1.0]])

    def test_deeper_tree_reduces_error(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(0, 1, size=(200, 1))
        y = np.sin(8 * X[:, 0])
        shallow = DecisionTreeRegressor(max_depth=1).fit(X, y)
        deep = DecisionTreeRegressor(max_depth=6).fit(X, y)
        err_shallow = np.mean((shallow.predict(X) - y) ** 2)
        err_deep = np.mean((deep.predict(X) - y) ** 2)
        assert err_deep < err_shallow
