"""Tests for Periodic RFM (controller-side bank counters)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.config import DefenseKind
from repro.sim.stats import BlockKind
from repro.system import MemorySystem

from tests.conftest import make_system, single_read


def prfm_system(trfm=4) -> MemorySystem:
    return make_system(DefenseKind.PRFM, trfm=trfm)


class TestTriggering:
    def test_rfm_after_trfm_activations(self):
        system = prfm_system(trfm=4)
        addrs = system.mapper.same_bank_rows(2, stride=8)
        for i in range(4):
            single_read(system, addrs[i % 2])
        system.sim.run(until=system.sim.now + 2_000_000)
        assert system.stats.rfm_commands == 1

    def test_no_rfm_below_threshold(self):
        system = prfm_system(trfm=10)
        addrs = system.mapper.same_bank_rows(2, stride=8)
        for i in range(9):
            single_read(system, addrs[i % 2])
        system.sim.run(until=system.sim.now + 2_000_000)
        assert system.stats.rfm_commands == 0

    def test_row_hits_do_not_trigger(self):
        system = prfm_system(trfm=2)
        addr = system.mapper.encode(row=5)
        for _ in range(10):
            single_read(system, addr)
        system.sim.run(until=system.sim.now + 2_000_000)
        assert system.stats.rfm_commands == 0  # one ACT only

    def test_counter_resets_after_rfm(self):
        system = prfm_system(trfm=4)
        addrs = system.mapper.same_bank_rows(2, stride=8)
        for i in range(16):
            single_read(system, addrs[i % 2])
        system.sim.run(until=system.sim.now + 5_000_000)
        assert system.stats.rfm_commands == 4

    def test_distinct_banks_have_distinct_counters(self):
        system = prfm_system(trfm=10)
        a = system.mapper.encode(bankgroup=0, row=1)
        b = system.mapper.encode(bankgroup=1, row=1)
        c = system.mapper.encode(bankgroup=0, row=9)
        d = system.mapper.encode(bankgroup=1, row=9)
        for _ in range(5):  # 10 ACTs to bank (0,0): exactly at threshold
            single_read(system, a)
            single_read(system, c)
        for _ in range(2):  # 4 ACTs to bank (1,0): below threshold
            single_read(system, b)
            single_read(system, d)
        system.sim.run(until=system.sim.now + 2_000_000)
        assert system.stats.rfm_commands == 1  # only bank (0,0) crossed


class TestBlockingScope:
    def test_rfm_blocks_same_bank_across_groups(self):
        system = prfm_system(trfm=2)
        addrs = system.mapper.same_bank_rows(2, stride=8, bankgroup=2,
                                             bank=3)
        for i in range(2):
            single_read(system, addrs[i % 2])
        system.sim.run(until=system.sim.now + 2_000_000)
        rfm = system.stats.blocks_of(BlockKind.RFM)[0]
        per_group = system.config.org.banks_per_group
        expected = frozenset(g * per_group + 3 for g in range(8))
        assert rfm.banks == expected

    def test_rfm_latency_is_trfm_sb(self):
        system = prfm_system(trfm=2)
        addrs = system.mapper.same_bank_rows(2, stride=8)
        single_read(system, addrs[0])
        single_read(system, addrs[1])
        system.sim.run(until=system.sim.now + 2_000_000)
        rfm = system.stats.blocks_of(BlockKind.RFM)[0]
        assert rfm.duration == system.config.timing.tRFM_SB

    def test_other_bank_index_not_blocked(self):
        system = prfm_system(trfm=2)
        addrs = system.mapper.same_bank_rows(2, stride=8, bank=0)
        single_read(system, addrs[0])
        single_read(system, addrs[1])
        system.sim.run(until=system.sim.now + 2_000_000)
        rfm = system.stats.blocks_of(BlockKind.RFM)[0]
        assert not rfm.blocks_bank(1)


class TestSecurityInvariant:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10 ** 6))
    def test_never_more_than_trfm_acts_between_rfms(self, seed):
        """PRFM's bound: a bank performs at most T_RFM activations
        between two consecutive RFM commands to it."""
        trfm = 5
        system = prfm_system(trfm=trfm)
        rng = random.Random(seed)
        rows = [system.mapper.encode(row=r) for r in range(0, 32, 8)]
        for _ in range(100):
            single_read(system, rng.choice(rows))
        system.sim.run(until=system.sim.now + 10_000_000)
        log = system.defense.rfm_log
        acts = system.stats.activations
        # Total ACTs to bank 0 should be covered by RFMs at the rate of
        # one per trfm (with at most trfm-1 residual).
        assert len(log) >= (acts - (trfm - 1)) // trfm

    def test_rfm_log_matches_stats(self):
        system = prfm_system(trfm=2)
        addrs = system.mapper.same_bank_rows(2, stride=8)
        for i in range(8):
            single_read(system, addrs[i % 2])
        system.sim.run(until=system.sim.now + 5_000_000)
        assert len(system.defense.rfm_log) == system.stats.rfm_commands

    def test_describe(self):
        info = prfm_system(trfm=40).defense.describe()
        assert info["kind"] == "prfm"
        assert info["trfm"] == 40
