"""Tests for the activation-counter value leak (Section 9.1)."""

import pytest

from repro.core.counter_leak import (
    CounterLeakAttack,
    CounterLeakConfig,
    LeakObservation,
)


@pytest.fixture(scope="module")
def attack() -> CounterLeakAttack:
    return CounterLeakAttack(CounterLeakConfig(nbo=128))


class TestLeak:
    def test_leaks_values_within_one(self, attack):
        for secret in (5, 37, 64, 100, 126):
            obs = attack.leak(secret)
            assert obs.abs_error <= 1, f"secret {secret}: got {obs.estimate}"

    def test_elapsed_time_in_paper_ballpark(self, attack):
        """Paper: ~13.6 us per 7-bit value on average."""
        outcome = attack.run([16, 48, 80, 112])
        assert 2.0 < outcome["mean_elapsed_us"] < 40.0

    def test_throughput_hundreds_of_kbps(self, attack):
        outcome = attack.run([32, 96])
        assert outcome["throughput_kbps"] > 100.0

    def test_smaller_secret_takes_longer(self, attack):
        """The back-off fires after N_BO - v attacker activations, so
        small counter values take longer to leak."""
        small = attack.leak(8)
        large = attack.leak(120)
        assert small.elapsed_ps > large.elapsed_ps

    def test_bits_per_value(self, attack):
        outcome = attack.run([10])
        assert outcome["bits_per_value"] == 7.0

    def test_calibration_cached(self, attack):
        first = attack.calibrate()
        assert attack.calibrate() == first

    def test_rejects_out_of_range_secret(self, attack):
        with pytest.raises(ValueError):
            attack.leak(128)
        with pytest.raises(ValueError):
            attack.leak(-1)

    def test_observation_properties(self):
        obs = LeakObservation(secret=5, estimate=5, elapsed_ps=1000)
        assert obs.correct and obs.abs_error == 0
        obs2 = LeakObservation(secret=5, estimate=7, elapsed_ps=1000)
        assert not obs2.correct and obs2.abs_error == 2

    def test_accuracy_metrics_consistent(self, attack):
        outcome = attack.run([20, 60, 100])
        assert 0.0 <= outcome["accuracy"] <= outcome["accuracy_within_1"] <= 1.0


class TestDifferentNbo:
    def test_nbo_64(self):
        attack = CounterLeakAttack(CounterLeakConfig(nbo=64))
        outcome = attack.run([13, 47])
        assert outcome["accuracy_within_1"] == 1.0
        assert outcome["bits_per_value"] == 6.0
