"""Tests for the website-fingerprinting side channel (Section 8)."""

import numpy as np
import pytest

from repro.cache.hierarchy import HierarchyConfig
from repro.core.fingerprint import (
    FingerprintConfig,
    FingerprintTrace,
    WebsiteFingerprinter,
)
from repro.sim.engine import MS, US
from repro.workloads.websites import WebsiteCatalog


@pytest.fixture(scope="module")
def quick_cfg() -> FingerprintConfig:
    return FingerprintConfig(duration_ps=400 * US)


@pytest.fixture(scope="module")
def captures(quick_cfg):
    fingerprinter = WebsiteFingerprinter(quick_cfg)
    catalog = WebsiteCatalog(2, seed=1)
    site_a, site_b = catalog.profiles
    return {
        "a1": fingerprinter.capture(site_a, 1),
        "a2": fingerprinter.capture(site_a, 2),
        "b1": fingerprinter.capture(site_b, 1),
    }


class TestCapture:
    def test_probe_observes_real_backoffs(self, captures):
        trace = captures["a1"]
        assert len(trace.backoff_times) > 0
        # The probe sees (almost) every preventive action: back-offs
        # block the whole channel.
        assert len(trace.backoff_times) >= trace.ground_truth_backoffs - 2

    def test_backoff_times_within_duration(self, captures, quick_cfg):
        trace = captures["a1"]
        assert all(0 <= t <= quick_cfg.duration_ps
                   for t in trace.backoff_times)

    def test_same_site_traces_similar(self, captures, quick_cfg):
        a1 = captures["a1"].window_counts(quick_cfg.n_windows)
        a2 = captures["a2"].window_counts(quick_cfg.n_windows)
        b1 = captures["b1"].window_counts(quick_cfg.n_windows)
        dist_same = np.linalg.norm(a1 - a2)
        dist_diff = np.linalg.norm(a1 - b1)
        assert dist_same < dist_diff

    def test_probe_itself_triggers_no_backoffs(self, quick_cfg):
        """Listing 2's requirement: T < N_BO accesses per row keep the
        routine itself below the threshold."""
        fingerprinter = WebsiteFingerprinter(quick_cfg)
        catalog = WebsiteCatalog(1, seed=1)
        profile = catalog.profiles[0]
        empty = profile.trace(0, 1, None) if False else None
        # Run the probe against an idle system (empty browser trace).
        from repro.system import MemorySystem
        from repro.cpu.probe import LatencyProbe
        from repro.cpu.agent import run_agents
        system = MemorySystem(fingerprinter.system_config())
        mapper = system.mapper
        addrs = [mapper.encode(bankgroup=7, bank=3, row=1024 + 8 * i)
                 for i in range(quick_cfg.n_probe_rows)]
        probe = LatencyProbe(system, addrs,
                             accesses_per_addr=quick_cfg.nbo - 1,
                             stop_time=quick_cfg.duration_ps)
        run_agents(system, [probe],
                   hard_limit=quick_cfg.duration_ps + 200 * US)
        assert system.stats.backoffs == 0


class TestFeatures:
    def test_feature_vector_fixed_length(self, captures, quick_cfg):
        lengths = {
            len(t.features(quick_cfg.n_windows, quick_cfg.n_pairs))
            for t in captures.values()
        }
        assert len(lengths) == 1

    def test_window_counts_sum_to_total(self, captures, quick_cfg):
        trace = captures["a1"]
        counts = trace.window_counts(quick_cfg.n_windows)
        assert counts.sum() == len(trace.backoff_times)

    def test_empty_trace_features_finite(self):
        trace = FingerprintTrace(website="x", duration_ps=1 * MS)
        feats = trace.features(16, 6)
        assert np.isfinite(feats).all()

    def test_pair_features_padded_with_sentinel(self):
        trace = FingerprintTrace(website="x", duration_ps=1 * MS,
                                 backoff_times=[100 * US])
        feats = trace.features(4, 3)
        # one back-off = no pairs; all pair slots are sentinels.
        assert (feats[4:4 + 9] == -1.0).all()


class TestDataset:
    def test_dataset_shapes(self, quick_cfg):
        fingerprinter = WebsiteFingerprinter(quick_cfg)
        catalog = WebsiteCatalog(2, seed=3)
        X, y, names = fingerprinter.collect_dataset(catalog, 2)
        assert X.shape[0] == 4
        assert list(np.unique(y)) == [0, 1]
        assert names == catalog.names

    def test_hierarchy_filters_locality_but_not_streams(self, quick_cfg):
        """Section 10.3's two effects: the LLC filters the browser's
        repeated-line (background) accesses, while the streaming hot
        traffic misses through; the prefetcher injects extra fetches."""
        from repro.cache.hierarchy import CacheHierarchy
        from repro.dram.address import AddressMapper
        from repro.sim.config import DramOrg
        cfg = FingerprintConfig(duration_ps=quick_cfg.duration_ps,
                                hierarchy=HierarchyConfig.large())
        fingerprinter = WebsiteFingerprinter(cfg)
        profile = WebsiteCatalog(1, seed=1).profiles[0]
        raw = profile.trace(cfg.duration_ps, 1, AddressMapper(DramOrg()))
        hierarchy = CacheHierarchy(HierarchyConfig.large())
        hits = 0
        prefetches = 0
        demand_misses = 0
        for _, addr in raw:
            outcome = hierarchy.access(addr)
            if outcome.hit_level is not None:
                hits += 1
                continue
            for fetch in outcome.dram_addresses:
                if fetch == addr:
                    demand_misses += 1
                else:
                    prefetches += 1
                hierarchy.fill(fetch, prefetch=fetch != addr)
        assert hits > 0.05 * len(raw)  # filtering happens
        assert demand_misses > 0.2 * len(raw)  # streams miss through
