"""Tests for the declarative scenario layer (repro.scenario)."""

import json
import subprocess
import sys

import pytest

from repro.core.prac_channel import PracChannelConfig, PracCovertChannel
from repro.core.rfm_channel import RfmChannelConfig
from repro.scenario import (
    AgentSpec,
    MeasurementSpec,
    ScenarioError,
    ScenarioSpec,
    StopSpec,
    agent_kinds,
    get_preset,
    preset_names,
)
from repro.sim.config import DefenseKind, DefenseParams, SystemConfig
from repro.sim.engine import MS, US


def probe_spec(**probe_params) -> ScenarioSpec:
    params = {"bank": (0, 0), "rows": (0, 8), "max_samples": 64}
    params.update(probe_params)
    return ScenarioSpec(
        name="test-probe",
        system=SystemConfig(
            defense=DefenseParams(kind=DefenseKind.PRAC, nbo=32)),
        agents=(AgentSpec("probe", params=params),),
        stop=StopSpec(50 * MS))


class TestSerialization:
    def test_round_trip_equality(self):
        spec = get_preset("noise-duel")
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.cache_key() == spec.cache_key()

    def test_round_trip_through_json_text(self):
        """A spec survives json.dumps/json.loads byte-exactly -- int
        dict keys (sender gap tables) and tuples are canonicalized at
        construction time."""
        spec = PracCovertChannel().scenario([1, 0, 1])
        clone = ScenarioSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.cache_key() == spec.cache_key()

    def test_any_field_change_changes_the_key(self):
        spec = probe_spec()
        assert spec.cache_key() != probe_spec(max_samples=65).cache_key()
        assert spec.cache_key() != spec.with_(
            stop=StopSpec(51 * MS)).cache_key()
        assert spec.cache_key() != spec.with_(
            system=SystemConfig()).cache_key()

    def test_cache_key_stable_across_processes(self):
        """The same spec hashes identically in a fresh interpreter --
        the property sharded sweeps and the result cache rely on."""
        spec = get_preset("prac-probe")
        code = (
            "from repro.scenario import get_preset;"
            "print(get_preset('prac-probe').cache_key())"
        )
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            check=True)
        assert out.stdout.strip() == spec.cache_key()

    def test_non_json_param_rejected(self):
        with pytest.raises(ScenarioError, match="not JSON-serializable"):
            AgentSpec("probe", params={"callback": print})

    def test_unknown_spec_fields_rejected(self):
        data = probe_spec().to_dict()
        data["extra"] = 1
        with pytest.raises(ScenarioError, match="unknown ScenarioSpec"):
            ScenarioSpec.from_dict(data)

    def test_channel_config_round_trip(self):
        cfg = PracChannelConfig(levels=3, noise_intensity=40.0,
                                gap_table={0: None, 1: 25, 2: 0})
        assert PracChannelConfig.from_dict(
            json.loads(json.dumps(cfg.to_dict()))) == cfg
        rfm = RfmChannelConfig(trecv=4, defense_kind=DefenseKind.FRRFM)
        assert RfmChannelConfig.from_dict(rfm.to_dict()) == rfm


class TestRegistry:
    def test_unknown_agent_kind_lists_known_kinds(self):
        spec = ScenarioSpec(agents=(AgentSpec("warlock"),),
                            stop=StopSpec(1 * MS))
        with pytest.raises(ScenarioError, match="unknown agent kind"):
            spec.build()
        with pytest.raises(ScenarioError, match="probe"):
            spec.build()

    def test_paper_cast_is_registered(self):
        kinds = agent_kinds()
        for kind in ("probe", "noise", "sender", "receiver", "app",
                     "trace", "multi-probe", "mixed-noise"):
            assert kind in kinds

    def test_bad_params_fail_loudly(self):
        spec = ScenarioSpec(
            agents=(AgentSpec("probe", params={"bank": (0, 0),
                                               "rows": (0,),
                                               "warp_factor": 9}),),
            stop=StopSpec(1 * MS))
        with pytest.raises(ScenarioError, match="warp_factor"):
            spec.build()

    def test_unknown_measurement_kind(self):
        spec = probe_spec().with_(
            measurements=(MeasurementSpec("vibes"),))
        with pytest.raises(ScenarioError, match="unknown measurement"):
            spec.run()


class TestExecution:
    def test_probe_scenario_runs(self):
        result = probe_spec().run()
        probe = result.agent("probe")
        assert len(probe.samples) == 64
        assert result.counters["requests"] >= 64
        assert result.stage_starts == [0]
        assert result.to_dict()["final_now"] == result.final_now

    def test_rerun_requires_fresh_build(self):
        built = probe_spec().build()
        built.run()
        with pytest.raises(RuntimeError, match="already ran"):
            built.run()

    def test_hard_limit_raises(self):
        spec = probe_spec(max_samples=None, stop_time=None).with_(
            stop=StopSpec(1 * US))
        with pytest.raises(RuntimeError, match="hard limit"):
            spec.run()

    def test_duplicate_agent_names_rejected(self):
        spec = ScenarioSpec(
            agents=(AgentSpec("probe", name="twin",
                              params={"rows": (0,), "max_samples": 1}),
                    AgentSpec("probe", name="twin",
                              params={"rows": (8,), "max_samples": 1})),
            stop=StopSpec(1 * MS))
        with pytest.raises(ScenarioError, match="duplicate agent name"):
            spec.build()

    def test_identical_specs_run_identically(self):
        spec = get_preset("noise-duel")
        first = spec.run()
        second = ScenarioSpec.from_dict(spec.to_dict()).run()
        assert first.to_dict() == second.to_dict()

    def test_staged_agents_start_after_previous_stage(self):
        spec = ScenarioSpec(
            system=SystemConfig(
                defense=DefenseParams(kind=DefenseKind.PRAC, nbo=32)),
            agents=(
                AgentSpec("probe", name="early", stage=0,
                          params={"rows": (0, 8), "max_samples": 32}),
                AgentSpec("probe", name="late", stage=1,
                          params={"rows": (16, 24), "max_samples": 16}),
            ),
            stop=StopSpec(5 * MS))
        result = spec.run()
        assert len(result.stage_starts) == 2
        assert result.stage_starts[1] > 0
        late = result.agent("late")
        assert late.start_time == result.stage_starts[1]
        assert all(s.end_time > result.stage_starts[1]
                   for s in late.samples)

    def test_multi_probe_expands_to_named_probes(self):
        spec = ScenarioSpec(
            agents=(AgentSpec("multi-probe", params={
                "count": 3, "first_row": 64, "max_samples": 8}),),
            stop=StopSpec(5 * MS))
        result = spec.run()
        probes = result.agents_named("multi-probe-")
        assert [p.name for p in probes] == [
            "multi-probe-0", "multi-probe-1", "multi-probe-2"]
        # Disjoint row regions: no address overlap between probes.
        addr_sets = [set(p.addrs) for p in probes]
        assert not (addr_sets[0] & addr_sets[1])
        assert all(len(p.samples) == 8 for p in probes)

    def test_mixed_noise_is_deterministic_and_issues_writes(self):
        spec = ScenarioSpec(
            agents=(AgentSpec("mixed-noise", params={
                "rows": (0, 8), "sleep_ps": 500_000, "write_ratio": 0.5,
                "stop_time": 1 * MS}),),
            stop=StopSpec(2 * MS))
        first = spec.run()
        second = spec.run()
        noise_a = first.agent("mixed-noise")
        noise_b = second.agent("mixed-noise")
        assert noise_a.requests_issued == noise_b.requests_issued
        assert 0 < noise_a.writes_issued < noise_a.requests_issued
        assert noise_a.writes_issued == noise_b.writes_issued
        assert first.counters == second.counters

    def test_probe_stop_on_backoff(self):
        result = probe_spec(max_samples=2000,
                            stop_on=("backoff",)).run()
        probe = result.agent("probe")
        # The probe halts at its first observed back-off, well before
        # max_samples; the stopping sample is recorded.
        assert len(probe.samples) < 2000
        kinds = [s.delta for s in probe.samples]
        assert probe.done and kinds


class TestPresets:
    def test_every_preset_builds(self):
        for name in preset_names():
            spec = get_preset(name)
            built = spec.build()
            assert built.agents, name

    def test_unknown_preset(self):
        with pytest.raises(ScenarioError, match="unknown scenario preset"):
            get_preset("missingno")


class TestChannelScenarios:
    def test_prac_scenario_matches_transmit(self):
        """Running the channel's spec by hand reproduces the decoded
        message the channel API reports."""
        channel = PracCovertChannel(PracChannelConfig())
        bits = [1, 0, 1, 1]
        via_api = channel.transmit(bits)
        built = channel.scenario(bits).build()
        receiver = built.agent("receiver")
        built.run()
        from repro.core.probe import EventKind

        decoded = [1 if receiver.events_of(k, EventKind.BACKOFF) else 0
                   for k in range(len(bits))]
        assert decoded == via_api.decoded == bits

    def test_scenario_fan_out_matches_serial(self):
        from repro.exp.runner import map_scenarios

        specs = [PracCovertChannel().scenario([1, 0]),
                 PracCovertChannel(
                     PracChannelConfig(noise_intensity=50.0)).scenario([1])]
        results = map_scenarios(specs)
        assert [r["name"] for r in results] == ["prac-covert"] * 2
        assert results[0]["counters"]["backoffs"] > 0

    def test_run_scenario_caches(self, tmp_path):
        from repro.exp.runner import run_scenario, trials_executed

        spec = probe_spec()
        first = run_scenario(spec, cache_dir=str(tmp_path))
        assert not first.cached
        before = trials_executed()
        second = run_scenario(spec, cache_dir=str(tmp_path))
        assert second.cached
        assert trials_executed() == before
        assert second.value == first.value


class TestReviewRegressions:
    def test_missing_required_field_is_a_scenario_error(self):
        with pytest.raises(ScenarioError, match="missing required field"):
            ScenarioSpec.from_dict({"name": "x", "system": {},
                                    "stop": {"hard_limit_ps": 1}})
        with pytest.raises(ScenarioError, match="missing required field"):
            ScenarioSpec.from_dict({"system": SystemConfig().to_dict()})

    def test_app_spec_honors_agent_name(self):
        import dataclasses

        from repro.cpu.app import spec_like_app

        app = spec_like_app("L", "mcf", seed=1, banks=((0, 0),),
                            n_requests=4)
        spec = ScenarioSpec(
            agents=(AgentSpec("app", name="victim", params={
                "spec": dataclasses.asdict(app)}),),
            stop=StopSpec(100 * MS),
            measurements=(MeasurementSpec("elapsed",
                                          params={"agents": ["victim"]}),))
        result = spec.run()
        assert result.agent("victim").name == "victim"
        assert result.data["elapsed"]["victim"] > 0

    def test_cli_scenario_run_reports_agent_value_errors(self, capsys):
        from repro.__main__ import main

        rc = main(["scenario", "run", "noise-duel", "--no-cache",
                   "-p", "agents.1.params.intensity=500"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_measurement_agent_typo_is_a_scenario_error(self):
        spec = probe_spec().with_(measurements=(
            MeasurementSpec("samples", params={"agent": "bogus"}),))
        with pytest.raises(ScenarioError, match="no agent named 'bogus'"):
            spec.run()

    def test_non_numeric_stop_field_is_a_scenario_error(self):
        data = probe_spec().to_dict()
        data["stop"]["hard_limit_ps"] = "oops"
        with pytest.raises(ScenarioError, match="malformed scenario spec"):
            ScenarioSpec.from_dict(data)

    def test_agentless_spec_exposes_the_classifier(self):
        from repro.core.probe import EventKind

        spec = ScenarioSpec(system=SystemConfig(
            defense=DefenseParams(kind=DefenseKind.PRAC, nbo=64)))
        classifier = spec.classifier()
        assert classifier.level_of(EventKind.BACKOFF) > 0
