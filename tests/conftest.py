"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.sim.config import (
    DefenseKind,
    DefenseParams,
    RefreshPolicy,
    SystemConfig,
)
from repro.system import MemorySystem

#: Seed-captured golden values pinning simulation physics.
GOLDEN_PATH = Path(__file__).parent / "golden" / "golden_identity.json"

REGEN_COMMAND = ("PYTHONPATH=src python -m pytest "
                 "tests/test_golden_identity.py --regen-golden")


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden", action="store_true", default=False,
        help="rewrite tests/golden/golden_identity.json from the current "
             "simulator instead of asserting against it -- for "
             "INTENTIONAL physics changes only; review the file diff "
             "and call the change out in the commit message")


class GoldenStore:
    """Compare-or-capture access to the golden-identity file.

    In normal runs :meth:`check` asserts the captured values match the
    committed goldens, failing with a per-field diff plus the exact
    regeneration command.  Under ``--regen-golden`` it records the
    captured values instead and the session teardown rewrites the file.
    """

    def __init__(self, path: Path, regen: bool) -> None:
        self.path = path
        self.regen = regen
        self.captured: dict[tuple, dict] = {}
        if path.exists():
            self.data = json.loads(path.read_text())
        else:
            self.data = {}
            if not regen:
                pytest.fail(
                    f"goldens file {path} is missing; restore it from "
                    f"git or regenerate it with:\n    {REGEN_COMMAND}",
                    pytrace=False)

    def _lookup(self, key: tuple):
        node = self.data
        for part in key:
            if not isinstance(node, dict) or part not in node:
                return None
            node = node[part]
        return node

    def check(self, key: tuple, actual: dict) -> None:
        if self.regen:
            self.captured[key] = actual
            return
        expected = self._lookup(key)
        label = ".".join(key)
        if expected is None:
            pytest.fail(
                f"no golden recorded for {label!r} in {self.path}.\n"
                f"If this trial is new, capture it with:\n"
                f"    {REGEN_COMMAND}", pytrace=False)
        # JSON round-trip the capture so tuples/lists compare alike.
        actual = json.loads(json.dumps(actual))
        if actual != expected:
            from repro.perf.diffcheck import first_diff

            diff = first_diff(actual, expected)
            pytest.fail(
                f"golden identity drift at {label!r}:\n"
                f"    {diff}\n"
                "The optimized hot path no longer reproduces the seed "
                "simulator bit for bit.  If (and ONLY if) this is an "
                "intentional physics change, regenerate the goldens "
                "with:\n"
                f"    {REGEN_COMMAND}\n"
                "then review the diff of tests/golden/"
                "golden_identity.json and call the physics change out "
                "in the commit message.", pytrace=False)

    def require_keys(self, keys: list[tuple]) -> None:
        if self.regen:
            return
        missing = [".".join(k) for k in keys if self._lookup(k) is None]
        if missing:
            pytest.fail(
                f"goldens file {self.path} lacks entries for: "
                f"{', '.join(missing)}.\nRegenerate the full set with:\n"
                f"    {REGEN_COMMAND}", pytrace=False)

    def flush(self) -> None:
        if not self.regen or not self.captured:
            return
        for key, value in self.captured.items():
            node = self.data
            for part in key[:-1]:
                node = node.setdefault(part, {})
            node[key[-1]] = json.loads(json.dumps(value))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "w") as handle:
            json.dump(self.data, handle, indent=1, sort_keys=True)
            handle.write("\n")


@pytest.fixture(scope="session")
def golden_store(request) -> GoldenStore:
    store = GoldenStore(GOLDEN_PATH,
                        request.config.getoption("--regen-golden"))
    yield store
    store.flush()


@pytest.fixture
def plain_config() -> SystemConfig:
    """No defense, no periodic refresh: pure DRAM timing."""
    return SystemConfig(refresh_policy=RefreshPolicy.NONE)


@pytest.fixture
def prac_config() -> SystemConfig:
    return SystemConfig(
        defense=DefenseParams(kind=DefenseKind.PRAC, nbo=32),
        refresh_policy=RefreshPolicy.NONE)


@pytest.fixture
def plain_system(plain_config) -> MemorySystem:
    return MemorySystem(plain_config)


def make_system(kind: DefenseKind = DefenseKind.NONE,
                refresh: RefreshPolicy = RefreshPolicy.NONE,
                **defense_kwargs) -> MemorySystem:
    """One-line system construction for tests."""
    return MemorySystem(SystemConfig(
        defense=DefenseParams(kind=kind, **defense_kwargs),
        refresh_policy=refresh))


def drain(system: MemorySystem, until: int) -> None:
    system.sim.run(until=until)


def single_read(system: MemorySystem, addr: int) -> "Request":
    """Submit one read and run until it completes; returns the request."""
    done = []
    system.submit(addr, done.append)
    limit = system.sim.now + 100_000_000
    while not done and system.sim.now < limit:
        if system.sim.run(until=system.sim.now + 1_000_000) == 0 and not done:
            break
    assert done, "request did not complete"
    return done[0]
