"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.sim.config import (
    DefenseKind,
    DefenseParams,
    RefreshPolicy,
    SystemConfig,
)
from repro.system import MemorySystem


@pytest.fixture
def plain_config() -> SystemConfig:
    """No defense, no periodic refresh: pure DRAM timing."""
    return SystemConfig(refresh_policy=RefreshPolicy.NONE)


@pytest.fixture
def prac_config() -> SystemConfig:
    return SystemConfig(
        defense=DefenseParams(kind=DefenseKind.PRAC, nbo=32),
        refresh_policy=RefreshPolicy.NONE)


@pytest.fixture
def plain_system(plain_config) -> MemorySystem:
    return MemorySystem(plain_config)


def make_system(kind: DefenseKind = DefenseKind.NONE,
                refresh: RefreshPolicy = RefreshPolicy.NONE,
                **defense_kwargs) -> MemorySystem:
    """One-line system construction for tests."""
    return MemorySystem(SystemConfig(
        defense=DefenseParams(kind=kind, **defense_kwargs),
        refresh_policy=refresh))


def drain(system: MemorySystem, until: int) -> None:
    system.sim.run(until=until)


def single_read(system: MemorySystem, addr: int) -> "Request":
    """Submit one read and run until it completes; returns the request."""
    done = []
    system.submit(addr, done.append)
    limit = system.sim.now + 100_000_000
    while not done and system.sim.now < limit:
        if system.sim.run(until=system.sim.now + 1_000_000) == 0 and not done:
            break
    assert done, "request did not complete"
    return done[0]
