"""Tests for the backend registry, selection precedence, map_trials
integration (trial cache, progress, fallback)."""

import pytest

import dist_trials
from repro.dist import (
    AUTO,
    BACKEND_ENV,
    Backend,
    BackendError,
    BackendUnavailable,
    IN_WORKER_ENV,
    backend_names,
    execution,
    get_backend,
    register_backend,
    resolve_backend_name,
    unregister_backend,
)
from repro.exp.cache import ResultCache
from repro.exp.runner import (
    derive_seed,
    map_trials,
    trial_key,
    trials_executed,
)


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert {"serial", "pool", "shards"} <= set(backend_names())

    def test_unknown_backend_fails_with_catalog(self):
        with pytest.raises(BackendError, match="serial"):
            get_backend("warp-drive")

    def test_runtime_registration(self):
        class EchoBackend(Backend):
            name = "echo-test"

            def run(self, fn, points, seeds, *, workers=None,
                    on_result=None):
                return list(points)

        register_backend("echo-test", EchoBackend)
        try:
            assert map_trials(dist_trials.square, [4],
                              backend="echo-test") == [4]
        finally:
            unregister_backend("echo-test")
        assert "echo-test" not in backend_names()


class TestResolvePrecedence:
    def test_auto_heuristic_matches_historic_behavior(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend_name(None) == "serial"
        assert resolve_backend_name(None, workers=4, n_points=8) == "pool"
        # A one-point sweep never pays pool startup.
        assert resolve_backend_name(None, workers=4, n_points=1) == "serial"
        assert resolve_backend_name(None, workers=1, n_points=8) == "serial"

    def test_env_overrides_auto(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "shards")
        assert resolve_backend_name(None) == "shards"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "shards")
        assert resolve_backend_name("pool") == "pool"
        assert resolve_backend_name("serial", workers=8) == "serial"

    def test_worker_processes_are_always_serial(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "shards")
        monkeypatch.setenv(IN_WORKER_ENV, "1")
        assert resolve_backend_name("shards", workers=8) == "serial"

    def test_bad_env_name_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "warp-drive")
        with pytest.raises(BackendError, match="warp-drive"):
            resolve_backend_name(None)

    def test_auto_accepted_as_explicit_name(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend_name(AUTO, workers=2, n_points=2) == "pool"

    def test_execution_context_supplies_the_backend(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        seen = []

        class SpyBackend(Backend):
            name = "spy-test"

            def run(self, fn, points, seeds, *, workers=None,
                    on_result=None):
                seen.append(list(points))
                return [fn(p) for p in points]

        register_backend("spy-test", SpyBackend)
        try:
            with execution(backend="spy-test"):
                out = map_trials(dist_trials.square, [2, 3])
        finally:
            unregister_backend("spy-test")
        assert out == [4, 9]
        assert seen == [[2, 3]]


class TestBackendEquivalence:
    POINTS = list(range(8))

    def test_pool_matches_serial(self):
        serial = map_trials(dist_trials.square, self.POINTS,
                            backend="serial")
        pool = map_trials(dist_trials.square, self.POINTS,
                          backend="pool", workers=4)
        assert serial == pool

    def test_seeds_are_placement_independent(self):
        serial = map_trials(dist_trials.seeded, list("abcd"), seed=3,
                            backend="serial")
        pool = map_trials(dist_trials.seeded, list("abcd"), seed=3,
                          backend="pool", workers=2)
        assert serial == pool
        assert serial[0] == ("a", derive_seed(3, 0))

    def test_pool_pins_the_fast_forward_forced_mode(self):
        from repro.sim import fastforward

        with fastforward.forced("off"):
            off = map_trials(dist_trials.ff_enabled, [0, 1],
                             backend="pool", workers=2)
        with fastforward.forced("on"):
            on = map_trials(dist_trials.ff_enabled, [0, 1],
                            backend="pool", workers=2)
        assert off == [False, False]
        assert on == [True, True]


class TestTrialCache:
    def test_results_stream_into_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        out = map_trials(dist_trials.square, [1, 2, 3],
                         trial_cache=cache)
        assert out == [1, 4, 9]
        assert len(cache) == 3

    def test_partial_sweep_resumes_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        map_trials(dist_trials.square, [1, 2], trial_cache=cache)
        before = trials_executed()
        out = map_trials(dist_trials.square, [1, 2, 3],
                         trial_cache=cache)
        assert out == [1, 4, 9]
        assert trials_executed() - before == 1  # only the new point ran

    def test_seed_is_part_of_the_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        a = map_trials(dist_trials.seeded, ["x"], seed=1,
                       trial_cache=cache)
        b = map_trials(dist_trials.seeded, ["x"], seed=2,
                       trial_cache=cache)
        assert a != b
        assert len(cache) == 2

    def test_unaddressable_fn_disables_trial_caching(self, tmp_path):
        cache = ResultCache(tmp_path)
        out = map_trials(lambda p: p + 1, [1, 2], trial_cache=cache)
        assert out == [2, 3]
        assert len(cache) == 0
        assert trial_key(lambda p: p, 1, None) is None

    def test_context_supplies_the_trial_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        with execution(trial_cache=cache):
            map_trials(dist_trials.square, [5])
        assert len(cache) == 1

    def test_fast_forward_mode_is_part_of_the_key(self, tmp_path):
        """An FF-on cache entry must never satisfy an FF-off run."""
        from repro.sim import fastforward

        cache = ResultCache(tmp_path)
        with fastforward.forced("on"):
            map_trials(dist_trials.square, [1], trial_cache=cache)
        before = trials_executed()
        with fastforward.forced("off"):
            map_trials(dist_trials.square, [1], trial_cache=cache)
        assert trials_executed() - before == 1  # recomputed, not served
        assert len(cache) == 2

    def test_error_aborted_pool_sweep_still_streams_completions(
            self, tmp_path):
        """Completed trials reach the cache even when a sibling point
        failed — resume-after-fix must skip the finished work."""
        cache = ResultCache(tmp_path)
        with pytest.raises(ValueError, match="boom 1"):
            map_trials(dist_trials.boom_odd, [0, 1, 2, 3, 4, 5],
                       backend="pool", workers=2, trial_cache=cache)
        assert len(cache) == 3  # the three even points landed


class TestProgress:
    def test_per_trial_callback_counts_up(self):
        calls = []
        map_trials(dist_trials.square, [1, 2, 3],
                   progress=lambda d, n, h: calls.append((d, n, h)))
        assert calls[0] == (0, 3, 0)
        assert calls[-1] == (3, 3, 0)
        assert [d for d, _, _ in calls] == sorted(d for d, _, _ in calls)

    def test_cache_hits_reported(self, tmp_path):
        cache = ResultCache(tmp_path)
        map_trials(dist_trials.square, [1, 2], trial_cache=cache)
        calls = []
        map_trials(dist_trials.square, [1, 2, 3], trial_cache=cache,
                   progress=lambda d, n, h: calls.append((d, n, h)))
        assert calls[0] == (2, 3, 2)  # served from cache up front
        assert calls[-1] == (3, 3, 2)


class TestSerialFallback:
    def test_unavailable_backend_names_itself_in_the_warning(self):
        class DoomedBackend(Backend):
            name = "doomed-test"

            def run(self, fn, points, seeds, *, workers=None,
                    on_result=None):
                raise BackendUnavailable(OSError("no pipes left"))

        register_backend("doomed-test", DoomedBackend)
        try:
            with pytest.warns(RuntimeWarning,
                              match=r"'doomed-test'.*no pipes left"):
                out = map_trials(dist_trials.square, [1, 2],
                                 backend="doomed-test")
        finally:
            unregister_backend("doomed-test")
        assert out == [1, 4]  # the sweep still completed, serially

    def test_pool_unpicklable_fn_falls_back(self):
        with pytest.warns(RuntimeWarning, match="'pool'.*picklable"):
            out = map_trials(lambda p: p + 1, [1, 2], backend="pool",
                             workers=2)
        assert out == [2, 3]

    def test_pool_children_are_marked_as_workers(self):
        flags = map_trials(dist_trials.in_worker_flag, [0, 1],
                           backend="pool", workers=2)
        assert flags == [True, True]  # nested map_trials stays serial

    def test_pool_construction_failure_falls_back(self, monkeypatch):
        import concurrent.futures

        def explode(*args, **kwargs):
            raise OSError("fork unavailable")

        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor",
                            explode)
        with pytest.warns(RuntimeWarning,
                          match=r"'pool'.*fork unavailable"):
            out = map_trials(dist_trials.square, [1, 2, 3],
                             backend="pool", workers=2)
        assert out == [1, 4, 9]

    def test_trial_exceptions_are_not_swallowed(self):
        with pytest.raises(ValueError, match="boom 1"):
            map_trials(dist_trials.boom, [1, 2], backend="serial")

    def test_pool_raises_the_lowest_failing_index(self):
        with pytest.raises(ValueError, match="boom 1"):
            map_trials(dist_trials.boom, [1, 2, 3, 4], backend="pool",
                       workers=2)


class TestBackendCli:
    def test_unknown_backend_fails_cleanly(self, capsys):
        from repro.__main__ import main

        rc = main(["run", "fig4", "--backend", "warp-drive",
                   "--no-cache", "-p", "intensities=[1]",
                   "-p", "n_bits=4"])
        assert rc == 2
        assert "unknown backend" in capsys.readouterr().err

    def test_explicit_serial_backend_runs(self, capsys):
        from repro.__main__ import main

        rc = main(["run", "fig4", "--backend", "serial", "--no-cache",
                   "-p", "intensities=[1]", "-p", "n_bits=4"])
        assert rc == 0
        assert "Fig. 4" in capsys.readouterr().out

    def test_env_backend_reaches_the_cli_sweep(self, capsys,
                                               monkeypatch):
        from repro.__main__ import main

        monkeypatch.setenv(BACKEND_ENV, "warp-drive")
        rc = main(["run", "fig4", "--no-cache", "-p", "intensities=[1]",
                   "-p", "n_bits=4"])
        assert rc == 2  # resolve fails loudly inside the sweep
        assert "warp-drive" in capsys.readouterr().err
