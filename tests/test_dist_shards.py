"""Tests for the shards backend: worker protocol round trips, crash
recovery, timeouts, fast-forward propagation, and the sweep-equivalence
contract (shards == serial, bit for bit)."""

import os
import subprocess
import sys
import warnings

import pytest

import dist_trials
from repro.dist import execution
from repro.dist.protocol import (
    FINGERPRINT_ENV,
    HandshakeError,
    PROTOCOL_VERSION,
    VERSION_ENV,
    dump_frame,
    encode_value,
    parse_frame,
)
from repro.dist.shards import ShardError, ShardsBackend, TIMEOUT_ENV
from repro.exp.cache import canonicalize, stable_key
from repro.exp.registry import get_experiment
from repro.exp.runner import derive_seed, map_trials


def _talk_to_worker(frames, timeout=60):
    """Feed frames to one ``python -m repro worker`` and collect its
    reply frames (the worker exits on shutdown/EOF)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--no-warm"],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True, env=env)
    stdin = "".join(dump_frame(f) for f in frames)
    out, err = proc.communicate(stdin, timeout=timeout)
    replies = [f for f in map(parse_frame, out.splitlines())
               if f is not None]
    return replies, err, proc.returncode


class TestWorkerDaemon:
    def test_hello_run_ping_shutdown(self):
        replies, _, rc = _talk_to_worker([
            {"op": "run", "id": "1:0", "fn": "dist_trials:square",
             "point": encode_value(7), "seed": None, "ff": None},
            {"op": "ping", "id": "p1"},
            {"op": "shutdown"},
        ])
        assert rc == 0
        hello = replies[0]
        assert hello["op"] == "hello"
        assert hello["version"] == PROTOCOL_VERSION
        # The hello carries the worker's source-tree fingerprint (the
        # coordinator refuses the worker without a matching one).
        assert len(hello["fingerprint"]) == 64
        result = next(f for f in replies if f.get("id") == "1:0")
        assert result["ok"] and result["result"] == {"j": 49}
        assert any(f.get("op") == "pong" and f.get("id") == "p1"
                   for f in replies)

    def test_trial_error_is_a_frame_not_a_death(self):
        replies, _, rc = _talk_to_worker([
            {"op": "run", "id": "1:0", "fn": "dist_trials:boom",
             "point": encode_value(3), "seed": None, "ff": None},
            {"op": "run", "id": "1:1", "fn": "dist_trials:square",
             "point": encode_value(3), "seed": None, "ff": None},
        ])
        assert rc == 0  # EOF after the frames; the worker lived on
        failed = next(f for f in replies if f.get("id") == "1:0")
        assert failed["ok"] is False and "boom 3" in failed["exc"]
        assert "Traceback" in failed["traceback"]
        ok = next(f for f in replies if f.get("id") == "1:1")
        assert ok["ok"] and ok["result"] == {"j": 9}


@pytest.fixture()
def backend():
    """A private fleet (not the process-wide singleton), torn down
    hard so no worker outlives its test."""
    instance = ShardsBackend()
    yield instance
    instance.close()


class TestShardsRoundTrip:
    def test_results_in_point_order(self, backend):
        points = list(range(10))
        out = backend.run(dist_trials.square, points, [None] * 10,
                          workers=2)
        assert out == [p * p for p in points]

    def test_fleet_is_reused_across_sweeps(self, backend):
        backend.run(dist_trials.square, [1, 2], [None, None], workers=2)
        fleet = list(backend._fleet)
        backend.run(dist_trials.square, [3, 4], [None, None], workers=2)
        assert backend._fleet == fleet  # same daemons, no respawn

    def test_workers_cap_respected_on_an_oversized_fleet(self, backend):
        """A narrow sweep must not fan out over daemons a wider earlier
        sweep left alive: --workers is a concurrency bound."""
        backend.run(dist_trials.square, [1, 2, 3], [None] * 3, workers=3)
        assert len(backend._fleet) == 3
        backend.run(dist_trials.square, list(range(6)), [None] * 6,
                    workers=1)
        assert backend.last_stats["workers_used"] == 1

    def test_seeds_travel_with_their_points(self, backend):
        seeds = [derive_seed(7, i) for i in range(4)]
        out = backend.run(dist_trials.seeded, list("abcd"), seeds,
                          workers=2)
        assert out == [("a", seeds[0]), ("b", seeds[1]),
                       ("c", seeds[2]), ("d", seeds[3])]

    def test_non_json_results_are_exact(self, backend):
        out = backend.run(dist_trials.tuple_result, [1, 2],
                          [None, None], workers=2)
        assert out == [(1, 2), (2, 3)]
        assert all(isinstance(v, tuple) for v in out)

    def test_trial_exception_reraised_with_original_type(self, backend):
        with pytest.raises(ValueError, match="boom 5"):
            backend.run(dist_trials.boom, [5], [None], workers=1)

    def test_fleet_survives_a_trial_exception(self, backend):
        with pytest.raises(ValueError):
            backend.run(dist_trials.boom, [5], [None], workers=1)
        out = backend.run(dist_trials.square, [6], [None], workers=1)
        assert out == [36]

    def test_unshippable_result_is_an_error_not_a_crash(self, backend):
        with pytest.raises(Exception, match="pickle|lambda"):
            backend.run(dist_trials.unshippable_result, [1], [None],
                        workers=1)
        assert backend.last_stats["crashes"] == 0  # never retried
        out = backend.run(dist_trials.square, [3], [None], workers=1)
        assert out == [9]  # same daemon, still alive

    def test_streaming_callback_sees_every_point(self, backend):
        landed = {}
        backend.run(dist_trials.square, [3, 4], [None, None], workers=2,
                    on_result=landed.__setitem__)
        assert landed == {0: 9, 1: 16}


class TestFastForwardPropagation:
    def test_forced_mode_reaches_the_workers(self, backend):
        from repro.sim import fastforward

        with fastforward.forced("off"):
            off = backend.run(dist_trials.ff_enabled, [0], [None],
                              workers=1)
        with fastforward.forced("on"):
            on = backend.run(dist_trials.ff_enabled, [0], [None],
                             workers=1)
        assert off == [False]
        assert on == [True]


class TestPerSweepTotals:
    def test_ff_totals_reported_per_sweep_not_accumulated(self, backend):
        """Worker jump totals land in ``last_stats["ff_totals"]`` for
        the reporting sweep only: a coordinator running many sweeps
        must not accumulate earlier sweeps' counts into later reports
        (the process-wide ``fastforward`` totals do accumulate)."""
        from repro.sim import fastforward

        before = fastforward.totals()
        first = backend.run(dist_trials.ff_jumping_trial, [0, 1],
                            [None] * 2, workers=1)
        first_totals = backend.last_stats["ff_totals"]
        assert all(jumps > 0 for jumps in first)
        assert first_totals["jumps"] == sum(first)

        second = backend.run(dist_trials.ff_jumping_trial, [0],
                             [None], workers=1)
        second_totals = backend.last_stats["ff_totals"]
        assert second_totals["jumps"] == sum(second)
        assert second_totals["jumps"] < first_totals["jumps"]

        # The process-wide engagement evidence still accumulates.
        after = fastforward.totals()
        assert (after["jumps"] - before["jumps"]
                == sum(first) + sum(second))

    def test_ff_totals_zero_for_non_simulating_sweep(self, backend):
        backend.run(dist_trials.square, [1, 2], [None] * 2, workers=1)
        assert all(v == 0
                   for v in backend.last_stats["ff_totals"].values())


class TestCrashRecovery:
    def test_sweep_survives_a_worker_crash(self, backend, tmp_path):
        marker = str(tmp_path / "crashed-once")
        points = [{"v": v, "marker": marker if v == 2 else None}
                  for v in range(4)]
        with pytest.warns(RuntimeWarning, match="died.*requeueing"):
            out = backend.run(dist_trials.crash_once, points,
                              [None] * 4, workers=2)
        assert out == [0, 1, 4, 9]  # identical to an uninterrupted run
        assert backend.last_stats["crashes"] == 1
        assert backend.last_stats["retries"] == 1

    def test_point_that_keeps_killing_workers_gives_up(self, backend):
        # This point crashes every worker that touches it; the retry
        # budget must bound the carnage instead of looping forever.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with pytest.raises(ShardError, match="giving up"):
                backend.run(dist_trials.always_crash, [{"v": 1}], [None],
                            workers=2)

    def test_per_trial_timeout_kills_and_requeues(self, backend,
                                                  tmp_path, monkeypatch):
        monkeypatch.setenv(TIMEOUT_ENV, "2.0")
        marker = str(tmp_path / "hung-once")
        points = [{"v": 10, "marker": marker}]
        with pytest.warns(RuntimeWarning) as records:
            out = backend.run(dist_trials.hang_once, points, [None],
                              workers=1)
        messages = [str(r.message) for r in records]
        assert any("timeout" in m for m in messages)  # the kill
        assert any("requeueing" in m for m in messages)  # the recovery
        assert out == [11]
        assert backend.last_stats["timeouts"] == 1


class TestLocalHandshake:
    """Satellite of the fleet handshake: the *local* stdio path must
    refuse a version/fingerprint-mismatched worker at spawn instead of
    dispatching to it (the pre-fix coordinator skipped every hello)."""

    def test_fingerprint_mismatch_refused_at_spawn(self, backend,
                                                   monkeypatch):
        # The spawned worker inherits the env and *claims* a skewed
        # source fingerprint; the coordinator must refuse it, naming
        # both fingerprints, before it runs a single trial.
        monkeypatch.setenv(FINGERPRINT_ENV, "deadbeef")
        with pytest.raises(HandshakeError) as info:
            backend.run(dist_trials.square, [1], [None], workers=1)
        message = str(info.value)
        assert "fingerprint mismatch" in message
        assert "deadbeef" in message

    def test_version_mismatch_refused_at_spawn(self, backend,
                                               monkeypatch):
        monkeypatch.setenv(VERSION_ENV, "1")
        with pytest.raises(HandshakeError) as info:
            backend.run(dist_trials.square, [1], [None], workers=1)
        message = str(info.value)
        assert "version mismatch" in message
        assert "speaks 1" in message
        assert f"requires {PROTOCOL_VERSION}" in message

    def test_handshake_error_is_not_swallowed_by_fallback(self,
                                                          monkeypatch):
        # map_trials falls back to serial only on BackendUnavailable;
        # a refused local worker is a broken deployment and must fail
        # the sweep loudly instead of silently simulating anyway.
        from repro.dist import shutdown_backends

        # Drop the process-wide singleton's already-validated fleet so
        # this sweep must spawn (and refuse) fresh workers.
        shutdown_backends()
        monkeypatch.setenv(FINGERPRINT_ENV, "deadbeef")
        with pytest.raises(HandshakeError):
            map_trials(dist_trials.square, [1, 2], backend="shards",
                       workers=2)


class TestMapTrialsIntegration:
    def test_map_trials_shards_equals_serial(self):
        points = list(range(6))
        serial = map_trials(dist_trials.square, points, backend="serial")
        sharded = map_trials(dist_trials.square, points,
                             backend="shards", workers=2)
        assert sharded == serial

    def test_unaddressable_fn_falls_back_with_named_warning(self):
        with pytest.warns(RuntimeWarning, match="'shards'.*addressable"):
            out = map_trials(lambda p: p + 1, [1, 2], backend="shards",
                             workers=2)
        assert out == [2, 3]


class TestSweepEquivalence:
    """The subsystem contract: a registry experiment swept through the
    shards fleet is bit-identical (canonical-JSON checksum) to the
    serial sweep."""

    def test_fig4_checksum_identical_serial_vs_shards(self):
        fig4 = get_experiment("fig4").fn
        serial = fig4(intensities=(1, 50), n_bits=4)
        with execution(backend="shards"):
            sharded = fig4(intensities=(1, 50), n_bits=4, workers=2)
        assert (stable_key(canonicalize(serial.rows))
                == stable_key(canonicalize(sharded.rows)))
