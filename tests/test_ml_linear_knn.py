"""Tests for kNN and the linear models."""

import numpy as np
import pytest

from repro.ml.knn import KNeighborsClassifier
from repro.ml.linear import LinearSVC, LogisticRegression, Perceptron

from tests.test_ml_tree import blobs


class TestKnn:
    def test_one_neighbor_memorizes(self):
        X, y = blobs()
        knn = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        assert knn.score(X, y) == 1.0

    def test_predicts_nearest_blob(self):
        X, y = blobs(k=2)
        knn = KNeighborsClassifier(n_neighbors=3).fit(X, y)
        assert knn.predict([[0.0] * 4])[0] == 0
        assert knn.predict([[3.0] * 4])[0] == 1

    def test_k_larger_than_dataset_uses_all(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([0, 1, 1])
        knn = KNeighborsClassifier(n_neighbors=50).fit(X, y)
        assert knn.predict([[0.0]])[0] == 1  # global majority

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(n_neighbors=0)

    def test_feature_count_checked(self):
        X, y = blobs()
        knn = KNeighborsClassifier().fit(X, y)
        with pytest.raises(ValueError):
            knn.predict([[1.0, 2.0]])


class TestLogisticRegression:
    def test_fits_separable_blobs(self):
        X, y = blobs()
        lr = LogisticRegression(n_iter=200).fit(X, y)
        assert lr.score(X, y) > 0.97

    def test_probabilities_valid(self):
        X, y = blobs(k=2)
        lr = LogisticRegression().fit(X, y)
        probs = lr.predict_proba(X)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert (probs > 0).all()

    def test_confident_far_from_boundary(self):
        X, y = blobs(k=2)
        lr = LogisticRegression().fit(X, y)
        probs = lr.predict_proba([[-2.0] * 4, [5.0] * 4])
        assert probs[0, 0] > 0.9
        assert probs[1, 1] > 0.9

    def test_rejects_bad_hyperparameters(self):
        with pytest.raises(ValueError):
            LogisticRegression(lr=0)
        with pytest.raises(ValueError):
            LogisticRegression(n_iter=0)


class TestLinearSVC:
    def test_fits_separable_blobs(self):
        X, y = blobs(k=2)
        svm = LinearSVC(n_iter=300).fit(X, y)
        assert svm.score(X, y) > 0.95

    def test_multiclass_one_vs_rest(self):
        X, y = blobs(k=3)
        svm = LinearSVC(n_iter=300).fit(X, y)
        assert svm.score(X, y) > 0.9

    def test_decision_function_shape(self):
        X, y = blobs(k=3)
        svm = LinearSVC().fit(X, y)
        assert svm.decision_function(X).shape == (len(X), 3)

    def test_rejects_bad_c(self):
        with pytest.raises(ValueError):
            LinearSVC(c=0)


class TestPerceptron:
    def test_converges_on_separable_data(self):
        X, y = blobs(k=2)
        perceptron = Perceptron(n_iter=30).fit(X, y)
        assert perceptron.score(X, y) == 1.0

    def test_multiclass(self):
        X, y = blobs(k=4)
        perceptron = Perceptron(n_iter=50).fit(X, y)
        assert perceptron.score(X, y) > 0.9

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            Perceptron().predict([[1.0]])

    def test_standardization_toggle(self):
        X, y = blobs(k=2)
        X_scaled = X * 1000.0  # wildly different feature scale
        with_std = Perceptron(n_iter=30).fit(X_scaled, y)
        assert with_std.score(X_scaled, y) == 1.0
