"""Tests for the cache substrate and Best-Offset prefetcher."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import Cache
from repro.cache.hierarchy import (
    AccessOutcome,
    CacheHierarchy,
    HierarchyConfig,
    LevelSpec,
)
from repro.cache.prefetcher import BestOffsetPrefetcher


def tiny_cache(ways=2, sets=4) -> Cache:
    return Cache(size_bytes=64 * ways * sets, ways=ways, line_bytes=64)


class TestCache:
    def test_miss_then_hit(self):
        cache = tiny_cache()
        assert not cache.lookup(0)
        cache.fill(0)
        assert cache.lookup(0)

    def test_same_line_different_bytes_hit(self):
        cache = tiny_cache()
        cache.fill(0)
        assert cache.lookup(63)
        assert not cache.lookup(64)

    def test_lru_eviction_order(self):
        cache = tiny_cache(ways=2, sets=1)
        cache.fill(0)
        cache.fill(64)
        victim = cache.fill(128)  # evicts line 0 (LRU)
        assert victim == 0
        assert not cache.lookup(0)
        assert cache.lookup(64)

    def test_lookup_refreshes_lru(self):
        cache = tiny_cache(ways=2, sets=1)
        cache.fill(0)
        cache.fill(64)
        cache.lookup(0)  # 0 becomes MRU
        victim = cache.fill(128)
        assert victim == 64

    def test_refill_existing_line_no_eviction(self):
        cache = tiny_cache(ways=2, sets=1)
        cache.fill(0)
        cache.fill(64)
        assert cache.fill(0) is None

    def test_invalidate_clflush(self):
        cache = tiny_cache()
        cache.fill(0)
        assert cache.invalidate(0)
        assert not cache.lookup(0)
        assert not cache.invalidate(0)  # already gone

    def test_contains_does_not_touch_lru(self):
        cache = tiny_cache(ways=2, sets=1)
        cache.fill(0)
        cache.fill(64)
        cache.contains(0)
        victim = cache.fill(128)
        assert victim == 0  # 0 still LRU despite contains()

    def test_set_indexing_separates_lines(self):
        cache = tiny_cache(ways=1, sets=4)
        cache.fill(0)        # set 0
        cache.fill(64)       # set 1
        assert cache.lookup(0) and cache.lookup(64)

    def test_hit_miss_counters(self):
        cache = tiny_cache()
        cache.lookup(0)
        cache.fill(0)
        cache.lookup(0)
        assert cache.misses == 1 and cache.hits == 1

    def test_occupancy(self):
        cache = tiny_cache()
        for i in range(3):
            cache.fill(i * 64)
        assert cache.occupancy == 3

    def test_non_power_of_two_sets_allowed(self):
        cache = Cache(size_bytes=6 * 1024 * 1024, ways=16)
        assert cache.n_sets == 6144

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            Cache(size_bytes=0, ways=1)
        with pytest.raises(ValueError):
            Cache(size_bytes=100, ways=3)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2 ** 20),
                    min_size=1, max_size=200))
    def test_occupancy_never_exceeds_capacity(self, addrs):
        cache = tiny_cache(ways=2, sets=4)
        for addr in addrs:
            if not cache.lookup(addr):
                cache.fill(addr)
        assert cache.occupancy <= 8


class TestHierarchy:
    def test_miss_returns_demand_fetch(self):
        hierarchy = CacheHierarchy()
        outcome = hierarchy.access(0)
        assert outcome.hit_level is None
        assert outcome.dram_addresses == [0]

    def test_fill_then_l1_hit(self):
        hierarchy = CacheHierarchy()
        hierarchy.fill(0)
        outcome = hierarchy.access(0)
        assert outcome.hit_level == 0

    def test_l1_eviction_leaves_llc_hit(self):
        hierarchy = CacheHierarchy()
        hierarchy.fill(0)
        # Stream enough lines through the same L1 set to evict line 0.
        l1_sets = hierarchy.caches[0].n_sets
        for i in range(1, 10):
            hierarchy.fill(i * l1_sets * 64)
        outcome = hierarchy.access(0)
        assert outcome.hit_level == 1

    def test_clflush_removes_from_all_levels(self):
        hierarchy = CacheHierarchy()
        hierarchy.fill(0)
        hierarchy.clflush(0)
        assert hierarchy.access(0).hit_level is None

    def test_latency_accumulates_down_the_hierarchy(self):
        hierarchy = CacheHierarchy(HierarchyConfig.large())
        hierarchy.fill(0)
        l1_hit = hierarchy.access(0).latency_ps
        full_miss = hierarchy.access(10 ** 9).latency_ps
        assert full_miss > l1_hit
        assert full_miss == hierarchy.miss_latency

    def test_large_config_has_three_levels(self):
        assert len(HierarchyConfig.large().levels) == 3
        assert HierarchyConfig.large().prefetch

    def test_prefetch_fill_goes_to_l2_only(self):
        hierarchy = CacheHierarchy(HierarchyConfig.large())
        hierarchy.fill(0, prefetch=True)
        outcome = hierarchy.access(0)
        assert outcome.hit_level == 1  # L2, not L1

    def test_stats_reporting(self):
        hierarchy = CacheHierarchy()
        hierarchy.access(0)
        stats = hierarchy.stats()
        assert stats["L1"]["misses"] == 1


class TestBestOffsetPrefetcher:
    def test_learns_constant_stride(self):
        prefetcher = BestOffsetPrefetcher(offsets=(1, 2, 4))
        # Stream with stride 2 lines; after training rounds the best
        # offset should become 2.
        for i in range(600):
            prefetcher.on_access(i * 2 * 64)
        assert prefetcher.best_offset == 2

    def test_prefetch_address_is_offset_ahead(self):
        prefetcher = BestOffsetPrefetcher(offsets=(1,))
        addr = prefetcher.on_access(0)
        assert addr == prefetcher.best_offset * 64

    def test_random_stream_disables_prefetching(self):
        import random
        rng = random.Random(1)
        prefetcher = BestOffsetPrefetcher(offsets=(1, 2))
        for _ in range(3000):
            prefetcher.on_access(rng.randrange(1 << 30) * 64)
        assert not prefetcher.prefetch_enabled

    def test_record_fill_populates_rr_table(self):
        prefetcher = BestOffsetPrefetcher(offsets=(1,))
        prefetcher.record_fill(64 * (1 + 1))  # base line = 1
        prefetcher.on_access(64 * 2)  # line 2; candidate 1: line 1 in RR
        assert prefetcher._scores[1] >= 1

    def test_rejects_empty_offsets(self):
        with pytest.raises(ValueError):
            BestOffsetPrefetcher(offsets=())

    def test_prefetch_counter(self):
        prefetcher = BestOffsetPrefetcher()
        for i in range(10):
            prefetcher.on_access(i * 64)
        assert prefetcher.prefetches_issued == 10
