"""Tests for CPU agents: probes, noise, synthetic apps, trace replay."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cpu.agent import run_agents
from repro.cpu.app import AppSpec, SyntheticAppAgent, spec_like_app
from repro.cpu.noise import (
    MAX_SLEEP_PS,
    MIN_SLEEP_PS,
    NoiseAgent,
    noise_intensity_for_sleep,
    sleep_for_noise_intensity,
)
from repro.cpu.probe import LatencyProbe
from repro.cpu.trace import TraceReplayAgent
from repro.sim.engine import MS, NS, US

from tests.conftest import make_system


class TestLatencyProbe:
    def test_collects_requested_samples(self):
        system = make_system()
        addrs = system.mapper.same_bank_rows(2, stride=8)
        probe = LatencyProbe(system, addrs, max_samples=10)
        run_agents(system, [probe], hard_limit=5 * MS)
        assert len(probe.samples) == 10
        assert probe.done

    def test_continuous_timing_deltas_sum_to_elapsed(self):
        """Listing 1 semantics: end of iteration i = start of i+1, so
        deltas tile the wall clock with no gaps."""
        system = make_system()
        addrs = system.mapper.same_bank_rows(2, stride=8)
        probe = LatencyProbe(system, addrs, max_samples=20, start_time=0,
                             overhead=0)
        run_agents(system, [probe], hard_limit=5 * MS)
        total = sum(probe.deltas)
        assert total == probe.samples[-1].end_time

    def test_alternation_creates_conflicts(self):
        system = make_system()
        addrs = system.mapper.same_bank_rows(2, stride=8)
        probe = LatencyProbe(system, addrs, max_samples=20)
        run_agents(system, [probe], hard_limit=5 * MS)
        assert system.stats.row_conflicts >= 18

    def test_accesses_per_addr_produces_hits(self):
        system = make_system()
        addrs = system.mapper.same_bank_rows(2, stride=8)
        probe = LatencyProbe(system, addrs, max_samples=20,
                             accesses_per_addr=5)
        run_agents(system, [probe], hard_limit=5 * MS)
        assert system.stats.row_hits >= 14

    def test_stop_time_bounds_run(self):
        system = make_system()
        addrs = system.mapper.same_bank_rows(2, stride=8)
        probe = LatencyProbe(system, addrs, stop_time=5 * US)
        run_agents(system, [probe], hard_limit=5 * MS)
        assert probe.samples[-1].end_time <= 6 * US

    def test_sleep_until_pauses_without_measuring(self):
        system = make_system()
        addrs = system.mapper.same_bank_rows(2, stride=8)
        probe = LatencyProbe(system, addrs, max_samples=6)

        def nap(sample):
            if len(probe.samples) == 3:
                probe.sleep_until(system.sim.now + 10 * US)
        probe.on_sample = nap
        run_agents(system, [probe], hard_limit=5 * MS)
        # The post-sleep delta must not include the 10 us nap.
        assert all(d < 5 * US for d in probe.deltas)

    def test_requires_addresses(self):
        system = make_system()
        with pytest.raises(ValueError):
            LatencyProbe(system, [])

    def test_on_sample_callback_sees_every_sample(self):
        system = make_system()
        seen = []
        addrs = system.mapper.same_bank_rows(2, stride=8)
        probe = LatencyProbe(system, addrs, max_samples=7,
                             on_sample=seen.append)
        run_agents(system, [probe], hard_limit=5 * MS)
        assert len(seen) == 7


class TestNoiseModel:
    def test_eq2_endpoints(self):
        assert sleep_for_noise_intensity(1.0) == MAX_SLEEP_PS
        assert sleep_for_noise_intensity(100.0) == MIN_SLEEP_PS

    def test_eq2_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            sleep_for_noise_intensity(0.5)
        with pytest.raises(ValueError):
            noise_intensity_for_sleep(MAX_SLEEP_PS + 1)

    @given(st.floats(min_value=1.0, max_value=100.0))
    def test_eq2_roundtrip(self, intensity):
        sleep = sleep_for_noise_intensity(intensity)
        back = noise_intensity_for_sleep(sleep)
        assert abs(back - intensity) < 0.01

    @given(st.integers(min_value=MIN_SLEEP_PS, max_value=MAX_SLEEP_PS))
    def test_eq2_monotone(self, sleep):
        """Less sleep = more intensity (the paper's linear mapping)."""
        if sleep < MAX_SLEEP_PS:
            assert noise_intensity_for_sleep(sleep) > \
                noise_intensity_for_sleep(sleep + 1)

    def test_noise_agent_generates_activations(self):
        system = make_system()
        rows = system.mapper.same_bank_rows(2, stride=8)
        agent = NoiseAgent(system, rows, sleep_ps=200 * NS,
                           stop_time=20 * US)
        run_agents(system, [agent], hard_limit=5 * MS)
        assert system.stats.activations >= 50

    def test_higher_intensity_means_more_activations(self):
        def acts(intensity):
            system = make_system()
            rows = system.mapper.same_bank_rows(2, stride=8)
            agent = NoiseAgent.for_intensity(system, rows, intensity,
                                             stop_time=50 * US)
            run_agents(system, [agent], hard_limit=5 * MS)
            return system.stats.activations
        assert acts(100) > 2 * acts(1)

    def test_burst_parameter(self):
        system = make_system()
        rows = system.mapper.same_bank_rows(2, stride=8)
        a4 = NoiseAgent(system, rows, sleep_ps=1 * US, burst=4,
                        stop_time=20 * US)
        run_agents(system, [a4], hard_limit=5 * MS)
        acts4 = system.stats.activations
        system2 = make_system()
        rows2 = system2.mapper.same_bank_rows(2, stride=8)
        a1 = NoiseAgent(system2, rows2, sleep_ps=1 * US, burst=1,
                        stop_time=20 * US)
        run_agents(system2, [a1], hard_limit=5 * MS)
        assert acts4 > 2 * system2.stats.activations

    def test_rejects_single_row(self):
        system = make_system()
        with pytest.raises(ValueError):
            NoiseAgent(system, [system.mapper.encode(row=1)], 1000)


class TestSyntheticApp:
    def _spec(self, **kwargs) -> AppSpec:
        base = dict(name="app", think_ps=50 * NS, p_row_hit=0.5,
                    n_rows=32, banks=((0, 0), (1, 0)), n_requests=200,
                    seed=1)
        base.update(kwargs)
        return AppSpec(**base)

    def test_completes_requested_count(self):
        system = make_system()
        agent = SyntheticAppAgent(system, self._spec())
        run_agents(system, [agent], hard_limit=50 * MS)
        assert agent.requests_done == 200
        assert agent.elapsed > 0

    def test_deterministic_for_seed(self):
        def finish(seed):
            system = make_system()
            agent = SyntheticAppAgent(system, self._spec(seed=seed))
            run_agents(system, [agent], hard_limit=50 * MS)
            return agent.finish_time
        assert finish(5) == finish(5)
        assert finish(5) != finish(6)

    def test_zipf_concentrates_on_hot_rows(self):
        system = make_system()
        agent = SyntheticAppAgent(
            system, self._spec(zipf_s=1.2, p_row_hit=0.0,
                               n_requests=500))
        rows = []
        orig = agent._sample_location
        agent._sample_location = lambda: rows.append(orig()) or rows[-1]
        run_agents(system, [agent], hard_limit=50 * MS)
        counts = {}
        for loc in rows:
            counts[loc] = counts.get(loc, 0) + 1
        top = max(counts.values())
        assert top > len(rows) / 10  # hottest location dominates

    def test_uniform_zipf_spreads(self):
        system = make_system()
        agent = SyntheticAppAgent(
            system, self._spec(zipf_s=0.0, p_row_hit=0.0, n_requests=500))
        run_agents(system, [agent], hard_limit=50 * MS)
        assert agent.requests_done == 500

    def test_higher_think_time_runs_longer(self):
        def elapsed(think):
            system = make_system()
            agent = SyntheticAppAgent(system, self._spec(think_ps=think))
            run_agents(system, [agent], hard_limit=500 * MS)
            return agent.elapsed
        assert elapsed(500 * NS) > elapsed(10 * NS)

    def test_spec_like_classes_ordered_by_intensity(self):
        banks = ((0, 0),)
        l = spec_like_app("L", "l", 1, banks)
        m = spec_like_app("M", "m", 1, banks)
        h = spec_like_app("H", "h", 1, banks)
        assert l.think_ps > m.think_ps > h.think_ps
        assert l.p_row_hit > m.p_row_hit > h.p_row_hit

    def test_spec_like_rejects_unknown_class(self):
        with pytest.raises(ValueError):
            spec_like_app("X", "x", 1, ((0, 0),))

    def test_validation(self):
        with pytest.raises(ValueError):
            self._spec(p_row_hit=1.5).validate()
        with pytest.raises(ValueError):
            self._spec(banks=()).validate()
        with pytest.raises(ValueError):
            self._spec(zipf_s=-1).validate()


class TestTraceReplay:
    def test_replays_all_records(self):
        system = make_system()
        trace = [(i * 100 * NS, system.mapper.encode(row=i % 4))
                 for i in range(50)]
        agent = TraceReplayAgent(system, trace)
        run_agents(system, [agent], hard_limit=50 * MS)
        assert agent.completed == 50
        assert system.stats.requests_served == 50

    def test_respects_schedule_when_memory_keeps_up(self):
        system = make_system()
        trace = [(i * 1 * US, system.mapper.encode(row=1)) for i in range(5)]
        agent = TraceReplayAgent(system, trace)
        run_agents(system, [agent], hard_limit=50 * MS)
        assert agent.finish_time >= 4 * US

    def test_outstanding_bound(self):
        system = make_system()
        # All records due at t=0: issue is limited by max_outstanding.
        trace = [(0, system.mapper.encode(row=i)) for i in range(20)]
        agent = TraceReplayAgent(system, trace, max_outstanding=2)
        max_seen = 0
        orig = system.controller.submit

        def counting(addr, cb, is_write=False):
            nonlocal max_seen
            max_seen = max(max_seen, agent._outstanding)
            return orig(addr, cb, is_write)

        system.controller.submit = counting
        run_agents(system, [agent], hard_limit=50 * MS)
        assert agent.completed == 20
        assert max_seen <= 2

    def test_empty_trace_finishes_immediately(self):
        system = make_system()
        agent = TraceReplayAgent(system, [])
        run_agents(system, [agent], hard_limit=1 * MS)
        assert agent.done

    def test_rejects_bad_outstanding(self):
        system = make_system()
        with pytest.raises(ValueError):
            TraceReplayAgent(system, [], max_outstanding=0)
