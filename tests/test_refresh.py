"""Tests for periodic-refresh scheduling."""

import pytest

from repro.sim.config import RefreshPolicy, SystemConfig
from repro.sim.stats import BlockKind
from repro.system import MemorySystem

from tests.conftest import single_read


def make(policy: RefreshPolicy) -> MemorySystem:
    return MemorySystem(SystemConfig(refresh_policy=policy))


class TestPolicies:
    def test_no_refresh_under_none_policy(self):
        system = make(RefreshPolicy.NONE)
        system.sim.run(until=50_000_000)
        assert system.stats.refreshes == 0

    def test_every_trefi_issues_one_per_interval(self):
        system = make(RefreshPolicy.EVERY_TREFI)
        trefi = system.config.timing.tREFI
        system.sim.run(until=10 * trefi)
        assert system.stats.refreshes == 10

    def test_postpone_pair_issues_double_refreshes(self):
        system = make(RefreshPolicy.POSTPONE_PAIR)
        t = system.config.timing
        system.sim.run(until=4 * 2 * t.tREFI)
        refs = system.stats.blocks_of(BlockKind.REF)
        assert len(refs) == 4
        # Each REF event blocks for two back-to-back tRFCs.
        assert all(r.duration == 2 * t.tRFC for r in refs)

    def test_pair_cadence_is_two_trefi(self):
        system = make(RefreshPolicy.POSTPONE_PAIR)
        t = system.config.timing
        system.sim.run(until=8 * t.tREFI + 1000)
        refs = system.stats.blocks_of(BlockKind.REF)
        starts = [r.start for r in refs]
        gaps = [b - a for a, b in zip(starts, starts[1:])]
        assert all(abs(g - 2 * t.tREFI) < t.tRFC * 2 for g in gaps)

    def test_refresh_blocks_whole_rank(self):
        system = make(RefreshPolicy.EVERY_TREFI)
        system.sim.run(until=system.config.timing.tREFI + 1)
        ref = system.stats.blocks_of(BlockKind.REF)[0]
        assert ref.banks is None
        assert ref.blocks_bank(0) and ref.blocks_bank(31)

    def test_refresh_closes_open_rows(self):
        system = make(RefreshPolicy.EVERY_TREFI)
        addr = system.mapper.encode(row=9)
        single_read(system, addr)
        system.sim.run(until=system.config.timing.tREFI + 1000)
        req = single_read(system, addr)
        assert req.kind == "miss"

    def test_refreshes_required_helper(self):
        system = make(RefreshPolicy.POSTPONE_PAIR)
        trefi = system.config.timing.tREFI
        assert system.refresh.refreshes_required(4 * trefi) == 4
        none = make(RefreshPolicy.NONE)
        assert none.refresh.refreshes_required(10 * trefi) == 0


class TestDraining:
    def test_refresh_waits_for_busy_banks(self):
        """A REF due during a long blocking interval on one bank is
        delayed until the rank drains, not issued concurrently."""
        system = make(RefreshPolicy.EVERY_TREFI)
        t = system.config.timing
        # Occupy bank 0 far past the first REF due time.
        from repro.sim.stats import BlockKind as BK
        block_end = system.controller.block_banks(
            0, frozenset((0,)), 0, t.tREFI + 500_000, BK.BACKOFF)
        system.sim.run(until=t.tREFI + 2_000_000)
        ref = system.stats.blocks_of(BK.REF)[0]
        assert ref.start >= block_end

    def test_other_banks_serve_while_refresh_waits(self):
        """The crucial two-phase property: while the REF waits for a
        blocked bank, other banks keep serving."""
        system = make(RefreshPolicy.EVERY_TREFI)
        t = system.config.timing
        from repro.sim.stats import BlockKind as BK
        system.controller.block_banks(
            0, frozenset((0,)), 0, t.tREFI + 500_000, BK.BACKOFF)
        system.sim.run(until=t.tREFI + 10_000)  # REF now pending
        req = single_read(system, system.mapper.encode(bankgroup=5, row=3))
        assert req.latency < 200_000
