"""End-to-end tests for the PRAC-based covert channel (Section 6)."""

import pytest

from repro.core.prac_channel import PracChannelConfig, PracCovertChannel
from repro.sim.config import DefenseKind
from repro.sim.engine import NS, US
from repro.workloads.patterns import bits_from_text, standard_patterns


class TestBinaryTransmission:
    def test_micro_message_decodes_exactly(self):
        result = PracCovertChannel().transmit_text("M")
        assert result.decoded == result.sent == bits_from_text("M")

    def test_all_patterns_error_free_noiseless(self):
        for name, bits in standard_patterns(12).items():
            result = PracCovertChannel().transmit(bits)
            assert result.decoded == bits, f"pattern {name} failed"

    def test_raw_bit_rate_matches_paper(self):
        result = PracCovertChannel().transmit([1, 0, 1, 0])
        assert result.raw_bit_rate_bps == pytest.approx(40_000)

    def test_one_windows_see_backoffs_zero_windows_do_not(self):
        result = PracCovertChannel().transmit([0, 1, 0, 1, 1, 0])
        for w in result.windows:
            if w.sent == 1:
                assert w.backoffs >= 1
            else:
                assert w.backoffs == 0

    def test_ground_truth_matches_observation(self):
        """Every back-off the receiver decodes corresponds to a real
        preventive action in the memory system's log."""
        result = PracCovertChannel().transmit([1, 1, 1, 1])
        observed = sum(w.backoffs for w in result.windows)
        assert observed <= result.ground_truth_backoffs
        assert result.ground_truth_backoffs >= 4

    def test_sender_halts_after_backoff(self):
        """The sender sleeps once its bit is delivered, so a 1-window
        produces roughly one back-off, not a train of them."""
        result = PracCovertChannel().transmit([1, 1, 1])
        for w in result.windows:
            assert w.backoffs <= 2

    def test_rejects_symbols_outside_alphabet(self):
        with pytest.raises(ValueError):
            PracCovertChannel().transmit([0, 2])

    def test_transmit_text_requires_binary(self):
        channel = PracCovertChannel(PracChannelConfig(levels=4))
        with pytest.raises(ValueError):
            channel.transmit_text("A")

    def test_capacity_properties(self):
        result = PracCovertChannel().transmit([1, 0] * 4)
        assert result.capacity_bps <= result.raw_bit_rate_bps
        assert result.kbps == pytest.approx(result.capacity_bps / 1e3)
        summary = result.summary()
        assert summary["error_probability"] == 0.0


class TestNoiseAndInterference:
    def test_high_noise_corrupts_zero_windows(self):
        cfg = PracChannelConfig(noise_intensity=100.0)
        result = PracCovertChannel(cfg).transmit([0] * 10)
        assert result.error_probability > 0.1

    def test_low_noise_mostly_clean(self):
        cfg = PracChannelConfig(noise_intensity=1.0)
        result = PracCovertChannel(cfg).transmit([1, 0] * 6)
        assert result.error_probability <= 0.25

    def test_spec_interference_keeps_channel_alive(self):
        cfg = PracChannelConfig(spec_class="H")
        result = PracCovertChannel(cfg).transmit([1, 0] * 8)
        assert result.error_probability < 0.3
        assert result.capacity_bps > 15_000

    def test_noise_errors_flip_zeros_to_ones(self):
        cfg = PracChannelConfig(noise_intensity=100.0)
        result = PracCovertChannel(cfg).transmit([0, 1] * 6)
        for w in result.windows:
            if w.sent == 1:
                assert w.decoded == 1  # 1-windows stay correct


class TestMultibit:
    def test_ternary_noiseless_decodes(self):
        channel = PracCovertChannel(PracChannelConfig(levels=3))
        symbols = [0, 1, 2, 2, 1, 0, 2, 1]
        result = channel.transmit(symbols)
        assert result.decoded == symbols

    def test_quaternary_raw_rate_doubles(self):
        channel = PracCovertChannel(PracChannelConfig(levels=4))
        result = channel.transmit([0, 1, 2, 3])
        assert result.raw_bit_rate_bps == pytest.approx(80_000)

    def test_calibration_centers_ordered(self):
        """Slower sender symbols produce later back-offs."""
        channel = PracCovertChannel(PracChannelConfig(levels=4))
        channel.transmit([0, 1, 2, 3])
        centers = channel._calibration
        assert centers is not None
        assert centers[0] > centers[1] > centers[2]

    def test_calibration_cached(self):
        channel = PracCovertChannel(PracChannelConfig(levels=3))
        channel.transmit([1, 2])
        first = channel._calibration
        channel.transmit([2, 1])
        assert channel._calibration is first

    def test_gap_table_override(self):
        cfg = PracChannelConfig(levels=3,
                                gap_table={0: None, 1: 60 * NS, 2: 0})
        assert cfg.gaps()[1] == 60 * NS

    def test_unsupported_levels_rejected(self):
        with pytest.raises(ValueError):
            PracChannelConfig(levels=5).gaps()


class TestDefenseVariants:
    def test_channel_works_against_prac_bank_same_bank(self):
        """Footnote 11: Bank-Level PRAC does not affect the same-bank
        covert channel."""
        cfg = PracChannelConfig(defense_kind=DefenseKind.PRAC_BANK)
        result = PracCovertChannel(cfg).transmit([1, 0] * 4)
        assert result.error_probability == 0.0

    def test_riac_still_decodes_ones(self):
        cfg = PracChannelConfig(defense_kind=DefenseKind.PRAC_RIAC)
        result = PracCovertChannel(cfg).transmit([1] * 6)
        assert sum(result.decoded) >= 5

    def test_rejects_non_prac_defense(self):
        cfg = PracChannelConfig(defense_kind=DefenseKind.PRFM)
        with pytest.raises(ValueError):
            PracCovertChannel(cfg).system_config()

    def test_fig12_override_kills_channel_below_resolution(self):
        cfg = PracChannelConfig(backoff_latency_override=2 * NS)
        result = PracCovertChannel(cfg).transmit([1, 1, 1, 1])
        assert sum(result.decoded) == 0  # nothing observable

    def test_fig12_override_above_resolution_works(self):
        cfg = PracChannelConfig(backoff_latency_override=96 * NS)
        result = PracCovertChannel(cfg).transmit([1, 0, 1, 0])
        assert result.decoded == [1, 0, 1, 0]
