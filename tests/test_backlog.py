"""Backlog / overflow behavior of the memory controller.

The active queue is bounded by ``SystemConfig.queue_size``; submissions
beyond the bound wait in a FIFO backlog and are admitted one-for-one as
active requests retire.  ``queue_high_water`` tracks the deepest total
(active + backlog) the controller ever saw.
"""

import pytest

from repro.sim.config import RefreshPolicy, SystemConfig
from repro.system import MemorySystem


def make_system(queue_size: int) -> MemorySystem:
    return MemorySystem(SystemConfig(refresh_policy=RefreshPolicy.NONE,
                                     queue_size=queue_size))


class TestSaturation:
    def test_active_queue_never_exceeds_queue_size(self):
        system = make_system(queue_size=2)
        controller = system.controller
        for row in range(10):
            system.submit(system.mapper.encode(row=row), lambda r: None)
        # Before any service: 2 active, 8 backlogged.
        assert controller._queue_len == 2
        assert len(controller._backlog) == 8
        assert controller.queued_requests == 10

    def test_backlog_admits_one_per_service(self):
        system = make_system(queue_size=2)
        controller = system.controller
        done = []
        for row in range(6):
            system.submit(system.mapper.encode(row=row), done.append)
        # Run a single event (the scheduler wake): the one startable
        # request is serviced and exactly one backlog entry admitted.
        system.sim.run(max_events=1)
        assert controller._queue_len == 2
        assert len(controller._backlog) == 3
        system.sim.run(until=50_000_000)
        assert len(done) == 6
        assert controller.queued_requests == 0
        assert not controller._backlog

    def test_all_requests_complete_under_saturation(self):
        system = make_system(queue_size=1)
        done = []
        n = 12
        for row in range(n):
            system.submit(system.mapper.encode(row=row), done.append)
        system.sim.run(until=100_000_000)
        assert len(done) == n


class TestDrainOrder:
    def test_backlog_drains_fifo_into_service_order(self):
        """Backlogged conflicting requests (distinct rows, one bank)
        must complete in submission order: the backlog is FIFO and
        FR-FCFS ties break by age."""
        system = make_system(queue_size=2)
        order = []
        for i, row in enumerate(range(8)):
            system.submit(system.mapper.encode(row=row),
                          lambda r, i=i: order.append(i))
        system.sim.run(until=100_000_000)
        assert order == sorted(order)

    def test_backlogged_hit_still_wins_after_admission(self):
        """A row hit admitted from the backlog is favored by FR-FCFS
        over an older conflicting request once both are active."""
        system = make_system(queue_size=8)
        mapper = system.mapper
        hit_addr = mapper.encode(row=1)
        done = []
        system.submit(hit_addr, done.append)
        system.sim.run(until=10_000_000)  # row 1 now open
        order = []
        system.controller.submit(mapper.encode(row=2),
                                 lambda r: order.append("conflict"))
        system.controller.submit(hit_addr + 64,
                                 lambda r: order.append("hit"))
        system.sim.run(until=20_000_000)
        assert order == ["hit", "conflict"]


class TestHighWater:
    def test_high_water_counts_active_plus_backlog(self):
        system = make_system(queue_size=2)
        for row in range(7):
            system.submit(system.mapper.encode(row=row), lambda r: None)
        assert system.controller.queue_high_water == 7

    def test_high_water_is_monotone(self):
        system = make_system(queue_size=2)
        for row in range(5):
            system.submit(system.mapper.encode(row=row), lambda r: None)
        system.sim.run(until=100_000_000)
        before = system.controller.queue_high_water
        system.submit(system.mapper.encode(row=40), lambda r: None)
        system.sim.run(until=200_000_000)
        assert system.controller.queue_high_water == before

    def test_high_water_zero_requests(self):
        system = make_system(queue_size=4)
        assert system.controller.queue_high_water == 0


class TestBusReservationPruning:
    def test_reservations_stay_bounded(self):
        """Regression: expired bus reservations must be pruned in bulk,
        not only while the front entry happens to be expired."""
        system = make_system(queue_size=32)
        done = []
        n = 200
        state = {"i": 0}

        def resubmit(req):
            done.append(req)
            if state["i"] < n:
                state["i"] += 1
                system.submit(
                    system.mapper.encode(row=5, col=state["i"] % 64),
                    resubmit)

        system.submit(system.mapper.encode(row=5), resubmit)
        system.sim.run(until=1_000_000_000)
        assert len(done) == n + 1
        assert len(system.controller._bus_starts) <= 2
        assert (system.controller._bus_starts
                == sorted(system.controller._bus_starts))
        assert (system.controller._bus_ends
                == sorted(system.controller._bus_ends))


class TestWakeStaleness:
    def test_rescheduling_earlier_wake_noops_stale_event(self):
        """Arming an earlier wake leaves the later engine event in
        place; when it fires it must be recognized as stale (no armed
        time match) and do nothing."""
        system = make_system(queue_size=8)
        controller = system.controller
        controller._schedule_wake(system.sim.now + 1_000_000)
        assert controller._wake_at == 1_000_000
        controller._schedule_wake(system.sim.now + 10_000)  # earlier wins
        assert controller._wake_at == 10_000
        # Two wake events pending; running past both must leave the
        # controller disarmed with no error and no pending work.
        system.sim.run(until=2_000_000)
        assert controller._wake_at is None
        assert controller.queued_requests == 0
