"""Tests for the artifact layer: json/md/png rendering, the HTTP
artifact endpoints, and the ``repro artifacts`` CLI."""

from __future__ import annotations

import http.client
import json
import struct
import zlib

import pytest

import dist_trials
from repro.__main__ import main
from repro.analysis.figures import FigureTable
from repro.exp.cache import ResultCache, canonical_checksum
from repro.exp.registry import _REGISTRY, ExperimentSpec, register
from repro.exp.runner import map_trials, run_experiment
from repro.serve.artifacts import (
    ArtifactError,
    artifact_doc,
    encode_png,
    render_artifact,
    render_markdown,
    render_png,
)
from repro.serve.server import ServerThread


def _table_driver(n: int = 3):
    table = FigureTable("Artifact test table", ["label", "value"])
    squares = map_trials(dist_trials.square, list(range(n)))
    for i, sq in enumerate(squares):
        table.add_row(f"row{i}", float(sq))
    table.add_note("synthetic")
    return {"table": table, "raw": squares}


def _bare_driver(x: int = 1):
    return {"just": "data", "x": x}


_SPECS = (
    ExperimentSpec(name="art-table", fn=_table_driver, figure="-",
                   claim="artifact-test table",
                   quick={"n": 2}),
    ExperimentSpec(name="art-bare", fn=_bare_driver, figure="-",
                   claim="artifact-test tableless"),
)


@pytest.fixture(scope="module", autouse=True)
def _synthetic_experiments():
    for spec in _SPECS:
        register(spec)
    yield
    for spec in _SPECS:
        _REGISTRY.pop(spec.name, None)


@pytest.fixture()
def cache(tmp_path) -> ResultCache:
    return ResultCache(tmp_path / "art-cache")


def _png_header(data: bytes) -> tuple[int, int]:
    assert data[:8] == b"\x89PNG\r\n\x1a\n"
    length, tag = struct.unpack(">I4s", data[8:16])
    assert tag == b"IHDR" and length == 13
    width, height = struct.unpack(">II", data[16:24])
    return width, height


# ----------------------------------------------------------------------
# Pure rendering
# ----------------------------------------------------------------------
class TestRendering:
    def test_json_doc_carries_provenance_and_tables(self, cache):
        run = run_experiment("art-table", {"n": 3}, cache=cache)
        doc = artifact_doc(run.name, run.params, run.key, run.value)
        assert doc["experiment"] == "art-table"
        assert doc["key"] == run.key
        assert doc["checksum"] == canonical_checksum(run.value)
        assert doc["tables"][0]["columns"] == ["label", "value"]
        assert len(doc["tables"][0]["rows"]) == 3
        json.dumps(doc)  # must be JSON-clean end to end

    def test_markdown_renders_gfm_tables(self, cache):
        run = run_experiment("art-table", {"n": 3}, cache=cache)
        text = render_markdown(run.name, run.params, run.key, run.value)
        assert "### Artifact test table" in text
        assert "| label | value |" in text
        assert "> note: synthetic" in text
        assert run.key in text

    def test_markdown_without_tables_falls_back_to_json(self, cache):
        run = run_experiment("art-bare", cache=cache)
        text = render_markdown(run.name, run.params, run.key, run.value)
        assert "```json" in text and '"just"' in text

    def test_png_is_well_formed(self, cache):
        run = run_experiment("art-table", {"n": 3}, cache=cache)
        data = render_png(run.name, run.value)
        width, height = _png_header(data)
        assert width == 480 and height > 0
        assert data.endswith(
            b"IEND" + struct.pack(">I", zlib.crc32(b"IEND")))
        assert b"tEXt" in data and b"Artifact test table" in data

    def test_png_scanlines_round_trip(self):
        rows = [bytes([255, 0, 0] * 4), bytes([0, 255, 0] * 4)]
        data = encode_png(4, 2, rows)
        start = data.index(b"IDAT") + 4
        length = struct.unpack(">I", data[start - 8:start - 4])[0]
        raw = zlib.decompress(data[start:start + length])
        assert raw == b"\x00" + rows[0] + b"\x00" + rows[1]

    def test_png_of_tableless_result_is_an_error(self, cache):
        run = run_experiment("art-bare", cache=cache)
        with pytest.raises(ArtifactError, match="no figure table"):
            render_png(run.name, run.value)

    def test_unknown_format_is_an_error(self, cache):
        run = run_experiment("art-bare", cache=cache)
        with pytest.raises(ArtifactError, match="unknown artifact"):
            render_artifact(run.name, run.params, run.key, run.value,
                            "pdf")


# ----------------------------------------------------------------------
# HTTP endpoints
# ----------------------------------------------------------------------
def _get(srv, path: str):
    host, port = srv.address
    conn = http.client.HTTPConnection(host, port, timeout=60)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return (response.status, response.getheader("Content-Type"),
                response.read())
    finally:
        conn.close()


class TestEndpoints:
    def test_artifacts_render_cached_results(self, cache):
        run = run_experiment("art-table", {"n": 3}, cache=cache)
        with ServerThread(cache=cache) as srv:
            status, ctype, body = _get(srv, "/v1/artifacts/art-table.json")
            assert status == 200 and ctype == "application/json"
            doc = json.loads(body)
            assert doc["checksum"] == canonical_checksum(run.value)

            status, ctype, body = _get(srv, "/v1/artifacts/art-table.md")
            assert status == 200 and ctype.startswith("text/markdown")
            assert b"| label | value |" in body

            status, ctype, body = _get(srv, "/v1/artifacts/art-table.png")
            assert status == 200 and ctype == "image/png"
            _png_header(body)

    def test_uncached_artifact_is_404_with_a_hint(self, cache):
        with ServerThread(cache=cache) as srv:
            status, _ctype, body = _get(
                srv, "/v1/artifacts/art-table.json?n=7")
            assert status == 404
            assert b"POST /v1/experiments/art-table first" in body

    def test_param_query_selects_the_result(self, cache):
        run_experiment("art-table", {"n": 2}, cache=cache)
        with ServerThread(cache=cache) as srv:
            status, _ctype, body = _get(srv,
                                        "/v1/artifacts/art-table.json?n=2")
            assert status == 200
            assert len(json.loads(body)["tables"][0]["rows"]) == 2
            # quick=1 resolves the registered quick params ({"n": 2}).
            status, _ctype, body = _get(
                srv, "/v1/artifacts/art-table.json?quick=1")
            assert status == 200

    def test_bad_format_and_unknown_name(self, cache):
        with ServerThread(cache=cache) as srv:
            status, _ctype, body = _get(srv, "/v1/artifacts/art-table.pdf")
            assert status == 404  # not cached yet wins; prime then 400
            run_experiment("art-table", cache=cache)
            status, _ctype, body = _get(srv, "/v1/artifacts/art-table.pdf")
            assert status == 400 and b"unknown artifact format" in body
            status, _ctype, body = _get(srv, "/v1/artifacts/zzz.json")
            assert status == 404 and b"unknown experiment" in body
            status, _ctype, body = _get(srv, "/v1/artifacts/noformat")
            assert status == 400


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_artifacts_writes_all_formats(self, cache, tmp_path, capsys):
        out = tmp_path / "artifacts"
        rc = main(["artifacts", "art-table", "-p", "n=3",
                   "--out-dir", str(out),
                   "--cache-dir", str(cache.directory)])
        assert rc == 0
        assert (out / "art-table.json").exists()
        assert (out / "art-table.md").exists()
        assert (out / "art-table.png").exists()
        _png_header((out / "art-table.png").read_bytes())
        doc = json.loads((out / "art-table.json").read_text())
        run = run_experiment("art-table", {"n": 3}, cache=cache)
        assert run.cached  # the CLI primed the shared cache
        assert doc["checksum"] == canonical_checksum(run.value)

    def test_markdown_to_stdout(self, cache, capsys):
        rc = main(["artifacts", "art-table", "--format", "md",
                   "--out-dir", "-",
                   "--cache-dir", str(cache.directory)])
        assert rc == 0
        assert "### Artifact test table" in capsys.readouterr().out

    def test_all_skips_unchartable_results(self, cache, tmp_path, capsys):
        out = tmp_path / "bare"
        rc = main(["artifacts", "art-bare", "--out-dir", str(out),
                   "--cache-dir", str(cache.directory)])
        assert rc == 0
        assert (out / "art-bare.json").exists()
        assert not (out / "art-bare.png").exists()
        assert "skipping .png" in capsys.readouterr().err

    def test_explicit_png_of_tableless_result_fails(self, cache,
                                                    tmp_path, capsys):
        rc = main(["artifacts", "art-bare", "--format", "png",
                   "--out-dir", str(tmp_path),
                   "--cache-dir", str(cache.directory)])
        assert rc == 2

    def test_unknown_experiment_fails_cleanly(self, cache, capsys):
        rc = main(["artifacts", "zzz",
                   "--cache-dir", str(cache.directory)])
        assert rc == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_stdout_png_is_rejected(self, cache, capsys):
        rc = main(["artifacts", "art-table", "--format", "png",
                   "--out-dir", "-",
                   "--cache-dir", str(cache.directory)])
        assert rc == 2
