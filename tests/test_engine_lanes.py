"""Tests for the engine's scheduling fast paths.

The engine routes events across three lanes (immediate, FIFO, heap);
these tests pin the contract that lane placement is invisible: global
execution order is exactly ``(time, insertion sequence)`` regardless of
which lane an event rides.
"""

import random

import pytest

from repro.sim.engine import NS, US, SimulationError, Simulator


class TestScheduleCall:
    def test_schedule_call_passes_argument(self):
        sim = Simulator()
        seen = []
        sim.schedule_call(5 * NS, seen.append, "payload")
        sim.run()
        assert seen == ["payload"]

    def test_schedule_call_at_absolute(self):
        sim = Simulator()
        seen = []
        sim.schedule_call_at(42, lambda arg: seen.append((sim.now, arg)), 7)
        sim.run()
        assert seen == [(42, 7)]

    def test_schedule_call_at_past_raises(self):
        sim = Simulator()
        sim.run(until=100)
        with pytest.raises(SimulationError):
            sim.schedule_call_at(50, print, None)

    def test_mixed_closure_and_call_events_interleave_by_seq(self):
        sim = Simulator()
        order = []
        sim.schedule_at(5, lambda: order.append("a"))
        sim.schedule_call_at(5, order.append, "b")
        sim.schedule_at(5, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]


class TestScheduleMany:
    def test_batch_matches_loop_semantics(self):
        sim = Simulator()
        order = []
        count = sim.schedule_many(
            (t, lambda t=t: order.append(t)) for t in (10, 20, 20, 30))
        assert count == 4
        sim.run()
        assert order == [10, 20, 20, 30]

    def test_batch_out_of_order_times(self):
        sim = Simulator()
        order = []
        sim.schedule_many((t, lambda t=t: order.append(t))
                          for t in (30, 10, 20))
        sim.run()
        assert order == [10, 20, 30]

    def test_batch_past_time_raises_and_keeps_earlier_entries(self):
        sim = Simulator()
        sim.run(until=100)
        fired = []
        with pytest.raises(SimulationError):
            sim.schedule_many([(200, lambda: fired.append(200)),
                               (50, lambda: fired.append(50))])
        sim.run()
        assert fired == [200]  # entries before the bad one survive


class TestLaneEquivalence:
    """Randomized schedules must execute exactly in (time, seq) order
    no matter how they land across the three lanes."""

    def test_randomized_order_matches_reference(self):
        rng = random.Random(1234)
        sim = Simulator()
        executed = []
        expected = []
        seq = 0

        def submit(at, tag):
            sim.schedule_at(at, lambda: executed.append(tag))
            expected.append((at, tag[1]))

        # Phase 1: static schedule mixing far/near/now times.
        for i in range(200):
            at = rng.choice([0, 1, 5 * NS, rng.randrange(0, 2 * US)])
            submit(at, ("static", seq)); seq += 1

        # Phase 2: dynamic rescheduling from inside callbacks.
        def chain(n):
            executed.append(("chain", 10_000 + n))
            expected.append((sim.now + (0 if n >= 5 else NS),
                             10_000 + n + 1))
            if n < 5:
                sim.schedule(NS, lambda: chain(n + 1))

        sim.schedule_at(US, lambda: chain(0))
        expected.append((US, 10_000))

        sim.run()
        tags = [tag for tag in executed]
        # Reference: stable sort of (time, insertion order).
        assert len(tags) == 206
        static = [t for t in tags if t[0] == "static"]
        static_expected = sorted(
            [(at, s) for (at, s) in
             [(e[0], e[1]) for e in expected if e[1] < 10_000]],
            key=lambda pair: (pair[0], pair[1]))
        assert [s for _, s in static_expected] == [s for _, s in static]

    def test_pending_events_spans_all_lanes(self):
        sim = Simulator()
        sim.schedule_at(10, lambda: None)     # fifo
        sim.schedule_at(5, lambda: None)      # heap (before fifo tail)
        sim.schedule_at(0, lambda: None)      # immediate (time == now)
        assert sim.pending_events == 3
        sim.run()
        assert sim.pending_events == 0

    def test_far_future_events_execute_in_order(self):
        """Events beyond the FIFO admission horizon are heap-routed but
        must still interleave correctly with near events."""
        sim = Simulator()
        order = []
        sim.schedule_at(10 * US, lambda: order.append("far"))
        sim.schedule_at(3, lambda: order.append("near"))
        sim.schedule_at(10 * US, lambda: order.append("far2"))
        sim.run()
        assert order == ["near", "far", "far2"]

    def test_run_until_then_resume_across_lanes(self):
        sim = Simulator()
        order = []
        for at in (5, 10 * US, 7):
            sim.schedule_at(at, lambda at=at: order.append(at))
        sim.run(until=8)
        assert order == [5, 7]
        sim.run()
        assert order == [5, 7, 10 * US]


class TestRunSafety:
    def test_nested_run_raises(self):
        """run() is explicitly non-reentrant: the lane consumption state
        lives in the outer frame, so a nested call must fail loudly
        instead of re-executing consumed events."""
        sim = Simulator()
        errors = []

        def evil():
            try:
                sim.run(until=sim.now)
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule_at(5, evil)
        sim.schedule_at(5, lambda: None)
        assert sim.run() == 2
        assert len(errors) == 1
        # The engine stays usable afterwards.
        fired = []
        sim.schedule(1, lambda: fired.append(True))
        sim.run()
        assert fired == [True]

    def test_pending_events_accurate_inside_callbacks(self):
        sim = Simulator()
        seen = []
        for t in range(5):
            sim.schedule_at(t, lambda: seen.append(sim.pending_events))
        sim.run()
        assert seen == [4, 3, 2, 1, 0]

    def test_pending_events_accurate_across_lanes_inside_callbacks(self):
        sim = Simulator()
        seen = []

        def observe():
            seen.append(sim.pending_events)

        sim.schedule_at(10, observe)        # fifo
        sim.schedule_at(5, observe)         # heap
        sim.schedule_at(0, observe)         # immediate
        sim.run()
        assert seen == [2, 1, 0]
