"""Module-level trial functions for the distributed-backend tests.

These live in an importable module (not a ``test_*`` file, so pytest
does not collect it) because the shards backend addresses trial
functions as ``module:qualname`` and resolves them inside worker
processes — the workers inherit this process's ``sys.path``, which
under pytest includes this directory.
"""

from __future__ import annotations

import os
import time


def square(point):
    return point * point


def seeded(point, seed):
    return (point, seed)


def tuple_result(point):
    """Forces the pickle leg of the wire protocol (tuples are not
    JSON-round-trip exact)."""
    return (point, point + 1)


def boom(point):
    raise ValueError(f"boom {point}")


def boom_odd(point):
    if point % 2:
        raise ValueError(f"boom {point}")
    return point * point


def unshippable_result(point):
    """A result that is neither JSON-exact nor picklable — must come
    back as a trial error, not kill the worker."""
    return lambda: point


def in_worker_flag(point):
    """Whether the executing process is marked as a sweep worker."""
    import os

    from repro.dist.base import IN_WORKER_ENV

    return os.environ.get(IN_WORKER_ENV) == "1"


def ff_enabled(point):
    """What the *worker* resolves the fast-forward switch to."""
    from repro.sim import fastforward

    return fastforward.resolve_enabled(None)


def ff_jumping_trial(point):
    """A tiny probe run with fast-forward forced on, guaranteed to
    take steady-state jumps in the worker (the engagement-totals
    shipping path needs a trial with nonzero jump counts)."""
    from repro.cpu.probe import LatencyProbe
    from repro.sim import fastforward
    from repro.sim.config import SystemConfig
    from repro.system import MemorySystem

    with fastforward.forced("on"):
        system = MemorySystem(SystemConfig())
        probe = LatencyProbe(system, [system.mapper.encode(row=5)],
                             max_samples=200)
        probe.start()
        while not probe.done:
            system.sim.run(until=system.sim.now + 1_000_000)
    return system.fast_forward.jumps


def always_crash(point):
    """Hard-kill the hosting worker, every time."""
    os._exit(13)


def crash_once(point):
    """Kill the hosting worker the first time this point runs.

    ``point["marker"]`` is a path: absent -> create it and die without
    cleanup (a hard crash, not an exception); present -> behave like
    :func:`square` on ``point["v"]``.
    """
    marker = point.get("marker")
    if marker and not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("crashed")
        os._exit(13)
    return point["v"] * point["v"]


def sleepy(point):
    """Sleep briefly then echo — keeps a sweep observably in flight
    for the drain/orphan shutdown tests."""
    time.sleep(point.get("s", 0.2))
    return point.get("v", 0)


def hang_once(point):
    """Sleep far past any test timeout the first time this point runs
    (the coordinator must kill + requeue); instant on the retry."""
    marker = point.get("marker")
    if marker and not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("hanging")
        time.sleep(120)
    return point["v"] + 1


def report_pid_and_hang_once(point):
    """Write the hosting worker's pid to ``point["marker"]`` and hang
    the first time this point runs — the fleet tests SIGKILL that pid
    from outside, mid-trial; instant on the retry."""
    marker = point.get("marker")
    if marker and not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write(str(os.getpid()))
        time.sleep(120)
    return point["v"] + 1
