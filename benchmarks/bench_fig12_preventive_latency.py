"""Fig. 12: channel capacity vs preventive-action latency.

Paper result: reducing the preventive-action latency eliminates the
timing channel only below ~10 ns -- far less than the 96/192 ns needed
to actually refresh one aggressor's victims (blast radius 1/2), so
latency reduction cannot fix LeakyHammer.
"""

from conftest import driver, publish, run_once

fig12_preventive_latency = driver("fig12")


def test_fig12_preventive_latency(benchmark):
    table = run_once(benchmark,
                     lambda: fig12_preventive_latency(n_bits=16))
    publish(table, "fig12_preventive_latency")

    caps = dict(zip(table.column("latency (ns)"),
                    table.column("capacity (Kbps)")))
    assert caps[0] < 1.0  # zero-latency action: channel gone
    assert caps[5] < 1.0  # below the ~10 ns resolution: still gone
    assert caps[25] > 25.0  # above resolution: alive
    assert caps[96] > 25.0  # blast radius 1 minimum: fully alive
    assert caps[192] > 25.0  # blast radius 2 minimum: fully alive
