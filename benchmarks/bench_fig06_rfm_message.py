"""Fig. 6 + Section 7.3: RFM covert channel "MICRO" transmission and
raw bit rate.

Paper result: the 40-bit message decodes after 40 windows; 48.7 Kbps
raw bit rate; several RFMs per 1-window give noise robustness.
"""

from conftest import driver, publish, run_once

fig6_rfm_message = driver("fig6")


def test_fig06_rfm_message(benchmark):
    out = run_once(benchmark,
                   lambda: fig6_rfm_message(text="MICRO",
                                              pattern_bits=40))
    publish(out["table"], "fig06_rfm_message")

    result = out["result"]
    assert result.decoded == result.sent
    rates = out["rates"]
    # Paper: 48.7 Kbps raw; our 20 us windows give 50 Kbps.
    assert abs(rates["raw_bit_rate_bps"] - 50_000) < 2_500
    assert rates["error_probability"] <= 0.02
    # 1-windows carry multiple RFMs (the T_recv mechanism).
    one_windows = [w for w in result.windows if w.sent == 1]
    assert all(w.rfms >= 3 for w in one_windows)
