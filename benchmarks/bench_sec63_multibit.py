"""Section 6.3: multibit (ternary/quaternary) PRAC covert channels.

Paper result: raw bit rates 39.0 / 61.7 / 76.8 Kbps for binary /
ternary / quaternary; higher-order alphabets are less noise tolerant
(errors 0.04 and 0.29 at the base noise level).
"""

from conftest import driver, publish, run_once

sec63_multibit = driver("sec63")


def test_sec63_multibit(benchmark):
    table = run_once(benchmark,
                     lambda: sec63_multibit(n_symbols=32,
                                              noise_intensity=1.0))
    publish(table, "sec63_multibit")

    raw = table.column("raw bit rate (Kbps)")
    errs = table.column("error probability")
    # Rates scale as log2(levels) over the same window.
    assert raw[0] < raw[1] < raw[2]
    assert abs(raw[2] - 2 * raw[0]) < 2.0
    # Denser constellations are at most as robust as binary.
    assert errs[2] >= errs[0]
