"""Fig. 10 + Section 8 noise study: website classification accuracy.

Paper result: the decision tree reaches 0.75 accuracy over 40 sites
(30x random guessing); linear models perform poorly; with co-running
SPEC noise accuracy drops to 66.1% but the attack still works.
"""

from repro.sim.engine import MS

from conftest import driver, publish, run_once

fig10_table2_fingerprint = driver("fig10")


def test_fig10_classifier_accuracy(benchmark):
    out = run_once(benchmark,
                   lambda: fig10_table2_fingerprint(
                       n_sites=10, traces_per_site=10,
                       duration_ps=1 * MS, n_splits=5))
    publish(out["fig10"], "fig10_classifier_accuracy")
    publish(out["table2"], "table2_dt_crossval")

    acc = out["accuracies"]
    random_guess = 1.0 / 10
    # The headline claim: classical models identify websites from
    # back-off traces far above chance (paper: 30x random for the DT).
    assert acc["Decision Tree"] > 5 * random_guess
    assert acc["Random Forest"] > 5 * random_guess
    assert acc["Gradient Boosting"] > 4 * random_guess
    # Note: the paper's *linear* models score near-random on its raw
    # pair features; our engineered features (window counts) remain
    # linearly separable, so that particular gap does not reproduce --
    # recorded in EXPERIMENTS.md.


def test_fig10_with_application_noise(benchmark):
    """Section 8, last paragraph: SPEC noise lowers accuracy but does
    not defeat the attack (paper: 75% -> 66.1%)."""
    out = run_once(benchmark,
                   lambda: fig10_table2_fingerprint(
                       n_sites=6, traces_per_site=6,
                       duration_ps=1 * MS, n_splits=3, with_noise=True))
    publish(out["fig10"], "fig10_with_noise")
    assert out["accuracies"]["Decision Tree"] > 2.0 / 6
