"""Fig. 9: example website fingerprints (back-off strips).

Paper result: repeated loads of one site have similar back-off
count/frequency patterns over execution windows; different sites
differ (the basis of the fingerprinting side channel).
"""

import numpy as np

from repro.core.fingerprint import FingerprintConfig, WebsiteFingerprinter
from repro.sim.engine import MS
from repro.workloads.websites import WebsiteCatalog

from conftest import driver, publish, run_once

fig9_fingerprint_examples = driver("fig9")


def test_fig09_fingerprint_examples(benchmark):
    table = run_once(benchmark,
                     lambda: fig9_fingerprint_examples(
                         n_sites=3, traces_per_site=2, duration_ps=1 * MS))
    publish(table, "fig09_fingerprint_examples")

    # Quantify the visual claim: intra-site distance < inter-site
    # distance on the strip vectors.
    cfg = FingerprintConfig(duration_ps=1 * MS)
    fp = WebsiteFingerprinter(cfg)
    catalog = WebsiteCatalog(3, seed=1)
    strips = {}
    for profile in catalog:
        strips[profile.name] = [
            fp.capture(profile, t + 1).window_counts(cfg.n_windows)
            for t in range(2)
        ]
    intra = [np.linalg.norm(s[0] - s[1]) for s in strips.values()]
    names = list(strips)
    inter = [np.linalg.norm(strips[a][0] - strips[b][0])
             for i, a in enumerate(names) for b in names[i + 1:]]
    print(f"\nmean intra-site distance: {np.mean(intra):.2f}, "
          f"mean inter-site distance: {np.mean(inter):.2f}")
    assert np.mean(intra) < np.mean(inter)
