"""Section 12: random trigger algorithms resist LeakyHammer.

Paper claim: mechanisms with *random* trigger algorithms (e.g., PARA)
make RowHammer-defense timing channels hard to build because an
attacker cannot reliably trigger or observe preventive actions.
"""

from conftest import driver, publish, run_once

sec12_para_resistance = driver("sec12")


def test_sec12_para_resistance(benchmark):
    table = run_once(benchmark,
                     lambda: sec12_para_resistance(n_bits=16))
    publish(table, "sec12_para_resistance")

    metrics = dict(zip(table.column("metric"), table.column("value")))
    # The deterministic PRAC channel decodes noiselessly with e = 0;
    # against PARA the same protocol becomes unreliable.
    assert metrics["decode error probability"] > 0.05
    assert metrics["capacity (Kbps)"] < 25.0  # << the 40 Kbps PRAC channel
