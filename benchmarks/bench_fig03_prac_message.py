"""Fig. 3 + Section 6.3: PRAC covert channel "MICRO" transmission and
raw bit rate.

Paper result: the 40-bit message decodes after 40 windows; the channel
achieves 39.0 Kbps raw bit rate across all four message patterns.
"""

from conftest import driver, publish, run_once

fig3_prac_message = driver("fig3")


def test_fig03_prac_message(benchmark):
    out = run_once(benchmark,
                   lambda: fig3_prac_message(text="MICRO",
                                               pattern_bits=40))
    publish(out["table"], "fig03_prac_message")

    result = out["result"]
    assert result.decoded == result.sent  # all 40 bits of "MICRO"
    rates = out["rates"]
    # Paper: 39.0 Kbps raw; our 25 us windows give 40 Kbps.
    assert abs(rates["raw_bit_rate_bps"] - 40_000) < 2_000
    assert rates["error_probability"] <= 0.02
