"""Ablations of design choices called out in DESIGN.md.

1. Refresh policy: postponing pairs doubles the refresh event latency,
   shrinking the refresh-to-back-off separation an attacker must
   discriminate (but the 4-RFM back-off still clears it comfortably).
2. RFM receiver threshold T_recv: too low drowns in stray RFMs, too
   high misses real 1-windows; the paper's choice of 3 sits on the
   robust plateau.
3. PRAC window duration: shorter windows raise the raw rate until
   1-bits stop fitting the ~14 us activation ramp + 1.4 us back-off.
"""

from conftest import driver, publish, run_once

ablation_refresh_postponing = driver("ablation-refresh")
ablation_trecv = driver("ablation-trecv")
ablation_window_size = driver("ablation-window")


def test_ablation_refresh_postponing(benchmark):
    table = run_once(benchmark, ablation_refresh_postponing)
    publish(table, "ablation_refresh_postponing")
    separations = dict(zip(table.column("policy"),
                           table.column("separation (ns)")))
    assert separations["postpone-pair"] < separations["every-trefi"]
    assert min(separations.values()) > 500.0  # 4-RFM stays separable


def test_ablation_trecv(benchmark):
    table = run_once(benchmark,
                     lambda: ablation_trecv(n_bits=12))
    publish(table, "ablation_trecv")
    caps = dict(zip(table.column("T_recv"),
                    table.column("capacity (Kbps)")))
    assert caps[3] > caps[1]  # the paper's pick beats a naive threshold


def test_ablation_window_size(benchmark):
    table = run_once(benchmark,
                     lambda: ablation_window_size(n_bits=12))
    publish(table, "ablation_window_size")
    rows = {r[0]: r for r in table.rows}
    # Longer windows cost rate without buying reliability here.
    assert rows[50][1] < rows[25][1]
    # The shortest window gains raw rate but starts to pay errors.
    assert rows[15][1] > rows[25][1]
    assert rows[15][2] >= rows[25][2]
