"""Fig. 11: effect of the number of RFMs per back-off (4 vs 2 vs 1).

Paper result: shorter back-offs (fewer RFMs) are harder to distinguish
from periodic refreshes, so error probability rises and channel
capacity falls as the recovery shrinks from 4 to 2 to 1 RFM.
"""

import numpy as np

from conftest import driver, publish, run_once

fig11_rfms_per_backoff = driver("fig11")


def test_fig11_rfms_per_backoff(benchmark):
    table = run_once(benchmark,
                     lambda: fig11_rfms_per_backoff(
                         intensities=(1, 25, 50, 75, 100), n_bits=16))
    publish(table, "fig11_rfms_per_backoff")

    by_rfms = {}
    for row in table.rows:
        by_rfms.setdefault(row[0], []).append(row[3])  # capacity
    mean_cap = {k: float(np.mean(v)) for k, v in by_rfms.items()}
    print(f"\nmean capacity by RFMs/back-off: {mean_cap}")
    assert mean_cap[4] >= mean_cap[2] >= mean_cap[1]
