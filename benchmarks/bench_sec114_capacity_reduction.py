"""Section 11.4: channel-capacity reduction under the countermeasures.

Paper result: FR-RFM eliminates the channel entirely (100% reduction,
by the non-interference argument); PRAC-RIAC reduces capacity by ~86%
on average by injecting random-threshold noise.
"""

from conftest import driver, publish, run_once

sec114_capacity_reduction = driver("sec114")


def test_sec114_capacity_reduction(benchmark):
    table = run_once(benchmark,
                     lambda: sec114_capacity_reduction(
                         n_bits=24, noise_intensity=30.0))
    publish(table, "sec114_capacity_reduction")

    rows = {(r[0], r[1]): r for r in table.rows}
    # FR-RFM: complete elimination at every noise level.
    for noise in ("none", "30%"):
        assert rows[("FR-RFM", noise)][4] >= 99.0
    # RIAC: substantial reduction once ambient traffic exists.
    assert rows[("PRAC-RIAC", "30%")][4] > 30.0
    # The insecure baseline stays a strong channel.
    assert rows[("PRAC (insecure)", "none")][3] > 30.0
