"""Fig. 5: PRAC covert channel under SPEC-like application interference.

Paper result: capacity 36.0 / 32.2 / 31.2 Kbps for L / M / H memory
intensity -- interference degrades but never defeats the channel.
"""

from conftest import driver, publish, run_once

fig5_prac_app_noise = driver("fig5")


def test_fig05_prac_app_noise(benchmark):
    table = run_once(benchmark, lambda: fig5_prac_app_noise(n_bits=24))
    publish(table, "fig05_prac_app_noise")

    caps = dict(zip(table.column("memory intensity"),
                    table.column("capacity (Kbps)")))
    assert caps["L"] >= caps["H"]  # more intensity, less capacity
    assert caps["H"] > 20.0  # the channel survives (paper: 31.2)
