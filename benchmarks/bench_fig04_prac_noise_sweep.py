"""Fig. 4: PRAC covert channel capacity/error vs noise intensity.

Paper result: 28.8 Kbps at 1% noise; capacity stays above 20.7 Kbps
until very high noise intensity (~88%), then degrades.
"""

from conftest import driver, publish, run_once

fig4_prac_noise_sweep = driver("fig4")


def test_fig04_prac_noise_sweep(benchmark):
    table = run_once(benchmark,
                     lambda: fig4_prac_noise_sweep(n_bits=24))
    publish(table, "fig04_prac_noise_sweep")

    caps = table.column("capacity (Kbps)")
    errs = table.column("error probability")
    assert caps[0] > 25.0  # strong channel at 1% noise
    assert errs[0] < 0.12
    assert caps[-1] < caps[0]  # degradation at 100%
    # Capacity stays useful through mid intensities (paper: >20.7 Kbps
    # until 88%).
    mid = caps[:len(caps) * 3 // 4]
    assert min(mid) > 15.0
