"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures at a
reduced-but-faithful scale (see DESIGN.md section 7), prints the rows/
series, and writes both a text rendering and a CSV under
``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path

from repro.exp.registry import get_experiment

RESULTS_DIR = Path(__file__).parent / "results"


def driver(name: str):
    """Resolve an experiment driver through the registry by name."""
    return get_experiment(name).fn


def publish(table, name: str) -> None:
    """Print a figure table and persist it as .txt + .csv."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = table.to_text()
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    table.to_csv(RESULTS_DIR / f"{name}.csv")
    print("\n" + text)


def run_once(benchmark, fn):
    """Run a heavy experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
