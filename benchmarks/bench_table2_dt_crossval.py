"""Table 2: decision-tree cross-validation metrics.

Paper result: F1 71.8 (4.2), precision 74.1 (4.4), recall 72.4 (4.2)
over 10-fold CV -- i.e., high and stable scores far above chance.
"""

from repro.sim.engine import MS

from conftest import driver, publish, run_once

fig10_table2_fingerprint = driver("fig10")


def test_table2_dt_crossval(benchmark):
    out = run_once(benchmark,
                   lambda: fig10_table2_fingerprint(
                       n_sites=8, traces_per_site=10,
                       duration_ps=1 * MS, n_splits=10))
    publish(out["table2"], "table2_dt_crossval_10fold")

    cv = out["cv"]
    chance = 1.0 / 8
    assert cv["f1_mean"] > 3 * chance
    assert cv["precision_mean"] > 3 * chance
    assert cv["recall_mean"] > 3 * chance
    assert cv["f1_std"] < 0.35  # stable across folds
