"""Fig. 7: RFM covert channel capacity/error vs noise intensity.

Paper result: 46.3 Kbps at 1% noise; the knee arrives at *lower*
intensity than the PRAC channel's because PRFM's bank-level counters
aggregate every activation to the bank.
"""

from conftest import driver, publish, run_once

fig7_rfm_noise_sweep = driver("fig7")
fig4_prac_noise_sweep = driver("fig4")


def test_fig07_rfm_noise_sweep(benchmark):
    table = run_once(benchmark,
                     lambda: fig7_rfm_noise_sweep(n_bits=24))
    publish(table, "fig07_rfm_noise_sweep")

    caps = table.column("capacity (Kbps)")
    errs = table.column("error probability")
    assert caps[0] > 40.0  # strong channel at 1% noise (paper: 46.3)
    assert errs[0] < 0.05
    assert caps[-1] < 0.6 * caps[0]  # collapse at the top end


def test_fig07_rfm_less_noise_robust_than_prac(benchmark):
    """Comparative claim of Section 7.3: at high noise the RFM channel
    has degraded while the PRAC channel still operates."""
    def both():
        rfm = fig7_rfm_noise_sweep(intensities=(88,), n_bits=16)
        prac = fig4_prac_noise_sweep(intensities=(88,), n_bits=16)
        return rfm.rows[0][1], prac.rows[0][1]  # error probabilities

    rfm_err, prac_err = run_once(benchmark, both)
    print(f"\nerror at 88% noise: RFM={rfm_err:.3f} PRAC={prac_err:.3f}")
    assert rfm_err > prac_err
