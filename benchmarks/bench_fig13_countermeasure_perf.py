"""Fig. 13: performance of PRAC/PRFM/PRAC-RIAC/FR-RFM/PRAC-Bank.

Paper result: all mechanisms are near-baseline at N_RH = 1024 (FR-RFM
~7% overhead); at N_RH = 64 FR-RFM collapses (18.2x) while PRAC-RIAC
stays ~2.14x, making capacity-reduction countermeasures the practical
choice at very low thresholds; PRAC-Bank tracks PRAC within 2.5%
everywhere.
"""

from conftest import driver, publish, run_once

fig13_performance = driver("fig13")


def test_fig13_countermeasure_performance(benchmark):
    out = run_once(benchmark,
                   lambda: fig13_performance(
                       nrh_values=(1024, 512, 256, 128, 64),
                       n_mixes=3, n_requests=8_000))
    table = out["table"]
    publish(table, "fig13_countermeasure_perf")

    nrh = table.column("N_RH")
    frrfm = dict(zip(nrh, table.column("FR-RFM")))
    riac = dict(zip(nrh, table.column("PRAC-RIAC")))
    prac = dict(zip(nrh, table.column("PRAC")))
    bank = dict(zip(nrh, table.column("PRAC-Bank")))

    # Near-baseline at N_RH = 1024 for everyone.
    assert frrfm[1024] > 0.90
    assert riac[1024] > 0.93
    # FR-RFM collapses at N_RH = 64; RIAC degrades far less.
    assert frrfm[64] < 0.5
    assert riac[64] > 1.8 * frrfm[64]
    # Crossover: FR-RFM competitive at >= 512, loses by 128.
    assert frrfm[512] > 0.85
    assert riac[128] > frrfm[128]
    # PRAC-Bank within a few percent of PRAC at every threshold.
    for t in nrh:
        assert abs(bank[t] - prac[t]) < 0.05
    # Monotone degradation as N_RH falls.
    assert frrfm[1024] >= frrfm[256] >= frrfm[64]
