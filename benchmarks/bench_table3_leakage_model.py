"""Table 3: the information-leakage matrix, demonstrated by
micro-simulations.

Paper claims: at channel/bank-group granularity only LeakyHammer leaks;
with row (PRAC) or bank (RFM) colocation the attacker leaks activation
*counts*; DRAMA needs same-bank colocation.
"""

from conftest import driver, publish, run_once

table3_leakage_model = driver("table3")


def test_table3_leakage_model(benchmark):
    table = run_once(benchmark, table3_leakage_model)
    publish(table, "table3_leakage_model")
    assert all(v == "yes" for v in table.column("demonstrated"))
