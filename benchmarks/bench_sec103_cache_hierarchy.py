"""Section 10.3: larger cache hierarchy + Best-Offset prefetching.

Paper result: with 256 KB L2 + 6 MB LLC + BO prefetching, the covert
channels lose only 5.8% / 2.1% capacity and fingerprinting drops by
4.2% -- bigger caches do not prevent LeakyHammer.
"""

from repro.sim.engine import MS

from conftest import driver, publish, run_once

sec103_cache_hierarchy = driver("sec103")


def test_sec103_cache_hierarchy(benchmark):
    out = run_once(benchmark,
                   lambda: sec103_cache_hierarchy(
                       n_bits=24, n_sites=6, traces_per_site=6,
                       duration_ps=1 * MS))
    publish(out["channels"], "sec103_channels")
    publish(out["fingerprint"], "sec103_fingerprint")

    caps = {}
    for row in out["channels"].rows:
        caps[(row[0], row[1])] = row[3]
    # The channels survive the larger hierarchy with modest loss.
    assert caps[("PRAC", "large (L1+L2+6MB LLC, BO prefetch)")] > \
        0.5 * caps[("PRAC", "base (L1+LLC)")]
    assert caps[("RFM", "large (L1+L2+6MB LLC, BO prefetch)")] > \
        0.5 * caps[("RFM", "base (L1+LLC)")]
    # Fingerprinting still far above the 1/6 random guess.
    assert out["accuracies"]["large"] > 2 * (1.0 / 6)
