"""Fig. 2: PRAC-induced memory access latencies and their observability.

Paper result: back-offs appear as a distinct top latency level
(~1.9x a periodic refresh, ~18x a row conflict), recurring every
~2*N_BO - 1 requests of the interleaved two-row measurement loop.
"""

from conftest import driver, publish, run_once

fig2_latency_observability = driver("fig2")


def test_fig02_latency_observability(benchmark):
    out = run_once(benchmark,
                   lambda: fig2_latency_observability(n_samples=512,
                                                        nbo=128))
    table = out["table"]
    publish(table, "fig02_latency_observability")

    means = dict(zip(table.column("event"),
                     table.column("mean latency (ns)")))
    # Paper shape: backoff >> refresh >> conflict, separable levels.
    assert means["backoff"] > 1.5 * means["refresh"]
    assert means["refresh"] > 5 * means["conflict"]
    # Back-offs arrive after ~255 requests (2 * 128 - 1).
    assert abs(out["first_backoff_index"] - 255) < 30
    assert out["ground_truth_backoffs"] >= 1
