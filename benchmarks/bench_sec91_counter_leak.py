"""Section 9.1: leaking PRAC activation-counter values.

Paper result: a 7-bit counter value (N_BO = 128) leaks in ~13.6 us on
average, i.e., ~501 Kbps leakage throughput.
"""

from conftest import driver, publish, run_once

sec91_counter_leak = driver("sec91")


def test_sec91_counter_leak(benchmark):
    out = run_once(benchmark,
                   lambda: sec91_counter_leak(
                       secrets=list(range(4, 124, 12))))
    publish(out["table"], "sec91_counter_leak")

    outcome = out["outcome"]
    assert outcome["accuracy_within_1"] == 1.0
    assert outcome["bits_per_value"] == 7.0
    # Same order of magnitude as the paper's 13.6 us / 501 Kbps.
    assert 3.0 < outcome["mean_elapsed_us"] < 40.0
    assert outcome["throughput_kbps"] > 150.0
