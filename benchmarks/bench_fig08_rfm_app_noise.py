"""Fig. 8: RFM covert channel under SPEC-like application interference.

Paper result: capacity 48.1 / 44.4 / 43.6 Kbps for L / M / H --
real-application interference only slightly reduces capacity because
the T_recv count threshold filters stray RFMs.
"""

from conftest import driver, publish, run_once

fig8_rfm_app_noise = driver("fig8")


def test_fig08_rfm_app_noise(benchmark):
    table = run_once(benchmark, lambda: fig8_rfm_app_noise(n_bits=24))
    publish(table, "fig08_rfm_app_noise")

    caps = dict(zip(table.column("memory intensity"),
                    table.column("capacity (Kbps)")))
    assert caps["L"] >= caps["H"]
    assert caps["H"] > 25.0  # channel survives (paper: 43.6)
