"""Setup shim for environments without the ``wheel`` package.

Offline environments that cannot satisfy PEP-517 build isolation can
install with::

    pip install -e . --no-build-isolation --no-use-pep517

All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
