#!/usr/bin/env python3
"""Quickstart: observe RowHammer-preventive actions from "userspace".

Builds a DDR5 memory system protected by PRAC, runs the paper's
Listing-1 measurement loop (two alternating rows in one bank, flushed
from the cache each iteration), and classifies every measured latency:
row conflicts, periodic refreshes, and -- once the rows' activation
counters reach N_BO -- the tell-tale ~1.4 us PRAC back-off that
LeakyHammer builds its channels on.

Run:  python examples/quickstart.py
"""

from repro import DefenseKind, DefenseParams, MemorySystem, SystemConfig
from repro.core.probe import EventKind, LatencyClassifier
from repro.cpu.agent import run_agents
from repro.cpu.probe import LatencyProbe
from repro.sim.engine import MS, NS


def main() -> None:
    # A PRAC-protected system with a back-off threshold of 128
    # activations (the paper's Section 6 assumption).
    config = SystemConfig(
        defense=DefenseParams(kind=DefenseKind.PRAC, nbo=128))
    system = MemorySystem(config)

    # Two pointers in separate DRAM rows of one bank (Listing 1).
    row_ptrs = system.mapper.same_bank_rows(2, bankgroup=0, bank=0,
                                            first_row=0, stride=8)
    probe = LatencyProbe(system, row_ptrs, max_samples=512)
    run_agents(system, [probe], hard_limit=10 * MS)

    classifier = LatencyClassifier(config)
    print("expected latency levels:")
    for level in classifier.levels:
        print(f"  {level.kind.value:10s} ~{level.delta_ps / NS:7.1f} ns")

    print("\nmeasured event histogram over 512 requests:")
    for kind, count in classifier.histogram(probe.deltas).items():
        print(f"  {kind.value:10s} x{count}")

    backoffs = [i for i, s in enumerate(probe.samples)
                if classifier.classify_sample(s) is EventKind.BACKOFF]
    print(f"\nback-offs observed at request indices {backoffs} "
          f"(expected every ~{2 * 128 - 1} requests)")
    print(f"ground truth: the memory system performed "
          f"{system.stats.backoffs} back-off(s)")


if __name__ == "__main__":
    main()
