#!/usr/bin/env python3
"""Quickstart: observe RowHammer-preventive actions from "userspace".

Declares a scenario -- a PRAC-protected DDR5 system plus the paper's
Listing-1 measurement loop (two alternating rows in one bank, flushed
from the cache each iteration) -- as pure data, runs it, and reads the
classified latencies back: row conflicts, periodic refreshes, and --
once the rows' activation counters reach N_BO -- the tell-tale ~1.4 us
PRAC back-off that LeakyHammer builds its channels on.

Run:  python examples/quickstart.py
"""

from repro import DefenseKind, DefenseParams, SystemConfig
from repro.core.probe import EventKind
from repro.scenario import AgentSpec, MeasurementSpec, ScenarioSpec, StopSpec
from repro.sim.engine import MS, NS


def main() -> None:
    # The whole experiment is one serializable spec: a PRAC system with
    # a back-off threshold of 128 activations (the paper's Section 6
    # assumption), one latency probe, a stop condition, and the
    # measurement to collect.
    spec = ScenarioSpec(
        name="quickstart",
        system=SystemConfig(
            defense=DefenseParams(kind=DefenseKind.PRAC, nbo=128)),
        agents=(AgentSpec("probe", params={
            "bank": (0, 0), "rows": (0, 8), "max_samples": 512}),),
        stop=StopSpec(hard_limit_ps=10 * MS),
        measurements=(MeasurementSpec("latency-classes",
                                      params={"agent": "probe"}),))
    print(spec.describe())

    built = spec.build()
    print("\nexpected latency levels:")
    for level in built.classifier.levels:
        print(f"  {level.kind.value:10s} ~{level.delta_ps / NS:7.1f} ns")

    result = built.run()
    print("\nmeasured event histogram over 512 requests:")
    for kind, entry in result.data["latency-classes"].items():
        print(f"  {kind:10s} x{entry['count']}")

    probe = result.agent("probe")
    classifier = built.classifier
    backoffs = [i for i, s in enumerate(probe.samples)
                if classifier.classify_sample(s) is EventKind.BACKOFF]
    print(f"\nback-offs observed at request indices {backoffs} "
          f"(expected every ~{2 * 128 - 1} requests)")
    print(f"ground truth: the memory system performed "
          f"{result.counters['backoffs']} back-off(s)")


if __name__ == "__main__":
    main()
