#!/usr/bin/env python3
"""Covert channels through RowHammer defenses (paper Sections 6 and 7).

Transmits a secret message between two colluding processes that share
no memory -- only the DRAM channel -- first through PRAC back-offs,
then through Periodic-RFM commands, and shows what noise does to each
channel.  Every transmission is a declarative scenario under the hood:
``channel.scenario(bits)`` returns the full cast (sender, receiver,
noise, victim apps) as serializable data.

Run:  python examples/covert_channel.py
"""

from repro.core.prac_channel import PracChannelConfig, PracCovertChannel
from repro.core.rfm_channel import RfmCovertChannel
from repro.workloads.patterns import bits_from_text, text_from_bits

SECRET = "MICRO"


def report(name: str, result) -> None:
    print(f"\n=== {name} ===")
    print(f"sent bits:    {''.join(map(str, result.sent))}")
    print(f"decoded bits: {''.join(map(str, result.decoded))}")
    print(f"decoded text: {text_from_bits(result.decoded)!r}")
    print(f"raw bit rate: {result.raw_bit_rate_bps / 1e3:.1f} Kbps, "
          f"error: {result.error_probability:.3f}, "
          f"capacity: {result.kbps:.1f} Kbps")
    print(f"ground truth: {result.ground_truth_backoffs} back-offs, "
          f"{result.ground_truth_rfms} RFMs during the transmission")


def main() -> None:
    # --- PRAC-based channel: one back-off encodes a 1-bit -------------
    prac = PracCovertChannel()
    report("PRAC covert channel (25 us windows)",
           prac.transmit_text(SECRET))

    # The same transmission as data: serialize the spec, ship it
    # anywhere (a worker, a file, another machine), rebuild, run.
    spec = prac.scenario(bits_from_text("HI"))
    print(f"\nas a scenario spec: {len(spec.agents)} agents, "
          f"cache_key {spec.cache_key()[:16]}..., "
          f"{len(spec.to_json())} bytes of JSON")
    rerun = spec.run()
    print(f"replayed from data: {rerun.counters['backoffs']} back-offs "
          f"at final_now={rerun.final_now} ps")

    # --- RFM-based channel: the receiver counts RFMs per window -------
    rfm = RfmCovertChannel()
    report("RFM covert channel (20 us windows)", rfm.transmit_text(SECRET))

    # --- Multibit: two bits per window via sender rate modulation -----
    quaternary = PracCovertChannel(PracChannelConfig(levels=4))
    symbols = [3, 1, 0, 2, 2, 0, 1, 3, 3, 0]
    result = quaternary.transmit(symbols)
    print("\n=== quaternary PRAC channel ===")
    print(f"sent symbols:    {symbols}")
    print(f"decoded symbols: {result.decoded}")
    print(f"raw bit rate: {result.raw_bit_rate_bps / 1e3:.1f} Kbps")

    # --- Under heavy noise the channels degrade gracefully ------------
    print("\n=== noise sensitivity (checkered message) ===")
    bits = [0, 1] * 8
    for intensity in (1.0, 50.0, 100.0):
        noisy = PracCovertChannel(
            PracChannelConfig(noise_intensity=intensity)).transmit(bits)
        print(f"  PRAC @ noise {intensity:5.1f}%: "
              f"error={noisy.error_probability:.3f} "
              f"capacity={noisy.kbps:5.1f} Kbps")


if __name__ == "__main__":
    main()
