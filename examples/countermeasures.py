#!/usr/bin/env python3
"""The three LeakyHammer countermeasures (paper Section 11).

1. FR-RFM eliminates the channel: preventive actions fire on a fixed
   wall-clock grid, independent of anything any process does.
2. PRAC-RIAC randomizes activation-counter initialization, injecting
   unintentional back-offs that erode the channel's reliability.
3. Bank-Level PRAC confines back-off visibility to the attacked bank,
   shrinking the attack scope to classic same-bank channels.

The script then shows the security/performance trade-off: normalized
weighted speedup of each mechanism at a comfortable (1024) and an
extreme (64) RowHammer threshold.

Run:  python examples/countermeasures.py   (takes a couple of minutes)
"""

from repro.analysis.experiments import (
    fig13_performance,
    sec114_capacity_reduction,
)
from repro.core.leakage_model import demonstrate_leakage_matrix


def main() -> None:
    print("channel capacity under countermeasures "
          "(30% ambient noise level):")
    print(sec114_capacity_reduction(n_bits=16, noise_intensity=30.0)
          .to_text())

    print("\nBank-Level PRAC containment (from the Table 3 demos):")
    for cell in demonstrate_leakage_matrix():
        if "Bank-Level" in cell.attack:
            print(f"  {cell.detail}")

    print("\nperformance at the extremes (normalized weighted speedup):")
    out = fig13_performance(nrh_values=(1024, 64), n_mixes=2,
                            n_requests=6000)
    print(out["table"].to_text())


if __name__ == "__main__":
    main()
