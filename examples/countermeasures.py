#!/usr/bin/env python3
"""The three LeakyHammer countermeasures (paper Section 11).

1. FR-RFM eliminates the channel: preventive actions fire on a fixed
   wall-clock grid, independent of anything any process does.
2. PRAC-RIAC randomizes activation-counter initialization, injecting
   unintentional back-offs that erode the channel's reliability.
3. Bank-Level PRAC confines back-off visibility to the attacked bank,
   shrinking the attack scope to classic same-bank channels.

The script then shows the security/performance trade-off: normalized
weighted speedup of each mechanism at a comfortable (1024) and an
extreme (64) RowHammer threshold.  Experiments resolve through the
registry (``repro.exp``), the same path as ``python -m repro run``.

Run:  python examples/countermeasures.py   (takes a couple of minutes)
"""

from repro.core.leakage_model import demonstrate_leakage_matrix
from repro.exp import run_experiment


def main() -> None:
    print("channel capacity under countermeasures "
          "(30% ambient noise level):")
    sec114 = run_experiment(
        "sec114", {"n_bits": 16, "noise_intensity": 30.0},
        use_cache=False)
    print(sec114.value.to_text())

    print("\nBank-Level PRAC containment (from the Table 3 demos):")
    for cell in demonstrate_leakage_matrix():
        if "Bank-Level" in cell.attack:
            print(f"  {cell.detail}")

    print("\nperformance at the extremes (normalized weighted speedup):")
    fig13 = run_experiment(
        "fig13", {"nrh_values": (1024, 64), "n_mixes": 2,
                  "n_requests": 6000},
        use_cache=False)
    print(fig13.value["table"].to_text())


if __name__ == "__main__":
    main()
