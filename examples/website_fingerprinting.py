#!/usr/bin/env python3
"""Website fingerprinting through PRAC back-offs (paper Section 8).

A spy process that merely *times its own memory accesses* identifies
which website a victim browser is loading: browser loads trip PRAC
back-offs (at low RowHammer thresholds) in site-specific temporal
patterns, visible channel-wide.

Run:  python examples/website_fingerprinting.py
"""

from repro.analysis.figures import render_strip
from repro.core.fingerprint import FingerprintConfig, WebsiteFingerprinter
from repro.ml import DecisionTreeClassifier, train_test_split
from repro.ml.metrics import accuracy_score, f1_score
from repro.sim.engine import MS
from repro.workloads.websites import WebsiteCatalog

N_SITES = 6
TRACES_PER_SITE = 6


def main() -> None:
    cfg = FingerprintConfig(duration_ps=1 * MS)
    fingerprinter = WebsiteFingerprinter(cfg)
    catalog = WebsiteCatalog(N_SITES, seed=1)

    # Each capture is a declarative scenario (probe + browser-trace
    # replay); the spec is serializable data a sweep can ship anywhere.
    first = next(iter(catalog))
    spec = fingerprinter.scenario(first, trace_seed=1)
    print(f"one capture as data: {len(spec.agents)} agents, "
          f"cache_key {spec.cache_key()[:16]}...\n")

    print("fingerprint strips (back-offs per execution window):")
    for profile in list(catalog)[:3]:
        for trace_seed in (1, 2):
            trace = fingerprinter.capture(profile, trace_seed)
            strip = render_strip(trace.window_counts(cfg.n_windows))
            print(f"  {profile.name:12s} load {trace_seed}: |{strip}| "
                  f"({len(trace.backoff_times)} back-offs)")

    print(f"\ncollecting {N_SITES} sites x {TRACES_PER_SITE} traces ...")
    X, y, names = fingerprinter.collect_dataset(catalog, TRACES_PER_SITE)
    Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.3, seed=5)

    model = DecisionTreeClassifier(seed=3).fit(Xtr, ytr)
    pred = model.predict(Xte)
    accuracy = accuracy_score(yte, pred)
    print(f"decision-tree accuracy: {accuracy:.2f} "
          f"(random guess: {1 / N_SITES:.2f})")
    print(f"weighted F1: {f1_score(yte, pred, average='weighted'):.2f}")

    print("\nper-site predictions on the held-out traces:")
    for true, guessed in zip(yte, pred):
        marker = "ok " if true == guessed else "MISS"
        print(f"  {marker} actual={names[true]:12s} "
              f"predicted={names[guessed]}")


if __name__ == "__main__":
    main()
