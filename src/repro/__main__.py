"""Command-line entry point: ``python -m repro``.

Subcommands::

    python -m repro list                 # experiment catalog
    python -m repro run fig4 --workers 8 # one experiment, parallel sweep
    python -m repro report               # quick reproduction report

``run`` goes through the on-disk result cache (``.repro-cache/`` or
``$REPRO_CACHE_DIR``); ``--no-cache`` forces a fresh execution.
Arbitrary driver parameters pass through ``-p key=value`` (values are
parsed as JSON, falling back to strings).

For backwards compatibility, ``python -m repro`` with no subcommand
behaves like ``report``.
"""

from __future__ import annotations

import argparse
import contextlib
import gc
import json
import os
import sys

from repro.analysis.figures import FigureTable
from repro.analysis.report import quick_report
from repro.exp.registry import RegistryError, all_experiments
from repro.exp.runner import ExperimentParamError, run_experiment


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _parse_param(text: str) -> tuple[str, object]:
    """Parse one ``-p key=value`` override; value is JSON when possible."""
    key, sep, raw = text.partition("=")
    if not sep or not key:
        raise argparse.ArgumentTypeError(
            f"expected key=value, got {text!r}")
    try:
        value = json.loads(raw)
    except json.JSONDecodeError:
        value = raw
    return key, value


def iter_tables(value):
    """Yield every FigureTable reachable inside an experiment result."""
    if isinstance(value, FigureTable):
        yield value
    elif isinstance(value, dict):
        for item in value.values():
            yield from iter_tables(item)
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from iter_tables(item)


def _scale_text(scale: dict) -> str:
    return ", ".join(f"{k}={v}" for k, v in scale.items()) or "-"


@contextlib.contextmanager
def _gc_paused():
    """Run simulations with the cyclic GC paused.

    The event engine allocates hundreds of thousands of short-lived
    tuples per simulated trial; generation-0 collections cost several
    percent of wall time and never find garbage mid-trial (the object
    graphs live until the trial ends).  Reference counting still frees
    everything acyclic immediately; one collection at the end picks up
    the per-trial cycles (agents <-> system <-> simulator).
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
            gc.collect()


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_list(args) -> int:
    specs = all_experiments()
    if args.format == "md":
        print("| name | figure | parallel | paper claim |")
        print("|------|--------|----------|-------------|")
        for spec in specs:
            parallel = "yes" if spec.parallelizable else "-"
            print(f"| `{spec.name}` | {spec.figure} | {parallel} "
                  f"| {spec.claim} |")
        return 0
    table = FigureTable(
        f"Registered experiments ({len(specs)})",
        ["name", "figure", "parallel", "default scale", "paper claim"])
    for spec in specs:
        table.add_row(spec.name, spec.figure,
                      "yes" if spec.parallelizable else "-",
                      _scale_text(spec.default_scale), spec.claim)
    print(table.to_text())
    return 0


def cmd_run(args) -> int:
    params = dict(args.param or [])
    try:
        with _gc_paused():
            run = run_experiment(
                args.experiment, params, workers=args.workers,
                seed=args.seed, use_cache=not args.no_cache,
                cache_dir=args.cache_dir)
    except (RegistryError, ExperimentParamError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    rendered = "\n\n".join(t.to_text() for t in iter_tables(run.value))
    if rendered:
        print(rendered)
    else:
        print(run.value)
    source = "cache" if run.cached else (
        f"{run.trials} trial(s) in {run.elapsed_s:.1f}s")
    print(f"\n[{run.name}] result from {source} "
          f"(key {run.key[:12]}...)", file=sys.stderr)
    if args.save:
        with open(args.save, "w") as handle:
            handle.write(rendered or str(run.value))
            handle.write("\n")
        print(f"result written to {args.save}", file=sys.stderr)
    return 0


def cmd_bench(args) -> int:
    # No _gc_paused here: the bench harness pauses the GC itself so
    # every entry point measures under identical conditions.
    from repro.perf.cli import run_from_args

    return run_from_args(args)


def _auto_workers(requested: int | None) -> int | None:
    """Default the report to a parallel sweep on multi-core machines.

    ``map_trials`` is bit-identical serial vs parallel (deterministic
    per-trial seeds), so parallelism is purely a wall-clock knob; on a
    single-core machine this resolves to the serial path.  An explicit
    ``--workers N`` always wins (``--workers 1`` forces serial).
    """
    if requested is not None:
        return requested if requested > 1 else None
    count = os.cpu_count() or 1
    return min(count, 8) if count > 1 else None


def cmd_report(args) -> int:
    with _gc_paused():
        report = quick_report(workers=_auto_workers(args.workers),
                              use_cache=not args.no_cache,
                              cache_dir=args.cache_dir)
    print(report.to_markdown())
    if args.save:
        path = report.save(args.save)
        print(f"\nreport written to {path}", file=sys.stderr)
    return 0 if report.all_passed else 1


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def _add_execution_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="fan independent trials out over N worker "
                             "processes (report defaults to the CPU "
                             "count, capped at 8; run defaults to "
                             "serial; 1 forces serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="skip the on-disk result cache")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result cache directory (default: "
                             ".repro-cache or $REPRO_CACHE_DIR)")
    parser.add_argument("--save", metavar="PATH", default=None,
                        help="also write the output to PATH")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="LeakyHammer reproduction harness")
    # Legacy pre-subcommand flag; its own dest so a subcommand's --save
    # default cannot overwrite it during subparser parsing.
    parser.add_argument("--save", dest="legacy_save", metavar="PATH",
                        default=None, help=argparse.SUPPRESS)
    sub = parser.add_subparsers(dest="command")

    p_list = sub.add_parser(
        "list", help="show the experiment catalog from the registry")
    p_list.add_argument("--format", choices=("table", "md"),
                        default="table",
                        help="output format (md = markdown table)")
    p_list.set_defaults(func=cmd_list)

    p_run = sub.add_parser(
        "run", help="run one experiment (cached, optionally parallel)")
    p_run.add_argument("experiment", metavar="NAME",
                       help="experiment name (see `list`)")
    _add_execution_options(p_run)
    p_run.add_argument("--seed", type=int, default=None,
                       help="override the experiment seed (if it has one)")
    p_run.add_argument("-p", "--param", action="append",
                       type=_parse_param, metavar="KEY=VALUE",
                       help="driver parameter override (JSON value)")
    p_run.set_defaults(func=cmd_run)

    p_report = sub.add_parser(
        "report", help="run the quick reproduction report")
    _add_execution_options(p_report)
    p_report.set_defaults(func=cmd_report)

    p_bench = sub.add_parser(
        "bench", help="run the simulator performance micro-suite and "
                      "write BENCH_<timestamp>.json")
    from repro.perf.cli import add_bench_arguments
    add_bench_arguments(p_bench)
    p_bench.set_defaults(func=cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        # Legacy interface: `python -m repro [--save PATH]` == report.
        with _gc_paused():
            report = quick_report()
        print(report.to_markdown())
        if args.legacy_save:
            path = report.save(args.legacy_save)
            print(f"\nreport written to {path}", file=sys.stderr)
        return 0 if report.all_passed else 1
    if args.legacy_save and getattr(args, "save", None) is None:
        args.save = args.legacy_save
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
