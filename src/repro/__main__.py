"""Command-line entry point: ``python -m repro``.

Runs the quick reproduction report (scaled-down versions of the
headline experiments) and prints it; ``--save PATH`` also writes the
markdown to disk.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.report import quick_report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="LeakyHammer reproduction quick report")
    parser.add_argument("--save", metavar="PATH", default=None,
                        help="also write the markdown report to PATH")
    args = parser.parse_args(argv)

    report = quick_report()
    print(report.to_markdown())
    if args.save:
        path = report.save(args.save)
        print(f"\nreport written to {path}", file=sys.stderr)
    return 0 if report.all_passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
