"""Command-line entry point: ``python -m repro``.

Subcommands::

    python -m repro list [--tag prac]     # experiment catalog
    python -m repro run fig4 --workers 8  # one experiment, parallel sweep
    python -m repro run fig4 --backend shards --workers 4
    python -m repro run fig4 --out r.json # persist tables + raw data
    python -m repro report                # quick reproduction report
    python -m repro scenario list         # scenario presets + kinds
    python -m repro scenario describe prac-covert
    python -m repro scenario run prac-probe -p system.defense.nbo=64
    python -m repro cache stats [--json]  # result-cache introspection
    python -m repro cache prune --older-than 7d
    python -m repro serve --port 8123     # results-as-a-service HTTP API
    python -m repro artifacts fig3 --format md
    python -m repro worker                # sweep-worker daemon (internal)
    python -m repro worker --connect HOST:PORT --reconnect
                                          # dial into a TCP fleet
    python -m repro fleet listen --port 7641   # stand up a fleet hub
    python -m repro fleet status --connect HOST:PORT
    python -m repro stats [--watch 2]     # scrape a server's /metrics
    python -m repro trace record fig4 --backend shards --workers 4
    python -m repro trace summary TRACE_fig4.ndjson
    python -m repro trace export TRACE_fig4.ndjson  # Chrome trace JSON

``run`` and ``scenario run`` go through the on-disk result cache
(``.repro-cache/`` or ``$REPRO_CACHE_DIR``); ``--no-cache`` forces a
fresh execution.  Arbitrary driver parameters pass through ``-p
key=value`` (values are parsed as JSON, falling back to strings); for
scenarios the key is a dotted path into the spec
(``agents.0.params.max_samples=64``).

Sweeps execute through a pluggable backend (``serial``, ``pool``, or
the ``shards`` worker fleet; see :mod:`repro.dist`): ``--backend NAME``
wins over the ``REPRO_BACKEND`` environment variable, which wins over
the ``auto`` heuristic.  When stderr is a terminal, sweeps show a live
``k/N trials (cache: h hits)`` line.

For backwards compatibility, ``python -m repro`` with no subcommand
behaves like ``report``.
"""

from __future__ import annotations

import argparse
import contextlib
import gc
import json
import os
import sys

from repro.analysis.figures import FigureTable, iter_tables
from repro.analysis.report import quick_report
from repro.exp.registry import RegistryError, all_experiments
from repro.exp.runner import ExperimentParamError, run_experiment


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _parse_param(text: str) -> tuple[str, object]:
    """Parse one ``-p key=value`` override; value is JSON when possible."""
    key, sep, raw = text.partition("=")
    if not sep or not key:
        raise argparse.ArgumentTypeError(
            f"expected key=value, got {text!r}")
    try:
        value = json.loads(raw)
    except json.JSONDecodeError:
        value = raw
    return key, value


def _scale_text(scale: dict) -> str:
    return ", ".join(f"{k}={v}" for k, v in scale.items()) or "-"


def _json_safe(value):
    """Reduce an experiment result to JSON-encodable raw data."""
    from repro.exp.cache import canonicalize

    return canonicalize(value)


def _write_json(path: str, doc: dict) -> None:
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=1, sort_keys=True)
        handle.write("\n")


@contextlib.contextmanager
def _execution(args):
    """Install the sweep-execution context a subcommand asked for:
    backend selection (``--backend``), the per-trial result cache
    (streams results as trials land; disabled by ``--no-cache``), and
    the live TTY progress line."""
    from repro.dist import check_backend_name, execution
    from repro.dist.progress import tty_progress

    backend = getattr(args, "backend", None)
    if backend is not None:
        check_backend_name(backend)  # BackendError before any work
    trial_cache = None
    if not getattr(args, "no_cache", False):
        from repro.exp.cache import ResultCache

        trial_cache = ResultCache(getattr(args, "cache_dir", None))
    progress = tty_progress()
    with execution(backend=backend, trial_cache=trial_cache,
                   progress=progress):
        try:
            yield
        finally:
            if progress is not None:
                progress.finish()


@contextlib.contextmanager
def _gc_paused():
    """Run simulations with the cyclic GC paused.

    The event engine allocates hundreds of thousands of short-lived
    tuples per simulated trial; generation-0 collections cost several
    percent of wall time and never find garbage mid-trial (the object
    graphs live until the trial ends).  Reference counting still frees
    everything acyclic immediately; one collection at the end picks up
    the per-trial cycles (agents <-> system <-> simulator).
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
            gc.collect()


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_list(args) -> int:
    specs = all_experiments()
    if args.tag:
        specs = [s for s in specs if args.tag in s.tags]
        if not specs:
            tags = sorted({t for s in all_experiments() for t in s.tags})
            print(f"no experiment tagged {args.tag!r}; known tags: "
                  f"{', '.join(tags)}", file=sys.stderr)
            return 2
    if args.format == "md":
        print("| name | figure | parallel | paper claim |")
        print("|------|--------|----------|-------------|")
        for spec in specs:
            parallel = "yes" if spec.parallelizable else "-"
            print(f"| `{spec.name}` | {spec.figure} | {parallel} "
                  f"| {spec.claim} |")
        return 0
    label = f" tagged '{args.tag}'" if args.tag else ""
    table = FigureTable(
        f"Registered experiments{label} ({len(specs)})",
        ["name", "figure", "parallel", "default scale", "paper claim"])
    for spec in specs:
        table.add_row(spec.name, spec.figure,
                      "yes" if spec.parallelizable else "-",
                      _scale_text(spec.default_scale), spec.claim)
    print(table.to_text())
    return 0


def cmd_run(args) -> int:
    from repro.dist import BackendError

    params = dict(args.param or [])
    try:
        with _execution(args), _gc_paused():
            run = run_experiment(
                args.experiment, params, workers=args.workers,
                seed=args.seed, use_cache=not args.no_cache,
                cache_dir=args.cache_dir)
    except (RegistryError, ExperimentParamError, BackendError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    rendered = "\n\n".join(t.to_text() for t in iter_tables(run.value))
    if rendered:
        print(rendered)
    else:
        print(run.value)
    source = "cache" if run.cached else (
        f"{run.trials} trial(s) in {run.elapsed_s:.1f}s")
    print(f"\n[{run.name}] result from {source} "
          f"(key {run.key[:12]}...)", file=sys.stderr)
    if args.save:
        with open(args.save, "w") as handle:
            handle.write(rendered or str(run.value))
            handle.write("\n")
        print(f"result written to {args.save}", file=sys.stderr)
    if args.out:
        _write_json(args.out, {
            "experiment": run.name,
            "params": _json_safe(run.params),
            "key": run.key,
            "cached": run.cached,
            "elapsed_s": run.elapsed_s,
            "tables": [t.to_text() for t in iter_tables(run.value)],
            "data": _json_safe(run.value),
        })
        print(f"json results written to {args.out}", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# Scenario subcommands
# ----------------------------------------------------------------------
def _load_scenario(args):
    """Resolve the spec from a preset name or a JSON file, then apply
    the ``-p`` dotted-path overrides."""
    from repro.scenario import ScenarioSpec, get_preset

    if args.file and args.preset:
        raise ValueError(
            f"both preset {args.preset!r} and --file {args.file!r} given; "
            "name exactly one spec source")
    if args.file:
        with open(args.file) as handle:
            spec = ScenarioSpec.from_json(handle.read())
    elif args.preset:
        spec = get_preset(args.preset)
    else:
        raise ValueError("name a preset or pass --file spec.json")
    overrides = list(args.param or [])
    if not overrides:
        return spec
    data = spec.to_dict()
    for path, value in overrides:
        _apply_override(data, path, value)
    return ScenarioSpec.from_dict(data)


def _apply_override(data, path: str, value) -> None:
    """Set a dotted path inside the spec's dict form.

    ``system.defense.nbo=64`` reaches into the system config,
    ``agents.0.params.max_samples=128`` into an agent's params.  New
    keys may be created at the final params level only; everything
    else must already exist (typos fail loudly).
    """
    keys = path.split(".")
    node = data
    trail = []
    for key in keys[:-1]:
        trail.append(key)
        try:
            node = node[int(key)] if isinstance(node, list) else node[key]
        except (KeyError, IndexError, ValueError):
            raise ValueError(
                f"override path {path!r}: no {'.'.join(trail)!r} in the "
                "spec") from None
    last = keys[-1]
    if isinstance(node, list):
        try:
            node[int(last)] = value
        except (IndexError, ValueError):
            raise ValueError(
                f"override path {path!r}: bad list index {last!r}") from None
    elif isinstance(node, dict):
        if last not in node and trail and trail[-1] != "params":
            raise ValueError(
                f"override path {path!r}: unknown field {last!r} "
                f"(fields: {', '.join(node)})")
        node[last] = value
    else:
        raise ValueError(f"override path {path!r}: cannot index into "
                         f"{type(node).__name__}")


def cmd_scenario_list(args) -> int:
    from repro.scenario import (
        agent_kinds,
        measurement_kinds,
        preset_names,
    )

    table = FigureTable("Scenario presets", ["preset", "description"])
    for name, doc in preset_names().items():
        table.add_row(name, doc)
    print(table.to_text())

    kinds = FigureTable("Agent kinds", ["kind", "description"])
    for name, entry in sorted(agent_kinds().items()):
        kinds.add_row(name, entry.doc)
    print("\n" + kinds.to_text())

    measures = FigureTable("Measurement kinds", ["kind", "description"])
    for name, entry in sorted(measurement_kinds().items()):
        measures.add_row(name, entry.doc)
    print("\n" + measures.to_text())
    return 0


def cmd_scenario_describe(args) -> int:
    from repro.scenario import ScenarioError

    try:
        spec = _load_scenario(args)
    except (ScenarioError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(spec.describe())
    if args.json:
        print("\n" + spec.to_json())
    return 0


def cmd_scenario_run(args) -> int:
    from repro.exp.runner import run_scenario
    from repro.scenario import ScenarioError

    try:
        spec = _load_scenario(args)
    except (ScenarioError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        with _execution(args), _gc_paused():
            run = run_scenario(spec, use_cache=not args.no_cache,
                               cache_dir=args.cache_dir)
    except (ScenarioError, ValueError, RuntimeError) as exc:
        # ValueError: agent-class param validation (e.g. intensity out
        # of Eq. 2's range); RuntimeError: hard-limit exceeded.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    value = run.value
    print(f"scenario {value['name']!r}: final_now={value['final_now']} ps, "
          f"stages at {value['stage_starts']}")
    print("counters: " + json.dumps(value["counters"], sort_keys=True))
    for label, payload in value["data"].items():
        print(f"{label}: " + json.dumps(payload, sort_keys=True,
                                        default=str))
    source = "cache" if run.cached else f"ran in {run.elapsed_s:.1f}s"
    print(f"\n[{spec.name}] result from {source} "
          f"(key {run.key[:12]}...)", file=sys.stderr)
    if args.out:
        _write_json(args.out, {
            "scenario": spec.to_dict(),
            "key": run.key,
            "cached": run.cached,
            "elapsed_s": run.elapsed_s,
            "result": value,
        })
        print(f"json results written to {args.out}", file=sys.stderr)
    return 0


def cmd_bench(args) -> int:
    # No _gc_paused here: the bench harness pauses the GC itself so
    # every entry point measures under identical conditions.
    from repro.perf.cli import run_from_args

    return run_from_args(args)


def cmd_diffcheck(args) -> int:
    from repro.exp.registry import experiment_names
    from repro.perf.diffcheck import QUICK_EXPERIMENTS, run_diffcheck

    if args.experiment:
        try:
            experiments = [get_canonical_name(n) for n in args.experiment]
        except RegistryError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        fuzz = args.fuzz if args.fuzz is not None else 0
        fuzz_multi = args.fuzz_multi if args.fuzz_multi is not None else 0
    elif args.quick:
        experiments = list(QUICK_EXPERIMENTS)
        fuzz = args.fuzz if args.fuzz is not None else 20
        fuzz_multi = args.fuzz_multi if args.fuzz_multi is not None else 6
    else:
        # Default (and --all): the full registry sweep.
        experiments = experiment_names()
        fuzz = args.fuzz if args.fuzz is not None else 10
        fuzz_multi = args.fuzz_multi if args.fuzz_multi is not None else 10
    if args.spec:
        # Explicit spec files replace the fuzz corpus unless asked for.
        fuzz = args.fuzz if args.fuzz is not None else 0
        fuzz_multi = args.fuzz_multi if args.fuzz_multi is not None else 0
        if not args.experiment and not args.all and not args.quick:
            experiments = []
    from repro.dist import BackendError

    try:
        with _gc_paused():
            report = run_diffcheck(
                experiments=experiments, fuzz=fuzz,
                fuzz_seed=args.fuzz_seed, fuzz_multi=fuzz_multi,
                fuzz_multi_seed=args.fuzz_multi_seed,
                spec_files=args.spec,
                artifact_dir=args.artifact_dir, backend=args.backend,
                log=lambda msg: print(f"[diffcheck] {msg}",
                                      file=sys.stderr))
    except BackendError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.to_text())
    if not report.ok:
        print("\ndiffcheck: fast-forward results DIVERGED from the "
              "event-accurate baseline; see the artifact spec(s) above",
              file=sys.stderr)
        return 1
    return 0


# ----------------------------------------------------------------------
# Cache + worker subcommands
# ----------------------------------------------------------------------
def _parse_age(text: str) -> float:
    """``7d`` / ``12h`` / ``30m`` / ``45s`` / plain seconds -> seconds."""
    text = text.strip().lower()
    units = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}
    scale = 1.0
    if text and text[-1] in units:
        scale = units[text[-1]]
        text = text[:-1]
    try:
        value = float(text)
    except ValueError:
        raise ValueError(
            f"bad age {text!r}: expected a number with an optional "
            "s/m/h/d suffix (e.g. 7d, 12h, 1800)") from None
    if value < 0:
        raise ValueError("age must be >= 0")
    return value * scale


def _format_bytes(n: int) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n} B"
        n /= 1024
    return f"{n} B"  # pragma: no cover - unreachable


def _format_age(seconds: float | None) -> str:
    if seconds is None:
        return "-"
    if seconds >= 86400:
        return f"{seconds / 86400:.1f}d"
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


def cmd_cache(args) -> int:
    from repro.exp.cache import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.cache_command == "stats":
        stats = cache.stats()
        if args.json:
            # Machine-readable form: the exact dict the server exposes
            # on GET /v1/cache/stats (one code path, two transports).
            print(json.dumps(stats, indent=1, sort_keys=True))
            return 0
        table = FigureTable("Result cache", ["property", "value"])
        table.add_row("directory", stats["directory"])
        table.add_row("entries", stats["entries"])
        table.add_row("total size", _format_bytes(stats["total_bytes"]))
        table.add_row("oldest entry", _format_age(stats["oldest_age_s"]))
        table.add_row("newest entry", _format_age(stats["newest_age_s"]))
        print(table.to_text())
        return 0
    if args.cache_command == "prune":
        try:
            age = _parse_age(args.older_than)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        removed, freed = cache.prune(age)
        print(f"pruned {removed} entr{'y' if removed == 1 else 'ies'} "
              f"older than {args.older_than} "
              f"({_format_bytes(freed)} freed) from {cache.directory}")
        return 0
    if args.cache_command == "clear":
        removed = cache.clear()
        print(f"cleared {removed} entr{'y' if removed == 1 else 'ies'} "
              f"from {cache.directory}")
        return 0
    raise AssertionError(args.cache_command)  # pragma: no cover


def cmd_worker(args) -> int:
    from repro.dist.worker import main as worker_main

    argv = []
    if args.no_warm:
        argv.append("--no-warm")
    if args.connect:
        argv.extend(["--connect", args.connect,
                     "--retry", str(args.retry)])
        if args.reconnect:
            argv.append("--reconnect")
    return worker_main(argv)


# ----------------------------------------------------------------------
# Fleet subcommands
# ----------------------------------------------------------------------
def _fleet_secret() -> str | None:
    from repro.dist.shards import SECRET_ENV

    return os.environ.get(SECRET_ENV) or None


def cmd_fleet_listen(args) -> int:
    """A standalone fleet hub: accept + authenticate workers and print
    join/refusal events — the connectivity check an operator runs while
    bringing hosts up, before pointing a sweep at the same port."""
    import queue
    import time as time_mod

    from repro.dist.net import FleetServer
    from repro.exp.cache import code_fingerprint

    secret = _fleet_secret()
    if not secret:
        from repro.dist.shards import SECRET_ENV

        print(f"error: fleet listen requires the shared secret in "
              f"{SECRET_ENV} (never passed on the command line)",
              file=sys.stderr)
        return 2

    def on_event(kind: str, detail: str) -> None:
        print(f"[fleet] {kind}: {detail}", flush=True)

    outq: queue.Queue = queue.Queue()
    fleet: list = []
    try:
        server = FleetServer(args.host, args.port, secret=secret,
                             fingerprint=code_fingerprint(),
                             fleet=fleet, outq=outq, on_event=on_event)
    except OSError as exc:
        print(f"error: cannot listen on {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2
    print(f"[fleet] fingerprint: {code_fingerprint()[:12]}  "
          f"(workers must match; Ctrl-C to stop)", flush=True)
    try:
        while True:
            # Joins/refusals print from the server threads; this loop
            # only prunes dead connections so the count stays honest.
            time_mod.sleep(1.0)
            fleet[:] = [s for s in fleet if s.alive]
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        for shard in fleet:
            shard.shutdown()
    return 0


def cmd_fleet_status(args) -> int:
    from repro.dist.net import parse_hostport, query_status
    from repro.dist.protocol import HandshakeError

    secret = _fleet_secret()
    if not secret:
        from repro.dist.shards import SECRET_ENV

        print(f"error: fleet status requires the shared secret in "
              f"{SECRET_ENV}", file=sys.stderr)
        return 2
    try:
        host, port = parse_hostport(args.connect)
        doc = query_status(host, port, secret=secret)
    except (ValueError, HandshakeError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(doc, indent=1, sort_keys=True))
        return 0
    fingerprint = str(doc.get("fingerprint", ""))
    print(f"fleet at {doc.get('listen')}  "
          f"(protocol v{doc.get('protocol_version')}, "
          f"fingerprint {fingerprint[:12]})")
    refused = doc.get("refused_count", 0)
    if refused:
        print(f"refused connections: {refused} "
              f"(last: {doc.get('last_refusal')})")
    workers = doc.get("workers", [])
    if not workers:
        print("no workers connected")
        return 0
    table = FigureTable(
        f"Connected workers ({len(workers)})",
        ["id", "transport", "version", "fingerprint", "in-flight",
         "trials", "state"])
    for worker in workers:
        state = ("ready" if worker.get("ready") else "handshaking"
                 ) if worker.get("alive") else "dead"
        table.add_row(worker.get("id"), worker.get("transport"),
                      worker.get("version"),
                      str(worker.get("fingerprint"))[:12],
                      worker.get("in_flight"),
                      worker.get("trials_done", 0), state)
    print(table.to_text())
    metrics_doc = doc.get("metrics")
    if metrics_doc:
        interesting = _metrics_rows(
            metrics_doc, prefix=("repro_dist_", "repro_sweep_",
                                 "repro_fleet_", "repro_engine_",
                                 "repro_ff_"))
        if interesting:
            table = FigureTable("Coordinator telemetry",
                                ["metric", "labels", "value"])
            for row in interesting:
                table.add_row(*row)
            print(table.to_text())
    return 0


# ----------------------------------------------------------------------
# Telemetry subcommands: stats + trace
# ----------------------------------------------------------------------
def _metrics_rows(metrics_doc: dict, *, prefix=None) -> list[tuple]:
    """Flatten a registry snapshot document into table rows."""
    rows: list[tuple] = []
    for name in sorted(metrics_doc):
        if prefix is not None and not name.startswith(prefix):
            continue
        for sample in metrics_doc[name].get("samples", []):
            labels = sample.get("labels") or {}
            label_text = ",".join(f"{k}={v}" for k, v in
                                  sorted(labels.items())) or "-"
            value = sample.get("value", 0)
            if isinstance(value, float) and value == int(value):
                value = int(value)
            rows.append((name, label_text, value))
    return rows


def _fetch_metrics(target: str) -> dict:
    """Scrape a running server's registry as the JSON snapshot."""
    import urllib.request

    from repro.dist.net import parse_hostport

    host, port = parse_hostport(target)
    url = f"http://{host}:{port}/metrics?format=json"
    with urllib.request.urlopen(url, timeout=10.0) as response:
        doc = json.loads(response.read().decode("utf-8"))
    return doc.get("metrics", {})


def cmd_stats(args) -> int:
    import time as time_mod

    prefix = tuple(args.prefix) if args.prefix else None
    while True:
        try:
            metrics_doc = _fetch_metrics(args.connect)
        except (OSError, ValueError) as exc:
            print(f"error: cannot scrape {args.connect}: {exc}",
                  file=sys.stderr)
            return 2
        if args.json:
            if prefix is not None:
                metrics_doc = {k: v for k, v in metrics_doc.items()
                               if k.startswith(prefix)}
            print(json.dumps(metrics_doc, indent=1, sort_keys=True))
        else:
            rows = _metrics_rows(metrics_doc, prefix=prefix)
            table = FigureTable(
                f"Telemetry of {args.connect} ({len(rows)} series)",
                ["metric", "labels", "value"])
            for row in rows:
                table.add_row(*row)
            print(table.to_text())
        if not args.watch:
            return 0
        time_mod.sleep(args.watch)
        print()


def cmd_trace_record(args) -> int:
    from repro.dist import BackendError
    from repro.obs import trace

    params = dict(args.param or [])
    out = args.out or f"TRACE_{args.experiment}.ndjson"
    try:
        trace.start(out)
    except OSError as exc:
        print(f"error: cannot write trace to {out!r}: {exc}",
              file=sys.stderr)
        return 2
    try:
        with _execution(args), _gc_paused():
            run = run_experiment(
                args.experiment, params, workers=args.workers,
                seed=args.seed, use_cache=not args.no_cache,
                cache_dir=args.cache_dir)
    except (RegistryError, ExperimentParamError, BackendError) as exc:
        trace.stop()
        print(f"error: {exc}", file=sys.stderr)
        return 2
    events = trace.stop()
    summary = trace.summarize(events)
    if run.cached:
        print(f"note: [{run.name}] was a result-cache hit — no trials "
              "ran, so the trace has no sweep; rerun with --no-cache "
              "to record one", file=sys.stderr)
    print(json.dumps(summary, indent=1, sort_keys=True))
    print(f"trace written to {out} ({summary['events']} events)",
          file=sys.stderr)
    return 0


def _load_trace(path: str):
    from repro.obs import trace

    try:
        return trace.load_ndjson(path)
    except OSError as exc:
        print(f"error: cannot read trace {path!r}: {exc}",
              file=sys.stderr)
        return None


def cmd_trace_summary(args) -> int:
    from repro.obs import trace

    events = _load_trace(args.trace)
    if events is None:
        return 2
    print(json.dumps(trace.summarize(events), indent=1, sort_keys=True))
    return 0


def cmd_trace_export(args) -> int:
    from repro.obs import trace

    events = _load_trace(args.trace)
    if events is None:
        return 2
    doc = trace.chrome_trace(events)
    base = args.trace
    if base.endswith(".ndjson"):
        base = base[:-len(".ndjson")]
    out = args.out or f"{base}.chrome.json"
    with open(out, "w") as handle:
        json.dump(doc, handle, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out} ({len(doc['traceEvents'])} trace events); "
          "open it in about://tracing or https://ui.perfetto.dev",
          file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# Serve + artifacts subcommands
# ----------------------------------------------------------------------
def cmd_serve(args) -> int:
    from repro.dist import BackendError, check_backend_name
    from repro.serve.server import run_server

    if args.backend is not None:
        try:
            check_backend_name(args.backend)
        except BackendError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    return run_server(args.host, args.port, backend=args.backend,
                      workers=args.workers, cache_dir=args.cache_dir,
                      drain_s=args.drain_timeout)


def cmd_artifacts(args) -> int:
    from repro.serve.artifacts import (
        ArtifactError,
        CONTENT_TYPES,
        render_artifact,
    )

    params = dict(args.param or [])
    try:
        from repro.exp.registry import get_experiment

        if args.quick:
            spec = get_experiment(args.experiment)
            if spec.quick is None:
                print(f"error: experiment {args.experiment!r} has no "
                      "quick parameterization", file=sys.stderr)
                return 2
            merged = dict(spec.quick)
            merged.update(params)
            params = merged
        # Cache-aware: a cached result renders instantly, a miss
        # computes through the same path as `repro run` (so the key,
        # checksum, and bytes agree with the server's artifact GETs).
        with _execution(args), _gc_paused():
            run = run_experiment(args.experiment, params,
                                 use_cache=not args.no_cache,
                                 cache_dir=args.cache_dir)
    except (RegistryError, ExperimentParamError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    formats = (list(CONTENT_TYPES) if args.format == "all"
               else [args.format])
    if args.out_dir == "-":
        if len(formats) != 1 or formats[0] == "png":
            print("error: --out-dir - needs a single text format "
                  "(--format json or --format md)", file=sys.stderr)
            return 2
        _, payload = render_artifact(run.name, run.params, run.key,
                                     run.value, formats[0])
        sys.stdout.write(payload.decode("utf-8"))
        return 0

    os.makedirs(args.out_dir, exist_ok=True)
    for fmt in formats:
        try:
            _, payload = render_artifact(run.name, run.params, run.key,
                                         run.value, fmt)
        except ArtifactError as exc:
            # `all` renders what it can (e.g. a table-less result has
            # no chart); an explicitly requested format must succeed.
            if args.format == "all":
                print(f"skipping .{fmt}: {exc}", file=sys.stderr)
                continue
            print(f"error: {exc}", file=sys.stderr)
            return 2
        path = os.path.join(args.out_dir, f"{run.name}.{fmt}")
        with open(path, "wb") as handle:
            handle.write(payload)
        print(f"wrote {path} ({len(payload)} bytes)", file=sys.stderr)
    return 0


def get_canonical_name(name: str) -> str:
    from repro.exp.registry import get_experiment

    return get_experiment(name).name


def _auto_workers(requested: int | None) -> int | None:
    """Default the report to a parallel sweep on multi-core machines.

    ``map_trials`` is bit-identical serial vs parallel (deterministic
    per-trial seeds), so parallelism is purely a wall-clock knob; on a
    single-core machine this resolves to the serial path.  An explicit
    ``--workers N`` always wins (``--workers 1`` forces serial).
    """
    if requested is not None:
        return requested if requested > 1 else None
    count = os.cpu_count() or 1
    return min(count, 8) if count > 1 else None


def cmd_report(args) -> int:
    from repro.dist import BackendError

    try:
        with _execution(args), _gc_paused():
            report = quick_report(workers=_auto_workers(args.workers),
                                  use_cache=not args.no_cache,
                                  cache_dir=args.cache_dir)
    except BackendError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.to_markdown())
    if args.save:
        path = report.save(args.save)
        print(f"\nreport written to {path}", file=sys.stderr)
    return 0 if report.all_passed else 1


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def _add_backend_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--backend", default=None, metavar="NAME",
                        help="sweep execution backend: serial, pool, "
                             "shards, or auto (default; wins over "
                             "$REPRO_BACKEND)")


def _add_execution_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="fan independent trials out over N worker "
                             "processes (report defaults to the CPU "
                             "count, capped at 8; run defaults to "
                             "serial; 1 forces serial)")
    _add_backend_option(parser)
    parser.add_argument("--no-cache", action="store_true",
                        help="skip the on-disk result cache")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result cache directory (default: "
                             ".repro-cache or $REPRO_CACHE_DIR)")
    parser.add_argument("--save", metavar="PATH", default=None,
                        help="also write the output to PATH")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="LeakyHammer reproduction harness")
    # Legacy pre-subcommand flag; its own dest so a subcommand's --save
    # default cannot overwrite it during subparser parsing.
    parser.add_argument("--save", dest="legacy_save", metavar="PATH",
                        default=None, help=argparse.SUPPRESS)
    sub = parser.add_subparsers(dest="command")

    p_list = sub.add_parser(
        "list", help="show the experiment catalog from the registry")
    p_list.add_argument("--format", choices=("table", "md"),
                        default="table",
                        help="output format (md = markdown table)")
    p_list.add_argument("--tag", default=None, metavar="TAG",
                        help="only experiments carrying this registry tag "
                             "(e.g. prac, sweep, side-channel)")
    p_list.set_defaults(func=cmd_list)

    p_run = sub.add_parser(
        "run", help="run one experiment (cached, optionally parallel)")
    p_run.add_argument("experiment", metavar="NAME",
                       help="experiment name (see `list`)")
    _add_execution_options(p_run)
    p_run.add_argument("--seed", type=int, default=None,
                       help="override the experiment seed (if it has one)")
    p_run.add_argument("-p", "--param", action="append",
                       type=_parse_param, metavar="KEY=VALUE",
                       help="driver parameter override (JSON value)")
    p_run.add_argument("--out", metavar="PATH", default=None,
                       help="persist results as JSON: rendered tables "
                            "plus JSON-safe raw data")
    p_run.set_defaults(func=cmd_run)

    p_scenario = sub.add_parser(
        "scenario", help="describe/run declarative scenario specs")
    scenario_sub = p_scenario.add_subparsers(dest="scenario_command",
                                             required=True)

    s_list = scenario_sub.add_parser(
        "list", help="available presets, agent kinds, measurement kinds")
    s_list.set_defaults(func=cmd_scenario_list)

    def _add_scenario_source(parser) -> None:
        parser.add_argument("preset", nargs="?", default=None,
                            metavar="PRESET",
                            help="preset name (see `scenario list`)")
        parser.add_argument("--file", default=None, metavar="SPEC.json",
                            help="load the spec from a JSON file instead")
        parser.add_argument("-p", "--param", action="append",
                            type=_parse_param, metavar="PATH=VALUE",
                            help="dotted-path override into the spec, "
                                 "e.g. system.defense.nbo=64 or "
                                 "agents.0.params.max_samples=128")

    s_describe = scenario_sub.add_parser(
        "describe", help="print a spec (post-override) without running")
    _add_scenario_source(s_describe)
    s_describe.add_argument("--json", action="store_true",
                            help="also print the full JSON spec")
    s_describe.set_defaults(func=cmd_scenario_describe)

    s_run = scenario_sub.add_parser(
        "run", help="build + run a spec through the result cache")
    _add_scenario_source(s_run)
    _add_backend_option(s_run)
    s_run.add_argument("--no-cache", action="store_true",
                       help="skip the on-disk result cache")
    s_run.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="result cache directory")
    s_run.add_argument("--out", metavar="PATH", default=None,
                       help="persist the spec + result core as JSON")
    s_run.set_defaults(func=cmd_scenario_run)

    p_report = sub.add_parser(
        "report", help="run the quick reproduction report")
    _add_execution_options(p_report)
    p_report.set_defaults(func=cmd_report)

    p_bench = sub.add_parser(
        "bench", help="run the simulator performance micro-suite and "
                      "write BENCH_<timestamp>.json")
    from repro.perf.cli import add_bench_arguments
    add_bench_arguments(p_bench)
    p_bench.set_defaults(func=cmd_bench)

    p_diff = sub.add_parser(
        "diffcheck",
        help="differential equivalence check: every case runs with "
             "steady-state fast-forward off and on; results must be "
             "bit-identical")
    p_diff.add_argument("experiment", nargs="*", metavar="NAME",
                        help="experiment name(s) to check (default: the "
                             "full registry sweep)")
    p_diff.add_argument("--all", action="store_true",
                        help="sweep all registered experiments plus "
                             "fuzzed scenarios (the default)")
    p_diff.add_argument("--quick", action="store_true",
                        help="CI smoke subset: 3 experiments + 20 "
                             "fuzzed + 6 multi-agent scenario specs")
    p_diff.add_argument("--fuzz", type=int, default=None, metavar="N",
                        help="number of seeded random scenario specs "
                             "(default: 10 for the full sweep, 20 for "
                             "--quick, 0 with explicit names)")
    p_diff.add_argument("--fuzz-seed", type=int, default=0x5EED,
                        metavar="SEED", help="base seed of the fuzzed "
                                             "spec corpus")
    p_diff.add_argument("--fuzz-multi", type=int, default=None,
                        metavar="N",
                        help="number of seeded multi-agent periodic "
                             "specs driving the joint fast-forward "
                             "path (default: 10 for the full sweep, "
                             "6 for --quick, 0 with explicit names)")
    p_diff.add_argument("--fuzz-multi-seed", type=int, default=0xA117,
                        metavar="SEED",
                        help="base seed of the multi-agent fuzz corpus")
    p_diff.add_argument("--spec", action="append", metavar="SPEC.json",
                        default=None,
                        help="also check a scenario spec file (e.g. a "
                             "shrunken diffcheck-failure artifact)")
    p_diff.add_argument("--artifact-dir", default=None, metavar="DIR",
                        help="directory for shrunken failing-spec "
                             "artifacts (default: current directory)")
    _add_backend_option(p_diff)
    p_diff.set_defaults(func=cmd_diffcheck)

    p_cache = sub.add_parser(
        "cache", help="inspect / prune / clear the on-disk result cache")
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    for name, help_text in (
            ("stats", "entry count, total size, entry ages"),
            ("prune", "delete entries older than --older-than"),
            ("clear", "delete every entry")):
        c_sub = cache_sub.add_parser(name, help=help_text)
        c_sub.add_argument("--cache-dir", default=None, metavar="DIR",
                           help="result cache directory (default: "
                                ".repro-cache or $REPRO_CACHE_DIR)")
        if name == "prune":
            c_sub.add_argument("--older-than", required=True,
                               metavar="AGE",
                               help="age threshold, e.g. 7d, 12h, 30m, "
                                    "or plain seconds")
        if name == "stats":
            c_sub.add_argument("--json", action="store_true",
                               help="print the raw statistics document "
                                    "(same shape as GET /v1/cache/stats)")
        c_sub.set_defaults(func=cmd_cache)

    p_serve = sub.add_parser(
        "serve", help="HTTP results service: cached answers instantly, "
                      "misses as queued jobs with streamed progress")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8123,
                         help="TCP port (default: 8123; 0 = ephemeral, "
                              "printed on stderr)")
    _add_backend_option(p_serve)
    p_serve.add_argument("--workers", type=int, default=None, metavar="N",
                         help="worker fan-out for queued jobs")
    p_serve.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="result cache directory (default: "
                              ".repro-cache or $REPRO_CACHE_DIR)")
    p_serve.add_argument("--drain-timeout", type=float, default=10.0,
                         metavar="SECONDS",
                         help="grace period for the in-flight job on "
                              "SIGINT/SIGTERM (default: 10)")
    p_serve.set_defaults(func=cmd_serve)

    p_artifacts = sub.add_parser(
        "artifacts", help="render a cached experiment result as "
                          "json/md/png artifacts")
    p_artifacts.add_argument("experiment", metavar="NAME",
                             help="experiment name (see `list`)")
    p_artifacts.add_argument("--format", choices=("json", "md", "png",
                                                  "all"),
                             default="all",
                             help="artifact format(s) to render "
                                  "(default: all)")
    p_artifacts.add_argument("--out-dir", default=".", metavar="DIR",
                             help="output directory (default: current), "
                                  "or '-' to print a single json/md "
                                  "artifact to stdout")
    p_artifacts.add_argument("-p", "--param", action="append",
                             type=_parse_param, metavar="KEY=VALUE",
                             help="driver parameter override (JSON value)")
    p_artifacts.add_argument("--quick", action="store_true",
                             help="use the experiment's quick-report "
                                  "parameterization as the base")
    p_artifacts.add_argument("--no-cache", action="store_true",
                             help="recompute instead of using the cache")
    p_artifacts.add_argument("--cache-dir", default=None, metavar="DIR",
                             help="result cache directory")
    p_artifacts.set_defaults(func=cmd_artifacts)

    p_worker = sub.add_parser(
        "worker", help="sweep-worker daemon: executes NDJSON task "
                       "frames over stdin/stdout (spawned by the "
                       "shards backend) or a TCP fleet connection "
                       "(--connect HOST:PORT)")
    p_worker.add_argument("--no-warm", action="store_true",
                          help="skip preloading the simulator modules")
    p_worker.add_argument("--connect", metavar="HOST:PORT", default=None,
                          help="dial into a fleet coordinator instead "
                               "of serving stdin (shared secret read "
                               "from REPRO_FLEET_SECRET)")
    p_worker.add_argument("--reconnect", action="store_true",
                          help="with --connect: redial after a session "
                               "ends (standing fleet member)")
    p_worker.add_argument("--retry", type=float, default=60.0,
                          metavar="SECONDS",
                          help="with --connect: retry the initial "
                               "connection this long (default: 60)")
    p_worker.set_defaults(func=cmd_worker)

    p_stats = sub.add_parser(
        "stats", help="scrape a running `repro serve` instance's "
                      "telemetry registry (GET /metrics)")
    p_stats.add_argument("--connect", metavar="HOST:PORT",
                         default="127.0.0.1:8123",
                         help="server to scrape (default: 127.0.0.1:8123)")
    p_stats.add_argument("--json", action="store_true",
                         help="print the raw registry snapshot")
    p_stats.add_argument("--prefix", action="append", default=None,
                         metavar="PREFIX",
                         help="only metric families starting with this "
                              "prefix (repeatable)")
    p_stats.add_argument("--watch", type=float, default=None,
                         metavar="SECONDS",
                         help="re-scrape and re-render every SECONDS "
                              "until interrupted")
    p_stats.set_defaults(func=cmd_stats)

    p_trace = sub.add_parser(
        "trace", help="record and inspect trial-lifecycle traces "
                      "(queued -> dispatched -> running -> done)")
    trace_sub = p_trace.add_subparsers(dest="trace_command",
                                       required=True)
    t_record = trace_sub.add_parser(
        "record", help="run one experiment with lifecycle tracing on; "
                       "writes an NDJSON event stream")
    t_record.add_argument("experiment", metavar="NAME",
                          help="experiment name (see `list`)")
    _add_execution_options(t_record)
    t_record.add_argument("--seed", type=int, default=None,
                          help="override the experiment seed")
    t_record.add_argument("-p", "--param", action="append",
                          type=_parse_param, metavar="KEY=VALUE",
                          help="driver parameter override (JSON value)")
    t_record.add_argument("--out", metavar="PATH", default=None,
                          help="trace output path (default: "
                               "TRACE_<name>.ndjson)")
    t_record.set_defaults(func=cmd_trace_record)
    t_summary = trace_sub.add_parser(
        "summary", help="per-sweep rollup of a recorded trace: trials, "
                        "requeues, attempts, latency stats")
    t_summary.add_argument("trace", metavar="TRACE.ndjson",
                           help="NDJSON trace from `trace record` or "
                                "REPRO_TRACE=PATH")
    t_summary.set_defaults(func=cmd_trace_summary)
    t_export = trace_sub.add_parser(
        "export", help="convert a recorded trace to Chrome trace-event "
                       "JSON (about://tracing, Perfetto)")
    t_export.add_argument("trace", metavar="TRACE.ndjson",
                          help="NDJSON trace to convert")
    t_export.add_argument("--out", metavar="PATH", default=None,
                          help="output path (default: "
                               "<trace>.chrome.json)")
    t_export.set_defaults(func=cmd_trace_export)

    p_fleet = sub.add_parser(
        "fleet", help="TCP worker-fleet tools: stand up a listener and "
                      "inspect connected workers")
    fleet_sub = p_fleet.add_subparsers(dest="fleet_command",
                                       required=True)
    f_listen = fleet_sub.add_parser(
        "listen", help="accept + authenticate workers and print "
                       "join/refusal events (secret from "
                       "REPRO_FLEET_SECRET)")
    f_listen.add_argument("--host", default="127.0.0.1",
                          help="bind address (default: 127.0.0.1; use "
                               "0.0.0.0 for cross-machine workers)")
    f_listen.add_argument("--port", type=int, required=True,
                          help="TCP port to listen on")
    f_listen.set_defaults(func=cmd_fleet_listen)
    f_status = fleet_sub.add_parser(
        "status", help="query a fleet coordinator for its connected "
                       "workers, versions, and in-flight depth")
    f_status.add_argument("--connect", metavar="HOST:PORT",
                          required=True,
                          help="coordinator address to query")
    f_status.add_argument("--json", action="store_true",
                          help="print the raw status document")
    f_status.set_defaults(func=cmd_fleet_status)
    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.dist import install_signal_shutdown, shutdown_backends

    # SIGTERM must unwind (not hard-kill) so the shards fleet is torn
    # down; `repro serve` installs its own asyncio handlers instead.
    install_signal_shutdown()
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command is None:
            # Legacy interface: `python -m repro [--save PATH]` == report.
            with _gc_paused():
                report = quick_report()
            print(report.to_markdown())
            if args.legacy_save:
                path = report.save(args.legacy_save)
                print(f"\nreport written to {path}", file=sys.stderr)
            return 0 if report.all_passed else 1
        if args.legacy_save and getattr(args, "save", None) is None:
            args.save = args.legacy_save
        return args.func(args)
    except KeyboardInterrupt:
        # Ctrl-C mid-sweep: drain/kill the worker fleet before exiting
        # with the conventional 128+SIGINT code.
        shutdown_backends()
        print("\ninterrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    raise SystemExit(main())
