"""Steady-state fast-forward: analytic jumps over periodic probe traffic.

The paper's channels ride on long stretches of perfectly periodic
closed-loop probe traffic -- the same one- or two-row access cycle
repeating until a *disturbance* (periodic refresh, RFM, PRAC back-off,
a co-running agent) perturbs it.  Simulating those stretches event by
event is the dominant cost of every experiment.  This module skips
them analytically while staying **bit-identical** to event-accurate
execution; ``python -m repro diffcheck`` machine-checks that claim
over every registered experiment plus fuzzed scenarios.

How a jump works
----------------
A :class:`LatencyProbe <repro.cpu.probe.LatencyProbe>` calls
:meth:`FastForward.consider` at every *cycle boundary* (its address
round-robin just wrapped).  The engine then:

1. **Snapshots** the linear state of every component the cycle touches
   -- engine seq counter, probe progress, per-bank timestamps and bus
   reservations, memory-system counters, defense counters -- as a flat
   tuple of ints (``lin``), plus an invariant tuple (``inv``) of values
   that must not change at all between boundaries (open rows, block
   counts, armed wake, ABO/cool-down flags ...).
2. **Detects steady state** from three consecutive boundary snapshots:
   the two successive ``lin`` differences must be elementwise equal
   (the dynamics are translation-invariant, i.e. exactly periodic with
   period ``P``), the ``inv`` tuples identical, and the probe's sample
   pattern (latency deltas + addresses, relative to the boundary) must
   repeat.
3. **Bounds the jump**: ``N`` whole cycles are safe iff every
   synthesized event lands strictly *before* the engine's earliest
   pending event (the quiescence horizon -- a refresh tick, RFM grid
   point, recovery event or stale wake pending in any lane), before the
   probe's own ``stop_time``, within ``max_samples``, and within the
   defense's headroom (no activation counter may reach its trigger
   threshold mid-jump; see ``Defense.ff_cycle_cap``).
4. **Applies** the jump in bulk: every ``lin`` field advances by
   ``N x`` its per-cycle delta, and the probe's sample log is extended
   with ``N`` copies of the boundary cycle's sample pattern shifted by
   multiples of ``P``.  Simulated time itself needs no touch-up -- the
   probe schedules its next issue at the post-jump timestamp and the
   event engine leaps there, which is where the dispatch savings come
   from.

Safety invariants (why this is exact, not approximate)
------------------------------------------------------
* A jump only happens when the request queue is empty, the probe is
  the only live activity, and every pending event lies beyond the
  synthesized window -- so nothing can observe or perturb the skipped
  iterations.
* A jump never synthesizes beyond the active ``run(until=T)`` horizon
  either: a caller that pauses the simulation and mutates state
  between runs (installs a block, starts an agent, schedules an
  event) sees exactly the event-accurate state at ``T``.
* Equal successive differences over a full cycle are required on
  *every* tracked field; anything non-linear (a counter reset, a block
  interval, a first-touch materialization) breaks the equality and the
  engine silently falls back to event-accurate execution.
* Trigger thresholds are never crossed inside a jump: the defense caps
  ``N`` so every counter stays strictly below its threshold, and the
  crossing iteration runs live.
* Conservative caps are always safe: jumping fewer cycles than allowed
  just leaves more iterations to run event-accurately.

Process-wide switches
---------------------
``SystemConfig.fast_forward`` opts a single system in or out; ``None``
(the default) resolves through :func:`resolve_enabled`: a
:func:`forced` override (used by the diffcheck harness) beats the
config field, which beats the ``REPRO_FAST_FORWARD`` environment
variable (``off`` disables), which beats the default (**on** -- the
equivalence suite gates the default, see ROADMAP).
"""

from __future__ import annotations

import os
from collections import deque
from contextlib import contextmanager
from math import gcd
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system import MemorySystem

#: Environment switch consulted by :func:`resolve_enabled`.
ENV_VAR = "REPRO_FAST_FORWARD"

#: Process-wide forced override: "on", "off", or None (no override).
_forced: str | None = None

#: Process-wide engagement totals (diffcheck engagement evidence).
_totals = {"jumps": 0, "cycles": 0, "samples": 0, "joint_jumps": 0}

#: Consecutive failed steady-state checks before a probe's detection
#: backs off, and the backoff ceiling (in skipped cycle boundaries).
_BACKOFF_AFTER = 4
_BACKOFF_MAX = 64

#: Joint-detection bounds: boundary snapshots kept per system, the
#: pending-event count above which the foreign-horizon scan falls back
#: to the conservative ``next_event_time``, and the cap on the
#: combined-period LCM hint (in multiples of the longest per-agent
#: period) beyond which superposition detection is not worth chasing.
_JOINT_HISTORY = 48
_JOINT_SCAN_LIMIT = 96
_JOINT_LCM_CAP = 64

#: ``_consider_single`` status codes: *stuck* (ineligible, mismatched,
#: backed off, or steady-but-capped -- the joint detector's cue),
#: *detecting* (healthy track mid-detection, expected to jump within a
#: boundary or two), *jumped*.
_SINGLE_STUCK = 0
_SINGLE_DETECTING = 1
_SINGLE_JUMPED = 2


class _Holder:
    """A parked agent wake event, owned by the coordinator.

    Participating agents schedule their loop-continuation events
    through :meth:`FastForward.park` instead of the engine directly;
    the holder records the event's ``(time, seq)`` key so a joint jump
    can *shift* the wake across the synthesized window (re-inserting it
    with exactly the key event-accurate execution would have used).
    The superseded entry stays in its lane and dies on dispatch: a
    shift is strictly positive, so a dead entry is recognizable by its
    entry time disagreeing with the holder's."""

    __slots__ = ("agent", "time", "seq", "cb", "armed")

    def __init__(self, agent) -> None:
        self.agent = agent
        self.time = -1
        self.seq = -1
        self.cb = None
        #: True while the wake event is pending (agent parked); False
        #: from dispatch until the next park (agent mid-iteration).
        self.armed = False


def resolve_enabled(field: bool | None) -> bool:
    """Resolve a ``SystemConfig.fast_forward`` field to a live switch.

    Precedence: :func:`forced` override > explicit config field >
    ``REPRO_FAST_FORWARD`` env var > default (enabled).
    """
    if _forced is not None:
        return _forced == "on"
    if field is not None:
        return bool(field)
    env = os.environ.get(ENV_VAR, "").strip().lower()
    if env in ("off", "0", "false", "no"):
        return False
    return True


@contextmanager
def forced(mode: str | None):
    """Force fast-forward ``"on"``/``"off"`` for every system built
    inside the context, overriding config fields and the environment
    (how the diffcheck harness pins its baseline runs)."""
    if mode not in (None, "on", "off"):
        raise ValueError("forced mode must be 'on', 'off', or None")
    global _forced
    prev = _forced
    _forced = mode
    try:
        yield
    finally:
        _forced = prev


def forced_mode() -> str | None:
    """The active :func:`forced` override (``"on"``/``"off"``/None).

    Remote sweep backends ship this with every task so worker
    processes pin fast-forward exactly as the coordinator would."""
    return _forced


def totals() -> dict:
    """Process-wide jump totals since import (engagement evidence)."""
    return dict(_totals)


def absorb_totals(delta: dict) -> None:
    """Fold a worker process's per-trial jump totals into this
    process's, so engagement evidence (e.g. the diffcheck report's
    jump column) stays truthful when trials execute remotely."""
    for key in _totals:
        _totals[key] += int(delta.get(key, 0))


class _Track:
    """Per-probe detection state: two boundary snapshots plus backoff."""

    __slots__ = ("t0", "lin0", "t1", "lin1", "inv", "fails", "skip")

    def __init__(self) -> None:
        self.t0 = None
        self.lin0 = None
        self.t1 = None
        self.lin1 = None
        self.inv = None
        self.fails = 0
        self.skip = 0

    def reset(self) -> None:
        self.t0 = self.lin0 = self.t1 = self.lin1 = self.inv = None

    def push(self, t: int, lin, inv) -> None:
        if self.inv is not None and inv != self.inv:
            # Invariant churn: restart detection from this boundary.
            self.t1 = None
            self.lin1 = None
        self.t0 = self.t1
        self.lin0 = self.lin1
        self.t1 = t
        self.lin1 = lin
        self.inv = inv

    def fail(self) -> None:
        self.fails += 1
        if self.fails >= _BACKOFF_AFTER:
            self.skip = min(self.fails, _BACKOFF_MAX)
            self.reset()


def _diff(a, b):
    """Per-segment elementwise difference ``b - a`` of two nested lin
    tuples; ``None`` when the structures disagree (e.g. the bus
    reservation list changed length between boundaries, or a joint
    snapshot gained/lost a participant segment)."""
    if len(a) != len(b):
        return None
    out = []
    for sa, sb in zip(a, b):
        if len(sa) != len(sb):
            return None
        out.append(tuple(y - x for x, y in zip(sa, sb)))
    return tuple(out)


def _extrapolate(lin, delta, k: int):
    """``lin`` advanced ``k`` periods along per-period deltas."""
    return tuple(tuple(v + d * k for v, d in zip(seg, dseg))
                 for seg, dseg in zip(lin, delta))


class FastForward:
    """Coordinator owned by one :class:`~repro.system.MemorySystem`."""

    #: Indices into the snapshot's segment tuple.
    _ENGINE, _PROBE, _CTRL, _STATS, _DEFENSE = range(5)

    def __init__(self, system: "MemorySystem") -> None:
        self.system = system
        self.sim = system.sim
        self.controller = system.controller
        self.stats = system.stats
        self.defense = system.defense
        #: Whether the configured defense opted into analytic jumps.
        self.supported = bool(getattr(system.defense, "ff_supported",
                                      False))
        # Engagement diagnostics (per system).
        self.jumps = 0
        self.joint_jumps = 0
        self.cycles_skipped = 0
        self.samples_synthesized = 0
        #: Parked wake events by agent, in agent-registration order
        #: (dict preservation makes joint snapshots deterministic).
        self._holders: dict = {}
        self._dispatch_cb = self._dispatch
        #: Joint-detection state: boundary snapshots by timestamp plus
        #: their admission order, and the failure backoff counters.
        self._joint_hist: dict = {}
        self._joint_times: deque = deque()
        self._joint_fails = 0
        self._joint_skip = 0

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """Engagement summary (diffcheck / bench reporting)."""
        return {
            "supported": self.supported,
            "jumps": self.jumps,
            "joint_jumps": self.joint_jumps,
            "cycles_skipped": self.cycles_skipped,
            "samples_synthesized": self.samples_synthesized,
            "wakes_elided": self.controller.wakes_elided,
            "events_elided": self.sim.events_elided,
        }

    # ------------------------------------------------------------------
    # Holder rendezvous: participating agents park their next wake here
    # instead of scheduling it directly, which is what lets a joint jump
    # move every co-agent across the synthesized window at once.
    # ------------------------------------------------------------------
    def park(self, agent, time_ps: int, cb) -> None:
        """Schedule ``cb`` at ``time_ps`` through a shiftable holder."""
        holder = self._holders.get(agent)
        if holder is None:
            holder = self._holders[agent] = _Holder(agent)
        holder.time = time_ps
        holder.cb = cb
        holder.armed = True
        holder.seq = self.sim.schedule_call_at(time_ps, self._dispatch_cb,
                                               holder)

    def holder_of(self, agent):
        return self._holders.get(agent)

    def _dispatch(self, holder) -> None:
        if holder.time != self.sim.now:
            # Dead duplicate left behind by a holder shift (shifts are
            # strictly positive, so entry time < holder time).
            return
        holder.armed = False
        holder.cb()

    # ------------------------------------------------------------------
    def consider(self, probe) -> None:
        """Attempt a steady-state jump at ``probe``'s cycle boundary.

        Called by the probe from its completion callback at every cycle
        boundary, *before* the next issue event is scheduled -- so the
        engine's pending events are exactly the outside world (refresh
        ticks, defense timers, other agents), which is what makes the
        quiescence horizon a sound jump bound.

        Two detectors cooperate: the single-agent path (cheap, jumps
        the probe alone and is bounded by every co-agent's next event,
        which also covers co-agents that are *dormant* for a stretch),
        and the joint path, which detects a superposed periodic steady
        state across every holder-parked participant and jumps them all
        at once.
        """
        if not self.supported:
            return
        controller = self.controller
        if controller._queue_len or controller._backlog:
            return
        status = self._consider_single(probe)
        if status == _SINGLE_JUMPED:
            return
        if status == _SINGLE_STUCK and len(self._holders) > 1:
            # The joint detector only engages where the cheap path is
            # *stuck* (ineligible, pattern mismatch, backed off, or
            # steady-but-capped): a healthy single track mid-detection
            # will jump within a boundary or two on its own, and paying
            # a joint snapshot there is pure overhead.
            self._consider_joint(probe)

    def _consider_single(self, probe) -> int:
        """The PR-4 single-probe detector; returns one of the
        ``_SINGLE_*`` status codes (jumped / healthy mid-detection /
        stuck)."""
        # Dynamic eligibility: cheap attribute gates, checked every
        # boundary because jitter/sleep/bounds can be (re)configured
        # after construction.  Observers no longer disqualify outright:
        # replay-safe observers (see LatencyProbe._ff_observer_guard)
        # are vetted against the cycle's sample pattern in _snapshot.
        if (probe.jitter_ps
                or probe._sleeping_until is not None
                or (probe.max_samples is None and probe.stop_time is None)):
            return _SINGLE_STUCK
        track = getattr(probe, "_ff_track", None)
        if track is None:
            track = probe._ff_track = _Track()
        elif track.skip:
            track.skip -= 1
            return _SINGLE_STUCK

        snap = self._snapshot(probe)
        if snap is None:
            track.fail()
            return _SINGLE_STUCK
        lin, inv = snap
        now = self.sim.now
        if (track.lin0 is None or inv != track.inv):
            track.push(now, lin, inv)
            return _SINGLE_DETECTING
        period = now - track.t1
        if period <= 0 or track.t1 - track.t0 != period:
            track.fail()
            track.push(now, lin, inv)
            return _SINGLE_STUCK
        d1 = _diff(track.lin0, track.lin1)
        d2 = _diff(track.lin1, lin)
        if d1 is None or d2 is None or d1 != d2:
            track.fail()
            track.push(now, lin, inv)
            return _SINGLE_STUCK

        cycle_len = len(probe.addrs) * probe.accesses_per_addr
        dp = d1[self._PROBE]
        if dp[0] != period or dp[1] != cycle_len:
            # The probe's own progress must advance by exactly one full
            # cycle per period, or the pattern is not what we synthesize.
            track.fail()
            track.push(now, lin, inv)
            return _SINGLE_STUCK
        # The window's stats delta must be *exactly* one probe cycle's
        # worth of read services -- L requests, L reads, no writes,
        # kinds summing to L, and command counts implied by the kinds.
        # This is what proves the detection windows contained no other
        # agent's activity: any foreign request serviced inside them
        # would inflate these counters (even when, by coincidence, it
        # does so equally in both windows -- the case a pure equal-
        # differences check cannot see).  The jump window itself is
        # foreign-free by construction (the quiescence horizon), so the
        # extrapolated deltas must be too.
        d_act, d_pre, d_rd, d_wr, d_hit, d_miss, d_conf, d_req = \
            d1[self._STATS]
        if (d_req != cycle_len or d_rd != cycle_len or d_wr != 0
                or d_hit + d_miss + d_conf != cycle_len
                or d_act != d_miss + d_conf or d_pre != d_conf):
            track.fail()
            track.push(now, lin, inv)
            return _SINGLE_STUCK

        n = self._max_cycles(probe, now, period, cycle_len, lin, d1)
        if n <= 0:
            track.push(now, lin, inv)
            return _SINGLE_STUCK

        self._apply(probe, now, period, cycle_len, lin, d1, n)
        # Keep detection primed: the post-jump state sits exactly n
        # periods further along the same steady trajectory, so the next
        # live boundary can re-confirm (one diff) and jump again.
        track.fails = 0
        track.t0 = now + (n - 1) * period
        track.lin0 = tuple(
            tuple(v + d * (n - 1) for v, d in zip(seg, dseg))
            for seg, dseg in zip(lin, d1))
        track.t1 = now + n * period
        track.lin1 = tuple(
            tuple(v + d * n for v, d in zip(seg, dseg))
            for seg, dseg in zip(lin, d1))
        track.inv = inv
        # Any joint-boundary snapshots taken before this jump describe a
        # pre-jump trajectory; seeding a joint detection from them would
        # compute wrong differences.
        self._joint_hist.clear()
        self._joint_times.clear()
        return _SINGLE_JUMPED

    # ------------------------------------------------------------------
    def _snapshot(self, probe):
        """(lin, inv) across engine, probe, controller, stats, defense;
        ``None`` when a component cannot be snapshotted right now."""
        controller = self.controller
        plan_map = controller._addr_plan
        plans = []
        for addr in probe.addrs:
            plan = plan_map.get(addr)
            if plan is None:
                return None
            plans.append(plan)
        plans = tuple(plans)
        samples = probe.samples
        cycle_len = len(probe.addrs) * probe.accesses_per_addr
        if len(samples) < cycle_len:
            return None
        base = samples[-1].end_time
        pattern = tuple((s.end_time - base, s.delta, s.addr)
                        for s in samples[-cycle_len:])
        observer = probe.on_sample
        if observer is not None:
            # Observers are only compatible with jumps when replaying
            # them over synthesized samples provably cannot feed back
            # into the physical simulation.  The probe publishes a
            # (observer, guard) pair; the guard vets the cycle's
            # latency deltas (e.g. "no BACKOFF-classified delta" for a
            # receiver that sleeps on back-off).
            guard = probe._ff_observer_guard
            if (guard is None or guard[0] is not observer
                    or not guard[1]([d for (_, d, _a) in pattern])):
                return None
        sim = self.sim
        lin_engine = (sim._seq,)
        lin_probe = (probe._prev_end, len(samples))
        inv_probe = (pattern, probe._addr_idx, probe._repeat)
        lin_ctrl, inv_ctrl = controller.ff_snapshot(plans)
        lin_stats, inv_stats = self.stats.ff_snapshot()
        defense_snap = self.defense.ff_snapshot(plans)
        if defense_snap is None:
            return None
        lin_def, inv_def = defense_snap
        lin = (lin_engine, lin_probe, lin_ctrl, lin_stats, lin_def)
        inv = (inv_probe, inv_ctrl, inv_stats, inv_def, plans)
        return lin, inv

    def _max_cycles(self, probe, now: int, period: int, cycle_len: int,
                    lin, delta) -> int:
        """Largest safe jump, in whole cycles (conservative by design)."""
        horizon = self.sim.next_event_time()
        n = None
        if horizon is not None:
            # Every synthesized event must land strictly before the
            # earliest pending event; the latest synthetic timestamp is
            # the final cycle's completion at ``now + n * period``.
            n = (horizon - 1 - now) // period
        run_horizon = self.sim.run_horizon
        if run_horizon is not None:
            # Never synthesize beyond the active run(until=T) horizon:
            # iterations completing at or before T would have executed
            # inside this run anyway, while anything later must stay
            # live so that state the caller mutates *between* runs
            # (blocks, new agents, scheduled events) is honored.
            cap = (run_horizon - now) // period
            n = cap if n is None else min(n, cap)
        if probe.stop_time is not None:
            cap = (probe.stop_time - 1 - now) // period
            n = cap if n is None else min(n, cap)
        if probe.max_samples is not None:
            cap = (probe.max_samples - len(probe.samples)) // cycle_len
            n = cap if n is None else min(n, cap)
        # Eligibility guarantees max_samples or stop_time, so n is set.
        if n <= 0:
            return 0
        acts_per_cycle = delta[self._STATS][0]
        cap = self.defense.ff_cycle_cap(lin[self._DEFENSE],
                                        delta[self._DEFENSE],
                                        acts_per_cycle)
        if cap is not None:
            n = min(n, cap)
        return n

    def _apply(self, probe, now: int, period: int, cycle_len: int,
               lin, delta, n: int) -> None:
        """Advance every component by ``n`` cycles in bulk."""
        from repro.cpu.probe import LatencySample

        sim = self.sim
        d_seq = delta[self._ENGINE][0]
        sim._seq += d_seq * n
        # In steady state every event scheduled inside the window is
        # also dispatched inside it, so the per-cycle seq delta counts
        # the events this jump elided.
        sim._events_elided += d_seq * n

        samples = probe.samples
        pattern = [(s.end_time - now, s.delta, s.addr)
                   for s in samples[-cycle_len:]]
        base = len(samples)
        samples.extend(
            LatencySample(now + c * period + off, d, a)
            for c in range(1, n + 1) for (off, d, a) in pattern)
        probe._prev_end = now + n * period
        if probe.on_sample is not None:
            # Batched observer catch-up over the synthesized tail; the
            # guard vetted in _snapshot proved this cannot feed back.
            probe._ff_replay(samples[base:])

        plans = self._plans_of(probe)
        self.controller.ff_apply(plans, delta[self._CTRL], n)
        self.stats.ff_apply(delta[self._STATS], n)
        self.defense.ff_apply(plans, delta[self._DEFENSE], n)

        self.jumps += 1
        self.cycles_skipped += n
        self.samples_synthesized += n * cycle_len
        _totals["jumps"] += 1
        _totals["cycles"] += n
        _totals["samples"] += n * cycle_len

    def _plans_of(self, probe) -> tuple:
        plan_map = self.controller._addr_plan
        return tuple(plan_map[a] for a in probe.addrs)

    # ------------------------------------------------------------------
    # Joint (multi-agent) steady-state detection.
    #
    # A *superposed* periodic steady state is the composition of every
    # live participant's cycle: it repeats with the combined period P
    # (the LCM of the per-agent periods when they are commensurate).
    # Detection keys on *rendezvous boundaries*: instants where the
    # calling probe just completed a cycle and every other participant
    # is holder-parked (its next wake pending, nothing in flight).  The
    # joint snapshot taken there covers the engine, every participant's
    # progress, the controller, stats, and the defense; a bounded
    # history of such snapshots is scanned for a period P whose last
    # two windows are exact time-translates (equal differences, equal
    # invariants), with a capped LCM of the per-agent cycle periods
    # tried first as a fast-path candidate.
    # ------------------------------------------------------------------
    def _consider_joint(self, probe) -> None:
        if self._joint_skip:
            self._joint_skip -= 1
            return
        holders = self._holders
        participants = [a for a in holders if not a.done]
        if len(participants) < 2 or probe not in holders:
            return
        for agent in participants:
            if agent is not probe and not holders[agent].armed:
                # A co-agent has a request in flight: this boundary is
                # not a rendezvous, its snapshot would be mid-iteration.
                return
        snap = self._joint_snapshot(probe, participants)
        if snap is None:
            return
        lin, inv = snap
        now = self.sim.now

        hist = self._joint_hist
        period_delta = None
        candidates = []
        hint = self._combined_period_hint(participants)
        if hint:
            candidates.append(hint)
        for t1 in reversed(self._joint_times):
            p = now - t1
            # Ascending candidate periods: the smallest superposed
            # period both supported by history and steady wins.
            if p > 0 and p != hint and (t1 - p) in hist:
                candidates.append(p)
        for p in candidates:
            entry1 = hist.get(now - p)
            entry0 = hist.get(now - 2 * p)
            if entry1 is None or entry0 is None:
                continue
            if entry1[1] != inv or entry0[1] != inv:
                continue
            d1 = _diff(entry0[0], entry1[0])
            d2 = _diff(entry1[0], lin)
            if d1 is None or d2 is None or d1 != d2:
                continue
            period_delta = (p, d1)
            break
        self._joint_push(now, lin, inv)
        if period_delta is None:
            return
        period, delta = period_delta
        d_seq = delta[0][0]

        # Per-agent verification: every participant whose state moved
        # during the window must prove its own pattern is a translate
        # (and vet observer replay); unmoved participants are dormant
        # and simply bound the jump at their parked wake.
        active = []
        dormant = []
        for i, agent in enumerate(participants):
            d_agent = delta[1 + i]
            if any(d_agent):
                if not agent.ff_verify(now, period, d_agent, d_seq):
                    self._joint_fail()
                    return
                active.append((agent, d_agent))
            else:
                dormant.append(agent)
        if not active:
            return
        # Generalized purity: the window's stats delta must be exactly
        # the sum of the active participants' request production -- the
        # proof that the detection windows contained no unmodeled
        # activity (see the single-path commentary).
        reads = writes = 0
        for agent, d_agent in active:
            r, w = agent.ff_production(d_agent)
            reads += r
            writes += w
        d_act, d_pre, d_rd, d_wr, d_hit, d_miss, d_conf, d_req = delta[-2]
        if (d_req != reads + writes or d_rd != reads or d_wr != writes
                or d_hit + d_miss + d_conf != d_req
                or d_act != d_miss + d_conf or d_pre != d_conf):
            self._joint_fail()
            return

        n = self._joint_max_cycles(probe, active, dormant, now, period,
                                   lin, delta)
        if n <= 0:
            return
        self._joint_apply(probe, participants, active, now, period, lin,
                          inv, delta, n)

    def _joint_snapshot(self, probe, participants):
        """Joint (lin, inv) across engine, every participant, the
        controller, stats, and defense; ``None`` when any participant
        cannot be snapshotted right now."""
        plan_map = self.controller._addr_plan
        plans = []
        seen = set()
        for agent in participants:
            addrs = getattr(agent, "ff_addrs", None)
            if addrs is None:
                return None
            for addr in addrs():
                plan = plan_map.get(addr)
                if plan is None:
                    return None
                key = id(plan)
                if key not in seen:
                    seen.add(key)
                    plans.append(plan)
        plans = tuple(plans)
        segs = [(self.sim._seq,)]
        invs = [(probe.name, tuple(a.name for a in participants))]
        for agent in participants:
            state = agent.ff_state(self)
            if state is None:
                return None
            segs.append(state[0])
            invs.append(state[1])
        lin_ctrl, inv_ctrl = self.controller.ff_snapshot(plans)
        lin_stats, inv_stats = self.stats.ff_snapshot()
        defense_snap = self.defense.ff_snapshot(plans)
        if defense_snap is None:
            return None
        lin_def, inv_def = defense_snap
        segs.extend((lin_ctrl, lin_stats, lin_def))
        invs.extend((inv_ctrl, inv_stats, inv_def, plans))
        return tuple(segs), tuple(invs)

    def _combined_period_hint(self, participants) -> int | None:
        """Capped LCM of the per-agent cycle periods (fast-path
        candidate for the combined period); ``None`` when a participant
        has no established period or the LCM blows past the cap."""
        lcm = 1
        longest = 0
        for agent in participants:
            hint_fn = getattr(agent, "ff_period_hint", None)
            p = hint_fn() if hint_fn is not None else None
            if not p or p <= 0:
                return None
            lcm = lcm * p // gcd(lcm, p)
            if p > longest:
                longest = p
            if lcm > longest * _JOINT_LCM_CAP:
                return None
        return lcm

    def _joint_push(self, t: int, lin, inv) -> None:
        hist = self._joint_hist
        if t not in hist:
            self._joint_times.append(t)
            if len(self._joint_times) > _JOINT_HISTORY:
                hist.pop(self._joint_times.popleft(), None)
        hist[t] = (lin, inv)

    def _joint_fail(self) -> None:
        self._joint_fails += 1
        if self._joint_fails >= _BACKOFF_AFTER:
            self._joint_skip = min(self._joint_fails, _BACKOFF_MAX)
            self._joint_hist.clear()
            self._joint_times.clear()

    def _foreign_horizon(self, shifting) -> int | None:
        """Earliest pending event that is *not* managed by this jump:
        excludes the wake events of participants about to be shifted
        and dead holder duplicates, keeps everything else (refresh
        ticks, defense timers, dormant participants' wakes, unmanaged
        agents).  Falls back to the plain quiescence horizon when the
        pending set is too large to scan."""
        sim = self.sim
        if sim.pending_events > _JOINT_SCAN_LIMIT:
            return sim.next_event_time()
        dispatch = self._dispatch_cb
        best = None
        for entry in sim.iter_pending():
            if entry[2] is dispatch:
                holder = entry[3]
                if entry[0] != holder.time:
                    continue  # dead duplicate from an earlier shift
                if holder in shifting:
                    continue  # will be moved past the window
            t = entry[0]
            if best is None or t < best:
                best = t
        return best

    def _joint_max_cycles(self, probe, active, dormant, now: int,
                          period: int, lin, delta) -> int:
        holders = self._holders
        shifting = {holders[agent] for agent, _ in active
                    if agent is not probe}
        horizon = self._foreign_horizon(shifting)
        n = None
        if horizon is not None:
            n = (horizon - 1 - now) // period
        run_horizon = self.sim.run_horizon
        if run_horizon is not None:
            cap = (run_horizon - now) // period
            n = cap if n is None else min(n, cap)
        for agent, d_agent in active:
            cap = agent.ff_cap(now, period, d_agent)
            if cap is not None:
                n = cap if n is None else min(n, cap)
        for agent in dormant:
            # Redundant with the foreign horizon (a dormant wake is a
            # pending event) but kept explicit: no synthesized window
            # may contain a dormant participant's wake-up.
            cap = (holders[agent].time - 1 - now) // period
            n = cap if n is None else min(n, cap)
        if n is None or n <= 0:
            return 0
        cap = self.defense.ff_cycle_cap(lin[-1], delta[-1], delta[-2][0])
        if cap is not None:
            n = min(n, cap)
        return n

    def _joint_apply(self, probe, participants, active, now: int,
                     period: int, lin, inv, delta, n: int) -> None:
        """Advance every participant by ``n`` combined periods."""
        sim = self.sim
        d_seq = delta[0][0]
        sim._seq += d_seq * n
        sim._events_elided += d_seq * n
        synthesized = 0
        for agent, d_agent in active:
            synthesized += agent.ff_jump(now, period, n, d_agent)
        shift = period * n
        seq_shift = d_seq * n
        holders = self._holders
        for agent, _d in active:
            if agent is probe:
                # The caller is mid-callback; it re-parks itself at the
                # post-jump timestamp when consider() returns.
                continue
            holder = holders[agent]
            holder.time += shift
            holder.seq += seq_shift
            sim.push_entry(holder.time, holder.seq, self._dispatch_cb,
                           holder)
        plans = inv[-1]
        self.controller.ff_apply(plans, delta[-3], n)
        self.stats.ff_apply(delta[-2], n)
        self.defense.ff_apply(plans, delta[-1], n)

        self.jumps += 1
        self.joint_jumps += 1
        self.cycles_skipped += n
        self.samples_synthesized += synthesized
        _totals["jumps"] += 1
        _totals["joint_jumps"] += 1
        _totals["cycles"] += n
        _totals["samples"] += synthesized

        # Cross-reset: single-agent tracks now describe a pre-jump
        # trajectory; re-seed the joint history with the extrapolated
        # boundary pair so the next rendezvous can re-confirm with one
        # more live period and jump again.
        for agent in participants:
            track = getattr(agent, "_ff_track", None)
            if track is not None:
                track.reset()
                # A short single-path skip keeps those boundaries
                # reporting *stuck*, so the joint detector (whose
                # re-seeded history can re-confirm with one more live
                # window) is consulted immediately instead of waiting
                # out a fresh single-track detection.
                track.skip = 2
        self._joint_fails = 0
        self._joint_hist.clear()
        self._joint_times.clear()
        self._joint_push(now + (n - 1) * period,
                         _extrapolate(lin, delta, n - 1), inv)
        self._joint_push(now + n * period, _extrapolate(lin, delta, n),
                         inv)
