"""Steady-state fast-forward: analytic jumps over periodic probe traffic.

The paper's channels ride on long stretches of perfectly periodic
closed-loop probe traffic -- the same one- or two-row access cycle
repeating until a *disturbance* (periodic refresh, RFM, PRAC back-off,
a co-running agent) perturbs it.  Simulating those stretches event by
event is the dominant cost of every experiment.  This module skips
them analytically while staying **bit-identical** to event-accurate
execution; ``python -m repro diffcheck`` machine-checks that claim
over every registered experiment plus fuzzed scenarios.

How a jump works
----------------
A :class:`LatencyProbe <repro.cpu.probe.LatencyProbe>` calls
:meth:`FastForward.consider` at every *cycle boundary* (its address
round-robin just wrapped).  The engine then:

1. **Snapshots** the linear state of every component the cycle touches
   -- engine seq counter, probe progress, per-bank timestamps and bus
   reservations, memory-system counters, defense counters -- as a flat
   tuple of ints (``lin``), plus an invariant tuple (``inv``) of values
   that must not change at all between boundaries (open rows, block
   counts, armed wake, ABO/cool-down flags ...).
2. **Detects steady state** from three consecutive boundary snapshots:
   the two successive ``lin`` differences must be elementwise equal
   (the dynamics are translation-invariant, i.e. exactly periodic with
   period ``P``), the ``inv`` tuples identical, and the probe's sample
   pattern (latency deltas + addresses, relative to the boundary) must
   repeat.
3. **Bounds the jump**: ``N`` whole cycles are safe iff every
   synthesized event lands strictly *before* the engine's earliest
   pending event (the quiescence horizon -- a refresh tick, RFM grid
   point, recovery event or stale wake pending in any lane), before the
   probe's own ``stop_time``, within ``max_samples``, and within the
   defense's headroom (no activation counter may reach its trigger
   threshold mid-jump; see ``Defense.ff_cycle_cap``).
4. **Applies** the jump in bulk: every ``lin`` field advances by
   ``N x`` its per-cycle delta, and the probe's sample log is extended
   with ``N`` copies of the boundary cycle's sample pattern shifted by
   multiples of ``P``.  Simulated time itself needs no touch-up -- the
   probe schedules its next issue at the post-jump timestamp and the
   event engine leaps there, which is where the dispatch savings come
   from.

Safety invariants (why this is exact, not approximate)
------------------------------------------------------
* A jump only happens when the request queue is empty, the probe is
  the only live activity, and every pending event lies beyond the
  synthesized window -- so nothing can observe or perturb the skipped
  iterations.
* A jump never synthesizes beyond the active ``run(until=T)`` horizon
  either: a caller that pauses the simulation and mutates state
  between runs (installs a block, starts an agent, schedules an
  event) sees exactly the event-accurate state at ``T``.
* Equal successive differences over a full cycle are required on
  *every* tracked field; anything non-linear (a counter reset, a block
  interval, a first-touch materialization) breaks the equality and the
  engine silently falls back to event-accurate execution.
* Trigger thresholds are never crossed inside a jump: the defense caps
  ``N`` so every counter stays strictly below its threshold, and the
  crossing iteration runs live.
* Conservative caps are always safe: jumping fewer cycles than allowed
  just leaves more iterations to run event-accurately.

Process-wide switches
---------------------
``SystemConfig.fast_forward`` opts a single system in or out; ``None``
(the default) resolves through :func:`resolve_enabled`: a
:func:`forced` override (used by the diffcheck harness) beats the
config field, which beats the ``REPRO_FAST_FORWARD`` environment
variable (``off`` disables), which beats the default (**on** -- the
equivalence suite gates the default, see ROADMAP).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system import MemorySystem

#: Environment switch consulted by :func:`resolve_enabled`.
ENV_VAR = "REPRO_FAST_FORWARD"

#: Process-wide forced override: "on", "off", or None (no override).
_forced: str | None = None

#: Process-wide engagement totals (diffcheck engagement evidence).
_totals = {"jumps": 0, "cycles": 0, "samples": 0}

#: Consecutive failed steady-state checks before a probe's detection
#: backs off, and the backoff ceiling (in skipped cycle boundaries).
_BACKOFF_AFTER = 4
_BACKOFF_MAX = 64


def resolve_enabled(field: bool | None) -> bool:
    """Resolve a ``SystemConfig.fast_forward`` field to a live switch.

    Precedence: :func:`forced` override > explicit config field >
    ``REPRO_FAST_FORWARD`` env var > default (enabled).
    """
    if _forced is not None:
        return _forced == "on"
    if field is not None:
        return bool(field)
    env = os.environ.get(ENV_VAR, "").strip().lower()
    if env in ("off", "0", "false", "no"):
        return False
    return True


@contextmanager
def forced(mode: str | None):
    """Force fast-forward ``"on"``/``"off"`` for every system built
    inside the context, overriding config fields and the environment
    (how the diffcheck harness pins its baseline runs)."""
    if mode not in (None, "on", "off"):
        raise ValueError("forced mode must be 'on', 'off', or None")
    global _forced
    prev = _forced
    _forced = mode
    try:
        yield
    finally:
        _forced = prev


def forced_mode() -> str | None:
    """The active :func:`forced` override (``"on"``/``"off"``/None).

    Remote sweep backends ship this with every task so worker
    processes pin fast-forward exactly as the coordinator would."""
    return _forced


def totals() -> dict:
    """Process-wide jump totals since import (engagement evidence)."""
    return dict(_totals)


def absorb_totals(delta: dict) -> None:
    """Fold a worker process's per-trial jump totals into this
    process's, so engagement evidence (e.g. the diffcheck report's
    jump column) stays truthful when trials execute remotely."""
    for key in _totals:
        _totals[key] += int(delta.get(key, 0))


class _Track:
    """Per-probe detection state: two boundary snapshots plus backoff."""

    __slots__ = ("t0", "lin0", "t1", "lin1", "inv", "fails", "skip")

    def __init__(self) -> None:
        self.t0 = None
        self.lin0 = None
        self.t1 = None
        self.lin1 = None
        self.inv = None
        self.fails = 0
        self.skip = 0

    def reset(self) -> None:
        self.t0 = self.lin0 = self.t1 = self.lin1 = self.inv = None

    def push(self, t: int, lin, inv) -> None:
        if self.inv is not None and inv != self.inv:
            # Invariant churn: restart detection from this boundary.
            self.t1 = None
            self.lin1 = None
        self.t0 = self.t1
        self.lin0 = self.lin1
        self.t1 = t
        self.lin1 = lin
        self.inv = inv

    def fail(self) -> None:
        self.fails += 1
        if self.fails >= _BACKOFF_AFTER:
            self.skip = min(self.fails, _BACKOFF_MAX)
            self.reset()


def _diff(a, b):
    """Per-segment elementwise difference ``b - a`` of two nested lin
    tuples; ``None`` when the structures disagree (e.g. the bus
    reservation list changed length between boundaries)."""
    out = []
    for sa, sb in zip(a, b):
        if len(sa) != len(sb):
            return None
        out.append(tuple(y - x for x, y in zip(sa, sb)))
    return tuple(out)


class FastForward:
    """Coordinator owned by one :class:`~repro.system.MemorySystem`."""

    #: Indices into the snapshot's segment tuple.
    _ENGINE, _PROBE, _CTRL, _STATS, _DEFENSE = range(5)

    def __init__(self, system: "MemorySystem") -> None:
        self.system = system
        self.sim = system.sim
        self.controller = system.controller
        self.stats = system.stats
        self.defense = system.defense
        #: Whether the configured defense opted into analytic jumps.
        self.supported = bool(getattr(system.defense, "ff_supported",
                                      False))
        # Engagement diagnostics (per system).
        self.jumps = 0
        self.cycles_skipped = 0
        self.samples_synthesized = 0

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """Engagement summary (diffcheck / bench reporting)."""
        return {
            "supported": self.supported,
            "jumps": self.jumps,
            "cycles_skipped": self.cycles_skipped,
            "samples_synthesized": self.samples_synthesized,
            "wakes_elided": self.controller.wakes_elided,
            "events_elided": self.sim.events_elided,
        }

    # ------------------------------------------------------------------
    def consider(self, probe) -> None:
        """Attempt a steady-state jump for ``probe``.

        Called by the probe from its completion callback at every cycle
        boundary, *before* the next issue event is scheduled -- so the
        engine's pending events are exactly the outside world (refresh
        ticks, defense timers, other agents), which is what makes the
        quiescence horizon a sound jump bound.
        """
        if not self.supported:
            return
        # Dynamic eligibility: cheap attribute gates, checked every
        # boundary because jitter/on_sample/sleep can be (re)configured
        # after construction.
        if (probe.jitter_ps or probe.on_sample is not None
                or probe._sleeping_until is not None
                or (probe.max_samples is None and probe.stop_time is None)):
            return
        controller = self.controller
        if controller._queue_len or controller._backlog:
            return
        track = getattr(probe, "_ff_track", None)
        if track is None:
            track = probe._ff_track = _Track()
        elif track.skip:
            track.skip -= 1
            return

        snap = self._snapshot(probe)
        if snap is None:
            track.fail()
            return
        lin, inv = snap
        now = self.sim.now
        if (track.lin0 is None or inv != track.inv):
            track.push(now, lin, inv)
            return
        period = now - track.t1
        if period <= 0 or track.t1 - track.t0 != period:
            track.fail()
            track.push(now, lin, inv)
            return
        d1 = _diff(track.lin0, track.lin1)
        d2 = _diff(track.lin1, lin)
        if d1 is None or d2 is None or d1 != d2:
            track.fail()
            track.push(now, lin, inv)
            return

        cycle_len = len(probe.addrs) * probe.accesses_per_addr
        dp = d1[self._PROBE]
        if dp[0] != period or dp[1] != cycle_len:
            # The probe's own progress must advance by exactly one full
            # cycle per period, or the pattern is not what we synthesize.
            track.fail()
            track.push(now, lin, inv)
            return
        # The window's stats delta must be *exactly* one probe cycle's
        # worth of read services -- L requests, L reads, no writes,
        # kinds summing to L, and command counts implied by the kinds.
        # This is what proves the detection windows contained no other
        # agent's activity: any foreign request serviced inside them
        # would inflate these counters (even when, by coincidence, it
        # does so equally in both windows -- the case a pure equal-
        # differences check cannot see).  The jump window itself is
        # foreign-free by construction (the quiescence horizon), so the
        # extrapolated deltas must be too.
        d_act, d_pre, d_rd, d_wr, d_hit, d_miss, d_conf, d_req = \
            d1[self._STATS]
        if (d_req != cycle_len or d_rd != cycle_len or d_wr != 0
                or d_hit + d_miss + d_conf != cycle_len
                or d_act != d_miss + d_conf or d_pre != d_conf):
            track.fail()
            track.push(now, lin, inv)
            return

        n = self._max_cycles(probe, now, period, cycle_len, lin, d1)
        if n <= 0:
            track.push(now, lin, inv)
            return

        self._apply(probe, now, period, cycle_len, lin, d1, n)
        # Keep detection primed: the post-jump state sits exactly n
        # periods further along the same steady trajectory, so the next
        # live boundary can re-confirm (one diff) and jump again.
        track.fails = 0
        track.t0 = now + (n - 1) * period
        track.lin0 = tuple(
            tuple(v + d * (n - 1) for v, d in zip(seg, dseg))
            for seg, dseg in zip(lin, d1))
        track.t1 = now + n * period
        track.lin1 = tuple(
            tuple(v + d * n for v, d in zip(seg, dseg))
            for seg, dseg in zip(lin, d1))
        track.inv = inv

    # ------------------------------------------------------------------
    def _snapshot(self, probe):
        """(lin, inv) across engine, probe, controller, stats, defense;
        ``None`` when a component cannot be snapshotted right now."""
        controller = self.controller
        plan_map = controller._addr_plan
        plans = []
        for addr in probe.addrs:
            plan = plan_map.get(addr)
            if plan is None:
                return None
            plans.append(plan)
        plans = tuple(plans)
        samples = probe.samples
        cycle_len = len(probe.addrs) * probe.accesses_per_addr
        if len(samples) < cycle_len:
            return None
        base = samples[-1].end_time
        pattern = tuple((s.end_time - base, s.delta, s.addr)
                        for s in samples[-cycle_len:])
        sim = self.sim
        lin_engine = (sim._seq,)
        lin_probe = (probe._prev_end, len(samples))
        inv_probe = (pattern, probe._addr_idx, probe._repeat)
        lin_ctrl, inv_ctrl = controller.ff_snapshot(plans)
        lin_stats, inv_stats = self.stats.ff_snapshot()
        defense_snap = self.defense.ff_snapshot(plans)
        if defense_snap is None:
            return None
        lin_def, inv_def = defense_snap
        lin = (lin_engine, lin_probe, lin_ctrl, lin_stats, lin_def)
        inv = (inv_probe, inv_ctrl, inv_stats, inv_def, plans)
        return lin, inv

    def _max_cycles(self, probe, now: int, period: int, cycle_len: int,
                    lin, delta) -> int:
        """Largest safe jump, in whole cycles (conservative by design)."""
        horizon = self.sim.next_event_time()
        n = None
        if horizon is not None:
            # Every synthesized event must land strictly before the
            # earliest pending event; the latest synthetic timestamp is
            # the final cycle's completion at ``now + n * period``.
            n = (horizon - 1 - now) // period
        run_horizon = self.sim.run_horizon
        if run_horizon is not None:
            # Never synthesize beyond the active run(until=T) horizon:
            # iterations completing at or before T would have executed
            # inside this run anyway, while anything later must stay
            # live so that state the caller mutates *between* runs
            # (blocks, new agents, scheduled events) is honored.
            cap = (run_horizon - now) // period
            n = cap if n is None else min(n, cap)
        if probe.stop_time is not None:
            cap = (probe.stop_time - 1 - now) // period
            n = cap if n is None else min(n, cap)
        if probe.max_samples is not None:
            cap = (probe.max_samples - len(probe.samples)) // cycle_len
            n = cap if n is None else min(n, cap)
        # Eligibility guarantees max_samples or stop_time, so n is set.
        if n <= 0:
            return 0
        acts_per_cycle = delta[self._STATS][0]
        cap = self.defense.ff_cycle_cap(lin[self._DEFENSE],
                                        delta[self._DEFENSE],
                                        acts_per_cycle)
        if cap is not None:
            n = min(n, cap)
        return n

    def _apply(self, probe, now: int, period: int, cycle_len: int,
               lin, delta, n: int) -> None:
        """Advance every component by ``n`` cycles in bulk."""
        from repro.cpu.probe import LatencySample

        sim = self.sim
        d_seq = delta[self._ENGINE][0]
        sim._seq += d_seq * n
        # In steady state every event scheduled inside the window is
        # also dispatched inside it, so the per-cycle seq delta counts
        # the events this jump elided.
        sim._events_elided += d_seq * n

        samples = probe.samples
        pattern = [(s.end_time - now, s.delta, s.addr)
                   for s in samples[-cycle_len:]]
        samples.extend(
            LatencySample(now + c * period + off, d, a)
            for c in range(1, n + 1) for (off, d, a) in pattern)
        probe._prev_end = now + n * period

        plans = self._plans_of(probe)
        self.controller.ff_apply(plans, delta[self._CTRL], n)
        self.stats.ff_apply(delta[self._STATS], n)
        self.defense.ff_apply(plans, delta[self._DEFENSE], n)

        self.jumps += 1
        self.cycles_skipped += n
        self.samples_synthesized += n * cycle_len
        _totals["jumps"] += 1
        _totals["cycles"] += n
        _totals["samples"] += n * cycle_len

    def _plans_of(self, probe) -> tuple:
        plan_map = self.controller._addr_plan
        return tuple(plan_map[a] for a in probe.addrs)
