"""Ground-truth statistics collected by the memory system.

Tests and experiments use this log to validate that attacker-*observed*
events (back-offs, RFMs, refreshes inferred from latency) line up with
what the memory system actually did.

``blocks`` stays a plain append-only list (the public contract), but
:meth:`MemoryStats.record_block` additionally maintains per-kind lists
and a start-sorted index with a prefix-maximum of interval ends, so the
window queries that probe and fingerprint drivers issue thousands of
times per trial (:meth:`blocks_in`, :meth:`blocks_of`) cost a bisect
plus the matching slice instead of a scan over every interval ever
recorded.
"""

from __future__ import annotations

import enum
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import NamedTuple


class BlockKind(enum.Enum):
    """Why a set of banks was blocked."""

    REF = "ref"  #: periodic refresh
    RFM = "rfm"  #: refresh-management command (PRFM / FR-RFM)
    BACKOFF = "backoff"  #: PRAC ABO recovery period
    PARA = "para"  #: PARA probabilistic neighbor refresh


class BlockInterval(NamedTuple):
    """One blocking interval on a set of banks of one rank.

    A ``NamedTuple`` rather than a frozen dataclass: one of these is
    recorded per REF/RFM/back-off, and tuple construction skips the
    frozen dataclass's ``object.__setattr__`` chain.
    """

    kind: BlockKind
    start: int  #: ps
    end: int  #: ps
    rank: int
    #: Bank ids within the rank that were blocked; ``None`` = whole rank.
    banks: "frozenset[int] | None" = None

    @property
    def duration(self) -> int:
        return self.end - self.start

    def blocks_bank(self, bank_id: int) -> bool:
        """Whether the given flat bank id (within the rank) was blocked."""
        return self.banks is None or bank_id in self.banks


@dataclass(slots=True)
class MemoryStats:
    """Aggregate counters plus the blocking-event log."""

    activations: int = 0
    precharges: int = 0
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0  #: bank was closed
    row_conflicts: int = 0  #: a different row was open
    refreshes: int = 0
    rfm_commands: int = 0
    backoffs: int = 0
    para_refreshes: int = 0
    requests_served: int = 0
    blocks: list[BlockInterval] = field(default_factory=list)
    #: Per-kind interval lists in record order (``blocks_of`` fast path).
    _by_kind: dict = field(default_factory=dict, repr=False, compare=False)
    #: Intervals sorted by start, with parallel key arrays: ``_starts``
    #: for the bisect, ``_max_ends`` as a prefix maximum of interval
    #: ends (nondecreasing, hence bisectable), and ``_rec`` holding each
    #: interval's record index so query results keep record order.
    _sorted: list = field(default_factory=list, repr=False, compare=False)
    _starts: list = field(default_factory=list, repr=False, compare=False)
    _max_ends: list = field(default_factory=list, repr=False, compare=False)
    _rec: list = field(default_factory=list, repr=False, compare=False)

    def record_block(self, interval: BlockInterval) -> None:
        rec_index = len(self.blocks)
        self.blocks.append(interval)
        kind = interval.kind
        kind_log = self._by_kind.get(kind)
        if kind_log is None:
            self._by_kind[kind] = [interval]
        else:
            kind_log.append(interval)

        starts = self._starts
        max_ends = self._max_ends
        if not starts or interval.start >= starts[-1]:
            # Common case: intervals are recorded in start order.
            starts.append(interval.start)
            self._sorted.append(interval)
            self._rec.append(rec_index)
            prev = max_ends[-1] if max_ends else interval.end
            max_ends.append(interval.end if interval.end > prev else prev)
        else:
            # Rare: an aligned block was recorded before an earlier-
            # starting one.  Insert in start order and rebuild the
            # prefix maximum from the insertion point.
            pos = bisect_right(starts, interval.start)
            starts.insert(pos, interval.start)
            self._sorted.insert(pos, interval)
            self._rec.insert(pos, rec_index)
            max_ends.insert(pos, 0)
            running = max_ends[pos - 1] if pos else self._sorted[pos].end
            for i in range(pos, len(max_ends)):
                end = self._sorted[i].end
                if end > running:
                    running = end
                max_ends[i] = running

        if kind is BlockKind.REF:
            self.refreshes += 1
        elif kind is BlockKind.RFM:
            self.rfm_commands += 1
        elif kind is BlockKind.BACKOFF:
            self.backoffs += 1
        elif kind is BlockKind.PARA:
            self.para_refreshes += 1

    def blocks_of(self, kind: BlockKind) -> list[BlockInterval]:
        """All blocking intervals of one kind, in chronological order."""
        return list(self._by_kind.get(kind, ()))

    def blocks_in(self, start: int, end: int,
                  kind: BlockKind | None = None) -> list[BlockInterval]:
        """Blocking intervals overlapping the half-open window [start, end)."""
        starts = self._starts
        # Candidates: start-sorted position range whose intervals can
        # overlap the window.  ``hi`` cuts intervals starting at/after
        # ``end``; ``lo`` uses the prefix-max of ends -- every interval
        # before the first position with max_end > start has already
        # ended by ``start``.
        hi = bisect_left(starts, end)
        lo = bisect_right(self._max_ends, start, 0, hi)
        picked = []
        seq = self._sorted
        rec = self._rec
        for i in range(lo, hi):
            interval = seq[i]
            if interval.end > start and (kind is None
                                         or interval.kind is kind):
                picked.append((rec[i], interval))
        picked.sort()
        return [interval for _, interval in picked]

    # ------------------------------------------------------------------
    # Steady-state fast-forward participation (repro.sim.fastforward):
    # counters are recorded interval-batched over a jump -- one bulk
    # add per jumped window instead of one increment per request.
    # ------------------------------------------------------------------
    #: Counters that advance linearly during a quiescent steady cycle.
    _FF_LIN = ("activations", "precharges", "reads", "writes", "row_hits",
               "row_misses", "row_conflicts", "requests_served")
    #: Counters that may only change through a blocking event, which a
    #: jump by construction never contains.
    _FF_INV = ("refreshes", "rfm_commands", "backoffs", "para_refreshes")

    def ff_snapshot(self) -> tuple[tuple, tuple]:
        """(lin, inv) counter state for periodicity detection.  The
        first lin entry is ``activations`` -- the fast-forward engine
        hands its per-cycle delta to ``Defense.ff_cycle_cap``."""
        lin = tuple(getattr(self, name) for name in self._FF_LIN)
        inv = tuple(getattr(self, name) for name in self._FF_INV)
        return lin, inv + (len(self.blocks),)

    def ff_apply(self, delta, cycles: int) -> None:
        """Bulk-add ``cycles`` steady cycles' worth of counters."""
        for name, d in zip(self._FF_LIN, delta):
            if d:
                setattr(self, name, getattr(self, name) + d * cycles)

    @property
    def act_rate_summary(self) -> dict[str, int]:
        """Compact dict summary used by reports."""
        return {
            "activations": self.activations,
            "row_hits": self.row_hits,
            "row_misses": self.row_misses,
            "row_conflicts": self.row_conflicts,
            "refreshes": self.refreshes,
            "rfm_commands": self.rfm_commands,
            "backoffs": self.backoffs,
            "requests": self.requests_served,
        }
