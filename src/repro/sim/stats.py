"""Ground-truth statistics collected by the memory system.

Tests and experiments use this log to validate that attacker-*observed*
events (back-offs, RFMs, refreshes inferred from latency) line up with
what the memory system actually did.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class BlockKind(enum.Enum):
    """Why a set of banks was blocked."""

    REF = "ref"  #: periodic refresh
    RFM = "rfm"  #: refresh-management command (PRFM / FR-RFM)
    BACKOFF = "backoff"  #: PRAC ABO recovery period
    PARA = "para"  #: PARA probabilistic neighbor refresh


@dataclass(frozen=True)
class BlockInterval:
    """One blocking interval on a set of banks of one rank."""

    kind: BlockKind
    start: int  #: ps
    end: int  #: ps
    rank: int
    #: Bank ids within the rank that were blocked; ``None`` = whole rank.
    banks: frozenset[int] | None = None

    @property
    def duration(self) -> int:
        return self.end - self.start

    def blocks_bank(self, bank_id: int) -> bool:
        """Whether the given flat bank id (within the rank) was blocked."""
        return self.banks is None or bank_id in self.banks


@dataclass
class MemoryStats:
    """Aggregate counters plus the blocking-event log."""

    activations: int = 0
    precharges: int = 0
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0  #: bank was closed
    row_conflicts: int = 0  #: a different row was open
    refreshes: int = 0
    rfm_commands: int = 0
    backoffs: int = 0
    para_refreshes: int = 0
    requests_served: int = 0
    blocks: list[BlockInterval] = field(default_factory=list)

    def record_block(self, interval: BlockInterval) -> None:
        self.blocks.append(interval)
        if interval.kind is BlockKind.REF:
            self.refreshes += 1
        elif interval.kind is BlockKind.RFM:
            self.rfm_commands += 1
        elif interval.kind is BlockKind.BACKOFF:
            self.backoffs += 1
        elif interval.kind is BlockKind.PARA:
            self.para_refreshes += 1

    def blocks_of(self, kind: BlockKind) -> list[BlockInterval]:
        """All blocking intervals of one kind, in chronological order."""
        return [b for b in self.blocks if b.kind is kind]

    def blocks_in(self, start: int, end: int,
                  kind: BlockKind | None = None) -> list[BlockInterval]:
        """Blocking intervals overlapping the half-open window [start, end)."""
        out = []
        for b in self.blocks:
            if b.start < end and b.end > start:
                if kind is None or b.kind is kind:
                    out.append(b)
        return out

    @property
    def act_rate_summary(self) -> dict[str, int]:
        """Compact dict summary used by reports."""
        return {
            "activations": self.activations,
            "row_hits": self.row_hits,
            "row_misses": self.row_misses,
            "row_conflicts": self.row_conflicts,
            "refreshes": self.refreshes,
            "rfm_commands": self.rfm_commands,
            "backoffs": self.backoffs,
            "requests": self.requests_served,
        }
