"""Discrete-event simulation engine.

Time is an integer number of picoseconds.  The engine keeps events as
``(time, sequence, callback, arg)`` entries; ties are broken by
insertion order so execution is fully deterministic.

Internally there are three lanes, merged by comparing front entries so
the global ``(time, sequence)`` order is exactly what a single heap
would produce:

* an *immediate* lane for events scheduled at the current timestamp
  (scheduler wake-ups): appended at the running ``now``, its times are
  nondecreasing by construction;
* a FIFO *fast lane* for events whose timestamps arrive in
  nondecreasing order -- completions and fixed-delay re-issues usually
  do;
* a binary heap for everything scheduled out of order.

Appends to the first two lanes are O(1) against the heap's O(log n);
in the paper's workloads the heap ends up holding only the rare
out-of-pattern event.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable

#: Time unit constants, in picoseconds.
PS = 1
NS = 1_000
US = 1_000_000
MS = 1_000_000_000
SEC = 1_000_000_000_000

#: Sentinel marking an event scheduled without an argument.
_NO_ARG = object()

#: "No limit" sentinels keeping the run loop free of None checks.
_NEVER = 1 << 62

#: FIFO-lane admission horizon (ps).  Rare long-delay events (periodic
#: refresh ticks, transmission-window sleeps) would otherwise become the
#: lane tail and force the entire short-delay hot chain -- completions,
#: deliveries, probe re-issues -- onto the heap.  Far events go straight
#: to the heap, which is nearly empty and cheap at that point; the
#: cutoff is a performance heuristic only, never a correctness one (the
#: lane merge preserves global order regardless of placement).
_FIFO_HORIZON = 1 * US


class SimulationError(RuntimeError):
    """Raised for scheduling errors (e.g., scheduling into the past)."""


#: Process-wide event totals across every Simulator instance, published
#: once per ``run()`` call (never from the hot loop).  The telemetry
#: registry samples these by delta (:mod:`repro.obs.metrics`), and dist
#: workers ship their deltas home for coordinator-side aggregation.
_GLOBAL_COUNTERS = {"events_run": 0, "events_elided": 0}


def global_counters() -> dict[str, int]:
    """Snapshot of process-wide event totals (copy)."""
    return dict(_GLOBAL_COUNTERS)


def absorb_counters(delta: dict) -> None:
    """Fold a worker's counter delta into this process's totals (the
    dist coordinator calls this with the ``"m"`` field of a result
    frame, mirroring :func:`repro.sim.fastforward.absorb_totals`)."""
    for key in _GLOBAL_COUNTERS:
        value = delta.get(key)
        if isinstance(value, int) and value > 0:
            _GLOBAL_COUNTERS[key] += value


class Simulator:
    """A minimal, deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> sim.schedule(5 * NS, lambda: fired.append(sim.now))
    >>> _ = sim.run()
    >>> fired == [5 * NS]
    True
    """

    __slots__ = ("now", "_heap", "_fifo", "_fifo_head", "_imm",
                 "_imm_head", "_seq", "_events_run", "_events_elided",
                 "_elided_published", "_running", "_stop_at")

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[tuple] = []
        self._fifo: list[tuple] = []
        self._fifo_head: int = 0
        self._imm: list[tuple] = []
        self._imm_head: int = 0
        self._seq: int = 0
        self._events_run: int = 0
        self._events_elided: int = 0
        #: Portion of ``_events_elided`` already folded into the
        #: process-wide totals (publication happens at run() exit so
        #: note_elided stays a bare increment on the ff hot path).
        self._elided_published: int = 0
        self._running = False
        #: ``until`` of the run() call currently executing (None when
        #: not running or running without a limit); see run_horizon.
        self._stop_at: int | None = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, time_ps: int, callback: Callable[[], None]) -> int:
        """Schedule ``callback`` to run at absolute time ``time_ps``.

        Returns the sequence number assigned to the event (the
        fast-forward holder machinery records it so shifted events keep
        their deterministic tie-break position).

        Lane admission (inlined in every scheduling method -- this is
        the hot path): the FIFO lane takes events at or beyond its tail
        time, the immediate lane takes events at the current timestamp,
        the heap takes the rest.
        """
        if time_ps < self.now:
            raise SimulationError(
                f"cannot schedule at {time_ps} ps; now is {self.now} ps"
            )
        seq = self._seq
        self._seq = seq + 1
        fifo = self._fifo
        if time_ps - self.now <= _FIFO_HORIZON and (
                not fifo or time_ps >= fifo[-1][0]):
            fifo.append((time_ps, seq, callback, _NO_ARG))
        elif time_ps == self.now:
            self._imm.append((time_ps, seq, callback, _NO_ARG))
        else:
            heapq.heappush(self._heap, (time_ps, seq, callback, _NO_ARG))
        return seq

    def schedule(self, delay_ps: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay_ps`` picoseconds from now."""
        time_ps = self.now + delay_ps
        if delay_ps < 0:
            raise SimulationError(
                f"cannot schedule at {time_ps} ps; now is {self.now} ps"
            )
        seq = self._seq
        self._seq = seq + 1
        fifo = self._fifo
        if delay_ps <= _FIFO_HORIZON and (
                not fifo or time_ps >= fifo[-1][0]):
            fifo.append((time_ps, seq, callback, _NO_ARG))
        elif delay_ps == 0:
            self._imm.append((time_ps, seq, callback, _NO_ARG))
        else:
            heapq.heappush(self._heap, (time_ps, seq, callback, _NO_ARG))

    def schedule_call_at(self, time_ps: int, callback: Callable,
                         arg) -> int:
        """Schedule ``callback(arg)`` at absolute time ``time_ps``.

        Equivalent to ``schedule_at(time_ps, lambda: callback(arg))``
        but allocation-free on the hot path: no closure is created, the
        argument rides along in the event entry itself.  Returns the
        assigned sequence number (see :meth:`schedule_at`).
        """
        if time_ps < self.now:
            raise SimulationError(
                f"cannot schedule at {time_ps} ps; now is {self.now} ps"
            )
        seq = self._seq
        self._seq = seq + 1
        fifo = self._fifo
        if time_ps - self.now <= _FIFO_HORIZON and (
                not fifo or time_ps >= fifo[-1][0]):
            fifo.append((time_ps, seq, callback, arg))
        elif time_ps == self.now:
            self._imm.append((time_ps, seq, callback, arg))
        else:
            heapq.heappush(self._heap, (time_ps, seq, callback, arg))
        return seq

    def schedule_call(self, delay_ps: int, callback: Callable, arg) -> None:
        """Schedule ``callback(arg)`` after ``delay_ps`` picoseconds."""
        self.schedule_call_at(self.now + delay_ps, callback, arg)

    def schedule_many(
            self,
            events: Iterable[tuple[int, Callable[[], None]]]) -> int:
        """Batch-schedule ``(time_ps, callback)`` pairs; returns the count.

        Semantically identical to calling :meth:`schedule_at` in a
        loop, with the admission state hoisted out of the per-event
        work -- pairs arriving in nondecreasing time order ride the
        FIFO fast lane with a single bounds check each.
        """
        now = self.now
        fifo = self._fifo
        imm = self._imm
        heap = self._heap
        heappush = heapq.heappush
        seq = self._seq
        tail = fifo[-1][0] if fifo else None
        count = 0
        try:
            for time_ps, callback in events:
                if time_ps < now:
                    raise SimulationError(
                        f"cannot schedule at {time_ps} ps; now is {now} ps"
                    )
                entry = (time_ps, seq, callback, _NO_ARG)
                seq += 1
                if time_ps - now <= _FIFO_HORIZON and (
                        tail is None or time_ps >= tail):
                    fifo.append(entry)
                    tail = time_ps
                elif time_ps == now:
                    imm.append(entry)
                else:
                    heappush(heap, entry)
                count += 1
        finally:
            self._seq = seq
        return count

    def push_entry(self, time_ps: int, seq: int, callback: Callable,
                   arg=_NO_ARG) -> None:
        """Insert an event with an explicit ``(time, seq)`` key.

        The steady-state fast-forward coordinator uses this to *shift*
        a parked agent's wake event across a jumped window: the shifted
        entry carries exactly the sequence number event-accurate
        execution would have assigned at the post-jump timestamp, so
        same-instant tie-breaks stay bit-identical.  The key must not
        lie in the executed past; entries always land on the heap (a
        shift is rare -- once per jump per agent, not per event).
        """
        if time_ps < self.now:
            raise SimulationError(
                f"cannot push an entry at {time_ps} ps; now is "
                f"{self.now} ps")
        heapq.heappush(self._heap, (time_ps, seq, callback, arg))

    def iter_pending(self) -> "Iterable[tuple]":
        """Iterate over all pending ``(time, seq, callback, arg)``
        entries, in no particular order (valid between runs and from
        inside event callbacks).  The fast-forward coordinator scans
        this to separate *foreign* events (refresh ticks, defense
        timers, unmanaged agents) from parked participant wake events
        it is about to shift."""
        yield from self._imm[self._imm_head:]
        yield from self._fifo[self._fifo_head:]
        yield from self._heap

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        """Run events until all lanes drain, ``until`` is reached, or
        ``max_events`` callbacks have executed.

        Events with timestamp exactly equal to ``until`` *are* executed.
        Returns the number of callbacks executed by this call.

        ``until`` may not lie in the past: simulated time never moves
        backwards, so ``run(until=T)`` with ``T < now`` raises
        :class:`SimulationError` (mirroring :meth:`schedule_at`).
        """
        if until is not None and until < self.now:
            raise SimulationError(
                f"cannot run until {until} ps; simulated time is already "
                f"{self.now} ps (time never moves backwards)"
            )
        if self._running:
            # The consumption state of the FIFO lanes lives in locals of
            # the outer run() frame; a nested run would re-execute
            # already-consumed events.  Fail loudly instead.
            raise SimulationError(
                "Simulator.run is not reentrant; do not call run() from "
                "inside an event callback")
        self._running = True
        self._stop_at = until
        stop_at = _NEVER if until is None else until
        remaining = _NEVER if max_events is None else max_events
        executed = 0
        # Hot loop: lane references live in locals; ``self.now`` is
        # still written before every callback so callbacks observe
        # correct simulated time.
        heap = self._heap
        fifo = self._fifo
        imm = self._imm  # list identities are stable (in-place deletes)
        heappop = heapq.heappop
        no_arg = _NO_ARG
        head = 0  # fifo front index (lazy popleft, compacted on exit)
        imm_head = self._imm_head  # ditto for the immediate lane
        try:
            while True:
                front = None
                src = 0
                if imm_head < len(imm):
                    front = imm[imm_head]
                if head < len(fifo):
                    candidate = fifo[head]
                    if front is None or candidate < front:
                        front = candidate
                        src = 1
                if heap:
                    candidate = heap[0]
                    if front is None or candidate < front:
                        front = candidate
                        src = 2
                if front is None:
                    break
                time_ps = front[0]
                if time_ps > stop_at:
                    self.now = stop_at
                    return executed
                if src == 1:
                    head += 1
                    if head > 512 and head * 2 >= len(fifo):
                        del fifo[:head]
                        head = 0
                elif src == 0:
                    imm_head += 1
                    if imm_head > 512 and imm_head * 2 >= len(imm):
                        del imm[:imm_head]
                        imm_head = 0
                else:
                    heappop(heap)
                # Publish consumption state so pending_events stays
                # accurate when read from inside a callback.
                self._fifo_head = head
                self._imm_head = imm_head
                self.now = time_ps
                arg = front[3]
                if arg is no_arg:
                    front[2]()
                else:
                    front[2](arg)
                executed += 1
                if executed >= remaining:
                    return executed
        finally:
            if head:
                del fifo[:head]
            if imm_head:
                del imm[:imm_head]
            self._fifo_head = 0
            self._imm_head = 0
            self._events_run += executed
            _GLOBAL_COUNTERS["events_run"] += executed
            elided_delta = self._events_elided - self._elided_published
            if elided_delta:
                _GLOBAL_COUNTERS["events_elided"] += elided_delta
                self._elided_published = self._events_elided
            self._running = False
            self._stop_at = None
        if until is not None and until > self.now:
            self.now = until
        return executed

    # ------------------------------------------------------------------
    # Quiescence introspection (steady-state fast-forward support)
    # ------------------------------------------------------------------
    def next_event_time(self) -> int | None:
        """Timestamp of the earliest pending event, or ``None`` when no
        event is pending.

        Valid between runs and from inside event callbacks (the run
        loop publishes lane consumption before every callback).  The
        fast-forward engine uses this as its *quiescence horizon*: a
        steady-state jump may only synthesize activity that completes
        strictly before this time, because the pending event -- a
        refresh tick, an RFM grid point, a back-off recovery, a stale
        controller wake -- could perturb the periodic pattern.
        """
        best = None
        imm = self._imm
        if self._imm_head < len(imm):
            best = imm[self._imm_head][0]
        fifo = self._fifo
        if self._fifo_head < len(fifo):
            t = fifo[self._fifo_head][0]
            if best is None or t < best:
                best = t
        heap = self._heap
        if heap:
            t = heap[0][0]
            if best is None or t < best:
                best = t
        return best

    def quiescent_now(self) -> bool:
        """True when no pending event is scheduled at the *current*
        timestamp.

        Lane times are nondecreasing along the run, so any unconsumed
        entry at a time <= ``now`` sits exactly at ``now``.  The
        controller's wake-event elision relies on this: when the
        instant is quiescent and the caller schedules nothing else at
        this instant, the deferred scheduler wake would run next with
        exactly one candidate request, so its selection can be resolved
        inline and the wake event elided without reordering anything.
        """
        imm = self._imm
        if self._imm_head < len(imm):
            return False
        now = self.now
        fifo = self._fifo
        if self._fifo_head < len(fifo) and fifo[self._fifo_head][0] <= now:
            return False
        heap = self._heap
        if heap and heap[0][0] <= now:
            return False
        return True

    @property
    def run_horizon(self) -> int | None:
        """``until`` of the currently executing :meth:`run` call, or
        ``None`` (no run in progress, or an unbounded run).

        The fast-forward engine clamps every jump to this horizon:
        whatever the caller does *after* a paused ``run(until=T)``
        returns -- install a blocking interval, start another agent,
        schedule an event -- must see no state synthesized beyond
        ``T``, so incremental drivers stay bit-identical too.
        """
        return self._stop_at

    def note_elided(self, n: int) -> None:
        """Account for ``n`` events that steady-state fast-forward (or
        wake elision) resolved analytically instead of dispatching."""
        self._events_elided += n

    @property
    def events_elided(self) -> int:
        """Events resolved analytically rather than dispatched (see
        :meth:`note_elided`); a fast-forward engagement diagnostic."""
        return self._events_elided

    @property
    def pending_events(self) -> int:
        """Number of events currently waiting across all lanes (valid
        between runs and from inside event callbacks)."""
        return (len(self._heap)
                + len(self._fifo) - self._fifo_head
                + len(self._imm) - self._imm_head)

    @property
    def events_run(self) -> int:
        """Total number of callbacks executed over the simulator lifetime."""
        return self._events_run
