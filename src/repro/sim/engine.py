"""Discrete-event simulation engine.

Time is an integer number of picoseconds.  The engine keeps a heap of
``(time, sequence, callback)`` entries; ties are broken by insertion
order so execution is fully deterministic.
"""

from __future__ import annotations

import heapq
from typing import Callable

#: Time unit constants, in picoseconds.
PS = 1
NS = 1_000
US = 1_000_000
MS = 1_000_000_000
SEC = 1_000_000_000_000


class SimulationError(RuntimeError):
    """Raised for scheduling errors (e.g., scheduling into the past)."""


class Simulator:
    """A minimal, deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> sim.schedule(5 * NS, lambda: fired.append(sim.now))
    >>> _ = sim.run()
    >>> fired == [5 * NS]
    True
    """

    __slots__ = ("now", "_heap", "_seq", "_events_run")

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[tuple[int, int, Callable[[], None]]] = []
        self._seq: int = 0
        self._events_run: int = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, time_ps: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run at absolute time ``time_ps``."""
        if time_ps < self.now:
            raise SimulationError(
                f"cannot schedule at {time_ps} ps; now is {self.now} ps"
            )
        heapq.heappush(self._heap, (time_ps, self._seq, callback))
        self._seq += 1

    def schedule(self, delay_ps: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay_ps`` picoseconds from now."""
        self.schedule_at(self.now + delay_ps, callback)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` callbacks have executed.

        Events with timestamp exactly equal to ``until`` *are* executed.
        Returns the number of callbacks executed by this call.

        ``until`` may not lie in the past: simulated time never moves
        backwards, so ``run(until=T)`` with ``T < now`` raises
        :class:`SimulationError` (mirroring :meth:`schedule_at`).
        """
        if until is not None and until < self.now:
            raise SimulationError(
                f"cannot run until {until} ps; simulated time is already "
                f"{self.now} ps (time never moves backwards)"
            )
        executed = 0
        heap = self._heap
        while heap:
            time_ps = heap[0][0]
            if until is not None and time_ps > until:
                self.now = until
                return executed
            _, _, callback = heapq.heappop(heap)
            self.now = time_ps
            callback()
            executed += 1
            self._events_run += 1
            if max_events is not None and executed >= max_events:
                return executed
        if until is not None and until > self.now:
            self.now = until
        return executed

    @property
    def pending_events(self) -> int:
        """Number of events currently waiting on the heap."""
        return len(self._heap)

    @property
    def events_run(self) -> int:
        """Total number of callbacks executed over the simulator lifetime."""
        return self._events_run
