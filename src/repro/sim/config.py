"""System configuration dataclasses.

All timing values are integer picoseconds (see :mod:`repro.sim.engine`).
Defaults model a DDR5-class device consistent with the parameters the
paper quotes from JESD79-5c: a ~350 ns RFM window used during PRAC
back-off recovery, a ~295 ns same-bank RFM latency used by Periodic RFM,
a 5 ns ABO delay, a 180 ns window of normal traffic (tABOACT), 3.9 us
refresh interval and a 32 ms refresh window.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, field, fields, replace

from repro.sim.engine import MS, NS


class RefreshPolicy(enum.Enum):
    """Periodic-refresh scheduling policy of the memory controller."""

    #: No periodic refresh at all (unit tests / microbenchmarks only).
    NONE = "none"
    #: One REF every tREFI.
    EVERY_TREFI = "every-trefi"
    #: Postpone one refresh interval and issue two back-to-back REFs
    #: every 2 x tREFI (the behaviour the paper models; footnote 3).
    POSTPONE_PAIR = "postpone-pair"


class DefenseKind(enum.Enum):
    """Which RowHammer defense the memory system employs."""

    NONE = "none"
    PRAC = "prac"
    PRFM = "prfm"
    FRRFM = "fr-rfm"
    PRAC_RIAC = "prac-riac"
    PRAC_BANK = "prac-bank"
    PARA = "para"


def _dataclass_to_dict(obj) -> dict:
    """Serialize a config dataclass field-by-field (enums -> values,
    nested configs via their own ``to_dict``).  Driven by
    ``dataclasses.fields`` so newly added fields can never silently
    drop out of serialization or ``cache_key``."""
    data = {}
    for f in fields(obj):
        value = getattr(obj, f.name)
        if hasattr(value, "to_dict"):
            value = value.to_dict()
        elif isinstance(value, enum.Enum):
            value = value.value
        data[f.name] = value
    return data


def _from_flat_dict(cls, data: dict):
    """Rebuild a flat (non-nested) dataclass from ``to_dict`` output,
    rejecting unknown keys so schema drift fails loudly."""
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} fields: {sorted(unknown)}")
    return cls(**data)


@dataclass(frozen=True)
class DramTiming:
    """DDR5 timing parameters, in picoseconds."""

    tRCD: int = 16 * NS  #: ACT -> RD/WR
    tRP: int = 16 * NS  #: PRE -> ACT
    tRAS: int = 32 * NS  #: ACT -> PRE (row restore)
    tCL: int = 16 * NS  #: RD -> first data
    tBL: int = 3_330  #: burst transfer time on the data bus (BL16 @ 4800 MT/s)
    tRFC: int = 295 * NS  #: all-bank refresh latency (16 Gb device)
    tREFI: int = 3_900 * NS  #: refresh interval
    tREFW: int = 32 * MS  #: refresh window
    tRFM_AB: int = 350 * NS  #: all-bank RFM window (PRAC back-off recovery, FR-RFM)
    tRFM_SB: int = 295 * NS  #: same-bank RFM latency (Periodic RFM)
    tABO_DELAY: int = 5 * NS  #: PRE -> ABO assertion
    tABO_ACT: int = 180 * NS  #: window of normal traffic after ABO
    tABO_COOLDOWN: int = 180 * NS  #: cool-down before ABO may re-assert

    @property
    def tRC(self) -> int:
        """Minimum time between two ACTs to the same bank."""
        return self.tRAS + self.tRP

    def validate(self) -> None:
        """Raise ``ValueError`` on physically inconsistent parameters."""
        if min(
            self.tRCD, self.tRP, self.tRAS, self.tCL, self.tBL, self.tRFC,
            self.tREFI, self.tREFW, self.tRFM_AB, self.tRFM_SB,
        ) <= 0:
            raise ValueError("all DRAM timing parameters must be positive")
        if self.tRAS < self.tRCD:
            raise ValueError("tRAS must cover at least tRCD")
        if self.tREFW < self.tREFI:
            raise ValueError("tREFW must be >= tREFI")

    def to_dict(self) -> dict:
        return _dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "DramTiming":
        return _from_flat_dict(cls, data)


@dataclass(frozen=True)
class DramOrg:
    """DRAM organization (a single memory channel)."""

    ranks: int = 1
    bankgroups: int = 8
    banks_per_group: int = 4
    rows_per_bank: int = 1 << 17  #: 128K rows/bank, as in the paper's Table 1
    cols_per_row: int = 1 << 7  #: cache lines per row (8 KB row / 64 B line)
    line_bytes: int = 64

    @property
    def banks_per_rank(self) -> int:
        return self.bankgroups * self.banks_per_group

    @property
    def total_banks(self) -> int:
        return self.ranks * self.banks_per_rank

    def validate(self) -> None:
        for name in ("ranks", "bankgroups", "banks_per_group",
                     "rows_per_bank", "cols_per_row", "line_bytes"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    def to_dict(self) -> dict:
        return _dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "DramOrg":
        return _from_flat_dict(cls, data)


def nbo_for_nrh(nrh: int, fraction: float = 0.25) -> int:
    """PRAC back-off threshold for a given RowHammer threshold.

    The DRAM chip asserts ABO at a fraction of N_RH (70-100% per the
    standard); secure configurations leave margin for the activations an
    attacker can land during tABOACT, recovery and the cool-down window,
    *and* for counters rising on rows beyond the per-back-off mitigation
    budget, so we default to a conservative N_BO = N_RH / 4 (the paper's
    attack evaluations pin N_BO = 128 explicitly instead of deriving it).
    """
    if nrh < 2:
        raise ValueError("N_RH must be >= 2")
    return max(1, int(nrh * fraction))


def trfm_for_nrh(nrh: int, divisor: int = 8) -> int:
    """Secure per-bank activation budget between RFMs for a given N_RH.

    Periodic RFM mitigates one potential aggressor per RFM; with a
    conservative margin for blast radius and counter overshoot the
    sustainable budget scales linearly with N_RH.  The default divisor
    reproduces the paper's qualitative result that RFM-based mitigation
    cost explodes below N_RH = 256 (T_RFM = 8 at N_RH = 64, leaving
    only ~9% of DRAM bandwidth under FR-RFM's fixed schedule).
    """
    if nrh < 2:
        raise ValueError("N_RH must be >= 2")
    return max(1, nrh // divisor)


@dataclass(frozen=True)
class DefenseParams:
    """Parameters of the configured RowHammer defense."""

    kind: DefenseKind = DefenseKind.NONE
    #: RowHammer threshold of the protected device.
    nrh: int = 1024
    #: PRAC back-off threshold (activation count that asserts ABO).
    nbo: int = 128
    #: Number of back-to-back RFMs the controller issues per back-off.
    n_rfms: int = 4
    #: Periodic-RFM bank activation threshold (also sets the FR-RFM period).
    trfm: int = 40
    #: PARA preventive-refresh probability per activation.
    para_probability: float = 0.001
    #: Latency of refreshing one aggressor's victims under PARA, ps.
    para_refresh_latency: int = 192 * NS
    #: Override for the total back-off blocking latency (Fig. 12 sweep);
    #: ``None`` means n_rfms * tRFM_AB.
    backoff_latency_override: int | None = None
    #: RNG seed for randomized defenses (RIAC, PARA).
    seed: int = 0xDEF

    @classmethod
    def for_nrh(cls, kind: DefenseKind, nrh: int, **overrides) -> "DefenseParams":
        """Build a securely-configured defense for a RowHammer threshold."""
        params = cls(
            kind=kind,
            nrh=nrh,
            nbo=nbo_for_nrh(nrh),
            trfm=trfm_for_nrh(nrh),
        )
        return replace(params, **overrides) if overrides else params

    def to_dict(self) -> dict:
        return _dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "DefenseParams":
        data = dict(data)
        data["kind"] = DefenseKind(data["kind"])
        return _from_flat_dict(cls, data)


@dataclass(frozen=True)
class SystemConfig:
    """Top-level configuration: organization, timing, defense, controller."""

    timing: DramTiming = field(default_factory=DramTiming)
    org: DramOrg = field(default_factory=DramOrg)
    defense: DefenseParams = field(default_factory=DefenseParams)
    refresh_policy: RefreshPolicy = RefreshPolicy.POSTPONE_PAIR
    #: FR-FCFS column cap: max consecutive row hits served while older
    #: conflicting requests wait (Table 1 of the paper).
    column_cap: int = 16
    #: Read/write queue capacity per channel.
    queue_size: int = 64
    #: Fixed latency added to every memory request by the on-chip path
    #: (cache lookups/bypass, on-chip network), in ps.
    frontend_latency: int = 15 * NS
    #: Per-iteration overhead of attacker measurement loops (clflush +
    #: loop bookkeeping), in ps.
    loop_overhead: int = 10 * NS
    #: Global seed for workload/agent randomness.
    seed: int = 1
    #: Steady-state fast-forward: analytically skip perfectly periodic
    #: closed-loop stretches (see :mod:`repro.sim.fastforward`).
    #: ``None`` resolves through the process-wide default (on, unless
    #: ``REPRO_FAST_FORWARD=off`` or a forced override is active); the
    #: optimization is machine-checked bit-identical by
    #: ``python -m repro diffcheck``.
    fast_forward: bool | None = None

    def validate(self) -> None:
        self.timing.validate()
        self.org.validate()
        if self.column_cap < 1:
            raise ValueError("column_cap must be >= 1")
        if self.queue_size < 1:
            raise ValueError("queue_size must be >= 1")

    def with_defense(self, defense: DefenseParams) -> "SystemConfig":
        """Return a copy of this config with a different defense."""
        return replace(self, defense=defense)

    def with_(self, **overrides) -> "SystemConfig":
        """Return a copy with arbitrary field overrides."""
        return replace(self, **overrides)

    # ------------------------------------------------------------------
    # Serialization (worker hand-off, result caching)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable dict of every configuration field."""
        return _dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SystemConfig":
        """Inverse of :meth:`to_dict` (round-trips to an equal config)."""
        data = dict(data)
        data["timing"] = DramTiming.from_dict(data["timing"])
        data["org"] = DramOrg.from_dict(data["org"])
        data["defense"] = DefenseParams.from_dict(data["defense"])
        data["refresh_policy"] = RefreshPolicy(data["refresh_policy"])
        return _from_flat_dict(cls, data)

    def cache_key(self) -> str:
        """Stable content hash of this configuration.

        Equal configs hash identically across processes and interpreter
        runs; any field change produces a different key.  Used by the
        experiment result cache (:mod:`repro.exp.cache`).
        """
        payload = json.dumps(self.to_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()
