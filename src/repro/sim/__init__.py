"""Discrete-event simulation substrate.

The engine models time as integer picoseconds.  Components schedule
callbacks on a shared heap; the memory controller, refresh scheduler,
defense mechanisms and CPU agents are all driven by this one clock.
"""

from repro.sim.engine import MS, NS, PS, US, SEC, Simulator
from repro.sim.config import (
    DefenseKind,
    DefenseParams,
    DramOrg,
    DramTiming,
    RefreshPolicy,
    SystemConfig,
)
from repro.sim.stats import BlockInterval, BlockKind, MemoryStats

__all__ = [
    "PS",
    "NS",
    "US",
    "MS",
    "SEC",
    "Simulator",
    "DramTiming",
    "DramOrg",
    "DefenseKind",
    "DefenseParams",
    "RefreshPolicy",
    "SystemConfig",
    "MemoryStats",
    "BlockKind",
    "BlockInterval",
]
