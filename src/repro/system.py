"""The assembled memory system: simulator + controller + defense.

This is the main entry point for building experiments:

>>> from repro.sim import SystemConfig, DefenseParams, DefenseKind
>>> from repro.system import MemorySystem
>>> cfg = SystemConfig(defense=DefenseParams(kind=DefenseKind.PRAC, nbo=128))
>>> system = MemorySystem(cfg)
>>> addrs = system.mapper.same_bank_rows(2, bankgroup=1, bank=2)
>>> done = []
>>> system.submit(addrs[0], lambda req: done.append(req))
>>> _ = system.sim.run(until=10_000_000)
>>> done[0].kind
'miss'
"""

from __future__ import annotations

from typing import Callable

from repro.controller.controller import MemoryController, Request
from repro.controller.refresh import RefreshScheduler
from repro.defenses.factory import build_defense
from repro.dram.address import AddressMapper
from repro.sim.config import SystemConfig
from repro.sim.engine import Simulator
from repro.sim.fastforward import FastForward, resolve_enabled
from repro.sim.stats import MemoryStats


class MemorySystem:
    """A single-channel memory system with a configured RowHammer defense."""

    def __init__(self, config: SystemConfig,
                 sim: Simulator | None = None) -> None:
        config.validate()
        self.config = config
        self.sim = sim if sim is not None else Simulator()
        self.mapper = AddressMapper(config.org)
        self.stats = MemoryStats()
        self.controller = MemoryController(self.sim, config, self.mapper,
                                           self.stats)
        self.defense = build_defense(self.sim, self.controller, config,
                                     self.stats)
        self.refresh = RefreshScheduler(self.sim, self.controller, config)
        # Steady-state fast-forward (bit-identical; machine-checked by
        # `python -m repro diffcheck`): wake-event elision in the
        # controller plus the analytic jump coordinator probes consult.
        enabled = resolve_enabled(config.fast_forward)
        self.controller.ff_elide = enabled
        self.fast_forward: FastForward | None = (
            FastForward(self) if enabled else None)
        self.refresh.start()
        self.defense.on_boot()

    # ------------------------------------------------------------------
    def submit(self, addr: int, callback: Callable[[Request], None],
               is_write: bool = False) -> Request:
        """Issue a request; the callback fires once the data returns to
        the core, i.e., after the on-chip frontend latency (which the
        controller folds into the completion callback directly -- no
        per-request relay event)."""
        return self.controller.submit(addr, callback, is_write=is_write)

    def submit_tail(self, addr: int, callback: Callable[[Request], None],
                    is_write: bool = False) -> Request:
        """:meth:`submit` for closed-loop callers that schedule nothing
        else at the current instant after this call returns -- eligible
        for the controller's wake-event elision (bit-identical; see
        :meth:`MemoryController.submit_tail`)."""
        return self.controller.submit_tail(addr, callback,
                                           is_write=is_write)

    def run_until(self, predicate: Callable[[], bool], step: int,
                  hard_limit: int) -> None:
        """Advance the simulation in ``step``-sized chunks until the
        predicate holds (or ``hard_limit`` picoseconds pass)."""
        while not predicate():
            if self.sim.now >= hard_limit:
                raise RuntimeError(
                    f"simulation exceeded hard limit ({hard_limit} ps) "
                    "before the stop condition held")
            self.sim.run(until=min(self.sim.now + step, hard_limit))

    # Convenience accessors ---------------------------------------------
    @property
    def now(self) -> int:
        return self.sim.now
