"""Multicore performance evaluation (paper Fig. 13).

Weighted speedup of a four-core workload is sum_i IPC_shared_i /
IPC_alone_i.  Every app issues a fixed request count, so IPC is
proportional to 1/elapsed-time and

    WS = sum_i T_alone_i / T_shared_i.

Fig. 13 reports WS under each defense normalized to WS on a baseline
system with no RowHammer mitigation.
"""

from __future__ import annotations

import dataclasses

from repro.cpu.app import AppSpec
from repro.scenario.spec import (
    AgentSpec,
    MeasurementSpec,
    ScenarioSpec,
    StopSpec,
)
from repro.sim.config import SystemConfig
from repro.sim.engine import MS


def mix_scenario(config: SystemConfig, apps: list[AppSpec],
                 hard_limit: int = 2_000 * MS) -> ScenarioSpec:
    """Co-running apps on one memory system, per-app elapsed time as
    the measurement -- the building block of both Fig. 13 phases."""
    return ScenarioSpec(
        name="workload-mix", system=config,
        agents=tuple(AgentSpec("app", name=app.name,
                               params={"spec": dataclasses.asdict(app)})
                     for app in apps),
        stop=StopSpec(hard_limit),
        measurements=(MeasurementSpec("elapsed", params={
            "agents": [app.name for app in apps]}),))


def run_solo(config: SystemConfig, app: AppSpec,
             hard_limit: int = 2_000 * MS) -> int:
    """Elapsed time of one app running alone; returns picoseconds."""
    result = mix_scenario(config, [app], hard_limit).run()
    return result.data["elapsed"][app.name]


def run_mix(config: SystemConfig, apps: list[AppSpec],
            hard_limit: int = 2_000 * MS) -> dict[str, int]:
    """Elapsed time per app when co-running on one memory system."""
    return dict(mix_scenario(config, apps, hard_limit).run()
                .data["elapsed"])


def weighted_speedup(alone: dict[str, int],
                     shared: dict[str, int]) -> float:
    """WS = sum of per-app T_alone / T_shared."""
    if set(alone) != set(shared):
        raise ValueError("alone and shared runs cover different apps")
    if not alone:
        raise ValueError("empty workload")
    return sum(alone[name] / shared[name] for name in alone)


def normalized_weighted_speedup(alone: dict[str, int],
                                baseline: dict[str, int],
                                defended: dict[str, int]) -> float:
    """Fig. 13's metric: WS(defense) / WS(no-mitigation baseline)."""
    return (weighted_speedup(alone, defended)
            / weighted_speedup(alone, baseline))
