"""Multicore performance evaluation (paper Fig. 13).

Weighted speedup of a four-core workload is sum_i IPC_shared_i /
IPC_alone_i.  Every app issues a fixed request count, so IPC is
proportional to 1/elapsed-time and

    WS = sum_i T_alone_i / T_shared_i.

Fig. 13 reports WS under each defense normalized to WS on a baseline
system with no RowHammer mitigation.
"""

from __future__ import annotations

from repro.cpu.agent import run_agents
from repro.cpu.app import AppSpec, SyntheticAppAgent
from repro.sim.config import SystemConfig
from repro.sim.engine import MS
from repro.system import MemorySystem


def run_solo(config: SystemConfig, app: AppSpec,
             hard_limit: int = 2_000 * MS) -> int:
    """Elapsed time of one app running alone; returns picoseconds."""
    system = MemorySystem(config)
    agent = SyntheticAppAgent(system, app)
    run_agents(system, [agent], hard_limit=hard_limit)
    return agent.elapsed


def run_mix(config: SystemConfig, apps: list[AppSpec],
            hard_limit: int = 2_000 * MS) -> dict[str, int]:
    """Elapsed time per app when co-running on one memory system."""
    system = MemorySystem(config)
    agents = [SyntheticAppAgent(system, app) for app in apps]
    run_agents(system, agents, hard_limit=hard_limit)
    return {agent.name: agent.elapsed for agent in agents}


def weighted_speedup(alone: dict[str, int],
                     shared: dict[str, int]) -> float:
    """WS = sum of per-app T_alone / T_shared."""
    if set(alone) != set(shared):
        raise ValueError("alone and shared runs cover different apps")
    if not alone:
        raise ValueError("empty workload")
    return sum(alone[name] / shared[name] for name in alone)


def normalized_weighted_speedup(alone: dict[str, int],
                                baseline: dict[str, int],
                                defended: dict[str, int]) -> float:
    """Fig. 13's metric: WS(defense) / WS(no-mitigation baseline)."""
    return (weighted_speedup(alone, defended)
            / weighted_speedup(alone, baseline))
