"""Evaluation harness: figure renderers, speedup math, experiment drivers."""

from repro.analysis.figures import FigureTable, render_strip
from repro.analysis.speedup import (
    normalized_weighted_speedup,
    run_mix,
    run_solo,
)

__all__ = [
    "FigureTable",
    "render_strip",
    "run_mix",
    "run_solo",
    "normalized_weighted_speedup",
]
