"""One-call reproduction report.

Runs a quick (scaled-down) version of every headline experiment and
assembles a markdown report — the "did the reproduction work on my
machine" entry point for artifact users:

>>> from repro.analysis.report import quick_report
>>> text = quick_report()          # a few minutes
>>> print(text)                    # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis import experiments as E


@dataclass
class ReportSection:
    title: str
    body: str
    passed: bool


@dataclass
class ReproductionReport:
    """Collected quick-check results."""

    sections: list[ReportSection] = field(default_factory=list)

    def add(self, title: str, body: str, passed: bool) -> None:
        self.sections.append(ReportSection(title, body, passed))

    @property
    def all_passed(self) -> bool:
        return all(s.passed for s in self.sections)

    def to_markdown(self) -> str:
        lines = ["# LeakyHammer reproduction — quick report", ""]
        status = "PASS" if self.all_passed else "CHECK FAILURES BELOW"
        lines.append(f"Overall: **{status}** "
                     f"({sum(s.passed for s in self.sections)}/"
                     f"{len(self.sections)} checks passed)")
        for section in self.sections:
            marker = "PASS" if section.passed else "FAIL"
            lines += ["", f"## [{marker}] {section.title}", "",
                      "```", section.body, "```"]
        return "\n".join(lines)

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_markdown() + "\n")
        return path


def quick_report() -> ReproductionReport:
    """Scaled-down versions of the headline experiments (~1 minute)."""
    report = ReproductionReport()

    out = E.fig2_latency_observability(n_samples=300, nbo=64)
    table = out["table"]
    means = dict(zip(table.column("event"),
                     table.column("mean latency (ns)")))
    report.add("Fig. 2 — back-offs observable from userspace",
               table.to_text(),
               means.get("backoff", 0) > means.get("refresh", 1e18))

    msg = E.fig3_prac_message(text="MI", pattern_bits=8)
    report.add("Fig. 3 — PRAC covert channel decodes",
               msg["table"].to_text(),
               msg["result"].sent == msg["result"].decoded)

    msg6 = E.fig6_rfm_message(text="MI", pattern_bits=8)
    report.add("Fig. 6 — RFM covert channel decodes",
               msg6["table"].to_text(),
               msg6["result"].sent == msg6["result"].decoded)

    leak = E.sec91_counter_leak(secrets=[20, 90])
    report.add("Sec. 9.1 — counter-value leak",
               leak["table"].to_text(),
               leak["outcome"]["accuracy_within_1"] == 1.0)

    cm = E.sec114_capacity_reduction(n_bits=8, noise_intensity=30.0)
    frrfm_rows = [r for r in cm.rows if r[0] == "FR-RFM"]
    report.add("Sec. 11.4 — FR-RFM eliminates the channel",
               cm.to_text(),
               all(r[4] >= 99.0 for r in frrfm_rows))

    matrix = E.table3_leakage_model()
    report.add("Table 3 — leakage matrix demonstrated",
               matrix.to_text(),
               all(v == "yes" for v in matrix.column("demonstrated")))
    return report
