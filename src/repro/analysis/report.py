"""One-call reproduction report.

Iterates the experiment registry (:mod:`repro.exp.registry`), runs the
quick (scaled-down) configuration of every experiment that declares
one, applies its pass/fail check, and assembles a markdown report —
the "did the reproduction work on my machine" entry point for artifact
users:

>>> from repro.analysis.report import quick_report
>>> text = quick_report()          # a few minutes (cached: seconds)
>>> print(text)                    # doctest: +SKIP

Results go through the on-disk result cache by default, so re-running
an unchanged report is near-instant; pass ``use_cache=False`` (or
``python -m repro report --no-cache``) to force fresh runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.exp.registry import all_experiments
from repro.exp.runner import run_experiment


@dataclass
class ReportSection:
    title: str
    body: str
    passed: bool


@dataclass
class ReproductionReport:
    """Collected quick-check results."""

    sections: list[ReportSection] = field(default_factory=list)

    def add(self, title: str, body: str, passed: bool) -> None:
        self.sections.append(ReportSection(title, body, passed))

    @property
    def all_passed(self) -> bool:
        return all(s.passed for s in self.sections)

    def to_markdown(self) -> str:
        lines = ["# LeakyHammer reproduction — quick report", ""]
        status = "PASS" if self.all_passed else "CHECK FAILURES BELOW"
        lines.append(f"Overall: **{status}** "
                     f"({sum(s.passed for s in self.sections)}/"
                     f"{len(self.sections)} checks passed)")
        for section in self.sections:
            marker = "PASS" if section.passed else "FAIL"
            lines += ["", f"## [{marker}] {section.title}", "",
                      "```", section.body, "```"]
        return "\n".join(lines)

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_markdown() + "\n")
        return path


def quick_report(*, workers: int | None = None, use_cache: bool = True,
                 cache_dir: str | None = None) -> ReproductionReport:
    """Quick configurations of every registered experiment that has one.

    An experiment joins this report by declaring ``quick`` (scaled-down
    keyword overrides) and ``check`` (result -> pass/fail + rendering)
    in its ``@experiment`` registration — there is no hand-maintained
    list here.
    """
    report = ReproductionReport()
    for spec in all_experiments():
        if spec.quick is None or spec.check is None:
            continue
        run = run_experiment(spec.name, dict(spec.quick), workers=workers,
                             use_cache=use_cache, cache_dir=cache_dir)
        passed, body = spec.check(run.value)
        report.add(f"{spec.figure} — {spec.claim}", body, passed)
    return report
