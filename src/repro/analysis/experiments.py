"""Experiment drivers: one function per paper table/figure.

Every driver returns :class:`~repro.analysis.figures.FigureTable`
objects containing the same rows/series the paper reports.  All sizes
are parameterized; the defaults are reduced-but-faithful scales (the
paper's full runs use 100-byte messages, 40 websites x 50 traces and
60 four-core workloads on a cluster -- see DESIGN.md section 7).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.figures import FigureTable, render_strip
from repro.analysis.speedup import (
    normalized_weighted_speedup,
    run_mix,
    run_solo,
)
from repro.core.capacity import channel_capacity_bps
from repro.core.counter_leak import CounterLeakAttack, CounterLeakConfig
from repro.core.fingerprint import FingerprintConfig, WebsiteFingerprinter
from repro.core.leakage_model import demonstrate_leakage_matrix
from repro.core.prac_channel import PracChannelConfig, PracCovertChannel
from repro.core.probe import EventKind, LatencyClassifier
from repro.core.rfm_channel import RfmChannelConfig, RfmCovertChannel
from repro.cache.hierarchy import HierarchyConfig
from repro.cpu.agent import run_agents
from repro.cpu.probe import LatencyProbe
from repro.ml import cross_validate, paper_model_zoo, train_test_split
from repro.ml.metrics import accuracy_score
from repro.ml.tree import DecisionTreeClassifier
from repro.sim.config import (
    DefenseKind,
    DefenseParams,
    RefreshPolicy,
    SystemConfig,
)
from repro.sim.engine import MS, NS, US
from repro.system import MemorySystem
from repro.workloads.patterns import random_symbols, standard_patterns
from repro.workloads.spec import apps_for_mix, make_workload_mixes
from repro.workloads.websites import WebsiteCatalog

#: Noise intensities swept by Figs. 4/7/11 (paper sweeps 1..100%).
DEFAULT_INTENSITIES = (1, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100)


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def evaluate_patterns(channel_factory, n_bits: int) -> dict:
    """Transmit the paper's four message patterns; pool the bit errors
    (Section 5.2's metric) and compute the channel capacity."""
    sent_all: list[int] = []
    decoded_all: list[int] = []
    raw_rate = None
    for bits in standard_patterns(n_bits).values():
        result = channel_factory().transmit(bits)
        sent_all.extend(result.sent)
        decoded_all.extend(result.decoded)
        raw_rate = result.raw_bit_rate_bps
    errors = sum(1 for s, d in zip(sent_all, decoded_all) if s != d)
    e = errors / len(sent_all)
    return {
        "raw_bit_rate_bps": raw_rate,
        "error_probability": e,
        "capacity_bps": channel_capacity_bps(raw_rate, e),
        "bits": len(sent_all),
    }


# ----------------------------------------------------------------------
# Fig. 2 -- PRAC-induced latencies observed from userspace
# ----------------------------------------------------------------------
def fig2_latency_observability(n_samples: int = 512,
                               nbo: int = 128) -> dict:
    """Reproduce Fig. 2: the latency levels a measurement loop sees."""
    config = SystemConfig(
        defense=DefenseParams(kind=DefenseKind.PRAC, nbo=nbo))
    system = MemorySystem(config)
    addrs = system.mapper.same_bank_rows(2, bankgroup=0, bank=0,
                                         first_row=0, stride=8)
    probe = LatencyProbe(system, addrs, max_samples=n_samples)
    run_agents(system, [probe], hard_limit=50 * MS)
    classifier = LatencyClassifier(config)

    by_kind: dict[EventKind, list[int]] = {}
    first_backoff = None
    for i, sample in enumerate(probe.samples):
        kind = classifier.classify(sample.delta)
        by_kind.setdefault(kind, []).append(sample.delta)
        if kind is EventKind.BACKOFF and first_backoff is None:
            first_backoff = i

    table = FigureTable(
        "Fig. 2: memory request latencies under PRAC (N_BO="
        f"{nbo}, {n_samples} requests)",
        ["event", "count", "mean latency (ns)", "max latency (ns)"])
    for kind in (EventKind.HIT, EventKind.CONFLICT, EventKind.REFRESH,
                 EventKind.BACKOFF):
        deltas = by_kind.get(kind, [])
        if deltas:
            table.add_row(kind.value, len(deltas),
                          sum(deltas) / len(deltas) / NS,
                          max(deltas) / NS)
    conflict = by_kind.get(EventKind.CONFLICT, [0])
    refresh = by_kind.get(EventKind.REFRESH)
    backoff = by_kind.get(EventKind.BACKOFF)
    if refresh and backoff:
        ratio = (sum(backoff) / len(backoff)) / (sum(refresh) / len(refresh))
        table.add_note(f"back-off latency is {ratio:.2f}x the periodic-"
                       "refresh latency (paper: 1.9x)")
    if first_backoff is not None:
        table.add_note(f"first back-off at request #{first_backoff} "
                       f"(expected ~{2 * nbo - 1})")
    return {
        "table": table,
        "samples": [(s.end_time, s.delta) for s in probe.samples],
        "first_backoff_index": first_backoff,
        "ground_truth_backoffs": system.stats.backoffs,
    }


# ----------------------------------------------------------------------
# Figs. 3 and 6 -- 40-bit "MICRO" transmissions + raw bit rates
# ----------------------------------------------------------------------
def fig3_prac_message(text: str = "MICRO", pattern_bits: int = 40) -> dict:
    """Fig. 3 message plot plus the Section 6.3 raw-bit-rate result."""
    channel = PracCovertChannel()
    result = channel.transmit_text(text)
    table = FigureTable(
        f"Fig. 3: PRAC covert channel transmitting {len(result.sent)}-bit "
        f"'{text}'",
        ["window", "bit sent", "back-offs seen", "decoded"])
    for w in result.windows:
        table.add_row(w.index, w.sent, w.backoffs, w.decoded)
    table.add_note(f"decoded correctly: {result.sent == result.decoded}")
    rates = evaluate_patterns(PracCovertChannel, pattern_bits)
    table.add_note(
        f"raw bit rate over 4 patterns: "
        f"{rates['raw_bit_rate_bps'] / 1e3:.1f} Kbps (paper: 39.0)")
    return {"table": table, "result": result, "rates": rates}


def fig6_rfm_message(text: str = "MICRO", pattern_bits: int = 40) -> dict:
    """Fig. 6 message plot plus the Section 7.3 raw-bit-rate result."""
    channel = RfmCovertChannel()
    result = channel.transmit_text(text)
    table = FigureTable(
        f"Fig. 6: RFM covert channel transmitting {len(result.sent)}-bit "
        f"'{text}'",
        ["window", "bit sent", "RFMs seen", "decoded"])
    for w in result.windows:
        table.add_row(w.index, w.sent, w.rfms, w.decoded)
    table.add_note(f"decoded correctly: {result.sent == result.decoded}")
    rates = evaluate_patterns(RfmCovertChannel, pattern_bits)
    table.add_note(
        f"raw bit rate over 4 patterns: "
        f"{rates['raw_bit_rate_bps'] / 1e3:.1f} Kbps (paper: 48.7)")
    return {"table": table, "result": result, "rates": rates}


# ----------------------------------------------------------------------
# Figs. 4 and 7 -- capacity/error vs noise intensity
# ----------------------------------------------------------------------
def fig4_prac_noise_sweep(intensities=DEFAULT_INTENSITIES,
                          n_bits: int = 24) -> FigureTable:
    table = FigureTable(
        "Fig. 4: PRAC covert channel vs noise intensity",
        ["noise intensity (%)", "error probability", "capacity (Kbps)"])
    for intensity in intensities:
        stats = evaluate_patterns(
            lambda i=intensity: PracCovertChannel(
                PracChannelConfig(noise_intensity=i)), n_bits)
        table.add_row(intensity, stats["error_probability"],
                      stats["capacity_bps"] / 1e3)
    table.add_note("paper: 28.8 Kbps at 1% noise; capacity stays "
                   ">20.7 Kbps until ~88% intensity")
    return table


def fig7_rfm_noise_sweep(intensities=DEFAULT_INTENSITIES,
                         n_bits: int = 24) -> FigureTable:
    table = FigureTable(
        "Fig. 7: RFM covert channel vs noise intensity",
        ["noise intensity (%)", "error probability", "capacity (Kbps)"])
    for intensity in intensities:
        stats = evaluate_patterns(
            lambda i=intensity: RfmCovertChannel(
                RfmChannelConfig(noise_intensity=i)), n_bits)
        table.add_row(intensity, stats["error_probability"],
                      stats["capacity_bps"] / 1e3)
    table.add_note("paper: 46.3 Kbps at 1% noise; knee at lower noise "
                   "intensity than the PRAC channel (bank counters "
                   "aggregate all activations)")
    return table


# ----------------------------------------------------------------------
# Figs. 5 and 8 -- capacity/error vs co-running SPEC intensity
# ----------------------------------------------------------------------
def fig5_prac_app_noise(n_bits: int = 24) -> FigureTable:
    table = FigureTable(
        "Fig. 5: PRAC covert channel vs SPEC-like memory intensity",
        ["memory intensity", "error probability", "capacity (Kbps)"])
    for cls in ("L", "M", "H"):
        stats = evaluate_patterns(
            lambda c=cls: PracCovertChannel(
                PracChannelConfig(spec_class=c)), n_bits)
        table.add_row(cls, stats["error_probability"],
                      stats["capacity_bps"] / 1e3)
    table.add_note("paper: 36.0 / 32.2 / 31.2 Kbps for L / M / H")
    return table


def fig8_rfm_app_noise(n_bits: int = 24) -> FigureTable:
    table = FigureTable(
        "Fig. 8: RFM covert channel vs SPEC-like memory intensity",
        ["memory intensity", "error probability", "capacity (Kbps)"])
    for cls in ("L", "M", "H"):
        stats = evaluate_patterns(
            lambda c=cls: RfmCovertChannel(
                RfmChannelConfig(spec_class=c)), n_bits)
        table.add_row(cls, stats["error_probability"],
                      stats["capacity_bps"] / 1e3)
    table.add_note("paper: 48.1 / 44.4 / 43.6 Kbps for L / M / H")
    return table


# ----------------------------------------------------------------------
# Section 6.3 -- multibit covert channels
# ----------------------------------------------------------------------
def sec63_multibit(n_symbols: int = 32,
                   noise_intensity: float | None = 1.0) -> FigureTable:
    table = FigureTable(
        "Section 6.3: multibit PRAC covert channels",
        ["levels", "raw bit rate (Kbps)", "error probability",
         "capacity (Kbps)"])
    for levels in (2, 3, 4):
        channel = PracCovertChannel(PracChannelConfig(
            levels=levels, noise_intensity=noise_intensity))
        symbols = random_symbols(n_symbols, levels, seed=11)
        result = channel.transmit(symbols)
        table.add_row(levels, result.raw_bit_rate_bps / 1e3,
                      result.error_probability, result.capacity_bps / 1e3)
    table.add_note("paper raw rates: 39.0 / 61.7 / 76.8 Kbps; higher-order "
                   "alphabets trade noise tolerance for rate")
    return table


# ----------------------------------------------------------------------
# Figs. 9/10 + Table 2 -- website fingerprinting
# ----------------------------------------------------------------------
def fig9_fingerprint_examples(n_sites: int = 3, traces_per_site: int = 2,
                              duration_ps: int = 1 * MS) -> FigureTable:
    cfg = FingerprintConfig(duration_ps=duration_ps)
    fingerprinter = WebsiteFingerprinter(cfg)
    catalog = WebsiteCatalog(n_sites, seed=1)
    table = FigureTable(
        "Fig. 9: website fingerprints (back-offs per execution window)",
        ["website", "trace", "back-offs", "strip"])
    for profile in catalog:
        for t in range(traces_per_site):
            trace = fingerprinter.capture(profile, trace_seed=t + 1)
            counts = trace.window_counts(cfg.n_windows)
            table.add_row(profile.name, t,
                          len(trace.backoff_times), render_strip(counts))
    table.add_note("repeated loads of a site produce similar strips; "
                   "different sites differ (paper Fig. 9)")
    return table


def fig10_table2_fingerprint(n_sites: int = 10, traces_per_site: int = 10,
                             duration_ps: int = 1 * MS,
                             n_splits: int = 5,
                             with_noise: bool = False) -> dict:
    """Fig. 10 (classifier accuracies) and Table 2 (decision-tree CV)."""
    cfg = FingerprintConfig(duration_ps=duration_ps,
                            spec_noise="H" if with_noise else None)
    fingerprinter = WebsiteFingerprinter(cfg)
    catalog = WebsiteCatalog(n_sites, seed=1)
    X, y, names = fingerprinter.collect_dataset(catalog, traces_per_site)

    Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.3, seed=5)
    fig10 = FigureTable(
        f"Fig. 10: classifier accuracy over {n_sites} websites"
        + (" (with SPEC noise)" if with_noise else ""),
        ["model", "test accuracy"])
    accuracies = {}
    for name, model in paper_model_zoo(seed=3).items():
        model.fit(Xtr, ytr)
        acc = accuracy_score(yte, model.predict(Xte))
        accuracies[name] = acc
        fig10.add_row(name, acc)
    fig10.add_note(f"random-guess accuracy: {1.0 / n_sites:.3f} "
                   "(paper: decision tree 0.75 over 40 sites, 30x random)")

    cv = cross_validate(lambda: DecisionTreeClassifier(seed=3), X, y,
                        n_splits=n_splits, seed=7)
    table2 = FigureTable(
        f"Table 2: decision tree, {n_splits}-fold cross-validation",
        ["metric", "mean (%)", "std (%)"])
    for metric in ("f1", "precision", "recall"):
        table2.add_row(metric.capitalize(), 100 * cv[f"{metric}_mean"],
                       100 * cv[f"{metric}_std"])
    table2.add_note("paper: F1 71.8 (4.2), precision 74.1 (4.4), "
                    "recall 72.4 (4.2)")
    return {"fig10": fig10, "table2": table2, "accuracies": accuracies,
            "dataset": (X, y, names), "cv": cv}


# ----------------------------------------------------------------------
# Table 3 -- leakage matrix
# ----------------------------------------------------------------------
def table3_leakage_model() -> FigureTable:
    table = FigureTable(
        "Table 3: information leaked, demonstrated by micro-simulation",
        ["attack", "colocation", "leaked information", "demonstrated",
         "evidence"])
    for cell in demonstrate_leakage_matrix():
        table.add_row(cell.attack, cell.granularity, cell.leaked,
                      "yes" if cell.demonstrated else "NO", cell.detail)
    return table


# ----------------------------------------------------------------------
# Section 9.1 -- activation-counter value leak
# ----------------------------------------------------------------------
def sec91_counter_leak(secrets: list[int] | None = None,
                       nbo: int = 128) -> dict:
    if secrets is None:
        secrets = list(range(3, nbo - 4, 12))
    attack = CounterLeakAttack(CounterLeakConfig(nbo=nbo))
    outcome = attack.run(secrets)
    table = FigureTable(
        "Section 9.1: leaking PRAC activation-counter values",
        ["metric", "value"])
    table.add_row("secrets leaked", len(secrets))
    table.add_row("accuracy", outcome["accuracy"])
    table.add_row("mean abs error (counts)", outcome["mean_abs_error"])
    table.add_row("bits per value", outcome["bits_per_value"])
    table.add_row("mean time per value (us)", outcome["mean_elapsed_us"])
    table.add_row("throughput (Kbps)", outcome["throughput_kbps"])
    table.add_note("paper: 7 bits in 13.6 us on average = 501 Kbps")
    return {"table": table, "outcome": outcome}


# ----------------------------------------------------------------------
# Fig. 11 -- RFMs per back-off sensitivity
# ----------------------------------------------------------------------
def fig11_rfms_per_backoff(intensities=(1, 25, 50, 75, 100),
                           n_bits: int = 16,
                           jitter_ps: int = 70 * NS) -> FigureTable:
    """The Section 10.1 methodology: no refresh postponing, and the
    receiver's measurements carry real-system timing jitter -- which is
    what makes a 1-RFM back-off (350 ns) overlap the single-REF latency
    (295 ns) and confuse the receiver."""
    table = FigureTable(
        "Fig. 11: PRAC channel with 1/2/4 RFMs per back-off "
        "(no refresh postponing)",
        ["RFMs per back-off", "noise intensity (%)", "error probability",
         "capacity (Kbps)"])
    for n_rfms in (4, 2, 1):
        for intensity in intensities:
            stats = evaluate_patterns(
                lambda n=n_rfms, i=intensity: PracCovertChannel(
                    PracChannelConfig(
                        n_rfms=n, noise_intensity=i,
                        measurement_jitter_ps=jitter_ps,
                        refresh_policy=RefreshPolicy.EVERY_TREFI)),
                n_bits)
            table.add_row(n_rfms, intensity, stats["error_probability"],
                          stats["capacity_bps"] / 1e3)
    table.add_note("shorter back-offs overlap the periodic-refresh "
                   "latency and degrade the channel (paper Section 10.1)")
    return table


# ----------------------------------------------------------------------
# Fig. 12 -- preventive-action latency sweep
# ----------------------------------------------------------------------
def fig12_preventive_latency(latencies_ns=(0, 5, 10, 25, 50, 96, 150,
                                           192, 250),
                             n_bits: int = 16) -> FigureTable:
    table = FigureTable(
        "Fig. 12: channel vs preventive-action latency",
        ["latency (ns)", "error probability", "capacity (Kbps)"])
    for latency_ns in latencies_ns:
        stats = evaluate_patterns(
            lambda l=latency_ns: PracCovertChannel(PracChannelConfig(
                backoff_latency_override=l * NS)), n_bits)
        table.add_row(latency_ns, stats["error_probability"],
                      stats["capacity_bps"] / 1e3)
    table.add_note("paper: the channel survives down to ~10 ns -- far "
                   "below the 96/192 ns minimum for refreshing one "
                   "aggressor's victims (blast radius 1/2)")
    return table


# ----------------------------------------------------------------------
# Section 10.3 -- larger cache hierarchy and prefetching
# ----------------------------------------------------------------------
def sec103_cache_hierarchy(n_bits: int = 24, n_sites: int = 6,
                           traces_per_site: int = 6,
                           duration_ps: int = 1 * MS) -> dict:
    large = HierarchyConfig.large()
    big_frontend = large.total_lookup_latency

    channels = FigureTable(
        "Section 10.3: covert channels with a larger cache hierarchy",
        ["channel", "hierarchy", "error probability", "capacity (Kbps)"])
    for name, factory in (
        ("PRAC", lambda fe=None: PracCovertChannel(PracChannelConfig(
            noise_intensity=1.0, frontend_latency_override=fe))),
        ("RFM", lambda fe=None: RfmCovertChannel(RfmChannelConfig(
            noise_intensity=1.0, frontend_latency_override=fe))),
    ):
        base = evaluate_patterns(lambda f=factory: f(None), n_bits)
        bigger = evaluate_patterns(lambda f=factory: f(big_frontend),
                                   n_bits)
        channels.add_row(name, "base (L1+LLC)",
                         base["error_probability"],
                         base["capacity_bps"] / 1e3)
        channels.add_row(name, "large (L1+L2+6MB LLC, BO prefetch)",
                         bigger["error_probability"],
                         bigger["capacity_bps"] / 1e3)
    channels.add_note("paper: 36.7 (-5.8%) and 47.7 (-2.1%) Kbps with the "
                      "larger hierarchy")

    # Fingerprinting with the browser filtered through the hierarchy.
    accuracies = {}
    for label, hierarchy in (("base", None), ("large", large)):
        cfg = FingerprintConfig(duration_ps=duration_ps,
                                hierarchy=hierarchy)
        fingerprinter = WebsiteFingerprinter(cfg)
        catalog = WebsiteCatalog(n_sites, seed=1)
        X, y, _ = fingerprinter.collect_dataset(catalog, traces_per_site)
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.3, seed=5)
        model = DecisionTreeClassifier(seed=3).fit(Xtr, ytr)
        accuracies[label] = accuracy_score(yte, model.predict(Xte))
    fingerprint = FigureTable(
        "Section 10.3: fingerprinting accuracy vs cache hierarchy",
        ["hierarchy", "decision-tree accuracy"])
    fingerprint.add_row("base", accuracies["base"])
    fingerprint.add_row("large + prefetch", accuracies["large"])
    fingerprint.add_note("paper: 71.8% (4.2% lower) with the larger "
                         "hierarchy -- LLC filters browser accesses and "
                         "the prefetcher adds noise")
    return {"channels": channels, "fingerprint": fingerprint,
            "accuracies": accuracies}


# ----------------------------------------------------------------------
# Section 11.4 -- countermeasure channel-capacity reduction
# ----------------------------------------------------------------------
def sec114_capacity_reduction(n_bits: int = 24,
                              noise_intensity: float = 30.0) -> FigureTable:
    """Channel capacity against PRAC vs the countermeasures.

    RIAC's capacity reduction manifests through interaction with
    ambient traffic (randomized counters make other processes trigger
    unintentional back-offs), so the comparison runs under a moderate
    noise level as well as noiseless."""
    table = FigureTable(
        "Section 11.4: LeakyHammer capacity under countermeasures",
        ["defense", "noise", "error probability", "capacity (Kbps)",
         "reduction vs insecure (%)"])

    def prac_factory(kind, intensity):
        return lambda: PracCovertChannel(PracChannelConfig(
            defense_kind=kind, noise_intensity=intensity))

    for intensity in (None, noise_intensity):
        label = "none" if intensity is None else f"{intensity:.0f}%"
        base = evaluate_patterns(prac_factory(DefenseKind.PRAC, intensity),
                                 n_bits)
        riac = evaluate_patterns(
            prac_factory(DefenseKind.PRAC_RIAC, intensity), n_bits)
        frrfm = evaluate_patterns(
            lambda i=intensity: RfmCovertChannel(RfmChannelConfig(
                defense_kind=DefenseKind.FRRFM, noise_intensity=i)),
            n_bits)
        base_cap = base["capacity_bps"]
        for name, stats in (("PRAC (insecure)", base),
                            ("PRAC-RIAC", riac), ("FR-RFM", frrfm)):
            reduction = (100.0 * (1.0 - stats["capacity_bps"] / base_cap)
                         if base_cap > 0 else 0.0)
            table.add_row(name, label, stats["error_probability"],
                          stats["capacity_bps"] / 1e3, reduction)
    table.add_note("paper: FR-RFM eliminates the channel (100%); "
                   "PRAC-RIAC reduces capacity by ~86% on average")
    return table


# ----------------------------------------------------------------------
# Fig. 13 -- countermeasure performance
# ----------------------------------------------------------------------
FIG13_MECHANISMS = (
    ("PRAC", DefenseKind.PRAC),
    ("PRFM", DefenseKind.PRFM),
    ("PRAC-RIAC", DefenseKind.PRAC_RIAC),
    ("FR-RFM", DefenseKind.FRRFM),
    ("PRAC-Bank", DefenseKind.PRAC_BANK),
)


def fig13_performance(nrh_values=(1024, 512, 256, 128, 64),
                      n_mixes: int = 4, n_requests: int = 10_000,
                      seed: int = 0) -> dict:
    """Normalized weighted speedup of every mechanism at every N_RH."""
    baseline_cfg = SystemConfig()
    mixes = make_workload_mixes(n_mixes, seed=seed)
    table = FigureTable(
        "Fig. 13: normalized weighted speedup vs RowHammer threshold",
        ["N_RH"] + [name for name, _ in FIG13_MECHANISMS])
    per_mix: dict[str, dict] = {}

    runs = []
    for mix in mixes:
        apps = apps_for_mix(mix, baseline_cfg.org, n_requests, seed=seed)
        alone = {app.name: run_solo(baseline_cfg, app) for app in apps}
        base = run_mix(baseline_cfg, apps)
        per_mix[mix.name] = {"alone": alone, "baseline": base}
        runs.append((mix, apps, alone, base))

    for nrh in nrh_values:
        row: list = [nrh]
        for name, kind in FIG13_MECHANISMS:
            ws_values = []
            for mix, apps, alone, base in runs:
                cfg = baseline_cfg.with_defense(
                    DefenseParams.for_nrh(kind, nrh))
                defended = run_mix(cfg, apps)
                ws_values.append(
                    normalized_weighted_speedup(alone, base, defended))
            row.append(float(np.mean(ws_values)))
        table.add_row(*row)
    table.add_note("paper: FR-RFM ~7% overhead at N_RH=1024, 18.2x at "
                   "N_RH=64; PRAC-RIAC 2.14x at 64; PRAC-Bank within "
                   "2.5% of PRAC everywhere")
    return {"table": table, "per_mix": per_mix}


# ----------------------------------------------------------------------
# Section 12 -- random trigger algorithms resist LeakyHammer
# ----------------------------------------------------------------------
def sec12_para_resistance(n_bits: int = 16,
                          para_probability: float = 0.005) -> FigureTable:
    """PARA's stateless random trigger (Section 12): an attacker cannot
    reliably *trigger* preventive actions, so a windowed sender/receiver
    pair extracts (almost) no information.

    We transmit a checkered message with the PRAC sender/receiver
    protocol against a PARA-protected system and decode windows by
    preventive-action counts; the decode should be near chance."""
    from repro.core.covert import WindowedReceiver, WindowedSender
    from repro.core.prac_channel import (
        ATTACK_BANK,
        RECEIVER_ROW,
        SENDER_ROW,
    )
    from repro.cpu.agent import run_agents
    from repro.workloads.patterns import checkered_bits

    bits = checkered_bits(n_bits, 0)
    window = 25 * US
    epoch = 2 * US
    end = epoch + len(bits) * window

    config = SystemConfig(defense=DefenseParams(
        kind=DefenseKind.PARA, para_probability=para_probability))
    system = MemorySystem(config)
    classifier = LatencyClassifier(config)
    bg, bank = ATTACK_BANK
    sender_addr = system.mapper.encode(bankgroup=bg, bank=bank,
                                       row=SENDER_ROW)
    receiver_addr = system.mapper.encode(bankgroup=bg, bank=bank,
                                         row=RECEIVER_ROW)
    sender = WindowedSender(system, sender_addr, bits, epoch, window,
                            {0: None, 1: 0}, classifier,
                            stop_on_backoff=False)
    receiver = WindowedReceiver(system, receiver_addr, len(bits), epoch,
                                window, classifier)
    run_agents(system, [sender, receiver], hard_limit=end + 200 * US)

    # Best-effort decode: a PARA refresh (192 ns) appears as an
    # off-level latency; count samples above the refresh midpoint.
    threshold = (classifier.level_of(EventKind.CONFLICT)
                 + config.defense.para_refresh_latency // 2)
    per_window = [0] * len(bits)
    for sample in receiver.samples:
        mid = sample.end_time - sample.delta // 2
        idx = (mid - epoch) // window
        if 0 <= idx < len(bits) and sample.delta >= threshold:
            per_window[idx] += 1
    median = sorted(per_window)[len(per_window) // 2]
    decoded = [1 if c > median else 0 for c in per_window]
    errors = sum(1 for s, d in zip(bits, decoded) if s != d)
    e = errors / len(bits)

    table = FigureTable(
        "Section 12: LeakyHammer against PARA (random trigger)",
        ["metric", "value"])
    table.add_row("PARA probability", para_probability)
    table.add_row("preventive actions during run",
                  system.stats.para_refreshes)
    table.add_row("decode error probability", e)
    table.add_row("capacity (Kbps)", channel_capacity_bps(40_000.0, e) / 1e3)
    table.add_note("random triggers deny the attacker reliable "
                   "triggering/observation; decode hovers near chance")
    return table


# ----------------------------------------------------------------------
# Ablations for design choices called out in DESIGN.md
# ----------------------------------------------------------------------
def ablation_refresh_postponing(n_samples: int = 512) -> FigureTable:
    """How the controller's refresh policy changes observability: the
    postpone-pair policy doubles the refresh event latency, widening
    the gap an attacker must discriminate."""
    table = FigureTable(
        "Ablation: refresh policy vs latency-level separation",
        ["policy", "refresh event (ns)", "backoff event (ns)",
         "separation (ns)"])
    for policy in (RefreshPolicy.EVERY_TREFI, RefreshPolicy.POSTPONE_PAIR):
        config = SystemConfig(
            defense=DefenseParams(kind=DefenseKind.PRAC, nbo=128),
            refresh_policy=policy)
        classifier = LatencyClassifier(config)
        refresh = classifier.level_of(EventKind.REFRESH) / NS
        backoff = classifier.level_of(EventKind.BACKOFF) / NS
        table.add_row(policy.value, refresh, backoff, backoff - refresh)
    return table


def ablation_trecv(trecv_values=(1, 2, 3, 4, 5),
                   noise_intensity: float = 60.0,
                   n_bits: int = 16) -> FigureTable:
    """The RFM receiver's count threshold T_recv trades false positives
    (too low: stray RFMs flip 0-bits) against false negatives (too
    high: real 1-windows fall short)."""
    table = FigureTable(
        f"Ablation: RFM receiver threshold T_recv at "
        f"{noise_intensity:.0f}% noise",
        ["T_recv", "error probability", "capacity (Kbps)"])
    for trecv in trecv_values:
        stats = evaluate_patterns(
            lambda t=trecv: RfmCovertChannel(RfmChannelConfig(
                trecv=t, noise_intensity=noise_intensity)), n_bits)
        table.add_row(trecv, stats["error_probability"],
                      stats["capacity_bps"] / 1e3)
    table.add_note("the paper picks T_recv = 3")
    return table


def ablation_window_size(windows_us=(15, 20, 25, 35, 50),
                         n_bits: int = 16) -> FigureTable:
    """Window duration trades raw bit rate against reliability: below
    the time needed for ~2*N_BO activations plus the back-off latency,
    1-bits stop fitting in their window."""
    table = FigureTable(
        "Ablation: PRAC channel window duration",
        ["window (us)", "raw rate (Kbps)", "error probability",
         "capacity (Kbps)"])
    for window_us in windows_us:
        stats = evaluate_patterns(
            lambda w=window_us: PracCovertChannel(PracChannelConfig(
                window_ps=w * US)), n_bits)
        table.add_row(window_us, stats["raw_bit_rate_bps"] / 1e3,
                      stats["error_probability"],
                      stats["capacity_bps"] / 1e3)
    table.add_note("the paper's 25 us window balances rate vs the "
                   "~14 us ramp + 1.4 us back-off")
    return table
