"""Backwards-compatible shim over :mod:`repro.exp.drivers`.

The experiment drivers used to live here as one monolith; they now
live in per-topic modules under ``repro.exp.drivers`` and register
themselves with the experiment registry (``repro.exp.registry``).
Every public name keeps importing from here, so existing code like

>>> from repro.analysis import experiments as E
>>> table = E.fig4_prac_noise_sweep(intensities=(1,), n_bits=4)

continues to work.  New code should resolve drivers through the
registry (``repro.exp.get_experiment``) or run them via
``repro.exp.run_experiment`` / ``python -m repro run``.
"""

from __future__ import annotations

from repro.exp.drivers.ablations import (
    ablation_refresh_postponing,
    ablation_trecv,
    ablation_window_size,
)
from repro.exp.drivers.common import DEFAULT_INTENSITIES, evaluate_patterns
from repro.exp.drivers.fingerprint import (
    fig9_fingerprint_examples,
    fig10_table2_fingerprint,
    sec103_cache_hierarchy,
)
from repro.exp.drivers.leak import sec91_counter_leak, table3_leakage_model
from repro.exp.drivers.perf import (
    FIG13_MECHANISMS,
    fig13_performance,
    sec12_para_resistance,
    sec114_capacity_reduction,
)
from repro.exp.drivers.prac import (
    fig2_latency_observability,
    fig3_prac_message,
    fig4_prac_noise_sweep,
    fig5_prac_app_noise,
    fig11_rfms_per_backoff,
    fig12_preventive_latency,
    sec63_multibit,
)
from repro.exp.drivers.rfm import (
    fig6_rfm_message,
    fig7_rfm_noise_sweep,
    fig8_rfm_app_noise,
)

__all__ = [
    "DEFAULT_INTENSITIES",
    "FIG13_MECHANISMS",
    "ablation_refresh_postponing",
    "ablation_trecv",
    "ablation_window_size",
    "evaluate_patterns",
    "fig2_latency_observability",
    "fig3_prac_message",
    "fig4_prac_noise_sweep",
    "fig5_prac_app_noise",
    "fig6_rfm_message",
    "fig7_rfm_noise_sweep",
    "fig8_rfm_app_noise",
    "fig9_fingerprint_examples",
    "fig10_table2_fingerprint",
    "fig11_rfms_per_backoff",
    "fig12_preventive_latency",
    "fig13_performance",
    "sec12_para_resistance",
    "sec63_multibit",
    "sec91_counter_leak",
    "sec103_cache_hierarchy",
    "sec114_capacity_reduction",
    "table3_leakage_model",
]
