"""Text/CSV renderers for the reproduced figures and tables.

No plotting libraries are available offline, so every figure is
regenerated as an aligned text table (the paper's series/rows) plus an
optional CSV written next to the benchmark output.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

#: Eight-level block ramp for strip/heat rendering (Fig. 9 style).
_BLOCKS = " .:-=+*#@"


@dataclass
class FigureTable:
    """One reproduced figure/table as rows of values."""

    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}")
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    # ------------------------------------------------------------------
    @staticmethod
    def _fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.3f}" if abs(value) < 1000 else f"{value:.1f}"
        return str(value)

    def to_text(self) -> str:
        cells = [[self._fmt(v) for v in row] for row in self.rows]
        widths = [len(c) for c in self.columns]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(c.ljust(widths[i])
                           for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append("  ".join(cell.ljust(widths[i])
                                   for i, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_csv(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.columns)
            writer.writerows(self.rows)
        return path

    def column(self, name: str) -> list:
        """Values of one column (for assertions in tests/benches)."""
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def to_markdown(self) -> str:
        """GitHub-flavored markdown rendering (the artifact layer)."""
        lines = [f"### {self.title}", "",
                 "| " + " | ".join(self.columns) + " |",
                 "|" + "|".join("---" for _ in self.columns) + "|"]
        for row in self.rows:
            lines.append("| " + " | ".join(self._fmt(v) for v in row)
                         + " |")
        for note in self.notes:
            lines.append(f"\n> note: {note}")
        return "\n".join(lines)


def iter_tables(value):
    """Yield every FigureTable reachable inside an experiment result."""
    if isinstance(value, FigureTable):
        yield value
    elif isinstance(value, dict):
        for item in value.values():
            yield from iter_tables(item)
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from iter_tables(item)


def render_strip(counts: Sequence[float], max_value: float | None = None
                 ) -> str:
    """Render a count vector as a Fig. 9-style intensity strip."""
    values = list(counts)
    if not values:
        return ""
    peak = max_value if max_value is not None else max(values)
    if peak <= 0:
        return " " * len(values)
    chars = []
    for v in values:
        level = min(len(_BLOCKS) - 1,
                    int(round(v / peak * (len(_BLOCKS) - 1))))
        chars.append(_BLOCKS[max(0, level)])
    return "".join(chars)


def render_series(xs: Iterable, ys: Iterable[float], width: int = 60,
                  height: int = 12, title: str = "") -> str:
    """Tiny ASCII scatter/line rendering for quick visual inspection."""
    xs = list(xs)
    ys = list(ys)
    if len(xs) != len(ys) or not xs:
        raise ValueError("xs and ys must be equal-length and non-empty")
    lo, hi = min(ys), max(ys)
    span = (hi - lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for i, y in enumerate(ys):
        col = int(i / max(1, len(ys) - 1) * (width - 1))
        row = int((1.0 - (y - lo) / span) * (height - 1))
        grid[row][col] = "*"
    lines = ([title] if title else []) + [
        "".join(row) for row in grid
    ] + [f"y: [{lo:.3g}, {hi:.3g}]  x: {xs[0]} .. {xs[-1]}"]
    return "\n".join(lines)
