"""LeakyHammer reproduction: covert & side channels from RowHammer defenses.

Reproduces Bostanci et al., "Understanding and Mitigating Covert Channel
and Side Channel Vulnerabilities Introduced by RowHammer Defenses"
(MICRO 2025) as a pure-Python library: a DDR5 memory-system simulator,
the PRAC / Periodic-RFM defenses, the LeakyHammer attack suite, the
FR-RFM / PRAC-RIAC / Bank-Level-PRAC countermeasures, and an evaluation
harness regenerating every figure and table of the paper.
"""

from repro.sim.config import (
    DefenseKind,
    DefenseParams,
    DramOrg,
    DramTiming,
    RefreshPolicy,
    SystemConfig,
)
from repro.system import MemorySystem

__version__ = "1.1.0"

#: Scenario-layer names resolved lazily (PEP 562) so ``import repro``
#: stays cheap for CLI startup; ``from repro import ScenarioSpec`` works.
_SCENARIO_EXPORTS = ("ScenarioSpec", "AgentSpec", "StopSpec",
                     "MeasurementSpec", "ScenarioResult", "ScenarioError")


def __getattr__(name: str):
    if name in _SCENARIO_EXPORTS:
        import repro.scenario as _scenario

        return getattr(_scenario, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


__all__ = [
    "MemorySystem",
    "SystemConfig",
    "DramTiming",
    "DramOrg",
    "DefenseParams",
    "DefenseKind",
    "RefreshPolicy",
    *_SCENARIO_EXPORTS,
    "__version__",
]
