"""The memory-request latency measurement routine (paper Listing 1).

The probe allocates pointers in separate DRAM rows of one bank and
accesses them in an interleaved manner, flushing the cache line each
time, while timestamping continuously: the end of iteration *i* is the
start of iteration *i+1*, so no high-latency event between two loads is
missed.  Each recorded sample is the wall-clock delta of one loop
iteration -- loop overhead + cache bypass + DRAM service -- exactly
what a userspace attacker measures with ``rdtsc``/``m5_rpns``.
"""

from __future__ import annotations

import random
from typing import Callable, NamedTuple

from repro.cpu.agent import Agent, deterministic_seed
from repro.system import MemorySystem


class LatencySample(NamedTuple):
    """One loop-iteration measurement.

    A ``NamedTuple`` rather than a dataclass: a probe records one of
    these per loop iteration, and tuple construction is several times
    cheaper than a frozen dataclass's ``object.__setattr__`` chain.
    """

    end_time: int  #: timestamp at the end of the iteration (ps)
    delta: int  #: measured iteration latency (ps)
    addr: int  #: the address accessed


class LatencyProbe(Agent):
    """Closed-loop measurement agent alternating over a set of addresses.

    Parameters
    ----------
    addrs:
        Addresses accessed round-robin (two rows of one bank create the
        paper's row-buffer-conflict pattern).
    max_samples / stop_time:
        Stop after this many samples or at this absolute time
        (whichever comes first; either may be ``None``).
    overhead:
        Per-iteration constant cost (clflush + loop bookkeeping); taken
        from the system config when ``None``.
    accesses_per_addr:
        Consecutive accesses to each address before moving to the next
        (1 = the Listing-1 interleaved pattern; the fingerprinting
        routine of Listing 2 uses T = N_BO - 1).
    jitter_ps:
        Measurement noise: each recorded delta is perturbed by a
        seeded uniform offset in [-jitter/2, +jitter/2], modeling the
        pipeline/timer noise of real rdtsc loops (paper Section 5.1's
        "real system noise").  Physical timing is unaffected.
    """

    def __init__(self, system: MemorySystem, addrs: list[int],
                 name: str = "probe", start_time: int = 0,
                 max_samples: int | None = None,
                 stop_time: int | None = None,
                 overhead: int | None = None,
                 accesses_per_addr: int = 1,
                 on_sample: Callable[[LatencySample], None] | None = None,
                 jitter_ps: int = 0
                 ) -> None:
        super().__init__(system, name)
        if not addrs:
            raise ValueError("probe needs at least one address")
        if accesses_per_addr < 1:
            raise ValueError("accesses_per_addr must be >= 1")
        if jitter_ps < 0:
            raise ValueError("jitter must be non-negative")
        self.addrs = list(addrs)
        self.start_time = start_time
        self.max_samples = max_samples
        self.stop_time = stop_time
        self.overhead = (overhead if overhead is not None
                         else system.config.loop_overhead)
        self.accesses_per_addr = accesses_per_addr
        self.on_sample = on_sample
        self.jitter_ps = jitter_ps
        self._jitter_rng = random.Random(
            deterministic_seed(name, system.config.seed, 0x1177))
        self.samples: list[LatencySample] = []
        self._addr_idx = 0
        self._repeat = 0
        self._prev_end = start_time
        self._sleeping_until: int | None = None
        #: Observer replay contract: ``(observer, guard)`` where the
        #: guard, given the cycle's latency deltas, returns True when
        #: replaying ``observer`` over synthesized samples cannot feed
        #: back into the physical simulation (no stop, no sleep).  None
        #: means the observer is opaque and disqualifies jumps.
        self._ff_observer_guard = None
        # Stable bound-method references: attribute access creates a
        # fresh bound method object, which the per-iteration hot loop
        # must not pay for.
        self._issue_cb = self._issue
        self._complete_cb = self._complete
        # Tail submit: _issue ends with the submit call, so the
        # controller may elide its scheduler-wake event (bit-identical;
        # see MemoryController.submit_tail).
        self._submit = system.controller.submit_tail
        #: Steady-state fast-forward coordinator (None when disabled);
        #: consulted at every address-cycle boundary.
        self._ff = system.fast_forward

    # ------------------------------------------------------------------
    def _park(self, time_ps: int) -> None:
        """Schedule the next loop iteration.  With fast-forward active
        the wake event is *parked* through the coordinator's holder so
        a joint steady-state jump can shift it across the window (see
        ``FastForward.park``); otherwise it is a plain engine event."""
        ff = self._ff
        if ff is not None:
            ff.park(self, time_ps, self._issue_cb)
        else:
            self.sim.schedule_at(time_ps, self._issue_cb)

    def start(self) -> None:
        self._park(self.start_time)

    def sleep_until(self, t: int) -> None:
        """Pause the access loop until absolute time ``t`` (resets the
        timestamp origin so the sleep is not measured as latency)."""
        self._sleeping_until = max(t, self.sim.now)

    def _issue(self) -> None:
        if self.done:
            return
        if self._sleeping_until is not None:
            wake = max(self._sleeping_until, self.sim.now)
            self._sleeping_until = None
            self._prev_end = wake
            self._park(wake)
            return
        if self.stop_time is not None and self.sim.now >= self.stop_time:
            self._finish()
            return
        if (self.max_samples is not None
                and len(self.samples) >= self.max_samples):
            self._finish()
            return
        self._submit(self.addrs[self._addr_idx], self._complete_cb)

    def _complete(self, req) -> None:
        now = self.sim.now
        delta = now - self._prev_end
        if self.jitter_ps:
            half = self.jitter_ps // 2
            delta = max(0, delta + self._jitter_rng.randint(-half, half))
        sample = LatencySample(now, delta, req.addr)
        self._prev_end = now
        self.samples.append(sample)
        # Advance the round-robin index (inlined _advance_index).
        repeat = self._repeat + 1
        if repeat >= self.accesses_per_addr:
            self._repeat = 0
            at_boundary = self._addr_idx = \
                (self._addr_idx + 1) % len(self.addrs)
        else:
            self._repeat = repeat
            at_boundary = 1
        if self.on_sample is not None:
            self.on_sample(sample)
        if self.done:
            return
        ff = self._ff
        if ff is not None and at_boundary == 0:
            # Cycle boundary, next issue not yet scheduled: the
            # coordinator may bulk-advance this loop (appending
            # synthesized samples and moving _prev_end) when the
            # pattern is provably steady.
            ff.consider(self)
        self._park(self._prev_end + self.overhead)

    # ------------------------------------------------------------------
    # Joint steady-state fast-forward hooks (repro.sim.fastforward).
    # The coordinator treats every holder-parked agent as a potential
    # *participant* of a superposed periodic steady state; these
    # methods expose the probe's linear progress, verify its sample
    # pattern over a candidate combined period, bound a jump, and apply
    # the per-agent share of one.
    # ------------------------------------------------------------------
    def ff_addrs(self) -> list[int]:
        return self.addrs

    def ff_state(self, ff):
        """(lin, inv) of this probe for a joint snapshot, or ``None``
        when it cannot participate right now (jitter perturbs deltas;
        a pending sleep makes progress non-linear)."""
        if self.jitter_ps or self._sleeping_until is not None:
            return None
        holder = ff.holder_of(self)
        if holder is None:
            return None
        lin = (self._prev_end, len(self.samples), holder.time, holder.seq)
        inv = (self._addr_idx, self._repeat, self.max_samples,
               self.stop_time)
        return lin, inv

    def ff_verify(self, now: int, period: int, d_lin, d_seq: int) -> bool:
        """Confirm the probe's last two combined periods are exact
        time-translates: progress fields advanced by one period, and
        the trailing ``2 x d_samples`` samples repeat with offset
        ``period`` (equal deltas and addresses).  Also vets the
        observer replay guard against the cycle's deltas."""
        d_samples = d_lin[1]
        if d_samples <= 0:
            return False
        if d_lin[0] != period or d_lin[2] != period or d_lin[3] != d_seq:
            return False
        samples = self.samples
        if len(samples) < 2 * d_samples:
            return False
        for i in range(-d_samples, 0):
            late = samples[i]
            early = samples[i - d_samples]
            if (late.end_time - early.end_time != period
                    or late.delta != early.delta
                    or late.addr != early.addr):
                return False
        if self.on_sample is not None:
            guard = self._ff_observer_guard
            if (guard is None or guard[0] is not self.on_sample
                    or not guard[1]([s.delta
                                     for s in samples[-d_samples:]])):
                return False
        return True

    def ff_cap(self, now: int, period: int, d_lin) -> int | None:
        """Jump bound in combined periods from this probe's own stop
        conditions (``None`` = unbounded)."""
        n = None
        if self.stop_time is not None:
            n = (self.stop_time - 1 - now) // period
        if self.max_samples is not None:
            cap = (self.max_samples - len(self.samples)) // d_lin[1]
            n = cap if n is None else min(n, cap)
        return n

    def ff_production(self, d_lin) -> tuple[int, int]:
        """(reads, writes) this probe contributes per combined period."""
        return d_lin[1], 0

    def ff_jump(self, now: int, period: int, n: int, d_lin) -> int:
        """Advance ``n`` combined periods: extend the sample log with
        shifted copies of the last period's pattern, replay the
        observer over the synthesized tail, move ``_prev_end``."""
        d_samples = d_lin[1]
        samples = self.samples
        pattern = [(s.end_time, s.delta, s.addr)
                   for s in samples[-d_samples:]]
        base = len(samples)
        samples.extend(
            LatencySample(t + c * period, d, a)
            for c in range(1, n + 1) for (t, d, a) in pattern)
        self._prev_end += period * n
        if self.on_sample is not None:
            self._ff_replay(samples[base:])
        return d_samples * n

    def ff_period_hint(self) -> int | None:
        """This probe's own detected cycle period (single-agent track),
        feeding the coordinator's capped-LCM combined-period hint."""
        track = getattr(self, "_ff_track", None)
        if track is None or track.t0 is None or track.t1 is None:
            return None
        return track.t1 - track.t0

    def _ff_replay(self, new_samples) -> None:
        """Apply the observer over synthesized samples, in order.  The
        coordinator only calls this after the observer's replay guard
        proved feedback-freedom, so this is exact bookkeeping catch-up,
        not re-simulation.  Subclasses override with batched variants
        (see ``WindowedReceiver``)."""
        observe = self.on_sample
        for sample in new_samples:
            observe(sample)

    # ------------------------------------------------------------------
    @property
    def deltas(self) -> list[int]:
        return [s.delta for s in self.samples]

    def stop(self) -> None:
        """Finish the loop at the next opportunity."""
        self._finish()
