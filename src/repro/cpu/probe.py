"""The memory-request latency measurement routine (paper Listing 1).

The probe allocates pointers in separate DRAM rows of one bank and
accesses them in an interleaved manner, flushing the cache line each
time, while timestamping continuously: the end of iteration *i* is the
start of iteration *i+1*, so no high-latency event between two loads is
missed.  Each recorded sample is the wall-clock delta of one loop
iteration -- loop overhead + cache bypass + DRAM service -- exactly
what a userspace attacker measures with ``rdtsc``/``m5_rpns``.
"""

from __future__ import annotations

import random
from typing import Callable, NamedTuple

from repro.cpu.agent import Agent, deterministic_seed
from repro.system import MemorySystem


class LatencySample(NamedTuple):
    """One loop-iteration measurement.

    A ``NamedTuple`` rather than a dataclass: a probe records one of
    these per loop iteration, and tuple construction is several times
    cheaper than a frozen dataclass's ``object.__setattr__`` chain.
    """

    end_time: int  #: timestamp at the end of the iteration (ps)
    delta: int  #: measured iteration latency (ps)
    addr: int  #: the address accessed


class LatencyProbe(Agent):
    """Closed-loop measurement agent alternating over a set of addresses.

    Parameters
    ----------
    addrs:
        Addresses accessed round-robin (two rows of one bank create the
        paper's row-buffer-conflict pattern).
    max_samples / stop_time:
        Stop after this many samples or at this absolute time
        (whichever comes first; either may be ``None``).
    overhead:
        Per-iteration constant cost (clflush + loop bookkeeping); taken
        from the system config when ``None``.
    accesses_per_addr:
        Consecutive accesses to each address before moving to the next
        (1 = the Listing-1 interleaved pattern; the fingerprinting
        routine of Listing 2 uses T = N_BO - 1).
    jitter_ps:
        Measurement noise: each recorded delta is perturbed by a
        seeded uniform offset in [-jitter/2, +jitter/2], modeling the
        pipeline/timer noise of real rdtsc loops (paper Section 5.1's
        "real system noise").  Physical timing is unaffected.
    """

    def __init__(self, system: MemorySystem, addrs: list[int],
                 name: str = "probe", start_time: int = 0,
                 max_samples: int | None = None,
                 stop_time: int | None = None,
                 overhead: int | None = None,
                 accesses_per_addr: int = 1,
                 on_sample: Callable[[LatencySample], None] | None = None,
                 jitter_ps: int = 0
                 ) -> None:
        super().__init__(system, name)
        if not addrs:
            raise ValueError("probe needs at least one address")
        if accesses_per_addr < 1:
            raise ValueError("accesses_per_addr must be >= 1")
        if jitter_ps < 0:
            raise ValueError("jitter must be non-negative")
        self.addrs = list(addrs)
        self.start_time = start_time
        self.max_samples = max_samples
        self.stop_time = stop_time
        self.overhead = (overhead if overhead is not None
                         else system.config.loop_overhead)
        self.accesses_per_addr = accesses_per_addr
        self.on_sample = on_sample
        self.jitter_ps = jitter_ps
        self._jitter_rng = random.Random(
            deterministic_seed(name, system.config.seed, 0x1177))
        self.samples: list[LatencySample] = []
        self._addr_idx = 0
        self._repeat = 0
        self._prev_end = start_time
        self._sleeping_until: int | None = None
        # Stable bound-method references: attribute access creates a
        # fresh bound method object, which the per-iteration hot loop
        # must not pay for.
        self._issue_cb = self._issue
        self._complete_cb = self._complete
        # Tail submit: _issue ends with the submit call, so the
        # controller may elide its scheduler-wake event (bit-identical;
        # see MemoryController.submit_tail).
        self._submit = system.controller.submit_tail
        #: Steady-state fast-forward coordinator (None when disabled);
        #: consulted at every address-cycle boundary.
        self._ff = system.fast_forward

    # ------------------------------------------------------------------
    def start(self) -> None:
        self.sim.schedule_at(self.start_time, self._issue_cb)

    def sleep_until(self, t: int) -> None:
        """Pause the access loop until absolute time ``t`` (resets the
        timestamp origin so the sleep is not measured as latency)."""
        self._sleeping_until = max(t, self.sim.now)

    def _issue(self) -> None:
        if self.done:
            return
        if self._sleeping_until is not None:
            wake = max(self._sleeping_until, self.sim.now)
            self._sleeping_until = None
            self._prev_end = wake
            self.sim.schedule_at(wake, self._issue_cb)
            return
        if self.stop_time is not None and self.sim.now >= self.stop_time:
            self._finish()
            return
        if (self.max_samples is not None
                and len(self.samples) >= self.max_samples):
            self._finish()
            return
        self._submit(self.addrs[self._addr_idx], self._complete_cb)

    def _complete(self, req) -> None:
        now = self.sim.now
        delta = now - self._prev_end
        if self.jitter_ps:
            half = self.jitter_ps // 2
            delta = max(0, delta + self._jitter_rng.randint(-half, half))
        sample = LatencySample(now, delta, req.addr)
        self._prev_end = now
        self.samples.append(sample)
        # Advance the round-robin index (inlined _advance_index).
        repeat = self._repeat + 1
        if repeat >= self.accesses_per_addr:
            self._repeat = 0
            at_boundary = self._addr_idx = \
                (self._addr_idx + 1) % len(self.addrs)
        else:
            self._repeat = repeat
            at_boundary = 1
        if self.on_sample is not None:
            self.on_sample(sample)
        if self.done:
            return
        ff = self._ff
        if ff is not None and at_boundary == 0:
            # Cycle boundary, next issue not yet scheduled: the
            # coordinator may bulk-advance this loop (appending
            # synthesized samples and moving _prev_end) when the
            # pattern is provably steady.
            ff.consider(self)
        self.sim.schedule_at(self._prev_end + self.overhead,
                             self._issue_cb)

    # ------------------------------------------------------------------
    @property
    def deltas(self) -> list[int]:
        return [s.delta for s in self.samples]

    def stop(self) -> None:
        """Finish the loop at the next opportunity."""
        self._finish()
