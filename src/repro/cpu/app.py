"""Synthetic application agents standing in for SPEC CPU workloads.

The paper uses SPEC CPU2017/2006 applications categorized by RBMPKI
(row-buffer misses per kilo-instruction).  We substitute seeded
synthetic agents whose two knobs map onto exactly that axis:

* ``think_ps`` -- mean compute gap between memory requests (memory
  intensity);
* ``p_row_hit`` -- probability that the next access stays in the
  currently open row (row-buffer locality; its complement drives the
  row-conflict rate, i.e., RBMPKI).

Each agent walks a private working set of rows spread over a set of
banks, which is how real applications both generate interference for
the covert channels (Figs. 5/8) and accumulate activation counts that
trip RowHammer defenses (Fig. 13).
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass

from repro.cpu.agent import Agent
from repro.sim.engine import NS
from repro.system import MemorySystem


@dataclass(frozen=True)
class AppSpec:
    """Parameters of one synthetic application."""

    name: str
    think_ps: int  #: mean gap between requests (exponential)
    p_row_hit: float  #: probability of staying in the open row
    n_rows: int  #: working-set rows per bank
    banks: tuple[tuple[int, int], ...]  #: (bankgroup, bank) pairs used
    n_requests: int  #: requests to issue before finishing
    seed: int = 0
    rank: int = 0
    row_base: int = 4096  #: first working-set row (keeps clear of attack rows)
    #: Zipf skew of row reuse.  Real applications revisit hot rows many
    #: times over a run (power-law reuse), which is what accumulates the
    #: activation counts that trip RowHammer defenses; 0 = uniform.
    zipf_s: float = 1.0

    def validate(self) -> None:
        if not 0.0 <= self.p_row_hit < 1.0:
            raise ValueError("p_row_hit must be in [0, 1)")
        if self.think_ps < 0 or self.n_requests < 1 or self.n_rows < 1:
            raise ValueError("invalid AppSpec parameters")
        if not self.banks:
            raise ValueError("an app must use at least one bank")
        if self.zipf_s < 0:
            raise ValueError("zipf_s must be >= 0")


class SyntheticAppAgent(Agent):
    """Closed-loop request generator following an :class:`AppSpec`."""

    def __init__(self, system: MemorySystem, spec: AppSpec,
                 start_time: int = 0,
                 stop_time: int | None = None) -> None:
        super().__init__(system, spec.name)
        spec.validate()
        self.spec = spec
        self.start_time = start_time
        self.stop_time = stop_time
        self.rng = random.Random(spec.seed)
        self.requests_done = 0
        self._bank_idx = 0
        self._row = spec.row_base
        self._col = 0
        self._row_cdf = self._build_row_cdf(spec)
        # The working set is a list of (bank, row) locations: a hot row
        # lives in *one* bank (a hot page maps to one DRAM row), which
        # is what lets its activation count accumulate there.
        self._working_set = [
            (self.rng.randrange(len(spec.banks)),
             spec.row_base + i)
            for i in range(spec.n_rows)
        ]

    @staticmethod
    def _build_row_cdf(spec: AppSpec) -> list[float]:
        """Cumulative Zipf distribution over working-set entries."""
        if spec.zipf_s == 0:
            weights = [1.0] * spec.n_rows
        else:
            weights = [1.0 / (i + 1) ** spec.zipf_s
                       for i in range(spec.n_rows)]
        total = sum(weights)
        cdf = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cdf.append(acc)
        cdf[-1] = 1.0
        return cdf

    def _sample_location(self) -> tuple[int, int]:
        """Draw a (bank index, row) with Zipf-distributed reuse."""
        idx = bisect_left(self._row_cdf, self.rng.random())
        return self._working_set[idx]

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._issue_cb = self._issue
        self._complete_cb = self._complete
        self.sim.schedule_at(self.start_time, self._issue_cb)

    def _next_addr(self) -> int:
        spec = self.spec
        rng = self.rng
        if rng.random() < spec.p_row_hit:
            self._col = (self._col + 1) % self.config.org.cols_per_row
        else:
            self._bank_idx, self._row = self._sample_location()
            self._col = rng.randrange(self.config.org.cols_per_row)
        bg, bank = spec.banks[self._bank_idx]
        return self.system.mapper.encode(
            rank=spec.rank, bankgroup=bg, bank=bank,
            row=self._row, col=self._col)

    def _issue(self) -> None:
        if self.done:
            return
        if self.stop_time is not None and self.sim.now >= self.stop_time:
            self._finish()
            return
        # Tail position: nothing else is scheduled at this instant
        # after the submit, so the wake-elision fast path applies.
        self.system.submit_tail(self._next_addr(), self._complete_cb)

    def _complete(self, req) -> None:
        self.requests_done += 1
        if self.requests_done >= self.spec.n_requests:
            self._finish()
            return
        think = self.spec.think_ps
        if think:
            # Exponential gaps, floored at 1 ps, keep bursts realistic
            # while preserving the configured mean.
            gap = max(1, round(self.rng.expovariate(1.0 / think)))
        else:
            gap = 1
        self.sim.schedule(gap, self._issue_cb)

    # ------------------------------------------------------------------
    @property
    def elapsed(self) -> int:
        """Wall-clock time from start to finish (valid once done)."""
        if self.finish_time is None:
            raise RuntimeError(f"{self.name} has not finished")
        return self.finish_time - self.start_time


# ----------------------------------------------------------------------
# RBMPKI classes used by the interference studies (Figs. 5 and 8).
# ----------------------------------------------------------------------
def spec_like_app(memory_intensity: str, name: str, seed: int,
                  banks: tuple[tuple[int, int], ...],
                  n_requests: int = 50_000) -> AppSpec:
    """A synthetic SPEC-like app of class L (low), M (medium), H (high)."""
    classes = {
        "L": dict(think_ps=400 * NS, p_row_hit=0.85, n_rows=64),
        "M": dict(think_ps=120 * NS, p_row_hit=0.60, n_rows=256),
        "H": dict(think_ps=20 * NS, p_row_hit=0.30, n_rows=512),
    }
    try:
        knobs = classes[memory_intensity]
    except KeyError:
        raise ValueError("memory_intensity must be 'L', 'M', or 'H'") from None
    return AppSpec(name=name, banks=banks, n_requests=n_requests, seed=seed,
                   **knobs)
