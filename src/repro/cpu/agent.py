"""Base class for simulated processes issuing memory requests."""

from __future__ import annotations

import zlib

from repro.system import MemorySystem


def deterministic_seed(name: str, system_seed: int, salt: int) -> int:
    """Per-agent RNG seed, stable across processes and Python versions.

    crc32, not ``hash()``: str hashes are salted per process, which
    would make seeded agent randomness (probe jitter, read/write mixes)
    nondeterministic across workers and silently break the result
    cache's same-key-same-value guarantee.
    """
    return (zlib.crc32(name.encode()) & 0xFFFF) ^ system_seed ^ salt


class Agent:
    """A process with access to the memory system.

    Subclasses implement :meth:`start` (arming their first event) and
    drive themselves from request-completion callbacks.  ``done``
    flips when the agent has finished its work; drivers typically run
    the simulation until every agent reports done.
    """

    def __init__(self, system: MemorySystem, name: str) -> None:
        self.system = system
        self.sim = system.sim
        self.config = system.config
        self.name = name
        self.done = False
        self.finish_time: int | None = None

    def start(self) -> None:
        raise NotImplementedError

    def _finish(self) -> None:
        if not self.done:
            self.done = True
            self.finish_time = self.sim.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, done={self.done})"


def run_agents(system: MemorySystem, agents: list[Agent],
               hard_limit: int, step: int | None = None) -> None:
    """Start all agents and run the simulation until they all finish."""
    for agent in agents:
        agent.start()
    if step is None:
        step = max(hard_limit // 100, 1)
    system.run_until(lambda: all(a.done for a in agents), step, hard_limit)
