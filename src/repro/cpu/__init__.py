"""CPU-side agents: measurement loops, noise generators, workload players."""

from repro.cpu.agent import Agent
from repro.cpu.probe import LatencyProbe, LatencySample
from repro.cpu.noise import (
    NoiseAgent,
    RWNoiseAgent,
    sleep_for_noise_intensity,
)
from repro.cpu.app import AppSpec, SyntheticAppAgent
from repro.cpu.trace import TraceReplayAgent

__all__ = [
    "Agent",
    "LatencyProbe",
    "LatencySample",
    "NoiseAgent",
    "RWNoiseAgent",
    "sleep_for_noise_intensity",
    "AppSpec",
    "SyntheticAppAgent",
    "TraceReplayAgent",
]
