"""Open-loop trace replay (the browser process of the side channel).

Replays a list of ``(time_offset_ps, addr)`` records against the memory
system with a bounded number of outstanding requests.  If the memory
system falls behind the schedule the replay slips (issues as fast as
completions permit), which is how a real core's MLP limit behaves.
"""

from __future__ import annotations

from repro.cpu.agent import Agent
from repro.system import MemorySystem


class TraceReplayAgent(Agent):
    """Replays a timed access trace with bounded outstanding requests."""

    def __init__(self, system: MemorySystem,
                 trace: list[tuple[int, int]], name: str = "trace",
                 start_time: int = 0, max_outstanding: int = 4) -> None:
        super().__init__(system, name)
        if max_outstanding < 1:
            raise ValueError("max_outstanding must be >= 1")
        self.trace = trace
        self.start_time = start_time
        self.max_outstanding = max_outstanding
        self._next_idx = 0
        self._outstanding = 0
        self.completed = 0

    def start(self) -> None:
        self._pump_cb = self._pump
        self._complete_cb = self._complete
        if not self.trace:
            self.sim.schedule_at(self.start_time, self._finish)
            return
        self.sim.schedule_at(self.start_time, self._pump_cb)

    def _pump(self) -> None:
        """Issue every due record, up to the outstanding limit."""
        if self.done:
            return
        now = self.sim.now
        while (self._next_idx < len(self.trace)
               and self._outstanding < self.max_outstanding):
            offset, addr = self.trace[self._next_idx]
            due = self.start_time + offset
            if due > now:
                break
            self._next_idx += 1
            self._outstanding += 1
            self.system.submit(addr, self._complete_cb)
        if (self._next_idx < len(self.trace)
                and self._outstanding < self.max_outstanding):
            offset, _ = self.trace[self._next_idx]
            self.sim.schedule_at(self.start_time + offset, self._pump_cb)

    def _complete(self, req) -> None:
        self._outstanding -= 1
        self.completed += 1
        if self.completed >= len(self.trace):
            self._finish()
            return
        self._pump()
