"""Noise-generator microbenchmark (paper Section 6.3, Eq. 2).

The microbenchmark issues row activations targeting the attack bank
with sleep periods between consecutive activations; sweeping the sleep
duration from 2 us down to 0.2 us maps linearly onto the paper's
noise-intensity axis:

    intensity = (1 - (sleep - min) / (max - min)) * 99 + 1

:class:`RWNoiseAgent` extends the generator with a seeded read/write
mix: real interfering applications write as well as read, and write
draining perturbs the channel differently from pure activation noise.
"""

from __future__ import annotations

import random

from repro.cpu.agent import Agent, deterministic_seed
from repro.system import MemorySystem

MIN_SLEEP_PS = 200_000  #: 0.2 us
MAX_SLEEP_PS = 2_000_000  #: 2 us


def sleep_for_noise_intensity(intensity: float,
                              min_sleep: int = MIN_SLEEP_PS,
                              max_sleep: int = MAX_SLEEP_PS) -> int:
    """Invert Eq. 2: the sleep duration producing ``intensity`` in [1, 100]."""
    if not 1.0 <= intensity <= 100.0:
        raise ValueError("noise intensity must be within [1, 100]")
    frac = (intensity - 1.0) / 99.0
    return round(max_sleep - frac * (max_sleep - min_sleep))


def noise_intensity_for_sleep(sleep_ps: int,
                              min_sleep: int = MIN_SLEEP_PS,
                              max_sleep: int = MAX_SLEEP_PS) -> float:
    """Eq. 2 of the paper."""
    if not min_sleep <= sleep_ps <= max_sleep:
        raise ValueError("sleep duration outside the Eq. 2 range")
    return (1.0 - (sleep_ps - min_sleep) / (max_sleep - min_sleep)) * 99.0 + 1.0


class NoiseAgent(Agent):
    """Alternating-row activation generator with configurable sleeps."""

    #: Whether this agent class may participate in joint steady-state
    #: fast-forward (subclasses drawing per-access randomness opt out:
    #: synthesized iterations must not skip RNG draws).
    _ff_eligible = True

    def __init__(self, system: MemorySystem, addrs: list[int],
                 sleep_ps: int, name: str = "noise", start_time: int = 0,
                 stop_time: int | None = None, burst: int = 2) -> None:
        super().__init__(system, name)
        if len(addrs) < 2:
            raise ValueError("noise agent alternates >= 2 rows to force ACTs")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.addrs = list(addrs)
        self.sleep_ps = sleep_ps
        self.start_time = start_time
        self.stop_time = stop_time
        #: back-to-back conflicting accesses per wake-up; the default of
        #: 2 activates both rows each round, maximizing activations per
        #: unit time like the paper's noise microbenchmark.
        self.burst = burst
        self.requests_issued = 0
        self._idx = 0
        self._in_burst = 0
        # Stable bound references for the per-access hot loop.  The
        # submit ends both _issue and (via _issue) the burst
        # continuation in _complete, so the tail-submit wake elision
        # applies (see MemoryController.submit_tail).
        self._issue_cb = self._issue
        self._complete_cb = self._complete
        self._submit = system.controller.submit_tail
        #: Fast-forward coordinator; ineligible subclasses schedule
        #: plainly, so their wake events bound every jump (foreign).
        self._ff = system.fast_forward if self._ff_eligible else None

    @classmethod
    def for_intensity(cls, system: MemorySystem, addrs: list[int],
                      intensity: float, **kwargs) -> "NoiseAgent":
        """Build a noise agent from a paper-style intensity in [1, 100]."""
        return cls(system, addrs, sleep_for_noise_intensity(intensity),
                   **kwargs)

    def _park(self, time_ps: int) -> None:
        ff = self._ff
        if ff is not None:
            ff.park(self, time_ps, self._issue_cb)
        else:
            self.sim.schedule_at(time_ps, self._issue_cb)

    def start(self) -> None:
        self._park(self.start_time)

    def _issue(self) -> None:
        if self.done:
            return
        if self.stop_time is not None and self.sim.now >= self.stop_time:
            self._finish()
            return
        addr = self.addrs[self._idx]
        self._idx = (self._idx + 1) % len(self.addrs)
        self.requests_issued += 1
        self._submit(addr, self._complete_cb,
                     is_write=self._next_is_write())

    def _next_is_write(self) -> bool:
        """Read/write decision hook, drawn once per issued access."""
        return False

    def _complete(self, req) -> None:
        if self.done:
            return
        self._in_burst += 1
        if self._in_burst < self.burst:
            self._issue()
            return
        self._in_burst = 0
        self._park(self.sim.now + self.sleep_ps)

    # ------------------------------------------------------------------
    # Joint steady-state fast-forward hooks (repro.sim.fastforward).
    # ------------------------------------------------------------------
    def ff_addrs(self) -> list[int]:
        return self.addrs

    def ff_state(self, ff):
        holder = ff.holder_of(self)
        if holder is None:
            return None
        lin = (self.requests_issued, holder.time, holder.seq)
        inv = (self._idx, self._in_burst)
        return lin, inv

    def ff_verify(self, now: int, period: int, d_lin, d_seq: int) -> bool:
        return (d_lin[0] > 0 and d_lin[1] == period
                and d_lin[2] == d_seq)

    def ff_cap(self, now: int, period: int, d_lin) -> int | None:
        if self.stop_time is None:
            return None
        return (self.stop_time - 1 - now) // period

    def ff_production(self, d_lin) -> tuple[int, int]:
        return d_lin[0], 0

    def ff_jump(self, now: int, period: int, n: int, d_lin) -> int:
        self.requests_issued += d_lin[0] * n
        return 0


class RWNoiseAgent(NoiseAgent):
    """Noise generator issuing a seeded mix of reads and writes.

    Each access is a write with probability ``write_ratio``, drawn from
    a private RNG under the same cross-process determinism contract as
    the probe's jitter RNG (see :func:`repro.cpu.agent.
    deterministic_seed`).

    Excluded from steady-state fast-forward: every issued access draws
    from the RNG, and a jump that skipped draws would desynchronize the
    stream from event-accurate execution.
    """

    _ff_eligible = False

    def __init__(self, system: MemorySystem, addrs: list[int],
                 sleep_ps: int, write_ratio: float = 0.5,
                 name: str = "mixed-noise", **kwargs) -> None:
        super().__init__(system, addrs, sleep_ps, name=name, **kwargs)
        if not 0.0 <= write_ratio <= 1.0:
            raise ValueError("write_ratio must be within [0, 1]")
        self.write_ratio = write_ratio
        self.writes_issued = 0
        self._rw_rng = random.Random(
            deterministic_seed(name, system.config.seed, 0x52D7))

    def _next_is_write(self) -> bool:
        if self._rw_rng.random() < self.write_ratio:
            self.writes_issued += 1
            return True
        return False
