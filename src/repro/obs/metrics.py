"""Process-wide metrics registry: counters, gauges, histograms.

Design constraints, in order:

* **Near-zero cost when disabled.**  Every mutation method checks one
  module-level boolean before touching a lock; the simulator's inner
  event loop is never instrumented at all — engine and fast-forward
  totals are *sampled* from the deterministic counters those layers
  already keep (at ``run()`` exit and at collect time), so the hot
  path pays nothing whether telemetry is on or off.  The ``repro
  bench`` suite verifies this with an explicit canary
  (``telemetry_engine_overhead_pct``).
* **Stdlib only.**  Prometheus text exposition
  (``Registry.to_prometheus``) and a JSON snapshot
  (``Registry.snapshot``) are rendered by hand; no client library.
* **One registry per process.**  Instrumented layers call
  :data:`REGISTRY` directly; workers ship counter deltas home over the
  frame protocol and the coordinator absorbs them, so a sharded
  sweep's engine/fast-forward counters aggregate in the coordinator.

Label support is deliberately small: a metric may carry labels per
observation (``counter.inc(1, route="/healthz")``); each distinct
label set becomes its own sample.  Keep cardinality low (routes,
refusal reasons, worker ids of a small fleet).

``REPRO_TELEMETRY=0`` (or ``off``/``false``/``no``) disables all
mutation at process start; :func:`set_enabled` flips it at runtime
(the bench canary uses this to measure the disabled path).
"""

from __future__ import annotations

import os
import threading
import time

#: Environment switch: ``0``/``false``/``no``/``off`` disables all
#: metric mutation (collection still renders, showing zeros).
TELEMETRY_ENV = "REPRO_TELEMETRY"

#: Default latency-histogram buckets (seconds): spans sub-millisecond
#: cached HTTP hits through multi-second simulation trials.
LATENCY_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                   0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0)

_enabled = (os.environ.get(TELEMETRY_ENV, "").strip().lower()
            not in ("0", "false", "no", "off"))


def enabled() -> bool:
    """Whether metric mutation is currently on."""
    return _enabled


def set_enabled(value: bool) -> None:
    """Flip telemetry at runtime (tests and the bench canary)."""
    global _enabled
    _enabled = bool(value)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class _Metric:
    """Shared storage: one value (or bucket vector) per label set."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()
        self._values: dict[tuple, float] = {}

    def samples(self) -> list[tuple[dict, float]]:
        """``(labels, value)`` per label set (unlabeled = ``{}``)."""
        with self._lock:
            return [(dict(key), value)
                    for key, value in sorted(self._values.items())]

    def value(self, **labels) -> float:
        """Current value for one label set (0.0 when never touched)."""
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def _zero(self) -> None:
        with self._lock:
            self._values.clear()


class Counter(_Metric):
    """Monotonically increasing count."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels) -> None:
        if not _enabled:
            return
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount


class Gauge(_Metric):
    """A value that goes up and down (depths, live connection counts)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        if not _enabled:
            return
        with self._lock:
            self._values[_label_key(labels)] = value

    def inc(self, amount: float = 1, **labels) -> None:
        if not _enabled:
            return
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1, **labels) -> None:
        self.inc(-amount, **labels)


class Histogram(_Metric):
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 buckets: tuple = LATENCY_BUCKETS) -> None:
        super().__init__(name, help_text)
        self.buckets = tuple(sorted(buckets))
        #: label key -> [per-bucket counts..., +Inf count, sum]
        self._series: dict[tuple, list[float]] = {}

    def observe(self, value: float, **labels) -> None:
        if not _enabled:
            return
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = [0.0] * (len(self.buckets)
                                                      + 2)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    series[i] += 1
            series[-2] += 1  # +Inf / _count
            series[-1] += value  # _sum

    def samples(self) -> list[tuple[dict, float]]:
        """``(labels, count)`` per label set — the observation count
        (bucket detail is exposition-format specific; see
        :meth:`series`)."""
        with self._lock:
            return [(dict(key), row[-2])
                    for key, row in sorted(self._series.items())]

    def series(self) -> list[tuple[dict, list[float], float, float]]:
        """``(labels, bucket_counts, count, sum)`` per label set."""
        with self._lock:
            return [(dict(key), list(row[:-2]), row[-2], row[-1])
                    for key, row in sorted(self._series.items())]

    def value(self, **labels) -> float:
        with self._lock:
            row = self._series.get(_label_key(labels))
            return 0.0 if row is None else row[-2]

    def _zero(self) -> None:
        with self._lock:
            self._series.clear()


def _escape(text: str) -> str:
    return (str(text).replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _label_text(labels: dict, extra: tuple = ()) -> str:
    items = list(labels.items()) + list(extra)
    if not items:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in items)
    return "{" + inner + "}"


def _num(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class Registry:
    """All metrics of one process, plus collect-time sampling hooks."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}
        #: Named sampling hooks run by :meth:`collect` — how layers
        #: with their own deterministic counters (engine,
        #: fastforward) feed the registry without hot-path writes.
        self._collectors: dict[str, object] = {}

    # -- declaration ----------------------------------------------------
    def _declare(self, cls, name: str, help_text: str, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name, help_text,
                                                   **kwargs)
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already declared as "
                    f"{metric.kind}, not {cls.kind}")
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._declare(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._declare(Gauge, name, help_text)

    def histogram(self, name: str, help_text: str = "",
                  buckets: tuple = LATENCY_BUCKETS) -> Histogram:
        return self._declare(Histogram, name, help_text,
                             buckets=buckets)

    def add_collector(self, name: str, fn) -> None:
        """Register (or replace) a collect-time sampling hook.

        ``fn(registry)`` runs inside :meth:`collect`; replace-by-name
        keeps re-created holders (a test's second ``ReproApp``) from
        stacking stale hooks."""
        with self._lock:
            self._collectors[name] = fn

    def remove_collector(self, name: str) -> None:
        with self._lock:
            self._collectors.pop(name, None)

    # -- collection + exposition ----------------------------------------
    def collect(self) -> list[_Metric]:
        with self._lock:
            collectors = list(self._collectors.values())
        for fn in collectors:
            try:
                fn(self)
            except Exception:  # noqa: BLE001 - observability never kills
                pass
        with self._lock:
            return [self._metrics[k] for k in sorted(self._metrics)]

    def to_prometheus(self) -> str:
        """The registry in Prometheus text exposition format 0.0.4."""
        lines: list[str] = []
        for metric in self.collect():
            if metric.help:
                lines.append(f"# HELP {metric.name} "
                             f"{_escape(metric.help)}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Histogram):
                for labels, counts, count, total in metric.series():
                    for bound, n in zip(metric.buckets, counts):
                        lines.append(
                            f"{metric.name}_bucket"
                            f"{_label_text(labels, (('le', repr(float(bound))),))}"
                            f" {_num(n)}")
                    lines.append(
                        f"{metric.name}_bucket"
                        f"{_label_text(labels, (('le', '+Inf'),))}"
                        f" {_num(count)}")
                    lines.append(f"{metric.name}_sum"
                                 f"{_label_text(labels)} {total!r}")
                    lines.append(f"{metric.name}_count"
                                 f"{_label_text(labels)} {_num(count)}")
            else:
                for labels, value in metric.samples():
                    lines.append(f"{metric.name}{_label_text(labels)} "
                                 f"{_num(value)}")
        return "\n".join(lines) + "\n"

    def snapshot(self, prefix: str | None = None) -> dict:
        """JSON-safe ``{name: {type, help, samples: [...]}}`` document
        (``repro stats --json``, fleet-status aggregation, tests)."""
        doc: dict = {}
        for metric in self.collect():
            if prefix is not None and not metric.name.startswith(prefix):
                continue
            samples = [{"labels": labels, "value": value}
                       for labels, value in metric.samples()]
            doc[metric.name] = {"type": metric.kind,
                                "help": metric.help,
                                "samples": samples}
        return doc

    def get_value(self, name: str, **labels) -> float:
        """Raw current value (no collector pass — cheap enough for a
        per-trial progress line)."""
        with self._lock:
            metric = self._metrics.get(name)
        return 0.0 if metric is None else metric.value(**labels)

    def reset(self) -> None:
        """Zero every metric and re-baseline delta collectors (tests)."""
        with self._lock:
            metrics = list(self._metrics.values())
            collectors = list(self._collectors.values())
        for metric in metrics:
            metric._zero()
        for fn in collectors:
            rebase = getattr(fn, "rebase", None)
            if rebase is not None:
                try:
                    rebase()
                except Exception:  # noqa: BLE001
                    pass


#: The process-wide registry every instrumented layer writes to.
REGISTRY = Registry()


# ----------------------------------------------------------------------
# Engine + fast-forward sampling (the hot layers are never instrumented
# per event; their own deterministic counters are sampled here)
# ----------------------------------------------------------------------
class _DeltaCollector:
    """Turn a monotonically growing source dict into registry counters
    by sampling deltas at collect time."""

    def __init__(self, source, mapping: dict[str, tuple[str, str]]) -> None:
        self._source = source  # () -> dict[str, number]
        self._mapping = mapping  # source key -> (metric name, help)
        self._last: dict[str, float] = {}

    def rebase(self) -> None:
        try:
            self._last = dict(self._source())
        except Exception:  # noqa: BLE001 - source not importable yet
            self._last = {}

    def __call__(self, registry: Registry) -> None:
        current = self._source()
        for key, (name, help_text) in self._mapping.items():
            value = current.get(key, 0)
            delta = value - self._last.get(key, 0)
            if delta > 0:
                registry.counter(name, help_text).inc(delta)
            self._last[key] = value


def _engine_source() -> dict:
    from repro.sim import engine

    return engine.global_counters()


def _ff_source() -> dict:
    from repro.sim import fastforward

    return fastforward.totals()


REGISTRY.add_collector("engine", _DeltaCollector(_engine_source, {
    "events_run": ("repro_engine_events_run_total",
                   "Engine event callbacks executed (all simulators, "
                   "absorbed from workers on sharded sweeps)"),
    "events_elided": ("repro_engine_events_elided_total",
                      "Events resolved analytically by fast-forward / "
                      "wake elision instead of dispatched"),
}))

REGISTRY.add_collector("fastforward", _DeltaCollector(_ff_source, {
    "jumps": ("repro_ff_jumps_total",
              "Steady-state fast-forward jumps taken"),
    "cycles": ("repro_ff_jumped_cycles_total",
               "Simulated picosecond-cycles skipped by jumps"),
    "samples": ("repro_ff_samples_total",
                "Probe samples synthesized inside jumps"),
    "joint_jumps": ("repro_ff_joint_jumps_total",
                    "Multi-agent (joint) fast-forward jumps"),
}))


def sweep_live() -> tuple[int, int]:
    """(active workers, requeues) of the sweep currently running — the
    TTY progress line's data source.  Gauge reads only; no collector
    pass, no locks beyond the per-metric one."""
    workers = REGISTRY.get_value("repro_dist_workers_active")
    requeues = REGISTRY.get_value("repro_sweep_requeues")
    return int(workers), int(requeues)


def now() -> float:
    """Wall-clock seconds (one seam for tests to monkeypatch)."""
    return time.time()
