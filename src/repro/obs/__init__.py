"""Unified telemetry: a process-wide metrics registry plus
trial-lifecycle tracing.

Two halves, both stdlib-only and both safe to leave on:

:mod:`repro.obs.metrics`
    Counters, gauges, and bucketed histograms in one process-wide
    registry, instrumented into the engine, the result cache, the dist
    coordinator, the TCP fleet, and the serve subsystem.  Exposed as
    Prometheus text on ``GET /metrics``, as a JSON snapshot for
    ``repro stats``, and aggregated into ``repro fleet status --json``.

:mod:`repro.obs.trace`
    Trial-lifecycle trace spans (queued -> dispatched -> running ->
    completed/requeued -> cached) recorded as NDJSON events, with
    worker-side execution spans shipped home over the frame protocol,
    plus a Chrome trace-event export (``repro trace export``) that
    opens directly in ``about://tracing`` / Perfetto.

Neither half ever touches simulated state: metrics sample existing
deterministic counters, and trace events carry wall-clock timestamps
only, so bit-identity (diffcheck) is unaffected by either.
"""

from repro.obs import metrics, trace

__all__ = ["metrics", "trace"]
