"""Trial-lifecycle tracing: NDJSON events + Chrome trace export.

A traced sweep records one event per lifecycle transition::

    {"t": <wall s>, "ev": "queued",     "trial": "s1:4", "key": "ab12..."}
    {"t": ...,      "ev": "cached",     "trial": "s1:2"}
    {"t": ...,      "ev": "dispatched", "trial": "s1:4", "worker": "shard1:pid7",
     "attempt": 1}
    {"t": ...,      "ev": "running",    "trial": "s1:4", "worker": ...,
     "attempt": 1, "start": <wall s>, "end": <wall s>}
    {"t": ...,      "ev": "requeued",   "trial": "s1:4", "worker": ...,
     "attempt": 1, "why": "died (...)"}
    {"t": ...,      "ev": "completed",  "trial": "s1:4"}

``queued``/``cached``/``completed`` come from
:func:`repro.exp.runner.map_trials`; ``dispatched``/``requeued`` from
the shards coordinator; ``running`` is the worker-side execution span,
shipped home in the result frame (``"span": [start, end]`` — wall
clock, measured around the trial function inside the worker) and
stitched to the coordinator's trial id here.  A crash-requeued trial
therefore shows *two* dispatched/running attempts under one trial id.

Trial ids are ``<sweep>:<point-index>`` with a process-unique sweep
counter; the content-address ``trial_key`` (when the function is
addressable) rides along on the ``queued`` event so traces can be
joined against the result cache.

Tracing records wall-clock timestamps only and never touches simulated
state, RNG, or scheduling — a traced sweep is bit-identical to an
untraced one (``repro diffcheck`` holds with ``REPRO_TRACE`` set).

Enable with :func:`start` (``repro trace record``) or by pointing the
``REPRO_TRACE`` environment variable at an output path before process
start.  Events stream to the NDJSON sink as they happen (a crashed
sweep keeps its partial trace) and are kept in memory for
:func:`chrome_trace` / :func:`summarize`.
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import time

#: Point this at a file path to trace every sweep in the process.
TRACE_ENV = "REPRO_TRACE"

_lock = threading.Lock()
_active = False
_events: list[dict] = []
_sink = None  # open text file, line-per-event
_sweep_counter = 0
_tl = threading.local()


def active() -> bool:
    """Whether trace events are being recorded."""
    return _active


def start(path: str | os.PathLike | None = None) -> None:
    """Begin recording (optionally streaming NDJSON to ``path``).

    Restarting replaces the in-memory buffer and sink."""
    global _active, _sink
    with _lock:
        if _sink is not None:
            try:
                _sink.close()
            except OSError:  # pragma: no cover
                pass
        _events.clear()
        _sink = open(path, "w", encoding="utf-8") if path else None
        _active = True


def stop() -> list[dict]:
    """Stop recording; returns (and keeps) the buffered events."""
    global _active, _sink
    with _lock:
        _active = False
        if _sink is not None:
            try:
                _sink.close()
            except OSError:  # pragma: no cover
                pass
            _sink = None
        return list(_events)


def events() -> list[dict]:
    """The buffered events so far (copy)."""
    with _lock:
        return list(_events)


def emit(ev: str, trial: str | None, **fields) -> None:
    """Record one lifecycle event (no-op unless tracing is active)."""
    if not _active:
        return
    doc = {"t": time.time(), "ev": ev}
    if trial is not None:
        doc["trial"] = trial
    doc.update({k: v for k, v in fields.items() if v is not None})
    with _lock:
        if not _active:  # raced a stop()
            return
        _events.append(doc)
        if _sink is not None:
            try:
                _sink.write(json.dumps(doc, sort_keys=True) + "\n")
                _sink.flush()
            except (OSError, ValueError):  # pragma: no cover
                pass


# ----------------------------------------------------------------------
# Sweep labeling: the coordinator sees backend-local indices; the sweep
# owner (map_trials) installs the mapping to global trial ids.
# ----------------------------------------------------------------------
def new_sweep_id() -> str:
    """A process-unique sweep id (``s1``, ``s2``, ...)."""
    global _sweep_counter
    with _lock:
        _sweep_counter += 1
        return f"s{_sweep_counter}"


@contextlib.contextmanager
def sweep_scope(label_fn):
    """Install ``label_fn(backend_index) -> trial id`` for the current
    thread while a backend runs one sweep (the shards coordinator runs
    synchronously in the caller's thread)."""
    previous = getattr(_tl, "label_fn", None)
    _tl.label_fn = label_fn
    try:
        yield
    finally:
        _tl.label_fn = previous


def trial_label(index: int) -> str:
    """Trial id of one backend-local index under the installed scope
    (falls back to a bare ``?:<index>`` for direct backend use)."""
    fn = getattr(_tl, "label_fn", None)
    if fn is None:
        return f"?:{index}"
    try:
        return fn(index)
    except Exception:  # noqa: BLE001 - labeling must never kill a sweep
        return f"?:{index}"


# ----------------------------------------------------------------------
# Analysis: per-trial lifecycle reconstruction
# ----------------------------------------------------------------------
def lifecycles(trace_events: list[dict]) -> dict[str, dict]:
    """Group events by trial id, in time order.

    Returns ``{trial: {"events": [...], "attempts": n, "requeues": n,
    "outcome": "completed"|"cached"|None, "queued_t": t|None,
    "done_t": t|None, "run_s": total worker-span seconds}}``.
    """
    out: dict[str, dict] = {}
    for doc in sorted(trace_events, key=lambda d: d.get("t", 0.0)):
        trial = doc.get("trial")
        if trial is None:
            continue
        entry = out.setdefault(trial, {
            "events": [], "attempts": 0, "requeues": 0,
            "outcome": None, "queued_t": None, "done_t": None,
            "run_s": 0.0})
        entry["events"].append(doc)
        ev = doc.get("ev")
        if ev == "queued":
            entry["queued_t"] = doc.get("t")
        elif ev == "dispatched":
            entry["attempts"] += 1
        elif ev == "requeued":
            entry["requeues"] += 1
        elif ev == "running":
            start_t, end_t = doc.get("start"), doc.get("end")
            if isinstance(start_t, (int, float)) and isinstance(
                    end_t, (int, float)):
                entry["run_s"] += max(0.0, end_t - start_t)
        elif ev in ("completed", "cached"):
            entry["outcome"] = ev
            entry["done_t"] = doc.get("t")
    return out


def summarize(trace_events: list[dict]) -> dict:
    """Aggregate sweep summary of one trace (``repro trace summary``)."""
    trials = lifecycles(trace_events)
    completed = sum(1 for v in trials.values()
                    if v["outcome"] == "completed")
    cached = sum(1 for v in trials.values() if v["outcome"] == "cached")
    requeued = {k: v for k, v in trials.items() if v["requeues"]}
    waits = [v["done_t"] - v["queued_t"] for v in trials.values()
             if v["queued_t"] is not None and v["done_t"] is not None]
    workers = sorted({doc.get("worker") for v in trials.values()
                      for doc in v["events"]
                      if doc.get("worker") is not None})
    span = [doc.get("t") for doc in trace_events
            if isinstance(doc.get("t"), (int, float))]
    return {
        "events": len(trace_events),
        "trials": len(trials),
        "completed": completed,
        "cached": cached,
        "requeues": sum(v["requeues"] for v in trials.values()),
        "requeued_trials": {k: v["requeues"] for k, v in
                            sorted(requeued.items())},
        "max_attempts": max((v["attempts"] for v in trials.values()),
                            default=0),
        "workers": workers,
        "wall_s": (max(span) - min(span)) if span else 0.0,
        "queued_to_done_s": {
            "min": round(min(waits), 6) if waits else None,
            "max": round(max(waits), 6) if waits else None,
            "mean": round(sum(waits) / len(waits), 6) if waits else None,
        },
        "worker_run_s": round(sum(v["run_s"] for v in trials.values()),
                              6),
    }


# ----------------------------------------------------------------------
# Chrome trace-event export (about://tracing / Perfetto)
# ----------------------------------------------------------------------
def chrome_trace(trace_events: list[dict]) -> dict:
    """Convert a trace to the Chrome trace-event JSON format.

    Layout: pid 1 ("workers") holds one thread per worker with the
    shipped execution spans (a crash-requeued trial shows one span per
    attempt, on whichever workers ran it); pid 2 ("trials") holds one
    thread per trial spanning queued -> completed/cached, with
    dispatch/requeue instants overlaid.  Timestamps are microseconds
    relative to the first event, so the sweep opens zoomed to its own
    extent.
    """
    trials = lifecycles(trace_events)
    times = [doc.get("t") for doc in trace_events
             if isinstance(doc.get("t"), (int, float))]
    t0 = min(times) if times else 0.0

    def us(t: float) -> float:
        return round((t - t0) * 1e6, 3)

    out: list[dict] = [
        {"ph": "M", "pid": 1, "name": "process_name",
         "args": {"name": "workers"}},
        {"ph": "M", "pid": 2, "name": "process_name",
         "args": {"name": "trials"}},
    ]
    worker_tids: dict[str, int] = {}
    for trial, entry in sorted(trials.items()):
        for doc in entry["events"]:
            worker = doc.get("worker")
            if worker is not None and worker not in worker_tids:
                tid = len(worker_tids) + 1
                worker_tids[worker] = tid
                out.append({"ph": "M", "pid": 1, "tid": tid,
                            "name": "thread_name",
                            "args": {"name": worker}})

    for tid, (trial, entry) in enumerate(sorted(trials.items()),
                                         start=1):
        out.append({"ph": "M", "pid": 2, "tid": tid,
                    "name": "thread_name", "args": {"name": trial}})
        start_t = entry["queued_t"]
        end_t = entry["done_t"]
        if start_t is not None and end_t is not None:
            out.append({
                "name": f"{trial} [{entry['outcome']}]",
                "cat": "lifecycle", "ph": "X", "pid": 2, "tid": tid,
                "ts": us(start_t), "dur": max(
                    0.001, us(end_t) - us(start_t)),
                "args": {"attempts": entry["attempts"],
                         "requeues": entry["requeues"],
                         "outcome": entry["outcome"]}})
        attempt_no = 0
        for doc in entry["events"]:
            ev = doc.get("ev")
            if ev == "running":
                attempt_no += 1
                worker = doc.get("worker")
                out.append({
                    "name": f"run {trial} (attempt "
                            f"{doc.get('attempt', attempt_no)})",
                    "cat": "run", "ph": "X", "pid": 1,
                    "tid": worker_tids.get(worker, 0),
                    "ts": us(doc.get("start", doc["t"])),
                    "dur": max(0.001,
                               us(doc.get("end", doc["t"]))
                               - us(doc.get("start", doc["t"]))),
                    "args": {"trial": trial, "worker": worker}})
            elif ev in ("dispatched", "requeued", "cached"):
                out.append({
                    "name": f"{ev} {trial}", "cat": ev, "ph": "i",
                    "s": "t", "pid": 2, "tid": tid,
                    "ts": us(doc["t"]),
                    "args": {k: v for k, v in doc.items()
                             if k not in ("t", "ev", "trial")}})
    return {"traceEvents": out,
            "displayTimeUnit": "ms",
            "otherData": {"source": "repro trace export",
                          "trials": len(trials)}}


def load_ndjson(path: str | os.PathLike) -> list[dict]:
    """Read a recorded NDJSON trace file back into event dicts."""
    out: list[dict] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                continue  # truncated tail of a crashed sweep
            if isinstance(doc, dict):
                out.append(doc)
    return out


# Honor the environment switch at import: any entry point (including
# diffcheck and plain `repro run`) traces when REPRO_TRACE names a file.
_env_path = os.environ.get(TRACE_ENV, "").strip()
if _env_path:
    try:
        start(_env_path)
    except OSError:  # unwritable path: tracing silently stays off
        pass
