"""DRAM device substrate: organization, address mapping, bank state."""

from repro.dram.address import AddressMapper, Coord
from repro.dram.bank import BankState

__all__ = ["AddressMapper", "Coord", "BankState"]
