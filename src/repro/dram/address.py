"""Physical-address <-> DRAM-coordinate mapping.

The mapper implements the common "row : rank : bank : bank-group :
column : offset" bit slicing (row bits in the most-significant
positions so that sequential physical addresses stream through a row
before moving to the next bank).  Attacks construct addresses directly
from coordinates via :meth:`AddressMapper.encode`, mirroring how the
paper's attackers place pages after reverse-engineering the mapping.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.config import DramOrg


@dataclass(frozen=True, order=True)
class Coord:
    """A fully-resolved DRAM location (single-channel system).

    Flattening a coordinate to a bank id within its rank requires the
    organization, so it lives on :meth:`AddressMapper.flat_bank`.
    """

    rank: int
    bankgroup: int
    bank: int
    row: int
    col: int


def _bits_for(n: int) -> int:
    """Number of address bits needed to index ``n`` equally-likely values."""
    if n <= 0:
        raise ValueError("n must be positive")
    if n & (n - 1):
        raise ValueError(f"{n} is not a power of two")
    return n.bit_length() - 1


class AddressMapper:
    """Bijective mapping between byte addresses and DRAM coordinates."""

    def __init__(self, org: DramOrg) -> None:
        org.validate()
        self.org = org
        self._offset_bits = _bits_for(org.line_bytes)
        self._col_bits = _bits_for(org.cols_per_row)
        self._bg_bits = _bits_for(org.bankgroups)
        self._bank_bits = _bits_for(org.banks_per_group)
        self._rank_bits = _bits_for(org.ranks)
        self._row_bits = _bits_for(org.rows_per_bank)

        shift = self._offset_bits
        self._col_shift = shift
        shift += self._col_bits
        self._bg_shift = shift
        shift += self._bg_bits
        self._bank_shift = shift
        shift += self._bank_bits
        self._rank_shift = shift
        shift += self._rank_bits
        self._row_shift = shift
        self.address_bits = shift + self._row_bits

        # Cached shift/mask plan: decode is straight-line integer ops
        # against these precomputed masks instead of re-deriving
        # ``(1 << bits) - 1`` per field per call.
        self._rank_mask = (1 << self._rank_bits) - 1
        self._bg_mask = (1 << self._bg_bits) - 1
        self._bank_mask = (1 << self._bank_bits) - 1
        self._row_mask = (1 << self._row_bits) - 1
        self._col_mask = (1 << self._col_bits) - 1
        self._addr_limit = 1 << self.address_bits

    # ------------------------------------------------------------------
    def decode(self, addr: int) -> Coord:
        """Map a byte address to its DRAM coordinate.

        Straight-line integer ops; the memory controller additionally
        memoizes per-address decode *plans* (coord + bank resolution)
        on its own hot path, so no memo lives here.
        """
        if addr < 0 or addr >= self._addr_limit:
            raise ValueError(f"address {addr:#x} outside the mapped space")
        return Coord(
            rank=(addr >> self._rank_shift) & self._rank_mask,
            bankgroup=(addr >> self._bg_shift) & self._bg_mask,
            bank=(addr >> self._bank_shift) & self._bank_mask,
            row=(addr >> self._row_shift) & self._row_mask,
            col=(addr >> self._col_shift) & self._col_mask,
        )

    def encode(self, rank: int = 0, bankgroup: int = 0, bank: int = 0,
               row: int = 0, col: int = 0) -> int:
        """Build a byte address for the given DRAM coordinate."""
        org = self.org
        if not (0 <= rank < org.ranks):
            raise ValueError(f"rank {rank} out of range")
        if not (0 <= bankgroup < org.bankgroups):
            raise ValueError(f"bankgroup {bankgroup} out of range")
        if not (0 <= bank < org.banks_per_group):
            raise ValueError(f"bank {bank} out of range")
        if not (0 <= row < org.rows_per_bank):
            raise ValueError(f"row {row} out of range")
        if not (0 <= col < org.cols_per_row):
            raise ValueError(f"col {col} out of range")
        return (
            (row << self._row_shift)
            | (rank << self._rank_shift)
            | (bank << self._bank_shift)
            | (bankgroup << self._bg_shift)
            | (col << self._col_shift)
        )

    # ------------------------------------------------------------------
    def flat_bank(self, coord: Coord) -> int:
        """Flat bank id within a rank (bankgroup-major order)."""
        return coord.bankgroup * self.org.banks_per_group + coord.bank

    def unflatten_bank(self, flat: int) -> tuple[int, int]:
        """Inverse of :meth:`flat_bank`: returns (bankgroup, bank)."""
        if not (0 <= flat < self.org.banks_per_rank):
            raise ValueError(f"flat bank {flat} out of range")
        return divmod(flat, self.org.banks_per_group)

    def same_bank_rows(self, n_rows: int, rank: int = 0, bankgroup: int = 0,
                       bank: int = 0, first_row: int = 0,
                       stride: int = 2) -> list[int]:
        """Addresses of ``n_rows`` distinct rows co-located in one bank.

        ``stride`` > 1 spaces the rows apart so they are never RowHammer
        neighbors of each other (the attacks alternate between them).
        """
        rows = [first_row + i * stride for i in range(n_rows)]
        if rows and rows[-1] >= self.org.rows_per_bank:
            raise ValueError("requested rows exceed the bank")
        return [self.encode(rank=rank, bankgroup=bankgroup, bank=bank, row=r)
                for r in rows]
