"""Per-bank row-buffer state tracked by the memory controller."""

from __future__ import annotations


class BankState:
    """Mutable state of one DRAM bank.

    ``busy_until`` is the earliest time any new command sequence may
    start on this bank (it absorbs blocking intervals from refreshes,
    RFMs and back-off recovery).  ``act_time`` is the timestamp of the
    most recent ACT, needed to honor tRAS before the next PRE.
    """

    __slots__ = ("rank", "flat_id", "open_row", "busy_until", "act_time",
                 "hit_streak")

    #: Sentinel "long ago" ACT time so a fresh bank owes no tRC/tRAS.
    NEVER = -(1 << 60)

    def __init__(self, rank: int, flat_id: int) -> None:
        self.rank = rank
        self.flat_id = flat_id
        self.open_row: int | None = None
        self.busy_until: int = 0
        self.act_time: int = self.NEVER
        #: Consecutive row-hit requests served (FR-FCFS column cap).
        self.hit_streak: int = 0

    def close(self) -> None:
        """Precharge bookkeeping: forget the open row."""
        self.open_row = None
        self.hit_streak = 0

    def block_until(self, end: int) -> None:
        """Extend the bank's busy horizon (refresh / RFM / back-off)."""
        if end > self.busy_until:
            self.busy_until = end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BankState(rank={self.rank}, bank={self.flat_id}, "
                f"open_row={self.open_row}, busy_until={self.busy_until})")
