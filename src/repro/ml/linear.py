"""Linear models: softmax logistic regression, one-vs-rest linear SVM,
and the multiclass perceptron.  All standardize features internally
(the fingerprint features span very different scales)."""

from __future__ import annotations

import numpy as np

from repro.ml.base import Classifier, check_x, check_xy


class _LinearBase(Classifier):
    """Weights + bias over standardized features."""

    def __init__(self, seed: int = 0, standardize: bool = True) -> None:
        super().__init__()
        self.seed = seed
        self.standardize = standardize
        self.W: np.ndarray | None = None  # (n_classes, n_features)
        self.b: np.ndarray | None = None
        self._mu: np.ndarray | None = None
        self._sigma: np.ndarray | None = None

    def _fit_scaler(self, X: np.ndarray) -> np.ndarray:
        if not self.standardize:
            self._mu = np.zeros(X.shape[1])
            self._sigma = np.ones(X.shape[1])
            return X
        self._mu = X.mean(axis=0)
        self._sigma = X.std(axis=0)
        self._sigma[self._sigma == 0] = 1.0
        return (X - self._mu) / self._sigma

    def _transform(self, X: np.ndarray) -> np.ndarray:
        return (X - self._mu) / self._sigma

    def decision_function(self, X) -> np.ndarray:
        self._require_fitted()
        X = self._transform(check_x(X, self.n_features_))
        assert self.W is not None and self.b is not None
        return X @ self.W.T + self.b

    def predict(self, X) -> np.ndarray:
        return self._decode_labels(
            np.argmax(self.decision_function(X), axis=1))


class LogisticRegression(_LinearBase):
    """Multinomial (softmax) logistic regression by full-batch gradient
    descent with L2 regularization."""

    def __init__(self, lr: float = 0.5, n_iter: int = 300,
                 l2: float = 1e-3, seed: int = 0,
                 standardize: bool = True) -> None:
        super().__init__(seed=seed, standardize=standardize)
        if lr <= 0 or n_iter < 1 or l2 < 0:
            raise ValueError("bad hyperparameters")
        self.lr = lr
        self.n_iter = n_iter
        self.l2 = l2

    def fit(self, X, y) -> "LogisticRegression":
        X, y = check_xy(X, y)
        encoded = self._encode_labels(y)
        self.n_features_ = X.shape[1]
        Xs = self._fit_scaler(X)
        n, n_classes = len(X), len(self.classes_)
        onehot = np.zeros((n, n_classes))
        onehot[np.arange(n), encoded] = 1.0
        self.W = np.zeros((n_classes, X.shape[1]))
        self.b = np.zeros(n_classes)
        for _ in range(self.n_iter):
            scores = Xs @ self.W.T + self.b
            scores -= scores.max(axis=1, keepdims=True)
            probs = np.exp(scores)
            probs /= probs.sum(axis=1, keepdims=True)
            grad = (probs - onehot) / n
            self.W -= self.lr * (grad.T @ Xs + self.l2 * self.W)
            self.b -= self.lr * grad.sum(axis=0)
        return self

    def predict_proba(self, X) -> np.ndarray:
        scores = self.decision_function(X)
        scores -= scores.max(axis=1, keepdims=True)
        probs = np.exp(scores)
        return probs / probs.sum(axis=1, keepdims=True)


class LinearSVC(_LinearBase):
    """One-vs-rest linear SVM trained with subgradient descent on the
    L2-regularized hinge loss (Pegasos-style, full batch)."""

    def __init__(self, c: float = 1.0, lr: float = 0.1, n_iter: int = 300,
                 seed: int = 0, standardize: bool = True) -> None:
        super().__init__(seed=seed, standardize=standardize)
        if c <= 0 or lr <= 0 or n_iter < 1:
            raise ValueError("bad hyperparameters")
        self.c = c
        self.lr = lr
        self.n_iter = n_iter

    def fit(self, X, y) -> "LinearSVC":
        X, y = check_xy(X, y)
        encoded = self._encode_labels(y)
        self.n_features_ = X.shape[1]
        Xs = self._fit_scaler(X)
        n, n_classes = len(X), len(self.classes_)
        signs = np.where(
            np.arange(n_classes)[None, :] == encoded[:, None], 1.0, -1.0)
        self.W = np.zeros((n_classes, X.shape[1]))
        self.b = np.zeros(n_classes)
        reg = 1.0 / (self.c * n)
        for _ in range(self.n_iter):
            margins = signs * (Xs @ self.W.T + self.b)
            active = (margins < 1.0).astype(float) * signs
            self.W -= self.lr * (reg * self.W - (active.T @ Xs) / n)
            self.b += self.lr * active.sum(axis=0) / n
        return self


class Perceptron(_LinearBase):
    """Classic multiclass perceptron (Rosenblatt 1958): on a mistake,
    add the input to the true class's weights and subtract it from the
    predicted class's."""

    def __init__(self, n_iter: int = 50, seed: int = 0,
                 standardize: bool = True) -> None:
        super().__init__(seed=seed, standardize=standardize)
        if n_iter < 1:
            raise ValueError("n_iter must be >= 1")
        self.n_iter = n_iter

    def fit(self, X, y) -> "Perceptron":
        X, y = check_xy(X, y)
        encoded = self._encode_labels(y)
        self.n_features_ = X.shape[1]
        Xs = self._fit_scaler(X)
        n, n_classes = len(X), len(self.classes_)
        self.W = np.zeros((n_classes, X.shape[1]))
        self.b = np.zeros(n_classes)
        rng = np.random.default_rng(self.seed)
        for _ in range(self.n_iter):
            mistakes = 0
            for i in rng.permutation(n):
                scores = self.W @ Xs[i] + self.b
                pred = int(np.argmax(scores))
                true = encoded[i]
                if pred != true:
                    mistakes += 1
                    self.W[true] += Xs[i]
                    self.b[true] += 1.0
                    self.W[pred] -= Xs[i]
                    self.b[pred] -= 1.0
            if mistakes == 0:
                break
        return self
