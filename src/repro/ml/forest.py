"""Random forest: bagged CART trees over random feature subspaces."""

from __future__ import annotations

import numpy as np

from repro.ml.base import Classifier, check_x, check_xy
from repro.ml.tree import DecisionTreeClassifier


class RandomForestClassifier(Classifier):
    """Majority vote over bootstrap-trained trees (Breiman 2001)."""

    def __init__(self, n_estimators: int = 50,
                 max_depth: int | None = None,
                 min_samples_leaf: int = 1,
                 max_features: int | str | None = "sqrt",
                 seed: int = 0) -> None:
        super().__init__()
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.trees_: list[DecisionTreeClassifier] = []

    def fit(self, X, y) -> "RandomForestClassifier":
        X, y = check_xy(X, y)
        encoded = self._encode_labels(y)
        self.n_features_ = X.shape[1]
        rng = np.random.default_rng(self.seed)
        n = len(X)
        self.trees_ = []
        for i in range(self.n_estimators):
            idx = rng.integers(0, n, size=n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                seed=self.seed * 1013 + i)
            # Trees vote in encoded space; ensure every tree sees the
            # full class set by passing encoded labels directly.
            tree.fit(X[idx], encoded[idx])
            self.trees_.append(tree)
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_x(X, self.n_features_)
        n_classes = len(self.classes_)
        votes = np.zeros((len(X), n_classes))
        rows = np.arange(len(X))
        for tree in self.trees_:
            pred = tree.predict(X).astype(int)  # forest-encoded labels
            votes[rows, pred] += 1
        totals = votes.sum(axis=1, keepdims=True)
        return votes / np.maximum(totals, 1)

    def predict(self, X) -> np.ndarray:
        probs = self.predict_proba(X)
        return self._decode_labels(np.argmax(probs, axis=1))
