"""Dataset splitting and cross-validation (Table 2 uses 10-fold CV)."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.ml.metrics import (
    accuracy_score,
    f1_score,
    precision_score,
    recall_score,
)


def train_test_split(X, y, test_size: float = 0.25, seed: int = 0,
                     stratify: bool = True):
    """Split into train/test, optionally preserving class proportions."""
    X = np.asarray(X)
    y = np.asarray(y)
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be within (0, 1)")
    rng = np.random.default_rng(seed)
    n = len(y)
    if stratify:
        test_idx: list[int] = []
        for cls in np.unique(y):
            members = np.flatnonzero(y == cls)
            rng.shuffle(members)
            k = max(1, round(len(members) * test_size))
            test_idx.extend(members[:k].tolist())
        test_mask = np.zeros(n, dtype=bool)
        test_mask[test_idx] = True
    else:
        order = rng.permutation(n)
        k = max(1, round(n * test_size))
        test_mask = np.zeros(n, dtype=bool)
        test_mask[order[:k]] = True
    return X[~test_mask], X[test_mask], y[~test_mask], y[test_mask]


class StratifiedKFold:
    """K folds with (approximately) preserved class proportions."""

    def __init__(self, n_splits: int = 10, seed: int = 0) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.seed = seed

    def split(self, y) -> list[tuple[np.ndarray, np.ndarray]]:
        """Returns (train_indices, test_indices) per fold."""
        y = np.asarray(y)
        rng = np.random.default_rng(self.seed)
        fold_of = np.empty(len(y), dtype=int)
        for cls in np.unique(y):
            members = np.flatnonzero(y == cls)
            rng.shuffle(members)
            for i, idx in enumerate(members):
                fold_of[idx] = i % self.n_splits
        folds = []
        for fold in range(self.n_splits):
            test = np.flatnonzero(fold_of == fold)
            train = np.flatnonzero(fold_of != fold)
            if len(test) == 0 or len(train) == 0:
                raise ValueError(
                    f"fold {fold} is empty; reduce n_splits")
            folds.append((train, test))
        return folds


def cross_validate(model_factory: Callable[[], object], X, y,
                   n_splits: int = 10, seed: int = 0) -> dict:
    """Fit a fresh model per fold; report mean/std of the Table 2
    metrics (accuracy, macro F1/precision/recall)."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    folds = StratifiedKFold(n_splits=n_splits, seed=seed).split(y)
    scores: dict[str, list[float]] = {
        "accuracy": [], "f1": [], "precision": [], "recall": []}
    for train, test in folds:
        model = model_factory()
        model.fit(X[train], y[train])
        pred = model.predict(X[test])
        scores["accuracy"].append(accuracy_score(y[test], pred))
        scores["f1"].append(f1_score(y[test], pred, average="weighted"))
        scores["precision"].append(
            precision_score(y[test], pred, average="weighted"))
        scores["recall"].append(
            recall_score(y[test], pred, average="weighted"))
    out = {}
    for name, values in scores.items():
        arr = np.asarray(values)
        out[f"{name}_mean"] = float(arr.mean())
        out[f"{name}_std"] = float(arr.std())
    out["n_splits"] = n_splits
    return out
