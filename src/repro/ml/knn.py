"""k-nearest-neighbors classification (brute-force Euclidean)."""

from __future__ import annotations

import numpy as np

from repro.ml.base import Classifier, check_x, check_xy


class KNeighborsClassifier(Classifier):
    """Majority vote among the k nearest training points."""

    def __init__(self, n_neighbors: int = 5) -> None:
        super().__init__()
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        self.n_neighbors = n_neighbors
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def fit(self, X, y) -> "KNeighborsClassifier":
        X, y = check_xy(X, y)
        self._y = self._encode_labels(y)
        self._X = X
        self.n_features_ = X.shape[1]
        return self

    def predict(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_x(X, self.n_features_)
        assert self._X is not None and self._y is not None
        k = min(self.n_neighbors, len(self._X))
        # (a-b)^2 = a^2 - 2ab + b^2; argpartition avoids a full sort.
        d2 = (np.sum(X ** 2, axis=1)[:, None]
              - 2.0 * X @ self._X.T
              + np.sum(self._X ** 2, axis=1)[None, :])
        nearest = np.argpartition(d2, kth=k - 1, axis=1)[:, :k]
        n_classes = len(self.classes_)
        out = np.empty(len(X), dtype=int)
        for i, idx in enumerate(nearest):
            votes = np.bincount(self._y[idx], minlength=n_classes)
            out[i] = int(np.argmax(votes))
        return self._decode_labels(out)
