"""From-scratch classical ML (numpy only).

The paper trains eight scikit-learn classifiers on back-off-trace
features (Fig. 10, Table 2).  This offline environment has no sklearn,
so the models are implemented here from their standard algorithms and
validated against ground-truth datasets in the test suite:

decision tree (CART/gini), random forest, gradient boosting (softmax),
AdaBoost (SAMME), k-nearest neighbors, linear SVM (one-vs-rest hinge),
logistic regression (softmax), and perceptron.
"""

from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.ml.forest import RandomForestClassifier
from repro.ml.boosting import AdaBoostClassifier, GradientBoostingClassifier
from repro.ml.knn import KNeighborsClassifier
from repro.ml.linear import (
    LinearSVC,
    LogisticRegression,
    Perceptron,
)
from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    f1_score,
    precision_score,
    recall_score,
)
from repro.ml.model_selection import (
    StratifiedKFold,
    cross_validate,
    train_test_split,
)


def paper_model_zoo(seed: int = 0) -> dict:
    """The eight models of Fig. 10, with the paper's presentation order."""
    return {
        "Decision Tree": DecisionTreeClassifier(seed=seed),
        "Random Forest": RandomForestClassifier(n_estimators=30, seed=seed),
        "Gradient Boosting": GradientBoostingClassifier(
            n_estimators=30, seed=seed),
        "KNN": KNeighborsClassifier(n_neighbors=3),
        "SVM": LinearSVC(seed=seed),
        "Logistic Regression": LogisticRegression(seed=seed),
        "AdaBoost": AdaBoostClassifier(n_estimators=30, seed=seed),
        "Perceptron": Perceptron(seed=seed),
    }


__all__ = [
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "RandomForestClassifier",
    "GradientBoostingClassifier",
    "AdaBoostClassifier",
    "KNeighborsClassifier",
    "LinearSVC",
    "LogisticRegression",
    "Perceptron",
    "accuracy_score",
    "confusion_matrix",
    "precision_score",
    "recall_score",
    "f1_score",
    "StratifiedKFold",
    "train_test_split",
    "cross_validate",
    "paper_model_zoo",
]
