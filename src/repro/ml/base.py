"""Shared estimator plumbing."""

from __future__ import annotations

import numpy as np


def check_xy(X, y) -> tuple[np.ndarray, np.ndarray]:
    """Validate and coerce a dataset to float features / int labels."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    if X.ndim != 2:
        raise ValueError("X must be 2-dimensional")
    if y.ndim != 1:
        raise ValueError("y must be 1-dimensional")
    if len(X) != len(y):
        raise ValueError("X and y must have equal length")
    if len(X) == 0:
        raise ValueError("cannot fit on an empty dataset")
    return X, y


def check_x(X, n_features: int) -> np.ndarray:
    X = np.asarray(X, dtype=float)
    if X.ndim != 2 or X.shape[1] != n_features:
        raise ValueError(f"X must have shape (n, {n_features})")
    return X


class Classifier:
    """Base class: label encoding + the fit/predict contract."""

    def __init__(self) -> None:
        self.classes_: np.ndarray | None = None
        self.n_features_: int | None = None

    def _encode_labels(self, y: np.ndarray) -> np.ndarray:
        self.classes_, encoded = np.unique(y, return_inverse=True)
        return encoded

    def _decode_labels(self, indices: np.ndarray) -> np.ndarray:
        assert self.classes_ is not None
        return self.classes_[indices]

    def _require_fitted(self) -> None:
        if self.classes_ is None:
            raise RuntimeError(
                f"{type(self).__name__} must be fitted before predicting")

    def fit(self, X, y) -> "Classifier":
        raise NotImplementedError

    def predict(self, X) -> np.ndarray:
        raise NotImplementedError

    def score(self, X, y) -> float:
        """Mean accuracy on the given data."""
        y = np.asarray(y)
        return float(np.mean(self.predict(X) == y))
