"""Classification metrics: accuracy, confusion matrix, P/R/F1."""

from __future__ import annotations

import numpy as np


def _check_pair(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape or y_true.ndim != 1:
        raise ValueError("y_true and y_pred must be equal-length 1-D arrays")
    if len(y_true) == 0:
        raise ValueError("empty label arrays")
    return y_true, y_pred


def accuracy_score(y_true, y_pred) -> float:
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true, y_pred, labels=None) -> np.ndarray:
    """Rows = true classes, columns = predicted classes."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    labels = np.asarray(labels)
    index = {label: i for i, label in enumerate(labels.tolist())}
    matrix = np.zeros((len(labels), len(labels)), dtype=int)
    for t, p in zip(y_true, y_pred):
        matrix[index[t], index[p]] += 1
    return matrix


def _per_class_counts(y_true, y_pred):
    labels = np.unique(np.concatenate([y_true, y_pred]))
    tp = np.array([np.sum((y_true == c) & (y_pred == c)) for c in labels],
                  dtype=float)
    fp = np.array([np.sum((y_true != c) & (y_pred == c)) for c in labels],
                  dtype=float)
    fn = np.array([np.sum((y_true == c) & (y_pred != c)) for c in labels],
                  dtype=float)
    return labels, tp, fp, fn


def precision_score(y_true, y_pred, average: str = "macro") -> float:
    y_true, y_pred = _check_pair(y_true, y_pred)
    labels, tp, fp, _ = _per_class_counts(y_true, y_pred)
    with np.errstate(invalid="ignore"):
        per_class = np.where(tp + fp > 0, tp / (tp + fp), 0.0)
    return _average(per_class, labels, y_true, average)


def recall_score(y_true, y_pred, average: str = "macro") -> float:
    y_true, y_pred = _check_pair(y_true, y_pred)
    labels, tp, _, fn = _per_class_counts(y_true, y_pred)
    with np.errstate(invalid="ignore"):
        per_class = np.where(tp + fn > 0, tp / (tp + fn), 0.0)
    return _average(per_class, labels, y_true, average)


def f1_score(y_true, y_pred, average: str = "macro") -> float:
    y_true, y_pred = _check_pair(y_true, y_pred)
    labels, tp, fp, fn = _per_class_counts(y_true, y_pred)
    denom = 2 * tp + fp + fn
    per_class = np.where(denom > 0, 2 * tp / denom, 0.0)
    return _average(per_class, labels, y_true, average)


def _average(per_class: np.ndarray, labels: np.ndarray,
             y_true: np.ndarray, average: str) -> float:
    if average == "macro":
        return float(per_class.mean())
    if average == "weighted":
        weights = np.array([np.sum(y_true == c) for c in labels],
                           dtype=float)
        total = weights.sum()
        return float(np.sum(per_class * weights) / total) if total else 0.0
    raise ValueError("average must be 'macro' or 'weighted'")
