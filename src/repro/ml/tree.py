"""CART decision trees (classification: Gini; regression: variance).

Splits are found by sorting each candidate feature and scanning the
prefix class counts -- the textbook CART algorithm.  ``max_features``
enables the random-subspace behaviour random forests need, and
``sample_weight`` support enables boosting.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Classifier, check_x, check_xy


class _Node:
    """One tree node (leaf if ``feature`` is None)."""

    __slots__ = ("feature", "threshold", "left", "right", "value")

    def __init__(self, value) -> None:
        self.feature: int | None = None
        self.threshold: float = 0.0
        self.left: "_Node | None" = None
        self.right: "_Node | None" = None
        self.value = value  # class-probability vector or mean target


def _gini_gain(sorted_y: np.ndarray, sorted_w: np.ndarray,
               n_classes: int) -> tuple[float, int]:
    """Best weighted Gini impurity decrease over all split positions of
    one pre-sorted feature; returns (impurity_after, split_position)."""
    n = len(sorted_y)
    onehot = np.zeros((n, n_classes))
    onehot[np.arange(n), sorted_y] = sorted_w
    prefix = np.cumsum(onehot, axis=0)
    total = prefix[-1]
    w_prefix = np.cumsum(sorted_w)
    w_total = w_prefix[-1]

    left = prefix[:-1]
    right = total - left
    wl = w_prefix[:-1]
    wr = w_total - wl
    with np.errstate(divide="ignore", invalid="ignore"):
        gini_l = 1.0 - np.sum((left / wl[:, None]) ** 2, axis=1)
        gini_r = 1.0 - np.sum((right / wr[:, None]) ** 2, axis=1)
    impurity = (wl * gini_l + wr * gini_r) / w_total
    impurity = np.where((wl <= 0) | (wr <= 0), np.inf, impurity)
    pos = int(np.argmin(impurity))
    return float(impurity[pos]), pos


def _variance_gain(sorted_y: np.ndarray) -> tuple[float, int]:
    """Best summed-SSE split of one pre-sorted feature (regression)."""
    n = len(sorted_y)
    prefix = np.cumsum(sorted_y)
    prefix_sq = np.cumsum(sorted_y ** 2)
    counts = np.arange(1, n)
    sum_l = prefix[:-1]
    sum_r = prefix[-1] - sum_l
    sq_l = prefix_sq[:-1]
    sq_r = prefix_sq[-1] - sq_l
    n_l = counts
    n_r = n - counts
    sse = (sq_l - sum_l ** 2 / n_l) + (sq_r - sum_r ** 2 / n_r)
    pos = int(np.argmin(sse))
    return float(sse[pos]), pos


class _BaseTree:
    """Shared recursive builder."""

    def __init__(self, max_depth: int | None, min_samples_split: int,
                 min_samples_leaf: int, max_features: int | str | None,
                 seed: int) -> None:
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self._root: _Node | None = None
        self._rng = np.random.default_rng(seed)

    # Subclass hooks ----------------------------------------------------
    def _leaf_value(self, y: np.ndarray, w: np.ndarray):
        raise NotImplementedError

    def _is_pure(self, y: np.ndarray) -> bool:
        raise NotImplementedError

    def _best_split_of(self, x_sorted_y: np.ndarray, w: np.ndarray
                       ) -> tuple[float, int]:
        raise NotImplementedError

    # Builder -----------------------------------------------------------
    def _n_candidate_features(self, n_features: int) -> int:
        mf = self.max_features
        if mf is None:
            return n_features
        if mf == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if isinstance(mf, int):
            return max(1, min(mf, n_features))
        raise ValueError(f"bad max_features: {mf!r}")

    def _build(self, X: np.ndarray, y: np.ndarray, w: np.ndarray,
               depth: int) -> _Node:
        node = _Node(self._leaf_value(y, w))
        n, n_features = X.shape
        if (n < self.min_samples_split or self._is_pure(y)
                or (self.max_depth is not None and depth >= self.max_depth)):
            return node

        k = self._n_candidate_features(n_features)
        if k < n_features:
            candidates = self._rng.choice(n_features, size=k, replace=False)
        else:
            candidates = np.arange(n_features)

        best = (np.inf, -1, 0.0)  # (impurity, feature, threshold)
        for feature in candidates:
            order = np.argsort(X[:, feature], kind="stable")
            xs = X[order, feature]
            if xs[0] == xs[-1]:
                continue
            impurity, pos = self._best_split_of(y[order], w[order])
            # Move the split to the last index sharing the value so the
            # threshold separates distinct feature values.
            while pos < n - 1 and xs[pos] == xs[pos + 1]:
                pos += 1
            if pos >= n - 1:
                continue
            if (pos + 1 < self.min_samples_leaf
                    or n - pos - 1 < self.min_samples_leaf):
                continue
            if impurity < best[0]:
                threshold = (xs[pos] + xs[pos + 1]) / 2.0
                best = (impurity, int(feature), threshold)

        if best[1] < 0:
            return node
        _, feature, threshold = best
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], w[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], w[~mask], depth + 1)
        return node

    def _predict_node(self, x: np.ndarray) -> _Node:
        node = self._root
        assert node is not None
        while node.feature is not None:
            node = node.left if x[node.feature] <= node.threshold \
                else node.right
            assert node is not None
        return node

    @property
    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        def walk(node: _Node | None) -> int:
            if node is None or node.feature is None:
                return 0
            return 1 + max(walk(node.left), walk(node.right))
        return walk(self._root)


class DecisionTreeClassifier(_BaseTree, Classifier):
    """CART classifier with Gini impurity."""

    def __init__(self, max_depth: int | None = None,
                 min_samples_split: int = 2, min_samples_leaf: int = 1,
                 max_features: int | str | None = None,
                 seed: int = 0) -> None:
        _BaseTree.__init__(self, max_depth, min_samples_split,
                           min_samples_leaf, max_features, seed)
        Classifier.__init__(self)
        self._n_classes = 0

    def _leaf_value(self, y: np.ndarray, w: np.ndarray) -> np.ndarray:
        probs = np.bincount(y, weights=w, minlength=self._n_classes)
        total = probs.sum()
        return probs / total if total > 0 else probs

    def _is_pure(self, y: np.ndarray) -> bool:
        return bool((y == y[0]).all())

    def _best_split_of(self, sorted_y, w) -> tuple[float, int]:
        return _gini_gain(sorted_y, w, self._n_classes)

    def fit(self, X, y, sample_weight=None) -> "DecisionTreeClassifier":
        X, y = check_xy(X, y)
        encoded = self._encode_labels(y)
        self.n_features_ = X.shape[1]
        self._n_classes = len(self.classes_)
        if sample_weight is None:
            w = np.ones(len(y))
        else:
            w = np.asarray(sample_weight, dtype=float)
            if len(w) != len(y) or (w < 0).any():
                raise ValueError("bad sample_weight")
        self._rng = np.random.default_rng(self.seed)
        self._root = self._build(X, encoded, w, depth=0)
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_x(X, self.n_features_)
        return np.vstack([self._predict_node(x).value for x in X])

    def predict(self, X) -> np.ndarray:
        probs = self.predict_proba(X)
        return self._decode_labels(np.argmax(probs, axis=1))


class DecisionTreeRegressor(_BaseTree):
    """CART regressor with variance (SSE) splitting."""

    def __init__(self, max_depth: int | None = 3,
                 min_samples_split: int = 2, min_samples_leaf: int = 1,
                 max_features: int | str | None = None,
                 seed: int = 0) -> None:
        super().__init__(max_depth, min_samples_split, min_samples_leaf,
                         max_features, seed)
        self.n_features_: int | None = None

    def _leaf_value(self, y: np.ndarray, w: np.ndarray) -> float:
        return float(np.average(y, weights=w))

    def _is_pure(self, y: np.ndarray) -> bool:
        return bool(np.all(y == y[0]))

    def _best_split_of(self, sorted_y, w) -> tuple[float, int]:
        return _variance_gain(sorted_y.astype(float))

    def fit(self, X, y) -> "DecisionTreeRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or len(X) != len(y):
            raise ValueError("bad regression dataset")
        self.n_features_ = X.shape[1]
        self._rng = np.random.default_rng(self.seed)
        self._root = self._build(X, y, np.ones(len(y)), depth=0)
        return self

    def predict(self, X) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("regressor is not fitted")
        X = check_x(X, self.n_features_)
        return np.array([self._predict_node(x).value for x in X])
