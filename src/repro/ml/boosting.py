"""Boosted ensembles: gradient boosting (softmax) and AdaBoost (SAMME)."""

from __future__ import annotations

import numpy as np

from repro.ml.base import Classifier, check_x, check_xy
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor


def _softmax(scores: np.ndarray) -> np.ndarray:
    shifted = scores - scores.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class GradientBoostingClassifier(Classifier):
    """Multiclass gradient boosting with regression trees on the
    softmax negative gradient (Friedman 2001)."""

    def __init__(self, n_estimators: int = 50, learning_rate: float = 0.1,
                 max_depth: int = 3, seed: int = 0) -> None:
        super().__init__()
        if n_estimators < 1 or learning_rate <= 0:
            raise ValueError("bad boosting parameters")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.seed = seed
        self.stages_: list[list[DecisionTreeRegressor]] = []
        self._init_scores: np.ndarray | None = None

    def fit(self, X, y) -> "GradientBoostingClassifier":
        X, y = check_xy(X, y)
        encoded = self._encode_labels(y)
        self.n_features_ = X.shape[1]
        n, n_classes = len(X), len(self.classes_)
        onehot = np.zeros((n, n_classes))
        onehot[np.arange(n), encoded] = 1.0
        priors = onehot.mean(axis=0).clip(1e-9, 1.0)
        self._init_scores = np.log(priors)
        scores = np.tile(self._init_scores, (n, 1))
        self.stages_ = []
        for stage in range(self.n_estimators):
            residual = onehot - _softmax(scores)
            stage_trees = []
            for k in range(n_classes):
                tree = DecisionTreeRegressor(
                    max_depth=self.max_depth,
                    seed=self.seed * 7919 + stage * n_classes + k)
                tree.fit(X, residual[:, k])
                scores[:, k] += self.learning_rate * tree.predict(X)
                stage_trees.append(tree)
            self.stages_.append(stage_trees)
        return self

    def decision_function(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_x(X, self.n_features_)
        scores = np.tile(self._init_scores, (len(X), 1))
        for stage_trees in self.stages_:
            for k, tree in enumerate(stage_trees):
                scores[:, k] += self.learning_rate * tree.predict(X)
        return scores

    def predict_proba(self, X) -> np.ndarray:
        return _softmax(self.decision_function(X))

    def predict(self, X) -> np.ndarray:
        return self._decode_labels(
            np.argmax(self.decision_function(X), axis=1))


class AdaBoostClassifier(Classifier):
    """SAMME AdaBoost over decision stumps (Freund & Schapire 1997;
    multiclass extension of Zhu et al.)."""

    def __init__(self, n_estimators: int = 50, max_depth: int = 1,
                 seed: int = 0) -> None:
        super().__init__()
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.seed = seed
        self.estimators_: list[DecisionTreeClassifier] = []
        self.alphas_: list[float] = []

    def fit(self, X, y) -> "AdaBoostClassifier":
        X, y = check_xy(X, y)
        encoded = self._encode_labels(y)
        self.n_features_ = X.shape[1]
        n, n_classes = len(X), len(self.classes_)
        weights = np.full(n, 1.0 / n)
        self.estimators_ = []
        self.alphas_ = []
        for i in range(self.n_estimators):
            stump = DecisionTreeClassifier(max_depth=self.max_depth,
                                           seed=self.seed * 31 + i)
            stump.fit(X, encoded, sample_weight=weights)
            pred = stump.predict(X)
            miss = pred != encoded
            err = float(np.sum(weights * miss) / np.sum(weights))
            if err >= 1.0 - 1.0 / n_classes:
                break  # weak learner no better than chance; stop
            err = max(err, 1e-12)
            alpha = np.log((1.0 - err) / err) + np.log(n_classes - 1.0)
            self.estimators_.append(stump)
            self.alphas_.append(alpha)
            weights *= np.exp(alpha * miss)
            weights /= weights.sum()
            if err < 1e-10:
                break  # perfect stump; further rounds are redundant
        if not self.estimators_:
            # Degenerate data: keep a single stump as fallback.
            stump = DecisionTreeClassifier(max_depth=self.max_depth,
                                           seed=self.seed)
            stump.fit(X, encoded, sample_weight=weights)
            self.estimators_.append(stump)
            self.alphas_.append(1.0)
        return self

    def predict(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_x(X, self.n_features_)
        n_classes = len(self.classes_)
        scores = np.zeros((len(X), n_classes))
        for alpha, stump in zip(self.alphas_, self.estimators_):
            pred = stump.predict(X)
            for k in range(n_classes):
                scores[pred == k, k] += alpha
        return self._decode_labels(np.argmax(scores, axis=1))
