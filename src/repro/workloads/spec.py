"""SPEC-CPU-like multicore workload mixes (substitute for Fig. 13's
60 four-core SPEC2017/2006 workloads).

Each mix names four memory-intensity classes; :func:`apps_for_mix`
expands a mix into four :class:`~repro.cpu.app.AppSpec` instances with
disjoint working sets spread over all banks of the channel, which is
how real co-running applications both contend for banks and accumulate
the activation counts that trip RowHammer defenses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.cpu.app import AppSpec, spec_like_app
from repro.sim.config import DramOrg


@dataclass(frozen=True)
class WorkloadMix:
    """A four-core workload: one intensity class per core."""

    name: str
    classes: tuple[str, str, str, str]

    def validate(self) -> None:
        for cls in self.classes:
            if cls not in ("L", "M", "H"):
                raise ValueError(f"unknown intensity class {cls!r}")


def make_workload_mixes(n: int, seed: int = 0) -> list[WorkloadMix]:
    """Deterministic list of ``n`` four-core mixes.

    The first mixes are the canonical corner cases (all-H, all-M,
    all-L, balanced), the rest are seeded random draws -- mirroring how
    the paper's 60 mixes span the intensity space.
    """
    canonical = [
        WorkloadMix("mix-HHHH", ("H", "H", "H", "H")),
        WorkloadMix("mix-MMMM", ("M", "M", "M", "M")),
        WorkloadMix("mix-LLLL", ("L", "L", "L", "L")),
        WorkloadMix("mix-HMLM", ("H", "M", "L", "M")),
    ]
    rng = random.Random(seed)
    mixes = list(canonical[:n])
    while len(mixes) < n:
        classes = tuple(rng.choice("LMH") for _ in range(4))
        mixes.append(WorkloadMix(f"mix-{''.join(classes)}-{len(mixes)}",
                                 classes))  # type: ignore[arg-type]
    return mixes


def apps_for_mix(mix: WorkloadMix, org: DramOrg, n_requests: int,
                 seed: int = 0) -> list[AppSpec]:
    """Expand a mix into four app specs with disjoint row regions."""
    mix.validate()
    all_banks = tuple((bg, b) for bg in range(org.bankgroups)
                      for b in range(org.banks_per_group))
    apps = []
    for core, cls in enumerate(mix.classes):
        base = spec_like_app(cls, f"{mix.name}-core{core}",
                             seed=seed * 97 + core, banks=all_banks,
                             n_requests=n_requests)
        # Give each core a private row region so working sets do not
        # alias (they still share banks, hence interfere).
        region = 4096 + core * 8192
        apps.append(AppSpec(
            name=base.name, think_ps=base.think_ps,
            p_row_hit=base.p_row_hit, n_rows=base.n_rows,
            banks=base.banks, n_requests=base.n_requests,
            seed=base.seed, rank=base.rank, row_base=region))
    return apps
