"""Workload generators: message patterns, SPEC-like mixes, website traces."""

from repro.workloads.patterns import (
    bits_from_text,
    checkered_bits,
    constant_bits,
    random_symbols,
    standard_patterns,
    text_from_bits,
)
from repro.workloads.spec import WorkloadMix, make_workload_mixes
from repro.workloads.websites import WebsiteCatalog, WebsiteProfile

__all__ = [
    "bits_from_text",
    "text_from_bits",
    "constant_bits",
    "checkered_bits",
    "random_symbols",
    "standard_patterns",
    "WorkloadMix",
    "make_workload_mixes",
    "WebsiteCatalog",
    "WebsiteProfile",
]
