"""Message/bit-pattern helpers for the covert-channel experiments.

The paper transmits the 40-bit message ``"MICRO"`` for Figs. 3/6 and
100-byte messages in four patterns (all 1s, all 0s, checkered 0,
checkered 1) for the rate/noise studies.
"""

from __future__ import annotations

import random
from typing import Sequence


def bits_from_text(text: str) -> list[int]:
    """MSB-first ASCII bits (e.g., "MICRO" -> 40 bits)."""
    bits: list[int] = []
    for char in text.encode("ascii"):
        for shift in range(7, -1, -1):
            bits.append((char >> shift) & 1)
    return bits


def text_from_bits(bits: Sequence[int]) -> str:
    """Inverse of :func:`bits_from_text`; undecodable bytes become '?'."""
    if len(bits) % 8:
        raise ValueError("bit count must be a multiple of 8")
    chars = []
    for i in range(0, len(bits), 8):
        value = 0
        for bit in bits[i:i + 8]:
            value = (value << 1) | (bit & 1)
        chars.append(chr(value) if 32 <= value < 127 else "?")
    return "".join(chars)


def constant_bits(n: int, value: int) -> list[int]:
    """All-0 or all-1 message of length ``n``."""
    if value not in (0, 1):
        raise ValueError("value must be 0 or 1")
    return [value] * n


def checkered_bits(n: int, first: int) -> list[int]:
    """0101... (first=0) or 1010... (first=1)."""
    if first not in (0, 1):
        raise ValueError("first must be 0 or 1")
    return [(first + i) % 2 for i in range(n)]


def standard_patterns(n_bits: int) -> dict[str, list[int]]:
    """The paper's four evaluation patterns at a given message length."""
    return {
        "all-1s": constant_bits(n_bits, 1),
        "all-0s": constant_bits(n_bits, 0),
        "checkered-0": checkered_bits(n_bits, 0),
        "checkered-1": checkered_bits(n_bits, 1),
    }


def random_symbols(n: int, n_levels: int, seed: int) -> list[int]:
    """Uniform random symbols in [0, n_levels) for multibit channels."""
    if n_levels < 2:
        raise ValueError("need at least two symbol levels")
    rng = random.Random(seed)
    return [rng.randrange(n_levels) for _ in range(n)]
