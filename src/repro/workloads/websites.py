"""Synthetic website-load traces (substitute for the paper's Intel Pin
traces of a real browser loading 40 top websites).

Each :class:`WebsiteProfile` is a seeded *phase model* of a browser
load: a site-specific sequence of loading phases (network wait, DOM
build, script execution, media decode, ...) each with its own duration
share, access rate, DRAM bank, working-set size and -- crucially -- an
optional *hot row pair* that the phase hammers (large JS heaps and
media buffers revisit a small set of rows, which is what makes browser
loads trigger PRAC back-offs at low RowHammer thresholds).

The properties the side channel needs are preserved by construction:

* repeated loads of one site produce *similar* back-off patterns
  (phases are fixed per site; only jitter varies per trace), and
* different sites produce *different* patterns (phase structure is
  drawn from the site's seed).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.dram.address import AddressMapper
from repro.sim.engine import NS

#: The 40 websites the paper fingerprints (footnote 5).
PAPER_WEBSITES = (
    "aliexpress", "amazon", "apple", "baidu", "bilibili", "bing", "canva",
    "chatgpt", "discord", "duckduckgo", "facebook", "fandom", "github",
    "globo", "imdb", "instagram", "linkedin", "live", "naver", "netflix",
    "nytimes", "office", "pinterest", "quora", "reddit", "roblox",
    "samsung", "spotify", "telegram", "temu", "tiktok", "twitch",
    "weather", "whatsapp", "wikipedia", "x", "yahoo", "yandex", "youtube",
    "zoom",
)


@dataclass(frozen=True)
class Phase:
    """One loading phase of a website."""

    duration_share: float  #: fraction of the load duration
    gap_ps: int  #: mean time between memory accesses
    bankgroup: int
    bank: int
    n_rows: int  #: working-set rows
    hot_pair: bool  #: hammer two alternating rows (drives back-offs)
    hot_fraction: float  #: fraction of accesses going to the hot pair


@dataclass(frozen=True)
class WebsiteProfile:
    """A seeded per-site phase model."""

    name: str
    seed: int
    phases: tuple[Phase, ...]

    @classmethod
    def generate(cls, name: str, seed: int,
                 bankgroups: int = 8, banks_per_group: int = 4
                 ) -> "WebsiteProfile":
        rng = random.Random(seed)
        n_phases = rng.randint(3, 7)
        shares = [rng.uniform(0.5, 2.0) for _ in range(n_phases)]
        total = sum(shares)
        phases = []
        for share in shares:
            phases.append(Phase(
                duration_share=share / total,
                gap_ps=rng.randrange(80 * NS, 400 * NS),
                bankgroup=rng.randrange(bankgroups),
                bank=rng.randrange(banks_per_group),
                n_rows=rng.randrange(8, 64),
                hot_pair=rng.random() < 0.7,
                hot_fraction=rng.uniform(0.5, 0.95),
            ))
        return cls(name=name, seed=seed, phases=tuple(phases))

    # ------------------------------------------------------------------
    def trace(self, duration_ps: int, trace_seed: int,
              mapper: AddressMapper,
              row_base: int = 32768) -> list[tuple[int, int]]:
        """One browser-load trace: (time offset, address) records.

        ``trace_seed`` controls per-load jitter: timing wobble, working
        set placement, and the random tail of non-hot accesses -- the
        load-to-load variation that makes classification non-trivial.
        """
        rng = random.Random((self.seed << 20) ^ trace_seed)
        records: list[tuple[int, int]] = []
        # Load-to-load variability: network delay shifts the whole load,
        # and each phase's duration and access rate wobble (server
        # response times, JIT warm-up, ...).
        t = int(rng.uniform(0.0, 0.10) * duration_ps)
        for phase in self.phases:
            duration_scale = rng.uniform(0.8, 1.2)
            rate_scale = rng.uniform(0.8, 1.25)
            phase_end = min(duration_ps, t + int(
                phase.duration_share * duration_ps * duration_scale))
            base = row_base + rng.randrange(0, 512)
            # Hot traffic: two *concurrent streams* walking through
            # rows of the same bank (image decode + JS heap, say).
            # Interleaved fresh-line accesses conflict in the row
            # buffer, so activation counters ramp -- and because every
            # line is new, the pattern survives any cache hierarchy
            # (the real mechanism by which browser loads trip PRAC).
            stream_rows = [base, base + 64]
            stream_cols = [0, 0]
            stream_idx = 0
            cols = mapper.org.cols_per_row
            while t < phase_end:
                if phase.hot_pair and rng.random() < phase.hot_fraction:
                    s = stream_idx
                    stream_idx ^= 1
                    row = stream_rows[s]
                    col = stream_cols[s]
                    stream_cols[s] += 1
                    if stream_cols[s] >= cols:
                        stream_cols[s] = 0
                        stream_rows[s] += 1
                else:
                    # Background accesses re-touch a small set of lines
                    # per row (LLC-filterable locality, Section 10.3).
                    row = base + 8 + rng.randrange(phase.n_rows)
                    col = rng.randrange(min(16, cols))
                addr = mapper.encode(
                    bankgroup=phase.bankgroup, bank=phase.bank, row=row,
                    col=col)
                records.append((t, addr))
                jitter = rng.uniform(0.7, 1.3)
                t += max(1, int(phase.gap_ps * rate_scale * jitter))
        return records


class WebsiteCatalog:
    """A deterministic catalog of website profiles."""

    def __init__(self, n_sites: int, seed: int = 0) -> None:
        if not 1 <= n_sites <= len(PAPER_WEBSITES):
            raise ValueError(
                f"n_sites must be within [1, {len(PAPER_WEBSITES)}]")
        self.seed = seed
        self.profiles = [
            WebsiteProfile.generate(name, seed * 1000 + i)
            for i, name in enumerate(PAPER_WEBSITES[:n_sites])
        ]

    def __len__(self) -> int:
        return len(self.profiles)

    def __iter__(self):
        return iter(self.profiles)

    @property
    def names(self) -> list[str]:
        return [p.name for p in self.profiles]
