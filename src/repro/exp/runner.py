"""Trial/sweep executor: pluggable backends plus cached runs.

Two layers:

``map_trials``
    Runs one trial function over a list of parameter points through an
    execution backend (:mod:`repro.dist`): in-process ``serial``, the
    process-pool ``pool``, or the ``shards`` worker fleet.  Results
    come back in point order, so every backend is bit-identical to the
    serial path — each trial builds its own simulator from its own
    deterministic seed (derived from the point *index*, never from
    worker placement), and results stream into the per-trial result
    cache as they land, so an interrupted sweep resumes instead of
    restarting.

``run_experiment``
    Resolves a registered experiment, consults the on-disk result cache
    (key = experiment name + params + source-tree fingerprint), and
    executes the driver on a miss.  Returns an :class:`ExperimentRun`
    carrying the value plus provenance (cache hit?, trials executed,
    wall time).
"""

from __future__ import annotations

import hashlib
import inspect
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.dist import (
    BackendUnavailable,
    current_execution,
    get_backend,
    resolve_backend_name,
)
from repro.exp.cache import ResultCache, code_fingerprint, stable_key
from repro.exp.registry import ExperimentSpec, get_experiment
from repro.obs import trace as _trace

#: Process-local count of trial executions (parallel trials are counted
#: in the parent as their results arrive).  Tests use the delta around a
#: run to verify cache hits skip work entirely.
_trials_executed = 0


def trials_executed() -> int:
    """Total trials executed by this process since import."""
    return _trials_executed


def derive_seed(base_seed: int, index: int) -> int:
    """Deterministic, well-mixed per-trial seed.

    Stable across processes and Python versions (pure SHA-256, no
    ``hash()``), so a sweep distributed over N workers draws exactly
    the seeds the serial sweep would.
    """
    digest = hashlib.sha256(f"{base_seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def _warn_serial_fallback(backend: str, exc: object,
                          n_points: int) -> None:
    """Shared fallback warning: names the backend and the exact failure
    so 'my sweep silently ran serially' is diagnosable from the log."""
    warnings.warn(
        f"backend {backend!r} unavailable ({exc!r}); running {n_points} "
        "trial(s) serially", RuntimeWarning, stacklevel=3)


def _ambient_fast_forward() -> str:
    """The process-ambient fast-forward switch ("on"/"off"): the forced
    override when active, else the environment/default resolution.
    Part of every trial key — a cache entry computed fast-forwarded
    must never satisfy an event-accurate run (or vice versa), exactly
    the mix-up a diffcheck investigation would be hunting."""
    from repro.sim import fastforward

    mode = fastforward.forced_mode()
    if mode is not None:
        return mode
    return "on" if fastforward.resolve_enabled(None) else "off"


def trial_key(fn: Callable, point, seed) -> str | None:
    """Content-address of one trial: the function's cross-process
    reference, the point, the derived seed, the ambient fast-forward
    mode, and the source fingerprint.

    ``None`` when ``fn`` is not addressable across processes (then the
    per-trial cache cannot guarantee identity and stays out of the way).
    """
    from repro.dist.protocol import fn_ref

    ref = fn_ref(fn)
    if ref is None:
        return None
    return stable_key({"trial": {"fn": ref, "point": point, "seed": seed,
                                 "ff": _ambient_fast_forward()},
                       "code": code_fingerprint()})


_UNSET = object()


def map_trials(fn: Callable, points: Iterable, *,
               workers: int | None = None,
               seed: int | None = None,
               backend: str | None = None,
               trial_cache: ResultCache | None = None,
               progress: Callable[[int, int, int], None] | None = None
               ) -> list:
    """Run ``fn`` over every point; returns results in point order.

    ``fn`` must be a module-level callable taking one point (plus a
    derived per-trial seed as a second argument when ``seed`` is set).
    Execution goes through a :mod:`repro.dist` backend — ``backend``
    (or the ambient :func:`repro.dist.execution` context, or the
    ``REPRO_BACKEND`` environment variable) selects it; the default
    ``auto`` fans out over the process pool when ``workers`` > 1 and
    runs in-process otherwise.  Every backend is bit-identical to
    serial because each trial is an isolated, deterministic simulation
    seeded by point index.  A backend that cannot run here falls back
    to serial execution with a warning naming it.

    With a ``trial_cache`` (explicit or from the execution context),
    already-computed points are served from the cache and fresh results
    stream into it as they land, so a partial sweep resumes instead of
    restarting.  ``progress(done, total, cache_hits)`` is invoked per
    landed trial.
    """
    global _trials_executed
    points = list(points)
    n = len(points)
    seeds: Sequence = (
        [None] * n if seed is None
        else [derive_seed(seed, i) for i in range(n)])

    ctx = current_execution()
    if backend is None:
        backend = ctx.backend
    if trial_cache is None:
        trial_cache = ctx.trial_cache
    if progress is None:
        progress = ctx.progress

    results: list = [_UNSET] * n
    keys: list[str | None] = [None] * n
    hits = 0
    if trial_cache is not None and n:
        for i in range(n):
            keys[i] = trial_key(fn, points[i], seeds[i])
            if keys[i] is None:
                break  # unaddressable fn: no trial caching at all
            hit, value = trial_cache.get(keys[i])
            if hit:
                results[i] = value
                hits += 1

    todo = [i for i in range(n) if results[i] is _UNSET]
    if progress is not None and n:
        progress(n - len(todo), n, hits)

    # Lifecycle tracing: one sweep id per map_trials call; trial ids
    # are "<sweep>:<point index>" so backend-local indices stitch back
    # (dispatched/requeued/running events come from the coordinator,
    # which runs synchronously inside dispatch() below).
    sweep = _trace.new_sweep_id() if _trace.active() else None
    if sweep is not None:
        for i in range(n):
            if results[i] is _UNSET:
                _trace.emit("queued", f"{sweep}:{i}",
                            key=keys[i][:12] if keys[i] else None)
            else:
                _trace.emit("cached", f"{sweep}:{i}")
    if not todo:
        return results

    done = n - len(todo)

    def land(i: int, value) -> None:
        """Stream one landed trial (``i`` is the global point index)."""
        global _trials_executed
        nonlocal done
        if results[i] is not _UNSET:
            return
        results[i] = value
        _trials_executed += 1
        done += 1
        if trial_cache is not None and keys[i] is not None:
            trial_cache.put(keys[i], value)
        if sweep is not None:
            _trace.emit("completed", f"{sweep}:{i}")
        if progress is not None:
            progress(done, n, hits)

    def dispatch(backend_name: str, indices: list[int]) -> None:
        with _trace.sweep_scope(lambda j: f"{sweep}:{indices[j]}"):
            out = get_backend(backend_name).run(
                fn, [points[i] for i in indices],
                [seeds[i] for i in indices],
                workers=workers,
                on_result=lambda j, value: land(indices[j], value))
        # land() is idempotent; re-landing from the returned list covers
        # any backend that does not stream.
        for j, i in enumerate(indices):
            land(i, out[j])

    name = resolve_backend_name(backend, workers=workers,
                                n_points=len(todo))
    try:
        dispatch(name, todo)
    except BackendUnavailable as exc:
        # Results that already landed (and streamed into the cache)
        # before the backend broke are kept; only the rest rerun.
        remaining = [i for i in todo if results[i] is _UNSET]
        _warn_serial_fallback(name, getattr(exc, "reason", exc),
                              len(remaining))
        dispatch("serial", remaining)
    return results


# ----------------------------------------------------------------------
# Scenario fan-out: a trial is a spec, not a closure
# ----------------------------------------------------------------------
def _scenario_trial(point: dict) -> dict:
    """Module-level trampoline: rebuild the spec inside the worker, run
    it, and ship the serializable result core back."""
    from repro.scenario.spec import ScenarioSpec

    return ScenarioSpec.from_dict(point).run().to_dict()


def map_scenarios(specs, *, workers: int | None = None,
                  backend: str | None = None) -> list[dict]:
    """Run scenario specs over the trial backend; results in spec order.

    Accepts :class:`~repro.scenario.spec.ScenarioSpec` instances or
    their dict form; each worker receives pure data and returns the
    JSON-safe ``ScenarioResult.to_dict()`` core.  Any backend's
    fan-out is bit-identical to serial because a spec fully determines
    its simulation.
    """
    points = [spec.to_dict() if hasattr(spec, "to_dict") else dict(spec)
              for spec in specs]
    return map_trials(_scenario_trial, points, workers=workers,
                      backend=backend)


def scenario_key(spec) -> str:
    """Result-cache key of one scenario run: the spec's own stable hash
    plus the source-tree fingerprint (edits invalidate cached runs)."""
    return stable_key({"scenario": spec.to_dict(),
                       "code": code_fingerprint()})


def run_scenario(spec, *, use_cache: bool = True,
                 cache: ResultCache | None = None,
                 cache_dir: str | None = None,
                 backend: str | None = None) -> "ExperimentRun":
    """Execute one scenario spec through the result cache.

    The returned :class:`ExperimentRun` carries the serializable result
    core (``ScenarioResult.to_dict()``) as its value, so cache hits and
    fresh runs are interchangeable.  Execution goes through
    :func:`map_scenarios`, so an explicit ``backend`` (or the ambient
    execution context) ships the spec to a worker fleet.
    """

    def compute():
        return map_scenarios([spec], backend=backend)[0]

    return _through_cache(spec.name, scenario_key(spec),
                          {"scenario": spec.name}, compute,
                          use_cache=use_cache, cache=cache,
                          cache_dir=cache_dir)


# ----------------------------------------------------------------------
# Cached experiment execution
# ----------------------------------------------------------------------
@dataclass
class ExperimentRun:
    """Outcome + provenance of one ``run_experiment`` call."""

    name: str
    value: object
    cached: bool
    trials: int
    elapsed_s: float
    key: str
    params: dict = field(default_factory=dict)


class ExperimentParamError(TypeError):
    """Parameters do not match the experiment driver's signature."""


def _through_cache(name: str, key: str, params: dict, compute,
                   *, use_cache: bool, cache: ResultCache | None,
                   cache_dir: str | None) -> ExperimentRun:
    """Shared get-or-compute-and-put core of every cached run.

    ``compute`` produces the value; trials are counted via the
    process-local :func:`trials_executed` delta around it.
    """
    if use_cache and cache is None:
        cache = ResultCache(cache_dir)
    if use_cache:
        hit, value = cache.get(key)
        if hit:
            return ExperimentRun(name, value, cached=True, trials=0,
                                 elapsed_s=0.0, key=key, params=params)
    before = trials_executed()
    start = time.perf_counter()
    value = compute()
    elapsed = time.perf_counter() - start
    trials = trials_executed() - before
    if use_cache:
        cache.put(key, value)
    return ExperimentRun(name, value, cached=False, trials=trials,
                         elapsed_s=elapsed, key=key, params=params)


def experiment_key(spec: ExperimentSpec, params: dict) -> str:
    """Content-address of one experiment run.

    Covers the experiment name, its *resolved* parameters (explicit
    overrides merged with the driver's defaults, so spelling out a
    default yields the same key as omitting it), and the source-tree
    fingerprint.  Execution knobs that cannot change the result
    (``workers``) are deliberately excluded.
    """
    try:
        bound = inspect.signature(spec.fn).bind_partial(**params)
    except TypeError as exc:
        raise ExperimentParamError(
            f"experiment {spec.name!r}: {exc}") from None
    bound.apply_defaults()
    resolved = dict(bound.arguments)
    resolved.pop("workers", None)
    return stable_key({
        "experiment": spec.name,
        "params": resolved,
        "code": code_fingerprint(),
    })


def resolve_run(name: str, params: dict | None = None, *,
                workers: int | None = None, seed: int | None = None
                ) -> tuple[ExperimentSpec, dict, dict, str]:
    """Validate one experiment request and compute its cache key
    without executing anything.

    Returns ``(spec, key_params, call_params, key)``: the registry
    spec, the parameters that define the cache key (``seed`` merged in
    when the driver accepts it), the parameters to actually call the
    driver with (``workers`` added when accepted), and the result-cache
    key.  This is the shared front half of :func:`run_experiment`, so
    anything that must agree with it on keys -- the serve subsystem's
    cache-hit fast path, the artifact layer -- resolves through here.

    Raises :class:`~repro.exp.registry.RegistryError` for unknown
    names and :class:`ExperimentParamError` for parameters the driver
    does not accept.
    """
    spec = get_experiment(name)
    params = dict(params or {})
    signature = inspect.signature(spec.fn)
    unknown = [k for k in params if k not in signature.parameters]
    if unknown:
        raise ExperimentParamError(
            f"experiment {spec.name!r} does not accept parameter(s) "
            f"{unknown}; accepts {sorted(signature.parameters)}")
    if seed is not None:
        if "seed" in signature.parameters:
            params["seed"] = seed
        else:
            warnings.warn(
                f"experiment {spec.name!r} takes no seed; --seed ignored",
                RuntimeWarning, stacklevel=3)

    call_params = dict(params)
    if workers is not None and "workers" in signature.parameters:
        call_params["workers"] = workers
    return spec, params, call_params, experiment_key(spec, params)


def run_experiment(name: str, params: dict | None = None, *,
                   workers: int | None = None,
                   seed: int | None = None,
                   use_cache: bool = True,
                   cache: ResultCache | None = None,
                   cache_dir: str | None = None) -> ExperimentRun:
    """Execute a registered experiment, going through the result cache.

    ``params`` are keyword overrides for the driver.  ``workers`` and
    ``seed`` are forwarded only when the driver accepts them (``seed``
    becomes part of the cache key; ``workers`` never does).
    """
    spec, params, call_params, key = resolve_run(
        name, params, workers=workers, seed=seed)
    return _through_cache(spec.name, key, params,
                          lambda: spec.fn(**call_params),
                          use_cache=use_cache, cache=cache,
                          cache_dir=cache_dir)
