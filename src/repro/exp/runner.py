"""Trial/sweep executor: process-pool fan-out plus cached runs.

Two layers:

``map_trials``
    Runs one picklable trial function over a list of parameter points,
    optionally fanning out over a ``ProcessPoolExecutor``.  Results come
    back in point order, so a parallel sweep is bit-identical to the
    serial one — every trial builds its own simulator from its own
    (deterministic) seed, and nothing about worker placement can leak
    into the physics.

``run_experiment``
    Resolves a registered experiment, consults the on-disk result cache
    (key = experiment name + params + source-tree fingerprint), and
    executes the driver on a miss.  Returns an :class:`ExperimentRun`
    carrying the value plus provenance (cache hit?, trials executed,
    wall time).
"""

from __future__ import annotations

import hashlib
import inspect
import time
import warnings
from dataclasses import dataclass, field
from itertools import repeat
from typing import Callable, Iterable, Sequence

from repro.exp.cache import ResultCache, code_fingerprint, stable_key
from repro.exp.registry import ExperimentSpec, get_experiment

#: Process-local count of trial executions (parallel trials are counted
#: in the parent as their results arrive).  Tests use the delta around a
#: run to verify cache hits skip work entirely.
_trials_executed = 0


def trials_executed() -> int:
    """Total trials executed by this process since import."""
    return _trials_executed


def derive_seed(base_seed: int, index: int) -> int:
    """Deterministic, well-mixed per-trial seed.

    Stable across processes and Python versions (pure SHA-256, no
    ``hash()``), so a sweep distributed over N workers draws exactly
    the seeds the serial sweep would.
    """
    digest = hashlib.sha256(f"{base_seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def _run_point(fn: Callable, point, seed):
    """Top-level trampoline so trial calls pickle cleanly."""
    if seed is None:
        return fn(point)
    return fn(point, seed)


def _warn_serial_fallback(exc: BaseException, n_points: int) -> None:
    warnings.warn(
        f"process pool unavailable ({exc}); running {n_points} trials "
        "serially", RuntimeWarning, stacklevel=3)


def map_trials(fn: Callable, points: Iterable, *,
               workers: int | None = None,
               seed: int | None = None) -> list:
    """Run ``fn`` over every point; returns results in point order.

    ``fn`` must be a module-level callable taking one point (plus a
    derived per-trial seed as a second argument when ``seed`` is set).
    With ``workers`` > 1 the points fan out over a process pool; the
    result is identical to the serial path because each trial is an
    isolated, deterministic simulation.  Environments that cannot fork
    fall back to serial execution with a warning.
    """
    global _trials_executed
    points = list(points)
    seeds: Sequence = (
        [None] * len(points) if seed is None
        else [derive_seed(seed, i) for i in range(len(points))])

    if workers is not None and workers > 1 and len(points) > 1:
        # Deferred import: the pool machinery is only paid for when a
        # parallel sweep is actually requested (keeps CLI startup lean).
        from concurrent.futures import BrokenExecutor, ProcessPoolExecutor

        # Fall back to serial only on pool-machinery failure: OSError
        # from pool construction, or BrokenExecutor when workers could
        # not spawn / died.  An exception raised by a trial itself
        # propagates unchanged out of pool.map and is never retried.
        try:
            pool = ProcessPoolExecutor(max_workers=min(workers, len(points)))
        except OSError as exc:
            _warn_serial_fallback(exc, len(points))
        else:
            try:
                with pool:
                    results = list(pool.map(_run_point, repeat(fn),
                                            points, seeds))
            except BrokenExecutor as exc:
                _warn_serial_fallback(exc, len(points))
            else:
                _trials_executed += len(points)
                return results

    results = []
    for point, trial_seed in zip(points, seeds):
        results.append(_run_point(fn, point, trial_seed))
        _trials_executed += 1
    return results


# ----------------------------------------------------------------------
# Scenario fan-out: a trial is a spec, not a closure
# ----------------------------------------------------------------------
def _scenario_trial(point: dict) -> dict:
    """Module-level trampoline: rebuild the spec inside the worker, run
    it, and ship the serializable result core back."""
    from repro.scenario.spec import ScenarioSpec

    return ScenarioSpec.from_dict(point).run().to_dict()


def map_scenarios(specs, *, workers: int | None = None) -> list[dict]:
    """Run scenario specs over the trial pool; results in spec order.

    Accepts :class:`~repro.scenario.spec.ScenarioSpec` instances or
    their dict form; each worker receives pure data and returns the
    JSON-safe ``ScenarioResult.to_dict()`` core.  Parallel fan-out is
    bit-identical to serial because a spec fully determines its
    simulation.
    """
    points = [spec.to_dict() if hasattr(spec, "to_dict") else dict(spec)
              for spec in specs]
    return map_trials(_scenario_trial, points, workers=workers)


def scenario_key(spec) -> str:
    """Result-cache key of one scenario run: the spec's own stable hash
    plus the source-tree fingerprint (edits invalidate cached runs)."""
    return stable_key({"scenario": spec.to_dict(),
                       "code": code_fingerprint()})


def run_scenario(spec, *, use_cache: bool = True,
                 cache: ResultCache | None = None,
                 cache_dir: str | None = None) -> "ExperimentRun":
    """Execute one scenario spec through the result cache.

    The returned :class:`ExperimentRun` carries the serializable result
    core (``ScenarioResult.to_dict()``) as its value, so cache hits and
    fresh runs are interchangeable.
    """

    def compute():
        global _trials_executed
        value = spec.run().to_dict()
        _trials_executed += 1
        return value

    return _through_cache(spec.name, scenario_key(spec),
                          {"scenario": spec.name}, compute,
                          use_cache=use_cache, cache=cache,
                          cache_dir=cache_dir)


# ----------------------------------------------------------------------
# Cached experiment execution
# ----------------------------------------------------------------------
@dataclass
class ExperimentRun:
    """Outcome + provenance of one ``run_experiment`` call."""

    name: str
    value: object
    cached: bool
    trials: int
    elapsed_s: float
    key: str
    params: dict = field(default_factory=dict)


class ExperimentParamError(TypeError):
    """Parameters do not match the experiment driver's signature."""


def _through_cache(name: str, key: str, params: dict, compute,
                   *, use_cache: bool, cache: ResultCache | None,
                   cache_dir: str | None) -> ExperimentRun:
    """Shared get-or-compute-and-put core of every cached run.

    ``compute`` produces the value; trials are counted via the
    process-local :func:`trials_executed` delta around it.
    """
    if use_cache and cache is None:
        cache = ResultCache(cache_dir)
    if use_cache:
        hit, value = cache.get(key)
        if hit:
            return ExperimentRun(name, value, cached=True, trials=0,
                                 elapsed_s=0.0, key=key, params=params)
    before = trials_executed()
    start = time.perf_counter()
    value = compute()
    elapsed = time.perf_counter() - start
    trials = trials_executed() - before
    if use_cache:
        cache.put(key, value)
    return ExperimentRun(name, value, cached=False, trials=trials,
                         elapsed_s=elapsed, key=key, params=params)


def experiment_key(spec: ExperimentSpec, params: dict) -> str:
    """Content-address of one experiment run.

    Covers the experiment name, its *resolved* parameters (explicit
    overrides merged with the driver's defaults, so spelling out a
    default yields the same key as omitting it), and the source-tree
    fingerprint.  Execution knobs that cannot change the result
    (``workers``) are deliberately excluded.
    """
    try:
        bound = inspect.signature(spec.fn).bind_partial(**params)
    except TypeError as exc:
        raise ExperimentParamError(
            f"experiment {spec.name!r}: {exc}") from None
    bound.apply_defaults()
    resolved = dict(bound.arguments)
    resolved.pop("workers", None)
    return stable_key({
        "experiment": spec.name,
        "params": resolved,
        "code": code_fingerprint(),
    })


def run_experiment(name: str, params: dict | None = None, *,
                   workers: int | None = None,
                   seed: int | None = None,
                   use_cache: bool = True,
                   cache: ResultCache | None = None,
                   cache_dir: str | None = None) -> ExperimentRun:
    """Execute a registered experiment, going through the result cache.

    ``params`` are keyword overrides for the driver.  ``workers`` and
    ``seed`` are forwarded only when the driver accepts them (``seed``
    becomes part of the cache key; ``workers`` never does).
    """
    spec = get_experiment(name)
    params = dict(params or {})
    signature = inspect.signature(spec.fn)
    unknown = [k for k in params if k not in signature.parameters]
    if unknown:
        raise ExperimentParamError(
            f"experiment {spec.name!r} does not accept parameter(s) "
            f"{unknown}; accepts {sorted(signature.parameters)}")
    if seed is not None:
        if "seed" in signature.parameters:
            params["seed"] = seed
        else:
            warnings.warn(
                f"experiment {spec.name!r} takes no seed; --seed ignored",
                RuntimeWarning, stacklevel=2)

    call_params = dict(params)
    if workers is not None and "workers" in signature.parameters:
        call_params["workers"] = workers
    return _through_cache(spec.name, experiment_key(spec, params), params,
                          lambda: spec.fn(**call_params),
                          use_cache=use_cache, cache=cache,
                          cache_dir=cache_dir)
