"""Decorator-based experiment registry.

Every paper figure/table driver registers itself with metadata::

    @experiment("fig4", figure="Fig. 4",
                claim="PRAC covert-channel capacity degrades with noise",
                default_scale={"n_bits": 24})
    def fig4_prac_noise_sweep(intensities=..., n_bits=24, workers=None):
        ...

The registry is the single source of truth consumed by the CLI
(``python -m repro list`` / ``run``), the quick report
(:mod:`repro.analysis.report`), and the benchmark harness — adding a
new experiment means writing one decorated driver, nothing else.

Driver modules live under :mod:`repro.exp.drivers` and are imported
lazily on first registry access, so ``import repro`` stays cheap.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable


class RegistryError(KeyError):
    """Unknown experiment name or conflicting registration."""


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment driver plus its paper metadata."""

    #: Short stable identifier (``fig4``, ``sec91``, ``table3`` ...).
    name: str
    #: The driver callable (returns a FigureTable or a dict of results).
    fn: Callable[..., object]
    #: Paper figure/table/section label (``"Fig. 4"``).
    figure: str
    #: One-line statement of the paper claim the experiment reproduces.
    claim: str
    #: Default (reduced-but-faithful) scale, for documentation/CLI.
    default_scale: dict = field(default_factory=dict)
    #: Keyword overrides for the quick report; ``None`` = not part of it.
    quick: dict | None = None
    #: ``check(result) -> (passed, body)`` used by the quick report.
    check: Callable[[object], tuple[bool, str]] | None = None
    #: Alternative lookup names (``table2`` for ``fig10``).
    aliases: tuple[str, ...] = ()
    #: Free-form labels (``"sweep"``, ``"prac"``, ...).
    tags: tuple[str, ...] = ()
    #: Registration sequence number (stable iteration order).
    order: int = 0

    @property
    def parallelizable(self) -> bool:
        """True when the driver accepts a ``workers`` keyword."""
        return "workers" in inspect.signature(self.fn).parameters

    @property
    def seedable(self) -> bool:
        """True when the driver accepts a ``seed`` keyword."""
        return "seed" in inspect.signature(self.fn).parameters


_REGISTRY: dict[str, ExperimentSpec] = {}
_ALIASES: dict[str, str] = {}
_loaded = False


def _ensure_loaded() -> None:
    """Import the driver package (self-registering) exactly once."""
    global _loaded
    if not _loaded:
        import repro.exp.drivers  # noqa: F401  (registration side effect)
        _loaded = True


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add a spec to the registry; duplicate names are an error."""
    for name in (spec.name, *spec.aliases):
        if name in _REGISTRY or name in _ALIASES:
            raise RegistryError(
                f"experiment name {name!r} is already registered")
    _REGISTRY[spec.name] = spec
    for alias in spec.aliases:
        _ALIASES[alias] = spec.name
    return spec


def experiment(name: str, *, figure: str, claim: str,
               default_scale: dict | None = None,
               quick: dict | None = None,
               check: Callable[[object], tuple[bool, str]] | None = None,
               aliases: tuple[str, ...] = (),
               tags: tuple[str, ...] = ()) -> Callable:
    """Class-method-style decorator registering a driver function."""

    def decorate(fn: Callable) -> Callable:
        register(ExperimentSpec(
            name=name, fn=fn, figure=figure, claim=claim,
            default_scale=dict(default_scale or {}),
            quick=None if quick is None else dict(quick),
            check=check, aliases=tuple(aliases), tags=tuple(tags),
            order=len(_REGISTRY)))
        return fn

    return decorate


def get_experiment(name: str) -> ExperimentSpec:
    """Look an experiment up by name or alias."""
    _ensure_loaded()
    canonical = _ALIASES.get(name, name)
    try:
        return _REGISTRY[canonical]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise RegistryError(
            f"unknown experiment {name!r}; known: {known}") from None


def all_experiments() -> list[ExperimentSpec]:
    """Every registered experiment, in registration order."""
    _ensure_loaded()
    return sorted(_REGISTRY.values(), key=lambda s: s.order)


def experiment_names() -> list[str]:
    """Canonical names, in registration order."""
    return [spec.name for spec in all_experiments()]
