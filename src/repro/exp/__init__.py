"""Experiment orchestration: registry, parallel runner, result cache.

The public surface of the subsystem:

>>> from repro.exp import run_experiment, all_experiments
>>> [s.name for s in all_experiments()][:3]
['fig2', 'fig3', 'fig4']
>>> run = run_experiment("fig4", {"intensities": (1,), "n_bits": 4},
...                      use_cache=False)
>>> run.cached, run.trials
(False, 1)
"""

from repro.exp.cache import (
    DEFAULT_CACHE_DIR,
    ResultCache,
    code_fingerprint,
    stable_key,
)
from repro.exp.registry import (
    ExperimentSpec,
    RegistryError,
    all_experiments,
    experiment,
    experiment_names,
    get_experiment,
)
from repro.exp.runner import (
    ExperimentParamError,
    ExperimentRun,
    derive_seed,
    experiment_key,
    map_scenarios,
    map_trials,
    run_experiment,
    run_scenario,
    scenario_key,
    trial_key,
    trials_executed,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ExperimentParamError",
    "ExperimentRun",
    "ExperimentSpec",
    "RegistryError",
    "ResultCache",
    "all_experiments",
    "code_fingerprint",
    "derive_seed",
    "experiment",
    "experiment_key",
    "experiment_names",
    "get_experiment",
    "map_scenarios",
    "map_trials",
    "run_experiment",
    "run_scenario",
    "scenario_key",
    "stable_key",
    "trial_key",
    "trials_executed",
]
