"""Periodic-RFM channel drivers (Figs. 6-8).

Sweeps send serialized channel points (see
:mod:`repro.exp.drivers.common`) through the shared pattern trial, so
a trial is data and parallel runs stay bit-identical to serial ones.
"""

from __future__ import annotations

from repro.analysis.figures import FigureTable
from repro.core.rfm_channel import RfmCovertChannel
from repro.exp.drivers.common import (
    DEFAULT_INTENSITIES,
    evaluate_patterns,
    pattern_sweep,
    rfm_point,
)
from repro.exp.registry import experiment


# ----------------------------------------------------------------------
# Fig. 6 -- 40-bit "MICRO" transmission + raw bit rate
# ----------------------------------------------------------------------
def _check_fig6(out) -> tuple[bool, str]:
    return (out["result"].sent == out["result"].decoded,
            out["table"].to_text())


@experiment(
    "fig6", figure="Fig. 6", aliases=("fig06",), tags=("rfm", "covert"),
    claim="RFM covert channel decodes",
    default_scale={"text": "MICRO", "pattern_bits": 40},
    quick={"text": "MI", "pattern_bits": 8}, check=_check_fig6)
def fig6_rfm_message(text: str = "MICRO", pattern_bits: int = 40) -> dict:
    """Fig. 6 message plot plus the Section 7.3 raw-bit-rate result."""
    channel = RfmCovertChannel()
    result = channel.transmit_text(text)
    table = FigureTable(
        f"Fig. 6: RFM covert channel transmitting {len(result.sent)}-bit "
        f"'{text}'",
        ["window", "bit sent", "RFMs seen", "decoded"])
    for w in result.windows:
        table.add_row(w.index, w.sent, w.rfms, w.decoded)
    table.add_note(f"decoded correctly: {result.sent == result.decoded}")
    rates = evaluate_patterns(RfmCovertChannel, pattern_bits)
    table.add_note(
        f"raw bit rate over 4 patterns: "
        f"{rates['raw_bit_rate_bps'] / 1e3:.1f} Kbps (paper: 48.7)")
    return {"table": table, "result": result, "rates": rates}


# ----------------------------------------------------------------------
# Fig. 7 -- capacity/error vs noise intensity
# ----------------------------------------------------------------------
@experiment(
    "fig7", figure="Fig. 7", aliases=("fig07",), tags=("rfm", "sweep"),
    claim="RFM channel knee arrives at lower noise than the PRAC channel",
    default_scale={"intensities": DEFAULT_INTENSITIES, "n_bits": 24})
def fig7_rfm_noise_sweep(intensities=DEFAULT_INTENSITIES,
                         n_bits: int = 24,
                         workers: int | None = None) -> FigureTable:
    table = FigureTable(
        "Fig. 7: RFM covert channel vs noise intensity",
        ["noise intensity (%)", "error probability", "capacity (Kbps)"])
    results = pattern_sweep(
        [rfm_point(n_bits, noise_intensity=i) for i in intensities],
        workers=workers)
    for intensity, stats in zip(intensities, results):
        table.add_row(intensity, stats["error_probability"],
                      stats["capacity_bps"] / 1e3)
    table.add_note("paper: 46.3 Kbps at 1% noise; knee at lower noise "
                   "intensity than the PRAC channel (bank counters "
                   "aggregate all activations)")
    return table


# ----------------------------------------------------------------------
# Fig. 8 -- capacity/error vs co-running SPEC intensity
# ----------------------------------------------------------------------
@experiment(
    "fig8", figure="Fig. 8", aliases=("fig08",), tags=("rfm", "sweep"),
    claim="RFM channel survives co-running SPEC-like applications",
    default_scale={"n_bits": 24})
def fig8_rfm_app_noise(n_bits: int = 24,
                       workers: int | None = None) -> FigureTable:
    table = FigureTable(
        "Fig. 8: RFM covert channel vs SPEC-like memory intensity",
        ["memory intensity", "error probability", "capacity (Kbps)"])
    classes = ("L", "M", "H")
    results = pattern_sweep(
        [rfm_point(n_bits, spec_class=c) for c in classes],
        workers=workers)
    for cls, stats in zip(classes, results):
        table.add_row(cls, stats["error_probability"],
                      stats["capacity_bps"] / 1e3)
    table.add_note("paper: 48.1 / 44.4 / 43.6 Kbps for L / M / H")
    return table
