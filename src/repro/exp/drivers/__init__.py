"""Per-topic experiment driver modules.

Importing this package registers every driver with
:mod:`repro.exp.registry` (each module's ``@experiment`` decorators run
at import time).  Registration order defines the catalog order shown by
``python -m repro list``.
"""

from repro.exp.drivers import (  # noqa: F401  (registration side effects)
    prac,
    rfm,
    fingerprint,
    leak,
    perf,
    ablations,
)
