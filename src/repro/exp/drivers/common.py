"""Helpers shared by the experiment drivers."""

from __future__ import annotations

from repro.core.capacity import channel_capacity_bps
from repro.workloads.patterns import standard_patterns

#: Noise intensities swept by Figs. 4/7/11 (paper sweeps 1..100%).
DEFAULT_INTENSITIES = (1, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100)


def evaluate_patterns(channel_factory, n_bits: int) -> dict:
    """Transmit the paper's four message patterns; pool the bit errors
    (Section 5.2's metric) and compute the channel capacity."""
    sent_all: list[int] = []
    decoded_all: list[int] = []
    raw_rate = None
    for bits in standard_patterns(n_bits).values():
        result = channel_factory().transmit(bits)
        sent_all.extend(result.sent)
        decoded_all.extend(result.decoded)
        raw_rate = result.raw_bit_rate_bps
    errors = sum(1 for s, d in zip(sent_all, decoded_all) if s != d)
    e = errors / len(sent_all)
    return {
        "raw_bit_rate_bps": raw_rate,
        "error_probability": e,
        "capacity_bps": channel_capacity_bps(raw_rate, e),
        "bits": len(sent_all),
    }
