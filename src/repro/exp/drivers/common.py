"""Helpers shared by the experiment drivers.

The sweep drivers (Figs. 4/5/7/8/11/12, Sections 6.3/11.4, ablations)
all fan the same shape of work out over the trial pool: build a covert
channel from a config, transmit the standard patterns, report
rate/error/capacity.  Instead of one bespoke module-level trial
closure per figure, every sweep now sends *data* through
:func:`repro.exp.runner.map_trials` -- a point is a plain dict naming
the channel family and its serialized config
(:func:`prac_point` / :func:`rfm_point`), and the two module-level
trial functions below rebuild the channel inside the worker.
"""

from __future__ import annotations

from repro.core.capacity import channel_capacity_bps
from repro.exp.runner import map_trials
from repro.workloads.patterns import random_symbols, standard_patterns

#: Noise intensities swept by Figs. 4/7/11 (paper sweeps 1..100%).
DEFAULT_INTENSITIES = (1, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100)


def evaluate_patterns(channel_factory, n_bits: int) -> dict:
    """Transmit the paper's four message patterns; pool the bit errors
    (Section 5.2's metric) and compute the channel capacity."""
    sent_all: list[int] = []
    decoded_all: list[int] = []
    raw_rate = None
    for bits in standard_patterns(n_bits).values():
        result = channel_factory().transmit(bits)
        sent_all.extend(result.sent)
        decoded_all.extend(result.decoded)
        raw_rate = result.raw_bit_rate_bps
    errors = sum(1 for s, d in zip(sent_all, decoded_all) if s != d)
    e = errors / len(sent_all)
    return {
        "raw_bit_rate_bps": raw_rate,
        "error_probability": e,
        "capacity_bps": channel_capacity_bps(raw_rate, e),
        "bits": len(sent_all),
    }


# ----------------------------------------------------------------------
# Data-point sweeps: a trial is a dict, not a closure
# ----------------------------------------------------------------------
def prac_point(n_bits: int, **cfg_overrides) -> dict:
    """One PRAC-channel sweep point as pure (picklable, hashable) data."""
    from repro.core.prac_channel import PracChannelConfig

    return {"channel": "prac",
            "cfg": PracChannelConfig(**cfg_overrides).to_dict(),
            "n_bits": n_bits}


def rfm_point(n_bits: int, **cfg_overrides) -> dict:
    """One RFM-channel sweep point as pure data."""
    from repro.core.rfm_channel import RfmChannelConfig

    return {"channel": "rfm",
            "cfg": RfmChannelConfig(**cfg_overrides).to_dict(),
            "n_bits": n_bits}


def channel_from_point(point: dict):
    """Rebuild the covert channel a sweep point describes."""
    from repro.core.prac_channel import PracChannelConfig, PracCovertChannel
    from repro.core.rfm_channel import RfmChannelConfig, RfmCovertChannel

    family = point["channel"]
    if family == "prac":
        return PracCovertChannel(PracChannelConfig.from_dict(point["cfg"]))
    if family == "rfm":
        return RfmCovertChannel(RfmChannelConfig.from_dict(point["cfg"]))
    raise ValueError(f"unknown channel family {family!r}")


def _pattern_trial(point: dict) -> dict:
    """Shared trial: standard-pattern evaluation of one channel point."""
    return evaluate_patterns(lambda: channel_from_point(point),
                             point["n_bits"])


def pattern_sweep(points: list[dict], *,
                  workers: int | None = None) -> list[dict]:
    """Run :func:`evaluate_patterns` over channel points, optionally in
    parallel (bit-identical to serial; see ``map_trials``)."""
    return map_trials(_pattern_trial, points, workers=workers)


def _symbols_trial(point: dict) -> tuple:
    """Shared trial: one random-symbol transmission of a channel point
    (the Section 6.3 multibit study)."""
    channel = channel_from_point(point)
    symbols = random_symbols(point["n_symbols"], point["levels"],
                             seed=point["symbol_seed"])
    result = channel.transmit(symbols)
    return (result.raw_bit_rate_bps, result.error_probability,
            result.capacity_bps)


def symbols_sweep(points: list[dict], *,
                  workers: int | None = None) -> list[tuple]:
    return map_trials(_symbols_trial, points, workers=workers)
