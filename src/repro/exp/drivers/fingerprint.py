"""Website-fingerprinting drivers (Figs. 9/10, Table 2, Section 10.3)."""

from __future__ import annotations

from repro.analysis.figures import FigureTable, render_strip
from repro.cache.hierarchy import HierarchyConfig
from repro.core.fingerprint import FingerprintConfig, WebsiteFingerprinter
from repro.core.prac_channel import PracChannelConfig, PracCovertChannel
from repro.core.rfm_channel import RfmChannelConfig, RfmCovertChannel
from repro.exp.drivers.common import evaluate_patterns
from repro.exp.registry import experiment
from repro.sim.engine import MS
from repro.workloads.websites import WebsiteCatalog


@experiment(
    "fig9", figure="Fig. 9", aliases=("fig09",),
    tags=("fingerprint", "side-channel"),
    claim="repeated site loads produce similar back-off strips; "
          "different sites differ",
    default_scale={"n_sites": 3, "traces_per_site": 2})
def fig9_fingerprint_examples(n_sites: int = 3, traces_per_site: int = 2,
                              duration_ps: int = 1 * MS) -> FigureTable:
    cfg = FingerprintConfig(duration_ps=duration_ps)
    fingerprinter = WebsiteFingerprinter(cfg)
    catalog = WebsiteCatalog(n_sites, seed=1)
    table = FigureTable(
        "Fig. 9: website fingerprints (back-offs per execution window)",
        ["website", "trace", "back-offs", "strip"])
    for profile in catalog:
        for t in range(traces_per_site):
            trace = fingerprinter.capture(profile, trace_seed=t + 1)
            counts = trace.window_counts(cfg.n_windows)
            table.add_row(profile.name, t,
                          len(trace.backoff_times), render_strip(counts))
    table.add_note("repeated loads of a site produce similar strips; "
                   "different sites differ (paper Fig. 9)")
    return table


@experiment(
    "fig10", figure="Fig. 10 / Table 2", aliases=("table2",),
    tags=("fingerprint", "side-channel", "ml"),
    claim="classifiers recover the visited website far above chance",
    default_scale={"n_sites": 10, "traces_per_site": 10, "n_splits": 5})
def fig10_table2_fingerprint(n_sites: int = 10, traces_per_site: int = 10,
                             duration_ps: int = 1 * MS,
                             n_splits: int = 5,
                             with_noise: bool = False) -> dict:
    """Fig. 10 (classifier accuracies) and Table 2 (decision-tree CV)."""
    # Deferred: the ML stack (and numpy under it) loads only when a
    # fingerprinting experiment actually runs, keeping CLI startup lean.
    from repro.ml import cross_validate, paper_model_zoo, train_test_split
    from repro.ml.metrics import accuracy_score
    from repro.ml.tree import DecisionTreeClassifier

    cfg = FingerprintConfig(duration_ps=duration_ps,
                            spec_noise="H" if with_noise else None)
    fingerprinter = WebsiteFingerprinter(cfg)
    catalog = WebsiteCatalog(n_sites, seed=1)
    X, y, names = fingerprinter.collect_dataset(catalog, traces_per_site)

    Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.3, seed=5)
    fig10 = FigureTable(
        f"Fig. 10: classifier accuracy over {n_sites} websites"
        + (" (with SPEC noise)" if with_noise else ""),
        ["model", "test accuracy"])
    accuracies = {}
    for name, model in paper_model_zoo(seed=3).items():
        model.fit(Xtr, ytr)
        acc = accuracy_score(yte, model.predict(Xte))
        accuracies[name] = acc
        fig10.add_row(name, acc)
    fig10.add_note(f"random-guess accuracy: {1.0 / n_sites:.3f} "
                   "(paper: decision tree 0.75 over 40 sites, 30x random)")

    cv = cross_validate(lambda: DecisionTreeClassifier(seed=3), X, y,
                        n_splits=n_splits, seed=7)
    table2 = FigureTable(
        f"Table 2: decision tree, {n_splits}-fold cross-validation",
        ["metric", "mean (%)", "std (%)"])
    for metric in ("f1", "precision", "recall"):
        table2.add_row(metric.capitalize(), 100 * cv[f"{metric}_mean"],
                       100 * cv[f"{metric}_std"])
    table2.add_note("paper: F1 71.8 (4.2), precision 74.1 (4.4), "
                    "recall 72.4 (4.2)")
    return {"fig10": fig10, "table2": table2, "accuracies": accuracies,
            "dataset": (X, y, names), "cv": cv}


@experiment(
    "sec103", figure="Sec. 10.3", tags=("fingerprint", "cache"),
    claim="a larger cache hierarchy only mildly weakens the attacks",
    default_scale={"n_bits": 24, "n_sites": 6, "traces_per_site": 6})
def sec103_cache_hierarchy(n_bits: int = 24, n_sites: int = 6,
                           traces_per_site: int = 6,
                           duration_ps: int = 1 * MS) -> dict:
    from repro.ml import train_test_split
    from repro.ml.metrics import accuracy_score
    from repro.ml.tree import DecisionTreeClassifier

    large = HierarchyConfig.large()
    big_frontend = large.total_lookup_latency

    channels = FigureTable(
        "Section 10.3: covert channels with a larger cache hierarchy",
        ["channel", "hierarchy", "error probability", "capacity (Kbps)"])
    for name, factory in (
        ("PRAC", lambda fe=None: PracCovertChannel(PracChannelConfig(
            noise_intensity=1.0, frontend_latency_override=fe))),
        ("RFM", lambda fe=None: RfmCovertChannel(RfmChannelConfig(
            noise_intensity=1.0, frontend_latency_override=fe))),
    ):
        base = evaluate_patterns(lambda f=factory: f(None), n_bits)
        bigger = evaluate_patterns(lambda f=factory: f(big_frontend),
                                   n_bits)
        channels.add_row(name, "base (L1+LLC)",
                         base["error_probability"],
                         base["capacity_bps"] / 1e3)
        channels.add_row(name, "large (L1+L2+6MB LLC, BO prefetch)",
                         bigger["error_probability"],
                         bigger["capacity_bps"] / 1e3)
    channels.add_note("paper: 36.7 (-5.8%) and 47.7 (-2.1%) Kbps with the "
                      "larger hierarchy")

    # Fingerprinting with the browser filtered through the hierarchy.
    accuracies = {}
    for label, hierarchy in (("base", None), ("large", large)):
        cfg = FingerprintConfig(duration_ps=duration_ps,
                                hierarchy=hierarchy)
        fingerprinter = WebsiteFingerprinter(cfg)
        catalog = WebsiteCatalog(n_sites, seed=1)
        X, y, _ = fingerprinter.collect_dataset(catalog, traces_per_site)
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.3, seed=5)
        model = DecisionTreeClassifier(seed=3).fit(Xtr, ytr)
        accuracies[label] = accuracy_score(yte, model.predict(Xte))
    fingerprint = FigureTable(
        "Section 10.3: fingerprinting accuracy vs cache hierarchy",
        ["hierarchy", "decision-tree accuracy"])
    fingerprint.add_row("base", accuracies["base"])
    fingerprint.add_row("large + prefetch", accuracies["large"])
    fingerprint.add_note("paper: 71.8% (4.2% lower) with the larger "
                         "hierarchy -- LLC filters browser accesses and "
                         "the prefetcher adds noise")
    return {"channels": channels, "fingerprint": fingerprint,
            "accuracies": accuracies}
