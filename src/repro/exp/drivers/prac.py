"""PRAC-channel experiment drivers (Figs. 2-5, 11, 12; Section 6.3).

Every driver expresses its trial as data: single-run experiments build
a :class:`~repro.scenario.spec.ScenarioSpec` (or take the channel's
``scenario()``); sweeps send serialized channel points through the
shared trial functions in :mod:`repro.exp.drivers.common`, so a
parallel run ships dicts -- not closures -- to the workers and remains
bit-identical to the serial one.
"""

from __future__ import annotations

from repro.analysis.figures import FigureTable
from repro.core.prac_channel import PracCovertChannel
from repro.exp.drivers.common import (
    DEFAULT_INTENSITIES,
    evaluate_patterns,
    pattern_sweep,
    prac_point,
    symbols_sweep,
)
from repro.exp.registry import experiment
from repro.scenario.spec import (
    AgentSpec,
    MeasurementSpec,
    ScenarioSpec,
    StopSpec,
)
from repro.sim.config import DefenseKind, DefenseParams, RefreshPolicy, SystemConfig
from repro.sim.engine import MS, NS


# ----------------------------------------------------------------------
# Fig. 2 -- PRAC-induced latencies observed from userspace
# ----------------------------------------------------------------------
def _check_fig2(out) -> tuple[bool, str]:
    table = out["table"]
    means = dict(zip(table.column("event"),
                     table.column("mean latency (ns)")))
    return (means.get("backoff", 0) > means.get("refresh", 1e18),
            table.to_text())


def fig2_scenario(n_samples: int, nbo: int) -> ScenarioSpec:
    """The Fig. 2 measurement loop as data."""
    return ScenarioSpec(
        name="fig2-latency-observability",
        system=SystemConfig(
            defense=DefenseParams(kind=DefenseKind.PRAC, nbo=nbo)),
        agents=(AgentSpec("probe", params={
            "bank": (0, 0), "rows": (0, 8), "max_samples": n_samples}),),
        stop=StopSpec(50 * MS),
        measurements=(
            MeasurementSpec("latency-classes", params={"agent": "probe"}),
        ))


@experiment(
    "fig2", figure="Fig. 2", aliases=("fig02",), tags=("prac", "probe"),
    claim="back-offs observable from userspace",
    default_scale={"n_samples": 512, "nbo": 128},
    quick={"n_samples": 300, "nbo": 64}, check=_check_fig2)
def fig2_latency_observability(n_samples: int = 512,
                               nbo: int = 128) -> dict:
    """Reproduce Fig. 2: the latency levels a measurement loop sees."""
    result = fig2_scenario(n_samples, nbo).run()
    classes = result.data["latency-classes"]

    table = FigureTable(
        "Fig. 2: memory request latencies under PRAC (N_BO="
        f"{nbo}, {n_samples} requests)",
        ["event", "count", "mean latency (ns)", "max latency (ns)"])
    for kind in ("hit", "conflict", "refresh", "backoff"):
        entry = classes.get(kind)
        if entry:
            table.add_row(kind, entry["count"], entry["mean_ps"] / NS,
                          entry["max_ps"] / NS)
    refresh = classes.get("refresh")
    backoff = classes.get("backoff")
    if refresh and backoff:
        ratio = backoff["mean_ps"] / refresh["mean_ps"]
        table.add_note(f"back-off latency is {ratio:.2f}x the periodic-"
                       "refresh latency (paper: 1.9x)")
    first_backoff = backoff["first_index"] if backoff else None
    if first_backoff is not None:
        table.add_note(f"first back-off at request #{first_backoff} "
                       f"(expected ~{2 * nbo - 1})")
    probe = result.agent("probe")
    return {
        "table": table,
        "samples": [(s.end_time, s.delta) for s in probe.samples],
        "first_backoff_index": first_backoff,
        "ground_truth_backoffs": result.counters["backoffs"],
    }


# ----------------------------------------------------------------------
# Fig. 3 -- 40-bit "MICRO" transmission + raw bit rate
# ----------------------------------------------------------------------
def _check_fig3(out) -> tuple[bool, str]:
    return (out["result"].sent == out["result"].decoded,
            out["table"].to_text())


@experiment(
    "fig3", figure="Fig. 3", aliases=("fig03",), tags=("prac", "covert"),
    claim="PRAC covert channel decodes",
    default_scale={"text": "MICRO", "pattern_bits": 40},
    quick={"text": "MI", "pattern_bits": 8}, check=_check_fig3)
def fig3_prac_message(text: str = "MICRO", pattern_bits: int = 40) -> dict:
    """Fig. 3 message plot plus the Section 6.3 raw-bit-rate result."""
    channel = PracCovertChannel()
    result = channel.transmit_text(text)
    table = FigureTable(
        f"Fig. 3: PRAC covert channel transmitting {len(result.sent)}-bit "
        f"'{text}'",
        ["window", "bit sent", "back-offs seen", "decoded"])
    for w in result.windows:
        table.add_row(w.index, w.sent, w.backoffs, w.decoded)
    table.add_note(f"decoded correctly: {result.sent == result.decoded}")
    rates = evaluate_patterns(PracCovertChannel, pattern_bits)
    table.add_note(
        f"raw bit rate over 4 patterns: "
        f"{rates['raw_bit_rate_bps'] / 1e3:.1f} Kbps (paper: 39.0)")
    return {"table": table, "result": result, "rates": rates}


# ----------------------------------------------------------------------
# Fig. 4 -- capacity/error vs noise intensity
# ----------------------------------------------------------------------
@experiment(
    "fig4", figure="Fig. 4", aliases=("fig04",), tags=("prac", "sweep"),
    claim="PRAC covert-channel capacity degrades gracefully with noise",
    default_scale={"intensities": DEFAULT_INTENSITIES, "n_bits": 24})
def fig4_prac_noise_sweep(intensities=DEFAULT_INTENSITIES,
                          n_bits: int = 24,
                          workers: int | None = None) -> FigureTable:
    table = FigureTable(
        "Fig. 4: PRAC covert channel vs noise intensity",
        ["noise intensity (%)", "error probability", "capacity (Kbps)"])
    results = pattern_sweep(
        [prac_point(n_bits, noise_intensity=i) for i in intensities],
        workers=workers)
    for intensity, stats in zip(intensities, results):
        table.add_row(intensity, stats["error_probability"],
                      stats["capacity_bps"] / 1e3)
    table.add_note("paper: 28.8 Kbps at 1% noise; capacity stays "
                   ">20.7 Kbps until ~88% intensity")
    return table


# ----------------------------------------------------------------------
# Fig. 5 -- capacity/error vs co-running SPEC intensity
# ----------------------------------------------------------------------
@experiment(
    "fig5", figure="Fig. 5", aliases=("fig05",), tags=("prac", "sweep"),
    claim="PRAC channel survives co-running SPEC-like applications",
    default_scale={"n_bits": 24})
def fig5_prac_app_noise(n_bits: int = 24,
                        workers: int | None = None) -> FigureTable:
    table = FigureTable(
        "Fig. 5: PRAC covert channel vs SPEC-like memory intensity",
        ["memory intensity", "error probability", "capacity (Kbps)"])
    classes = ("L", "M", "H")
    results = pattern_sweep(
        [prac_point(n_bits, spec_class=c) for c in classes],
        workers=workers)
    for cls, stats in zip(classes, results):
        table.add_row(cls, stats["error_probability"],
                      stats["capacity_bps"] / 1e3)
    table.add_note("paper: 36.0 / 32.2 / 31.2 Kbps for L / M / H")
    return table


# ----------------------------------------------------------------------
# Section 6.3 -- multibit covert channels
# ----------------------------------------------------------------------
@experiment(
    "sec63", figure="Sec. 6.3", tags=("prac", "sweep"),
    claim="multibit alphabets trade noise tolerance for raw rate",
    default_scale={"n_symbols": 32, "noise_intensity": 1.0})
def sec63_multibit(n_symbols: int = 32,
                   noise_intensity: float | None = 1.0,
                   workers: int | None = None) -> FigureTable:
    table = FigureTable(
        "Section 6.3: multibit PRAC covert channels",
        ["levels", "raw bit rate (Kbps)", "error probability",
         "capacity (Kbps)"])
    levels_swept = (2, 3, 4)
    results = symbols_sweep(
        [dict(prac_point(0, levels=levels,
                         noise_intensity=noise_intensity),
              n_symbols=n_symbols, levels=levels, symbol_seed=11)
         for levels in levels_swept],
        workers=workers)
    for levels, (raw, err, cap) in zip(levels_swept, results):
        table.add_row(levels, raw / 1e3, err, cap / 1e3)
    table.add_note("paper raw rates: 39.0 / 61.7 / 76.8 Kbps; higher-order "
                   "alphabets trade noise tolerance for rate")
    return table


# ----------------------------------------------------------------------
# Fig. 11 -- RFMs per back-off sensitivity
# ----------------------------------------------------------------------
@experiment(
    "fig11", figure="Fig. 11", tags=("prac", "sweep"),
    claim="fewer RFMs per back-off overlap refresh latency and degrade "
          "the channel",
    default_scale={"intensities": (1, 25, 50, 75, 100), "n_bits": 16})
def fig11_rfms_per_backoff(intensities=(1, 25, 50, 75, 100),
                           n_bits: int = 16,
                           jitter_ps: int = 70 * NS,
                           workers: int | None = None) -> FigureTable:
    """The Section 10.1 methodology: no refresh postponing, and the
    receiver's measurements carry real-system timing jitter -- which is
    what makes a 1-RFM back-off (350 ns) overlap the single-REF latency
    (295 ns) and confuse the receiver."""
    table = FigureTable(
        "Fig. 11: PRAC channel with 1/2/4 RFMs per back-off "
        "(no refresh postponing)",
        ["RFMs per back-off", "noise intensity (%)", "error probability",
         "capacity (Kbps)"])
    grid = [(n_rfms, intensity)
            for n_rfms in (4, 2, 1) for intensity in intensities]
    results = pattern_sweep(
        [prac_point(n_bits, n_rfms=n_rfms, noise_intensity=intensity,
                    measurement_jitter_ps=jitter_ps,
                    refresh_policy=RefreshPolicy.EVERY_TREFI)
         for n_rfms, intensity in grid],
        workers=workers)
    for (n_rfms, intensity), stats in zip(grid, results):
        table.add_row(n_rfms, intensity, stats["error_probability"],
                      stats["capacity_bps"] / 1e3)
    table.add_note("shorter back-offs overlap the periodic-refresh "
                   "latency and degrade the channel (paper Section 10.1)")
    return table


# ----------------------------------------------------------------------
# Fig. 12 -- preventive-action latency sweep
# ----------------------------------------------------------------------
@experiment(
    "fig12", figure="Fig. 12", tags=("prac", "sweep"),
    claim="the channel survives preventive-action latencies down to ~10 ns",
    default_scale={"latencies_ns": (0, 5, 10, 25, 50, 96, 150, 192, 250),
                   "n_bits": 16})
def fig12_preventive_latency(latencies_ns=(0, 5, 10, 25, 50, 96, 150,
                                           192, 250),
                             n_bits: int = 16,
                             workers: int | None = None) -> FigureTable:
    table = FigureTable(
        "Fig. 12: channel vs preventive-action latency",
        ["latency (ns)", "error probability", "capacity (Kbps)"])
    results = pattern_sweep(
        [prac_point(n_bits, backoff_latency_override=latency * NS)
         for latency in latencies_ns],
        workers=workers)
    for latency_ns, stats in zip(latencies_ns, results):
        table.add_row(latency_ns, stats["error_probability"],
                      stats["capacity_bps"] / 1e3)
    table.add_note("paper: the channel survives down to ~10 ns -- far "
                   "below the 96/192 ns minimum for refreshing one "
                   "aggressor's victims (blast radius 1/2)")
    return table
