"""Ablations of design choices called out in DESIGN.md."""

from __future__ import annotations

from repro.analysis.figures import FigureTable
from repro.core.probe import EventKind
from repro.exp.drivers.common import pattern_sweep, prac_point, rfm_point
from repro.exp.registry import experiment
from repro.scenario.spec import ScenarioSpec
from repro.sim.config import (
    DefenseKind,
    DefenseParams,
    RefreshPolicy,
    SystemConfig,
)
from repro.sim.engine import NS, US


@experiment(
    "ablation-refresh", figure="Ablation",
    tags=("ablation",),
    claim="postpone-pair refresh widens the latency separation an "
          "attacker discriminates",
    default_scale={})
def ablation_refresh_postponing(n_samples: int = 512) -> FigureTable:
    """How the controller's refresh policy changes observability: the
    postpone-pair policy doubles the refresh event latency, widening
    the gap an attacker must discriminate."""
    table = FigureTable(
        "Ablation: refresh policy vs latency-level separation",
        ["policy", "refresh event (ns)", "backoff event (ns)",
         "separation (ns)"])
    for policy in (RefreshPolicy.EVERY_TREFI, RefreshPolicy.POSTPONE_PAIR):
        config = SystemConfig(
            defense=DefenseParams(kind=DefenseKind.PRAC, nbo=128),
            refresh_policy=policy)
        # An agent-less scenario spec still owns the configuration-
        # derived classifier -- latency levels are a pure function of
        # the system config, so no memory system is assembled.
        classifier = ScenarioSpec(system=config).classifier()
        refresh = classifier.level_of(EventKind.REFRESH) / NS
        backoff = classifier.level_of(EventKind.BACKOFF) / NS
        table.add_row(policy.value, refresh, backoff, backoff - refresh)
    return table


@experiment(
    "ablation-trecv", figure="Ablation", tags=("ablation", "sweep"),
    claim="the paper's T_recv = 3 sits on the robust plateau",
    default_scale={"trecv_values": (1, 2, 3, 4, 5), "n_bits": 16})
def ablation_trecv(trecv_values=(1, 2, 3, 4, 5),
                   noise_intensity: float = 60.0,
                   n_bits: int = 16,
                   workers: int | None = None) -> FigureTable:
    """The RFM receiver's count threshold T_recv trades false positives
    (too low: stray RFMs flip 0-bits) against false negatives (too
    high: real 1-windows fall short)."""
    table = FigureTable(
        f"Ablation: RFM receiver threshold T_recv at "
        f"{noise_intensity:.0f}% noise",
        ["T_recv", "error probability", "capacity (Kbps)"])
    results = pattern_sweep(
        [rfm_point(n_bits, trecv=t, noise_intensity=noise_intensity)
         for t in trecv_values],
        workers=workers)
    for trecv, stats in zip(trecv_values, results):
        table.add_row(trecv, stats["error_probability"],
                      stats["capacity_bps"] / 1e3)
    table.add_note("the paper picks T_recv = 3")
    return table


@experiment(
    "ablation-window", figure="Ablation", tags=("ablation", "sweep"),
    claim="the 25 us window balances rate against the activation ramp",
    default_scale={"windows_us": (15, 20, 25, 35, 50), "n_bits": 16})
def ablation_window_size(windows_us=(15, 20, 25, 35, 50),
                         n_bits: int = 16,
                         workers: int | None = None) -> FigureTable:
    """Window duration trades raw bit rate against reliability: below
    the time needed for ~2*N_BO activations plus the back-off latency,
    1-bits stop fitting in their window."""
    table = FigureTable(
        "Ablation: PRAC channel window duration",
        ["window (us)", "raw rate (Kbps)", "error probability",
         "capacity (Kbps)"])
    results = pattern_sweep(
        [prac_point(n_bits, window_ps=w * US) for w in windows_us],
        workers=workers)
    for window_us, stats in zip(windows_us, results):
        table.add_row(window_us, stats["raw_bit_rate_bps"] / 1e3,
                      stats["error_probability"],
                      stats["capacity_bps"] / 1e3)
    table.add_note("the paper's 25 us window balances rate vs the "
                   "~14 us ramp + 1.4 us back-off")
    return table
