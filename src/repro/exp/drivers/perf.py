"""Countermeasure drivers (Fig. 13, Sections 11.4 and 12).

Fig. 13 is the heaviest experiment in the suite (mechanisms x
RowHammer-thresholds x workload mixes, each a full multicore
simulation); both its per-mix baseline phase and the defended runs fan
out over the worker pool.  Trials rebuild their workloads from the
(mix-index, seed) pair instead of shipping app objects, so results are
bit-identical regardless of worker count.
"""

from __future__ import annotations

from repro.analysis.figures import FigureTable
from repro.analysis.speedup import (
    normalized_weighted_speedup,
    run_mix,
    run_solo,
)
from repro.core.capacity import channel_capacity_bps
from repro.exp.drivers.common import (
    pattern_sweep,
    prac_point,
    rfm_point,
)
from repro.exp.registry import experiment
from repro.exp.runner import map_trials
from repro.sim.config import (
    DefenseKind,
    DefenseParams,
    SystemConfig,
)
from repro.sim.engine import US
from repro.workloads.spec import apps_for_mix, make_workload_mixes


# ----------------------------------------------------------------------
# Section 11.4 -- countermeasure channel-capacity reduction
# ----------------------------------------------------------------------
def _sec114_point(variant: str, intensity, n_bits: int) -> dict:
    if variant == "prac":
        return prac_point(n_bits, defense_kind=DefenseKind.PRAC,
                          noise_intensity=intensity)
    if variant == "riac":
        return prac_point(n_bits, defense_kind=DefenseKind.PRAC_RIAC,
                          noise_intensity=intensity)
    if variant == "frrfm":
        return rfm_point(n_bits, defense_kind=DefenseKind.FRRFM,
                         noise_intensity=intensity)
    raise ValueError(f"unknown countermeasure variant {variant!r}")


def _check_sec114(table) -> tuple[bool, str]:
    frrfm_rows = [r for r in table.rows if r[0] == "FR-RFM"]
    return all(r[4] >= 99.0 for r in frrfm_rows), table.to_text()


@experiment(
    "sec114", figure="Sec. 11.4", tags=("countermeasure", "sweep"),
    claim="FR-RFM eliminates the channel",
    default_scale={"n_bits": 24, "noise_intensity": 30.0},
    quick={"n_bits": 8, "noise_intensity": 30.0}, check=_check_sec114)
def sec114_capacity_reduction(n_bits: int = 24,
                              noise_intensity: float = 30.0,
                              workers: int | None = None) -> FigureTable:
    """Channel capacity against PRAC vs the countermeasures.

    RIAC's capacity reduction manifests through interaction with
    ambient traffic (randomized counters make other processes trigger
    unintentional back-offs), so the comparison runs under a moderate
    noise level as well as noiseless."""
    table = FigureTable(
        "Section 11.4: LeakyHammer capacity under countermeasures",
        ["defense", "noise", "error probability", "capacity (Kbps)",
         "reduction vs insecure (%)"])

    intensities = (None, noise_intensity)
    variants = (("PRAC (insecure)", "prac"), ("PRAC-RIAC", "riac"),
                ("FR-RFM", "frrfm"))
    grid = [(key, intensity)
            for intensity in intensities for _, key in variants]
    results = pattern_sweep(
        [_sec114_point(key, intensity, n_bits) for key, intensity in grid],
        workers=workers)

    by_point = dict(zip(grid, results))
    for intensity in intensities:
        label = "none" if intensity is None else f"{intensity:.0f}%"
        base_cap = by_point[("prac", intensity)]["capacity_bps"]
        for name, key in variants:
            stats = by_point[(key, intensity)]
            reduction = (100.0 * (1.0 - stats["capacity_bps"] / base_cap)
                         if base_cap > 0 else 0.0)
            table.add_row(name, label, stats["error_probability"],
                          stats["capacity_bps"] / 1e3, reduction)
    table.add_note("paper: FR-RFM eliminates the channel (100%); "
                   "PRAC-RIAC reduces capacity by ~86% on average")
    return table


# ----------------------------------------------------------------------
# Fig. 13 -- countermeasure performance
# ----------------------------------------------------------------------
FIG13_MECHANISMS = (
    ("PRAC", DefenseKind.PRAC),
    ("PRFM", DefenseKind.PRFM),
    ("PRAC-RIAC", DefenseKind.PRAC_RIAC),
    ("FR-RFM", DefenseKind.FRRFM),
    ("PRAC-Bank", DefenseKind.PRAC_BANK),
)


def _fig13_apps(mix_index: int, n_mixes: int, n_requests: int, seed: int):
    """Deterministically rebuild one mix's app specs inside a worker."""
    cfg = SystemConfig()
    mix = make_workload_mixes(n_mixes, seed=seed)[mix_index]
    return cfg, mix, apps_for_mix(mix, cfg.org, n_requests, seed=seed)


def _fig13_baseline_trial(point):
    mix_index, n_mixes, n_requests, seed = point
    cfg, mix, apps = _fig13_apps(mix_index, n_mixes, n_requests, seed)
    alone = {app.name: run_solo(cfg, app) for app in apps}
    baseline = run_mix(cfg, apps)
    return mix.name, alone, baseline


def _fig13_defended_trial(point):
    mix_index, n_mixes, n_requests, seed, kind_value, nrh = point
    cfg, _, apps = _fig13_apps(mix_index, n_mixes, n_requests, seed)
    defended_cfg = cfg.with_defense(
        DefenseParams.for_nrh(DefenseKind(kind_value), nrh))
    return run_mix(defended_cfg, apps)


@experiment(
    "fig13", figure="Fig. 13", tags=("countermeasure", "perf", "sweep"),
    claim="countermeasure performance cost vs RowHammer threshold",
    default_scale={"nrh_values": (1024, 512, 256, 128, 64), "n_mixes": 4,
                   "n_requests": 10_000})
def fig13_performance(nrh_values=(1024, 512, 256, 128, 64),
                      n_mixes: int = 4, n_requests: int = 10_000,
                      seed: int = 0,
                      workers: int | None = None) -> dict:
    """Normalized weighted speedup of every mechanism at every N_RH."""
    import numpy as np  # deferred: keeps numpy off the CLI hot start

    table = FigureTable(
        "Fig. 13: normalized weighted speedup vs RowHammer threshold",
        ["N_RH"] + [name for name, _ in FIG13_MECHANISMS])

    baselines = map_trials(
        _fig13_baseline_trial,
        [(i, n_mixes, n_requests, seed) for i in range(n_mixes)],
        workers=workers)
    per_mix = {name: {"alone": alone, "baseline": base}
               for name, alone, base in baselines}

    points = [(i, n_mixes, n_requests, seed, kind.value, nrh)
              for nrh in nrh_values
              for _, kind in FIG13_MECHANISMS
              for i in range(n_mixes)]
    defended_runs = iter(map_trials(_fig13_defended_trial, points,
                                    workers=workers))

    for nrh in nrh_values:
        row: list = [nrh]
        for name, kind in FIG13_MECHANISMS:
            ws_values = []
            for _, alone, base in baselines:
                defended = next(defended_runs)
                ws_values.append(
                    normalized_weighted_speedup(alone, base, defended))
            row.append(float(np.mean(ws_values)))
        table.add_row(*row)
    table.add_note("paper: FR-RFM ~7% overhead at N_RH=1024, 18.2x at "
                   "N_RH=64; PRAC-RIAC 2.14x at 64; PRAC-Bank within "
                   "2.5% of PRAC everywhere")
    return {"table": table, "per_mix": per_mix}


# ----------------------------------------------------------------------
# Section 12 -- random trigger algorithms resist LeakyHammer
# ----------------------------------------------------------------------
@experiment(
    "sec12", figure="Sec. 12", tags=("countermeasure",),
    claim="stateless random triggers (PARA) deny reliable signaling",
    default_scale={"n_bits": 16, "para_probability": 0.005})
def sec12_para_resistance(n_bits: int = 16,
                          para_probability: float = 0.005) -> FigureTable:
    """PARA's stateless random trigger (Section 12): an attacker cannot
    reliably *trigger* preventive actions, so a windowed sender/receiver
    pair extracts (almost) no information.

    We transmit a checkered message with the PRAC sender/receiver
    protocol against a PARA-protected system and decode windows by
    preventive-action counts; the decode should be near chance."""
    from repro.core.prac_channel import (
        ATTACK_BANK,
        RECEIVER_ROW,
        SENDER_ROW,
    )
    from repro.core.probe import EventKind
    from repro.scenario.spec import AgentSpec, ScenarioSpec, StopSpec
    from repro.workloads.patterns import checkered_bits

    bits = checkered_bits(n_bits, 0)
    window = 25 * US
    epoch = 2 * US
    end = epoch + len(bits) * window

    config = SystemConfig(defense=DefenseParams(
        kind=DefenseKind.PARA, para_probability=para_probability))
    bg, bank = ATTACK_BANK
    spec = ScenarioSpec(
        name="sec12-para", system=config,
        agents=(
            AgentSpec("sender", params={
                "bank": (bg, bank), "rows": (SENDER_ROW,),
                "symbols": bits, "epoch": epoch, "window_ps": window,
                "gaps": {0: None, 1: 0}, "stop_on_backoff": False}),
            AgentSpec("receiver", params={
                "bank": (bg, bank), "rows": (RECEIVER_ROW,),
                "n_windows": len(bits), "epoch": epoch,
                "window_ps": window}),
        ),
        stop=StopSpec(end + 200 * US))
    built = spec.build()
    receiver = built.agent("receiver")
    built.run()
    classifier = built.classifier

    # Best-effort decode: a PARA refresh (192 ns) appears as an
    # off-level latency; count samples above the refresh midpoint.
    threshold = (classifier.level_of(EventKind.CONFLICT)
                 + config.defense.para_refresh_latency // 2)
    per_window = [0] * len(bits)
    for sample in receiver.samples:
        mid = sample.end_time - sample.delta // 2
        idx = (mid - epoch) // window
        if 0 <= idx < len(bits) and sample.delta >= threshold:
            per_window[idx] += 1
    median = sorted(per_window)[len(per_window) // 2]
    decoded = [1 if c > median else 0 for c in per_window]
    errors = sum(1 for s, d in zip(bits, decoded) if s != d)
    e = errors / len(bits)

    table = FigureTable(
        "Section 12: LeakyHammer against PARA (random trigger)",
        ["metric", "value"])
    table.add_row("PARA probability", para_probability)
    table.add_row("preventive actions during run",
                  built.system.stats.para_refreshes)
    table.add_row("decode error probability", e)
    table.add_row("capacity (Kbps)", channel_capacity_bps(40_000.0, e) / 1e3)
    table.add_note("random triggers deny the attacker reliable "
                   "triggering/observation; decode hovers near chance")
    return table
