"""Side-channel leakage drivers (Table 3, Section 9.1)."""

from __future__ import annotations

from repro.analysis.figures import FigureTable
from repro.core.counter_leak import CounterLeakAttack, CounterLeakConfig
from repro.core.leakage_model import demonstrate_leakage_matrix
from repro.exp.registry import experiment


def _check_sec91(out) -> tuple[bool, str]:
    return (out["outcome"]["accuracy_within_1"] == 1.0,
            out["table"].to_text())


@experiment(
    "sec91", figure="Sec. 9.1", tags=("prac", "side-channel"),
    claim="counter-value leak",
    default_scale={"nbo": 128},
    quick={"secrets": [20, 90]}, check=_check_sec91)
def sec91_counter_leak(secrets: list[int] | None = None,
                       nbo: int = 128) -> dict:
    if secrets is None:
        secrets = list(range(3, nbo - 4, 12))
    attack = CounterLeakAttack(CounterLeakConfig(nbo=nbo))
    outcome = attack.run(secrets)
    table = FigureTable(
        "Section 9.1: leaking PRAC activation-counter values",
        ["metric", "value"])
    table.add_row("secrets leaked", len(secrets))
    table.add_row("accuracy", outcome["accuracy"])
    table.add_row("mean abs error (counts)", outcome["mean_abs_error"])
    table.add_row("bits per value", outcome["bits_per_value"])
    table.add_row("mean time per value (us)", outcome["mean_elapsed_us"])
    table.add_row("throughput (Kbps)", outcome["throughput_kbps"])
    table.add_note("paper: 7 bits in 13.6 us on average = 501 Kbps")
    return {"table": table, "outcome": outcome}


def _check_table3(table) -> tuple[bool, str]:
    return (all(v == "yes" for v in table.column("demonstrated")),
            table.to_text())


@experiment(
    "table3", figure="Table 3", tags=("side-channel",),
    claim="leakage matrix demonstrated",
    quick={}, check=_check_table3)
def table3_leakage_model() -> FigureTable:
    table = FigureTable(
        "Table 3: information leaked, demonstrated by micro-simulation",
        ["attack", "colocation", "leaked information", "demonstrated",
         "evidence"])
    for cell in demonstrate_leakage_matrix():
        table.add_row(cell.attack, cell.granularity, cell.leaked,
                      "yes" if cell.demonstrated else "NO", cell.detail)
    return table
