"""Content-addressed on-disk result cache for experiment runs.

A cache entry is keyed by a stable SHA-256 over the experiment name,
its (canonicalized) parameters, and a fingerprint of the ``repro``
source tree — so editing any simulator/driver code automatically
invalidates stale results, while re-running an unchanged report is
near-instant.

Values are stored with :mod:`pickle` under
``<cache-dir>/<key[:2]>/<key>.pkl``.  The default directory is
``.repro-cache/`` in the current working directory, overridable with
the ``REPRO_CACHE_DIR`` environment variable or an explicit path.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pickle
import time
from pathlib import Path

from repro.obs.metrics import REGISTRY as _METRICS

_HITS = _METRICS.counter(
    "repro_cache_hits_total", "Result-cache lookups served from disk")
_MISSES = _METRICS.counter(
    "repro_cache_misses_total",
    "Result-cache lookups that missed (or hit a corrupt entry)")
_PUTS = _METRICS.counter(
    "repro_cache_puts_total", "Result-cache entries written")
_PUT_BYTES = _METRICS.counter(
    "repro_cache_put_bytes_total",
    "Pickled bytes written into the result cache")
_ORPHANS = _METRICS.counter(
    "repro_cache_tmp_orphans_swept_total",
    "Orphaned .pkl.tmp files removed by prune/clear")

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


# ----------------------------------------------------------------------
# Stable hashing
# ----------------------------------------------------------------------
def canonicalize(obj):
    """Reduce ``obj`` to JSON-encodable primitives, deterministically.

    Handles the values experiment parameters are made of: primitives,
    (nested) lists/tuples/sets, dicts, enums, dataclasses, and any
    object exposing ``to_dict()`` (e.g. :class:`~repro.sim.config.
    SystemConfig`).  Tuples and lists canonicalize identically.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return canonicalize(obj.value)
    if hasattr(obj, "to_dict"):
        return canonicalize(obj.to_dict())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return canonicalize(dataclasses.asdict(obj))
    if isinstance(obj, dict):
        return {str(k): canonicalize(v) for k, v in sorted(
            obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(canonicalize(v) for v in obj)
    if isinstance(obj, bytes):
        return obj.hex()
    # numpy arrays / scalars (duck-typed so numpy stays off the import
    # path): canonicalize as nested lists.
    if hasattr(obj, "tolist"):
        return canonicalize(obj.tolist())
    # Callables / exotic objects: fall back to their qualified name so
    # keys stay deterministic (no memory addresses).
    name = getattr(obj, "__qualname__", None)
    if name is not None:
        return f"{getattr(obj, '__module__', '?')}.{name}"
    return repr(type(obj))


def stable_key(payload) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``payload``."""
    canonical = json.dumps(canonicalize(payload), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def canonical_checksum(value) -> str:
    """Checksum of a result's canonical (JSON-safe) form.

    This is the byte-identity contract of the serve subsystem: the
    server's response ``checksum``, the test suite's server-vs-direct
    comparisons, and the CI smoke jobs all hash
    ``json.dumps(canonicalize(value), sort_keys=True)`` -- the exact
    encoding ``repro run --out`` persists under ``"data"`` -- so a
    cached HTTP answer can be checked byte-for-byte against a direct
    ``repro run`` of the same spec.
    """
    blob = json.dumps(canonicalize(value), sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


_code_fingerprint: str | None = None


def code_fingerprint() -> str:
    """Hash of every ``*.py`` file in the installed ``repro`` package.

    Computed once per process; cache keys embed it so results are
    invalidated whenever the simulator or a driver changes.
    """
    global _code_fingerprint
    if _code_fingerprint is None:
        import repro

        root = Path(repro.__file__).parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _code_fingerprint = digest.hexdigest()
    return _code_fingerprint


# ----------------------------------------------------------------------
# The cache
# ----------------------------------------------------------------------
class ResultCache:
    """Pickle-backed content-addressed store of experiment results."""

    def __init__(self, directory: str | os.PathLike | None = None) -> None:
        if directory is None:
            directory = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        self.directory = Path(directory)
        #: Process-local lookup counters (this instance's lifetime);
        #: surfaced by :meth:`stats` so a long-lived holder (e.g. the
        #: serve subsystem) reports live hit rates.
        self.hit_count = 0
        self.miss_count = 0
        self.put_count = 0

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> tuple[bool, object]:
        """Return ``(hit, value)``; a corrupt entry counts as a miss."""
        path = self._path(key)
        if not path.is_file():
            self.miss_count += 1
            _MISSES.inc()
            return False, None
        try:
            value = pickle.loads(path.read_bytes())
        except Exception:  # corrupt/truncated entry: treat as miss
            try:
                path.unlink()
            except OSError:
                pass
            self.miss_count += 1
            _MISSES.inc()
            return False, None
        self.hit_count += 1
        _HITS.inc()
        return True, value

    def put(self, key: str, value: object) -> Path:
        """Store ``value`` under ``key`` (atomic rename within the dir)."""
        self.put_count += 1
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        try:
            tmp.write_bytes(payload)
            tmp.replace(path)
        except BaseException:
            # A failed write must not leave a half-written .tmp behind
            # (a hard process kill still can: prune()/clear() sweep
            # those orphans, and stats() reports them).
            try:
                tmp.unlink()
            except OSError:
                pass
            raise
        _PUTS.inc()
        _PUT_BYTES.inc(len(payload))
        return path

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.pkl"))

    def entries(self):
        """Yield ``(path, stat_result)`` for every live entry (entries
        racing with a concurrent prune are skipped, not errors)."""
        if not self.directory.is_dir():
            return
        for path in sorted(self.directory.glob("*/*.pkl")):
            try:
                yield path, path.stat()
            except OSError:
                continue

    def _tmp_files(self):
        """Yield ``(path, stat_result)`` for orphaned ``*.pkl.tmp``
        files — the debris of a :meth:`put` that died between write and
        rename.  They are invisible to :meth:`entries` (the live-entry
        glob), so the maintenance paths sweep them explicitly."""
        if not self.directory.is_dir():
            return
        for path in sorted(self.directory.glob("*/*.pkl.tmp")):
            try:
                yield path, path.stat()
            except OSError:
                continue

    def stats(self, *, now: float | None = None) -> dict:
        """Aggregate cache statistics (counts, bytes, entry ages)."""
        if now is None:
            now = time.time()
        count = 0
        total_bytes = 0
        oldest: float | None = None
        newest: float | None = None
        for _, stat in self.entries():
            count += 1
            total_bytes += stat.st_size
            oldest = stat.st_mtime if oldest is None else min(
                oldest, stat.st_mtime)
            newest = stat.st_mtime if newest is None else max(
                newest, stat.st_mtime)
        tmp_files = 0
        tmp_bytes = 0
        for _, stat in self._tmp_files():
            tmp_files += 1
            tmp_bytes += stat.st_size
        return {
            "directory": str(self.directory),
            "entries": count,
            "total_bytes": total_bytes,
            "oldest_age_s": None if oldest is None else max(0.0,
                                                            now - oldest),
            "newest_age_s": None if newest is None else max(0.0,
                                                            now - newest),
            "tmp_files": tmp_files,
            "tmp_bytes": tmp_bytes,
            "hit_count": self.hit_count,
            "miss_count": self.miss_count,
            "put_count": self.put_count,
        }

    def prune(self, older_than_s: float, *,
              now: float | None = None) -> tuple[int, int]:
        """Delete entries last written more than ``older_than_s`` seconds
        ago; returns ``(entries_removed, bytes_freed)``.  Orphaned
        ``*.pkl.tmp`` files past the same age are swept too (and
        counted), and empty shard subdirectories are removed
        afterwards."""
        if now is None:
            now = time.time()
        removed = 0
        freed = 0
        orphans = 0
        candidates = list(self.entries()) + list(self._tmp_files())
        for path, stat in candidates:
            if now - stat.st_mtime <= older_than_s:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
            freed += stat.st_size
            if path.name.endswith(".pkl.tmp"):
                orphans += 1
        if orphans:
            _ORPHANS.inc(orphans)
        self._remove_empty_shards()
        return removed, freed

    def clear(self) -> int:
        """Delete every entry (and every orphaned ``*.pkl.tmp``);
        returns the number removed.  An entry that vanishes
        mid-iteration (a concurrent prune/clear) is skipped, not a
        crash — and not counted as removed by *this* call."""
        removed = 0
        orphans = 0
        if self.directory.is_dir():
            doomed = list(self.directory.glob("*/*.pkl"))
            doomed.extend(self.directory.glob("*/*.pkl.tmp"))
            for path in doomed:
                try:
                    path.unlink()
                except OSError:
                    continue
                removed += 1
                if path.name.endswith(".pkl.tmp"):
                    orphans += 1
        if orphans:
            _ORPHANS.inc(orphans)
        self._remove_empty_shards()
        return removed

    def _remove_empty_shards(self) -> None:
        if not self.directory.is_dir():
            return
        for sub in self.directory.iterdir():
            if sub.is_dir():
                try:
                    sub.rmdir()  # only succeeds when empty
                except OSError:
                    pass
