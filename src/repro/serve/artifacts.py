"""On-demand artifact rendering from cached results.

One request (or one ``repro artifacts NAME`` invocation) turns a
cached experiment result into the paper-facing artifacts -- the
``make_results.py`` shape of replication packages, except rendered
from the content-addressed result cache instead of a CSV dump:

``json``
    The full provenance document: experiment, resolved params, cache
    key, canonical checksum, every figure table (columns + rows), and
    the canonical raw data -- byte-comparable against ``repro run
    --out`` output.
``md``
    A markdown report: provenance header plus every
    :class:`~repro.analysis.figures.FigureTable` as a GFM table.
``png``
    A horizontal bar chart of the first figure table's numeric
    column, encoded by a tiny pure-stdlib PNG writer (no plotting
    libraries exist offline); title/provenance ride in ``tEXt``
    metadata chunks.

Rendering is pure (result -> bytes): the HTTP layer serves artifacts
only for already-cached results, while the CLI computes through
:func:`repro.exp.runner.run_experiment` first (cache-aware), so both
paths render identical bytes for identical cached results.
"""

from __future__ import annotations

import json
import struct
import zlib

from repro.analysis.figures import FigureTable, iter_tables
from repro.exp.cache import canonical_checksum, canonicalize

#: Supported artifact formats and their media types.
CONTENT_TYPES = {
    "json": "application/json",
    "md": "text/markdown; charset=utf-8",
    "png": "image/png",
}


class ArtifactError(ValueError):
    """The requested artifact cannot be rendered from this result."""


# ----------------------------------------------------------------------
# json / markdown
# ----------------------------------------------------------------------
def artifact_doc(name: str, params: dict, key: str, value) -> dict:
    """The machine-readable artifact: provenance + tables + raw data."""
    return {
        "experiment": name,
        "params": canonicalize(params),
        "key": key,
        "checksum": canonical_checksum(value),
        "tables": [
            {"title": t.title, "columns": list(t.columns),
             "rows": canonicalize(t.rows), "notes": list(t.notes)}
            for t in iter_tables(value)
        ],
        "data": canonicalize(value),
    }


def render_markdown(name: str, params: dict, key: str, value) -> str:
    """The human-readable artifact: provenance header + GFM tables."""
    tables = list(iter_tables(value))
    lines = [f"# `{name}` — cached result artifact", "",
             f"- cache key: `{key}`",
             f"- checksum: `{canonical_checksum(value)}`",
             f"- params: `{json.dumps(canonicalize(params), sort_keys=True)}`",
             ""]
    for table in tables:
        lines.append(table.to_markdown())
        lines.append("")
    if not tables:
        lines += ["```json",
                  json.dumps(canonicalize(value), indent=1, sort_keys=True),
                  "```", ""]
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Pure-stdlib PNG encoding
# ----------------------------------------------------------------------
def _chunk(tag: bytes, payload: bytes) -> bytes:
    return (struct.pack(">I", len(payload)) + tag + payload
            + struct.pack(">I", zlib.crc32(tag + payload) & 0xFFFFFFFF))


def encode_png(width: int, height: int, rows: list[bytes],
               texts: dict[str, str] | None = None) -> bytes:
    """Encode RGB scanlines as a PNG (filter 0, zlib-compressed)."""
    if len(rows) != height or any(len(r) != width * 3 for r in rows):
        raise ArtifactError("scanline geometry does not match the header")
    raw = b"".join(b"\x00" + row for row in rows)
    out = [b"\x89PNG\r\n\x1a\n",
           _chunk(b"IHDR", struct.pack(">IIBBBBB", width, height,
                                       8, 2, 0, 0, 0))]
    for keyword, text in (texts or {}).items():
        out.append(_chunk(b"tEXt", keyword.encode("latin-1") + b"\x00"
                          + text.encode("latin-1", "replace")))
    out.append(_chunk(b"IDAT", zlib.compress(raw, 9)))
    out.append(_chunk(b"IEND", b""))
    return b"".join(out)


_BG = (255, 255, 255)
_AXIS = (70, 70, 70)
_BARS = ((58, 110, 189), (122, 160, 220))  # alternating series blues


def _numeric_column(table: FigureTable) -> tuple[str, list[float]]:
    """The right-most all-numeric column (charts plot the metric, and
    metrics conventionally sit right of their labels)."""
    for idx in range(len(table.columns) - 1, -1, -1):
        values = [row[idx] for row in table.rows]
        if values and all(isinstance(v, (int, float))
                          and not isinstance(v, bool) for v in values):
            return table.columns[idx], [float(v) for v in values]
    raise ArtifactError(
        f"table {table.title!r} has no numeric column to chart")


def render_png(name: str, value) -> bytes:
    """Bar-chart the first figure table's numeric column."""
    tables = list(iter_tables(value))
    if not tables:
        raise ArtifactError(
            f"result of {name!r} contains no figure table to chart")
    table = tables[0]
    column, values = _numeric_column(table)

    bar_h, gap, margin, width = 12, 4, 10, 480
    height = margin * 2 + len(values) * (bar_h + gap) - gap
    peak = max((v for v in values if v > 0), default=1.0)
    span = width - 2 * margin - 1

    rows: list[bytes] = []
    for y in range(height):
        line = bytearray()
        slot, offset = divmod(y - margin, bar_h + gap)
        in_bar = (0 <= y - margin
                  and slot < len(values) and offset < bar_h)
        bar_px = 0
        if in_bar:
            frac = max(0.0, values[slot]) / peak
            bar_px = int(round(frac * span))
        color = _BARS[slot % 2] if in_bar else _BG
        for x in range(width):
            if x == margin - 1 and margin <= y < height - margin + 1:
                line.extend(_AXIS)  # the zero axis
            elif in_bar and margin <= x < margin + bar_px:
                line.extend(color)
            else:
                line.extend(_BG)
        rows.append(bytes(line))
    return encode_png(width, height, rows, texts={
        "Title": f"{name}: {table.title}",
        "Description": f"bars = column {column!r}, top to bottom "
                       f"row order; peak = {peak:g}",
        "Software": "repro serve artifact layer (stdlib PNG encoder)",
    })


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------
def render_artifact(name: str, params: dict, key: str, value,
                    fmt: str) -> tuple[str, bytes]:
    """Render one artifact; returns ``(content_type, payload)``."""
    if fmt == "json":
        payload = json.dumps(artifact_doc(name, params, key, value),
                             indent=1, sort_keys=True).encode() + b"\n"
    elif fmt == "md":
        payload = render_markdown(name, params, key, value).encode()
    elif fmt == "png":
        payload = render_png(name, value)
    else:
        raise ArtifactError(
            f"unknown artifact format {fmt!r}; formats: "
            f"{', '.join(sorted(CONTENT_TYPES))}")
    return CONTENT_TYPES[fmt], payload
