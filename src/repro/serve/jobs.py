"""Job queue of the serve subsystem: cache misses become jobs.

A *job* is one cache-missing experiment or scenario submission.  Jobs
run **one at a time** on a dedicated runner thread -- each job then
fans its trials out over the configured :mod:`repro.dist` backend
(``--workers`` wide), so the server's concurrency story is the
backend's, and the shards coordinator (which is not reentrant) is
never entered from two jobs at once.

Identical in-flight submissions deduplicate on the result-cache key:
POSTing the same spec twice while the first run is queued or running
returns the *same* job id instead of computing the result twice.  Once
a job lands, its result is in the result cache, so later submissions
take the instant cache-hit path and never reach this module.

Per-trial progress reuses the coordinator's existing callback channel
(:func:`repro.exp.runner.map_trials` invokes ``progress(done, total,
cache_hits)`` as trials land): the runner thread installs a callback
via the thread-local :func:`repro.dist.execution` context, records
each tick as an event, and fans events out to any number of
subscribed async streams (``GET /v1/jobs/{id}/events``).
"""

from __future__ import annotations

import asyncio
import contextlib
import gc
import queue
import threading
import time
import uuid

from repro.dist import execution
from repro.obs.metrics import REGISTRY as _METRICS

_SSE_SUBSCRIBERS = _METRICS.gauge(
    "repro_serve_sse_subscribers",
    "Live job event streams (SSE/NDJSON) currently subscribed")
_JOBS_SUBMITTED = _METRICS.counter(
    "repro_serve_jobs_submitted_total",
    "Jobs accepted by the queue (deduplicated submissions not counted)")
_JOBS_FINISHED = _METRICS.counter(
    "repro_serve_jobs_finished_total", "Jobs that reached done/failed")

#: Completed jobs kept around for /v1/jobs introspection.
HISTORY_LIMIT = 256

_SHUTDOWN = object()


@contextlib.contextmanager
def _gc_paused():
    """Jobs simulate with the cyclic GC paused, exactly like the tuned
    CLI (see ``repro.__main__``); one collection at the end picks up
    the per-trial cycles."""
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
            gc.collect()


class Job:
    """One queued/running/finished unit of server-side work."""

    def __init__(self, kind: str, name: str, key: str, work) -> None:
        self.id = uuid.uuid4().hex[:12]
        self.kind = kind
        self.name = name
        self.key = key
        self.work = work  # work(progress) -> ExperimentRun
        self.state = "queued"
        # Wall timestamps are for display only; elapsed time is
        # measured on the monotonic clock so an NTP step or DST jump
        # mid-job cannot corrupt (or negate) reported durations.
        self.created = time.time()
        self.started: float | None = None
        self.finished: float | None = None
        self.duration_s: float | None = None
        self._mono_created = time.monotonic()
        self._mono_started: float | None = None
        self.progress: dict = {}
        self.error: str | None = None
        self.checksum: str | None = None
        self.trials = 0
        self.elapsed_s: float | None = None
        self._lock = threading.Lock()
        self._events: list[dict] = []
        #: (asyncio loop, asyncio.Queue) per subscribed event stream.
        self._subscribers: list[tuple] = []
        self._emit("queued", {})

    # ------------------------------------------------------------------
    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed")

    def to_doc(self) -> dict:
        with self._lock:
            return {
                "job": self.id,
                "kind": self.kind,
                "name": self.name,
                "key": self.key,
                "state": self.state,
                "created": self.created,
                "started": self.started,
                "finished": self.finished,
                "duration_s": self.duration_s,
                "progress": dict(self.progress),
                "trials": self.trials,
                "elapsed_s": self.elapsed_s,
                "error": self.error,
                "checksum": self.checksum,
            }

    # ------------------------------------------------------------------
    # Event fan-out
    # ------------------------------------------------------------------
    def _emit(self, event: str, payload: dict) -> None:
        doc = {"event": event, "job": getattr(self, "id", None),
               "t": time.time(), **payload}
        with self._lock:
            self._events.append(doc)
            subscribers = list(self._subscribers)
        for loop, q in subscribers:
            try:
                loop.call_soon_threadsafe(q.put_nowait, doc)
            except RuntimeError:  # pragma: no cover - loop closed
                pass

    def subscribe(self) -> "asyncio.Queue":
        """Register an event stream: the returned queue replays the
        full history, then receives live events (call from the loop)."""
        loop = asyncio.get_running_loop()
        q: asyncio.Queue = asyncio.Queue()
        with self._lock:
            for doc in self._events:
                q.put_nowait(doc)
            if not self.terminal:
                self._subscribers.append((loop, q))
                _SSE_SUBSCRIBERS.inc()
        return q

    def unsubscribe(self, q) -> None:
        with self._lock:
            before = len(self._subscribers)
            self._subscribers = [(lp, sq) for lp, sq in self._subscribers
                                 if sq is not q]
            removed = before - len(self._subscribers)
        if removed:
            _SSE_SUBSCRIBERS.dec(removed)

    # ------------------------------------------------------------------
    # State transitions (runner thread)
    # ------------------------------------------------------------------
    def _set_running(self) -> None:
        with self._lock:
            self.state = "running"
            self.started = time.time()
            self._mono_started = time.monotonic()
        self._emit("running", {})

    def _elapsed(self) -> float:
        """Monotonic seconds since the job started running (queue wait
        included when it never started); caller holds the lock."""
        base = (self._mono_started if self._mono_started is not None
                else self._mono_created)
        return max(0.0, time.monotonic() - base)

    def _tick(self, done: int, total: int, cache_hits: int) -> None:
        payload = {"done": done, "total": total, "cache_hits": cache_hits}
        with self._lock:
            self.progress = payload
        self._emit("progress", payload)

    def _finish(self, run, checksum: str) -> None:
        with self._lock:
            self.state = "done"
            self.finished = time.time()
            self.duration_s = self._elapsed()
            self.checksum = checksum
            self.trials = run.trials
            self.elapsed_s = run.elapsed_s
        _JOBS_FINISHED.inc(state="done")
        self._emit("done", {"key": self.key, "checksum": checksum,
                            "trials": run.trials,
                            "elapsed_s": run.elapsed_s,
                            "duration_s": self.duration_s})

    def _fail(self, message: str) -> None:
        with self._lock:
            self.state = "failed"
            self.finished = time.time()
            self.duration_s = self._elapsed()
            self.error = message
        _JOBS_FINISHED.inc(state="failed")
        self._emit("failed", {"error": message,
                              "duration_s": self.duration_s})


class JobManager:
    """Submit/dedup/execute jobs on one background runner thread."""

    def __init__(self, *, cache, backend: str | None = None) -> None:
        self.cache = cache
        self.backend = backend
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._inflight: dict[str, Job] = {}  # key -> queued/running job
        self._queue: "queue.Queue" = queue.Queue()
        self._stopping = False
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    def submit(self, kind: str, name: str, key: str,
               work) -> tuple[Job, bool]:
        """Queue ``work`` under ``key``; dedups in-flight submissions.

        Returns ``(job, created)`` -- ``created`` is False when an
        identical submission was already queued or running, in which
        case the existing job is returned.
        """
        with self._lock:
            if self._stopping:
                raise RuntimeError("server is shutting down")
            existing = self._inflight.get(key)
            if existing is not None and not existing.terminal:
                return existing, False
            job = Job(kind, name, key, work)
            self._jobs[job.id] = job
            self._inflight[key] = job
            self._prune_history()
            self._ensure_thread()
        _JOBS_SUBMITTED.inc()
        self._queue.put(job)
        return job, True

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.created)

    def counts(self) -> dict:
        counts = {"queued": 0, "running": 0, "done": 0, "failed": 0}
        for job in self.jobs():
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    # ------------------------------------------------------------------
    def _prune_history(self) -> None:
        """Drop the oldest *terminal* jobs beyond the history limit
        (in-flight jobs are never dropped); caller holds the lock."""
        if len(self._jobs) <= HISTORY_LIMIT:
            return
        terminal = sorted((j for j in self._jobs.values() if j.terminal),
                          key=lambda j: j.created)
        for job in terminal[:len(self._jobs) - HISTORY_LIMIT]:
            self._jobs.pop(job.id, None)

    def _ensure_thread(self) -> None:
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._run_loop, daemon=True, name="repro-serve-jobs")
            self._thread.start()

    def _run_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is _SHUTDOWN:
                break
            if self._stopping:
                job._fail("server shut down before the job ran")
                self._clear_inflight(job)
                continue
            self._run_one(job)

    def _clear_inflight(self, job: Job) -> None:
        with self._lock:
            if self._inflight.get(job.key) is job:
                del self._inflight[job.key]

    def _run_one(self, job: Job) -> None:
        from repro.exp.cache import canonical_checksum

        job._set_running()
        try:
            # The execution context is thread-local, so the ambient
            # backend/cache/progress here never leak into (or inherit
            # from) whatever the main thread is doing.
            with execution(backend=self.backend, trial_cache=self.cache,
                           progress=job._tick), _gc_paused():
                run = job.work(job._tick)
            job._finish(run, canonical_checksum(run.value))
        except BaseException as exc:  # noqa: BLE001 - job must not kill us
            job._fail(f"{type(exc).__name__}: {exc}")
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
        finally:
            self._clear_inflight(job)

    # ------------------------------------------------------------------
    def shutdown(self, drain_s: float = 10.0) -> bool:
        """Stop accepting work and wait up to ``drain_s`` for the
        running job to land.  Returns True when fully drained; a job
        still in flight after the grace keeps streaming into the
        result cache until the process exits (the runner thread is a
        daemon), so a resubmission resumes instead of restarting."""
        with self._lock:
            self._stopping = True
            thread = self._thread
        self._queue.put(_SHUTDOWN)
        if thread is not None and thread.is_alive():
            thread.join(timeout=drain_s)
            return not thread.is_alive()
        return True
