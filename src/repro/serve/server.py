"""asyncio entrypoint of ``repro serve`` plus an in-process helper.

:func:`run_server` owns the event loop: it binds, prints the
``listening on http://host:port`` line (parsed by tests and the CI
smoke job, so ``--port 0`` is usable), installs SIGINT/SIGTERM
handlers, and on a signal drains in-flight jobs and shuts the worker
fleet down before exiting ``128 + signum`` -- the conventional
"terminated by signal N" code, and proof the teardown path ran rather
than the process being killed.

:class:`ServerThread` runs the same server on a background thread for
tests and the benchmark harness: ``with ServerThread(cache=...) as
srv: http.client.HTTPConnection(*srv.address)``.
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import signal
import sys
import threading

from repro.dist.base import shutdown_backends
from repro.exp.cache import ResultCache
from repro.serve.app import ReproApp
from repro.serve.http import handle_connection


async def _serve(app: ReproApp, host: str, port: int, stop: asyncio.Event,
                 *, ready=None) -> None:
    server = await asyncio.start_server(
        functools.partial(handle_connection, app.handle), host, port)
    bound = server.sockets[0].getsockname()[:2]
    print(f"repro serve: listening on http://{bound[0]}:{bound[1]}",
          file=sys.stderr, flush=True)
    if ready is not None:
        ready(bound)
    async with server:
        await stop.wait()
        server.close()
        await server.wait_closed()
    # Lingering keep-alive connections (and event streams) die with
    # the server; handle_connection treats cancellation as the client
    # going away and closes its writer cleanly.
    current = asyncio.current_task()
    pending = [t for t in asyncio.all_tasks() if t is not current]
    for task in pending:
        task.cancel()
    await asyncio.gather(*pending, return_exceptions=True)


def run_server(host: str = "127.0.0.1", port: int = 8123, *,
               backend: str | None = None, workers: int | None = None,
               cache_dir: str | None = None,
               drain_s: float = 10.0) -> int:
    """Serve until SIGINT/SIGTERM; returns the process exit code.

    The signal path is the graceful one: stop accepting connections,
    drain the in-flight job for up to ``drain_s`` seconds
    (:meth:`repro.serve.jobs.JobManager.shutdown`), tear the worker
    fleet down (:func:`repro.dist.base.shutdown_backends` -- no
    orphaned ``repro worker`` daemons), then exit ``128 + signum``.
    """
    app = ReproApp(cache=ResultCache(cache_dir), backend=backend,
                   workers=workers)
    loop = asyncio.new_event_loop()
    stop = asyncio.Event()
    caught: list[int] = []

    def on_signal(signum: int) -> None:
        caught.append(signum)
        stop.set()

    for signum in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(signum, on_signal, signum)
    try:
        loop.run_until_complete(_serve(app, host, port, stop))
    except KeyboardInterrupt:  # pragma: no cover - handler races the loop
        caught.append(signal.SIGINT)
    finally:
        drained = app.jobs.shutdown(drain_s)
        if not drained:
            print("repro serve: job still in flight after drain timeout",
                  file=sys.stderr, flush=True)
        shutdown_backends()
        with contextlib.suppress(Exception):
            loop.run_until_complete(loop.shutdown_asyncgens())
        loop.close()
    if caught:
        signum = caught[0]
        name = signal.Signals(signum).name
        print(f"repro serve: shut down on {name}", file=sys.stderr,
              flush=True)
        return 128 + signum
    return 0


class ServerThread:
    """Run the server on a background thread (tests / benchmarks).

    Binds an ephemeral port by default; :attr:`address` is the bound
    ``(host, port)`` once the context manager has entered.  Exiting
    stops the loop and drains the job runner, but deliberately does
    *not* call :func:`shutdown_backends` -- the embedding process owns
    its fleet.
    """

    def __init__(self, *, cache: ResultCache, backend: str | None = None,
                 workers: int | None = None, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.app = ReproApp(cache=cache, backend=backend, workers=workers)
        self._host = host
        self._port = port
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self.address: tuple[str, int] | None = None

    def _main(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        self._stop = asyncio.Event()

        def ready(bound) -> None:
            self.address = bound
            self._ready.set()

        try:
            self._loop.run_until_complete(
                _serve(self.app, self._host, self._port, self._stop,
                       ready=ready))
        finally:
            self._ready.set()  # unblock __enter__ on bind failure
            with contextlib.suppress(Exception):
                self._loop.run_until_complete(
                    self._loop.shutdown_asyncgens())
            self._loop.close()

    def __enter__(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._main, daemon=True,
                                        name="repro-serve")
        self._thread.start()
        self._ready.wait(timeout=10.0)
        if self.address is None:
            raise RuntimeError("server failed to bind")
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self.app.jobs.shutdown(drain_s=10.0)
