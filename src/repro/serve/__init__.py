"""Results-as-a-service: an async HTTP front-end over the result cache.

The content-addressed result cache (:mod:`repro.exp.cache`) already
makes every experiment and scenario result addressable by a stable
key; this package puts a front door on it.  ``python -m repro serve``
runs a stdlib-only asyncio HTTP/1.1 server that

* answers **instantly from the cache** when the requested spec has
  already been computed (the cache is the CDN),
* **queues misses as jobs** onto the pluggable execution backends
  (:mod:`repro.dist` -- serial / pool / the shards worker fleet is the
  origin), deduplicating identical in-flight submissions,
* **streams per-trial progress** over NDJSON or SSE by reusing the
  sweep coordinator's existing progress callbacks, and
* renders **artifacts** -- paper figures, stats tables, markdown, PNG
  bar charts -- from cached results on demand
  (:mod:`repro.serve.artifacts`).

Layering::

    server.py     asyncio loop, signal-driven graceful shutdown
    http.py       minimal HTTP/1.1 parse/respond/stream primitives
    app.py        routing + endpoint handlers (the REST surface)
    jobs.py       job queue, in-flight dedup, progress event fan-out
    artifacts.py  cached-result -> json/markdown/png rendering

Everything is standard library only; the server shares one
:class:`~repro.exp.cache.ResultCache` instance with its job runner so
``/v1/cache/stats`` reports live hit counters.
"""

from repro.serve.app import ReproApp
from repro.serve.jobs import JobManager
from repro.serve.server import ServerThread, run_server

__all__ = ["JobManager", "ReproApp", "ServerThread", "run_server"]
