"""Route table of ``repro serve``: results as a service.

Every endpoint resolves through the *same* code paths as the CLI --
:func:`repro.exp.runner.resolve_run` for keys and validation,
:class:`repro.exp.cache.ResultCache` for results,
:mod:`repro.serve.artifacts` for rendering -- so a server response is
byte-identical to the equivalent ``repro run`` / ``repro artifacts``
invocation.

=======  ==================================  ==============================
method   path                                behaviour
=======  ==================================  ==============================
GET      /healthz                            liveness + job counts
GET      /metrics                            Prometheus text (?format=json)
GET      /v1/cache/stats                     result-cache statistics
GET      /v1/experiments                     registry catalog
POST     /v1/experiments/{name}              run by name (hit=200, miss=202)
POST     /v1/scenarios                       run a ScenarioSpec JSON body
GET      /v1/jobs                            all known jobs
GET      /v1/jobs/{id}                       one job document
GET      /v1/jobs/{id}/events                NDJSON/SSE progress stream
GET      /v1/results/{key}                   cached result by cache key
GET      /v1/artifacts/{name}.{json|md|png}  render a cached result
=======  ==================================  ==============================

Cache hits are answered inline on the event loop and never touch an
execution backend; misses become :class:`~repro.serve.jobs.JobManager`
jobs (202 + a job id), deduplicated on the result-cache key.
"""

from __future__ import annotations

import asyncio
import json
import time

from repro.exp.cache import canonical_checksum, canonicalize
from repro.exp.registry import RegistryError, all_experiments
from repro.exp.runner import (
    ExperimentParamError,
    resolve_run,
    run_experiment,
    run_scenario,
    scenario_key,
)
from repro.scenario.spec import ScenarioError, ScenarioSpec
from repro.serve.artifacts import ArtifactError, render_artifact
from repro.serve.http import (
    HttpError,
    Request,
    Response,
    StreamResponse,
    json_response,
)
from repro.obs.metrics import REGISTRY as _METRICS
from repro.serve.jobs import Job, JobManager

#: Poll period of the event stream's liveness check (seconds).  Streams
#: re-check the job between queue waits so a subscriber that raced a
#: terminal transition still unblocks.
_EVENT_POLL_S = 15.0

_REQUESTS = _METRICS.counter(
    "repro_serve_requests_total", "HTTP requests handled, by route")
_REQUEST_SECONDS = _METRICS.histogram(
    "repro_serve_request_seconds",
    "Request handling latency by route (streams measure setup only)")
_JOB_QUEUE_DEPTH = _METRICS.gauge(
    "repro_serve_job_queue_depth", "Jobs waiting for the runner thread")
_JOBS_BY_STATE = _METRICS.gauge(
    "repro_serve_jobs", "Known jobs by state (bounded history)")

#: Route prefixes -> the low-cardinality label recorded per request
#: (ids, names, and keys must not explode the label space).
_ROUTE_LABELS = (
    ("/healthz", "/healthz"),
    ("/metrics", "/metrics"),
    ("/v1/cache/stats", "/v1/cache/stats"),
    ("/v1/experiments", "/v1/experiments"),
    ("/v1/scenarios", "/v1/scenarios"),
    ("/v1/jobs", "/v1/jobs"),
    ("/v1/results", "/v1/results"),
    ("/v1/artifacts", "/v1/artifacts"),
)


def _route_label(path: str) -> str:
    for prefix, label in _ROUTE_LABELS:
        if path == prefix or path.startswith(prefix + "/"):
            if label == "/v1/jobs" and path.endswith("/events"):
                return "/v1/jobs/events"
            return label
    return "<unrouted>"


class ReproApp:
    """The request handler: routes + the cache-or-job decision."""

    def __init__(self, *, cache, backend: str | None = None,
                 workers: int | None = None) -> None:
        self.cache = cache
        self.workers = workers
        self.jobs = JobManager(cache=cache, backend=backend)
        # Replace-by-name: a re-created app (tests) samples *its* job
        # manager, not a stale predecessor's.
        _METRICS.add_collector("serve-jobs", self._collect_jobs)

    def _collect_jobs(self, registry) -> None:
        _JOB_QUEUE_DEPTH.set(self.jobs._queue.qsize())
        for state, count in self.jobs.counts().items():
            _JOBS_BY_STATE.set(count, state=state)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def handle(self, request: Request) -> Response | StreamResponse:
        """Timing wrapper around the route table: every request lands
        in the per-route latency histogram, including error responses
        (an HttpError still counts — slow failures matter)."""
        label = _route_label(request.path.rstrip("/") or "/")
        start = time.perf_counter()
        try:
            return await self._route(request)
        finally:
            _REQUESTS.inc(route=label)
            _REQUEST_SECONDS.observe(time.perf_counter() - start,
                                     route=label)

    async def _route(self, request: Request) -> Response | StreamResponse:
        method, path = request.method, request.path.rstrip("/") or "/"
        if method == "HEAD":
            method = "GET"  # the connection loop suppresses the body

        if path == "/healthz" and method == "GET":
            return self._healthz()
        if path == "/metrics" and method == "GET":
            return self._metrics(request)
        if path == "/v1/cache/stats" and method == "GET":
            return json_response(self.cache.stats())
        if path == "/v1/experiments" and method == "GET":
            return self._catalog()
        if path.startswith("/v1/experiments/") and method == "POST":
            return self._submit_experiment(
                path[len("/v1/experiments/"):], request)
        if path == "/v1/scenarios" and method == "POST":
            return self._submit_scenario(request)
        if path == "/v1/jobs" and method == "GET":
            return json_response(
                {"jobs": [job.to_doc() for job in self.jobs.jobs()]})
        if path.startswith("/v1/jobs/") and method == "GET":
            rest = path[len("/v1/jobs/"):]
            if rest.endswith("/events"):
                return self._job_events(rest[:-len("/events")], request)
            return json_response(self._job(rest).to_doc())
        if path.startswith("/v1/results/") and method == "GET":
            return self._result(path[len("/v1/results/"):])
        if path.startswith("/v1/artifacts/") and method == "GET":
            return self._artifact(path[len("/v1/artifacts/"):], request)

        known = any(path == p or path.startswith(p + "/") for p in (
            "/healthz", "/metrics", "/v1/cache/stats", "/v1/experiments",
            "/v1/scenarios", "/v1/jobs", "/v1/results", "/v1/artifacts"))
        if known:
            raise HttpError(405, f"{request.method} is not supported "
                                 f"on {path}")
        raise HttpError(404, f"no route for {path}; see /v1/experiments")

    # ------------------------------------------------------------------
    # Simple documents
    # ------------------------------------------------------------------
    def _healthz(self) -> Response:
        return json_response({"status": "ok",
                              "jobs": self.jobs.counts(),
                              "cache_entries": self.cache.stats()["entries"]})

    def _metrics(self, request: Request) -> Response:
        """The whole registry — Prometheus text by default,
        ``?format=json`` for the ``repro stats`` snapshot document."""
        if request.query.get("format") == "json":
            return json_response({"metrics": _METRICS.snapshot()})
        return Response(
            body=_METRICS.to_prometheus().encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
            headers=(("Cache-Control", "no-store"),))

    def _catalog(self) -> Response:
        return json_response({"experiments": [
            {"name": spec.name, "figure": spec.figure, "claim": spec.claim,
             "default_scale": canonicalize(spec.default_scale),
             "quick": canonicalize(spec.quick),
             "aliases": list(spec.aliases), "tags": list(spec.tags)}
            for spec in all_experiments()]})

    # ------------------------------------------------------------------
    # Submission: the cache-or-job decision
    # ------------------------------------------------------------------
    def _hit_doc(self, kind: str, name: str, key: str, params: dict,
                 value) -> Response:
        return json_response({
            "kind": kind, "name": name, "key": key,
            "params": canonicalize(params), "cached": True,
            "checksum": canonical_checksum(value),
            "data": canonicalize(value),
        })

    def _queued_doc(self, job: Job, created: bool) -> Response:
        doc = job.to_doc()
        doc.update(cached=False, deduplicated=not created,
                   events=f"/v1/jobs/{job.id}/events")
        return json_response(doc, status=202)

    def _submit(self, kind: str, name: str, key: str, params: dict,
                work) -> Response:
        hit, value = self.cache.get(key)
        if hit:
            return self._hit_doc(kind, name, key, params, value)
        try:
            job, created = self.jobs.submit(kind, name, key, work)
        except RuntimeError as exc:
            raise HttpError(503, str(exc)) from None
        return self._queued_doc(job, created)

    def _submit_experiment(self, name: str, request: Request) -> Response:
        if not name or "/" in name:
            raise HttpError(404, f"bad experiment path segment {name!r}")
        body = request.json() if request.body else {}
        if not isinstance(body, dict):
            raise HttpError(400, "request body must be a JSON object "
                                 'like {"params": {...}}')
        unknown = set(body) - {"params", "workers", "seed"}
        if unknown:
            raise HttpError(400, f"unknown request field(s) "
                                 f"{sorted(unknown)}; accepted: "
                                 f"params, workers, seed")
        params = body.get("params") or {}
        if not isinstance(params, dict):
            raise HttpError(400, '"params" must be a JSON object')
        workers = body.get("workers", self.workers)
        seed = body.get("seed")
        try:
            spec, key_params, _call, key = resolve_run(
                name, params, workers=workers, seed=seed)
        except RegistryError as exc:
            raise HttpError(404, str(exc)) from None
        except ExperimentParamError as exc:
            raise HttpError(400, str(exc)) from None

        def work(progress):
            return run_experiment(spec.name, params, workers=workers,
                                  seed=seed, cache=self.cache)

        return self._submit("experiment", spec.name, key, key_params, work)

    def _submit_scenario(self, request: Request) -> Response:
        doc = request.json()
        if not isinstance(doc, dict):
            raise HttpError(400, "request body must be a ScenarioSpec "
                                 "JSON object")
        try:
            spec = ScenarioSpec.from_dict(doc)
        except ScenarioError as exc:
            raise HttpError(400, f"invalid scenario spec: {exc}") from None
        key = scenario_key(spec)

        def work(progress):
            return run_scenario(spec, cache=self.cache)

        return self._submit("scenario", spec.name, key,
                            {"scenario": spec.name}, work)

    # ------------------------------------------------------------------
    # Jobs + event streams
    # ------------------------------------------------------------------
    def _job(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise HttpError(404, f"unknown job {job_id!r}")
        return job

    def _job_events(self, job_id: str,
                    request: Request) -> StreamResponse:
        job = self._job(job_id)
        sse = (request.query.get("format") == "sse"
               or "text/event-stream" in request.headers.get("accept", ""))

        def encode(doc: dict) -> bytes:
            line = json.dumps(doc, sort_keys=True)
            if sse:
                return f"data: {line}\n\n".encode()
            return line.encode() + b"\n"

        async def stream():
            q = job.subscribe()
            try:
                while True:
                    try:
                        doc = await asyncio.wait_for(
                            q.get(), timeout=_EVENT_POLL_S)
                    except asyncio.TimeoutError:
                        if job.terminal and q.empty():
                            break
                        yield encode({"event": "heartbeat",
                                      "job": job.id})
                        continue
                    yield encode(doc)
                    if doc.get("event") in ("done", "failed"):
                        break
            finally:
                job.unsubscribe(q)

        content_type = ("text/event-stream" if sse
                        else "application/x-ndjson")
        return StreamResponse(stream(), content_type=content_type,
                              headers=(("Cache-Control", "no-store"),))

    # ------------------------------------------------------------------
    # Cached results + artifacts
    # ------------------------------------------------------------------
    def _result(self, key: str) -> Response:
        hit, value = self.cache.get(key)
        if not hit:
            raise HttpError(404, f"no cached result under key {key!r}")
        return json_response({"key": key,
                              "checksum": canonical_checksum(value),
                              "data": canonicalize(value)})

    def _artifact(self, tail: str, request: Request) -> Response:
        name, dot, fmt = tail.rpartition(".")
        if not dot or not name:
            raise HttpError(400, "artifact path must be "
                                 "/v1/artifacts/{experiment}.{json|md|png}")
        params: dict = {}
        quick = request.query.get("quick") in ("1", "true", "yes")
        for qk, qv in request.query.items():
            if qk in ("quick", "format"):
                continue
            try:
                params[qk] = json.loads(qv)
            except json.JSONDecodeError:
                params[qk] = qv  # bare strings are convenient in curl
        try:
            spec, key_params, _call, key = resolve_run(name, params)
        except RegistryError as exc:
            raise HttpError(404, str(exc)) from None
        except ExperimentParamError as exc:
            raise HttpError(400, str(exc)) from None
        if quick:
            if spec.quick is None:
                raise HttpError(400, f"experiment {name!r} has no quick "
                                     "parameterization")
            merged = dict(spec.quick)
            merged.update(params)
            _spec, key_params, _call, key = resolve_run(name, merged)

        hit, value = self.cache.get(key)
        if not hit:
            raise HttpError(
                404, f"result of {name!r} with these params is not cached "
                     f"yet (key {key}); POST /v1/experiments/{name} first")
        try:
            content_type, payload = render_artifact(
                name, key_params, key, value, fmt)
        except ArtifactError as exc:
            raise HttpError(400, str(exc)) from None
        return Response(body=payload, content_type=content_type)
