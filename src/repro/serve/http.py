"""Minimal asyncio HTTP/1.1 primitives for ``repro serve``.

No third-party web framework is available offline, and none is needed
for this surface: the server speaks plain HTTP/1.1 over asyncio
streams -- request-line + headers + ``Content-Length`` bodies in,
fixed responses or close-delimited streams out.  Keep-alive is
honored for fixed responses (the cached-hit hot path is a tight
request/response ping-pong over one connection); streaming responses
(NDJSON / SSE progress feeds) are close-delimited, exactly like a
curl-able event tail.

The parser is deliberately strict and bounded: oversized headers and
bodies, malformed request lines, and bad JSON all surface as
:class:`HttpError` with a client-side 4xx status -- a malformed
request must produce a readable error document, never a traceback.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import AsyncIterator, Awaitable, Callable
from urllib.parse import parse_qsl, unquote, urlsplit

#: Hard cap on the request head (request line + headers).
MAX_HEADER_BYTES = 64 * 1024

#: Hard cap on request bodies (a scenario spec is a few KiB).
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    431: "Request Header Fields Too Large", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """An error the client caused; rendered as a JSON error document."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes = b""

    def json(self):
        """Parse the body as JSON; bad JSON is a 400, not a traceback."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")


@dataclass
class Response:
    """A fixed-body response (keep-alive friendly)."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: tuple = ()


@dataclass
class StreamResponse:
    """A close-delimited streaming response (NDJSON / SSE)."""

    chunks: AsyncIterator[bytes]
    content_type: str = "application/x-ndjson"
    status: int = 200
    headers: tuple = field(default=())


def json_response(doc, status: int = 200) -> Response:
    """Render ``doc`` as a JSON response body."""
    body = json.dumps(doc, sort_keys=True).encode("utf-8") + b"\n"
    return Response(status=status, body=body)


# ----------------------------------------------------------------------
# Request parsing
# ----------------------------------------------------------------------
async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Read one request off the stream; ``None`` on a clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise HttpError(400, "truncated HTTP request") from None
    except asyncio.LimitOverrunError:
        raise HttpError(431, f"request head exceeds {MAX_HEADER_BYTES} "
                             "bytes") from None
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(431, f"request head exceeds {MAX_HEADER_BYTES} bytes")

    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 never fails
        raise HttpError(400, "undecodable request head") from None
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, target, _version = parts

    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    split = urlsplit(target)
    path = unquote(split.path)
    query = dict(parse_qsl(split.query, keep_blank_values=True))

    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise HttpError(400,
                            f"bad Content-Length {length_text!r}") from None
        if length < 0:
            raise HttpError(400, f"bad Content-Length {length_text!r}")
        if length > MAX_BODY_BYTES:
            raise HttpError(413,
                            f"request body exceeds {MAX_BODY_BYTES} bytes")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "truncated request body") from None
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked request bodies are not supported")

    return Request(method=method.upper(), path=path, query=query,
                   headers=headers, body=body)


# ----------------------------------------------------------------------
# Response writing
# ----------------------------------------------------------------------
def _head(status: int, content_type: str, extra: tuple,
          *, length: int | None, close: bool) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}",
             f"Content-Type: {content_type}"]
    if length is not None:
        lines.append(f"Content-Length: {length}")
    lines.append("Connection: " + ("close" if close else "keep-alive"))
    for name, value in extra:
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def write_response(writer: asyncio.StreamWriter, response: Response,
                         *, close: bool, head_only: bool = False) -> None:
    writer.write(_head(response.status, response.content_type,
                       tuple(response.headers),
                       length=len(response.body), close=close))
    if not head_only:
        writer.write(response.body)
    await writer.drain()


async def write_stream(writer: asyncio.StreamWriter,
                       response: StreamResponse) -> None:
    """Write a close-delimited streaming body, chunk by chunk."""
    writer.write(_head(response.status, response.content_type,
                       tuple(response.headers), length=None, close=True))
    await writer.drain()
    async for chunk in response.chunks:
        writer.write(chunk)
        await writer.drain()


# ----------------------------------------------------------------------
# Connection loop
# ----------------------------------------------------------------------
Handler = Callable[[Request], Awaitable[Response | StreamResponse]]


async def handle_connection(handler: Handler,
                            reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
    """Serve one client connection: parse, dispatch, respond, repeat.

    Handler exceptions become JSON error documents -- an
    :class:`HttpError` with its own status, anything else a 500 with
    the exception repr (the traceback stays in the server process).
    """
    try:
        while True:
            try:
                request = await read_request(reader)
            except HttpError as exc:
                await write_response(
                    writer, json_response({"error": exc.message},
                                          exc.status), close=True)
                break
            if request is None:
                break
            head_only = request.method == "HEAD"
            try:
                response = await handler(request)
            except HttpError as exc:
                response = json_response({"error": exc.message}, exc.status)
            except Exception as exc:  # noqa: BLE001 - must answer the client
                response = json_response(
                    {"error": f"internal error: {exc!r}"}, 500)
            if isinstance(response, StreamResponse):
                await write_stream(writer, response)
                break
            close = (request.headers.get("connection", "").lower()
                     == "close")
            await write_response(writer, response, close=close,
                                 head_only=head_only)
            if close:
                break
    except (ConnectionError, asyncio.CancelledError, OSError):
        pass  # client went away / server shutting down
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError, asyncio.CancelledError,
                RuntimeError):
            pass  # cancelled mid-close / loop already gone
