"""Periodic-refresh scheduling.

Implements the two policies the paper discusses: a REF every tREFI, and
the postpone-by-one policy (footnote 3) where the controller defers one
refresh interval and issues two back-to-back REFs every 2 x tREFI --
the behaviour that makes periodic refreshes the "next-highest latency
event" after PRAC back-offs in Fig. 2.
"""

from __future__ import annotations

from repro.controller.controller import MemoryController
from repro.sim.config import RefreshPolicy, SystemConfig
from repro.sim.engine import Simulator
from repro.sim.stats import BlockKind


class RefreshScheduler:
    """Drives periodic REF commands for every rank of the channel."""

    def __init__(self, sim: Simulator, controller: MemoryController,
                 config: SystemConfig) -> None:
        self.sim = sim
        self.controller = controller
        self.config = config
        self.policy = config.refresh_policy
        self._started = False

    def start(self) -> None:
        """Arm the per-rank refresh timers (idempotent)."""
        if self._started or self.policy is RefreshPolicy.NONE:
            self._started = True
            return
        self._started = True
        trefi = self.config.timing.tREFI
        period = trefi if self.policy is RefreshPolicy.EVERY_TREFI else 2 * trefi
        for rank in range(self.config.org.ranks):
            self.sim.schedule_at(period, lambda r=rank, p=period: self._tick(r, p))

    def _tick(self, rank: int, period: int) -> None:
        """Handle the refresh due at this grid point and re-arm.

        REF needs every bank of the rank precharged, so if any bank is
        mid-preventive-action the REF is *delayed* until the rank
        drains -- other banks keep serving until then (a controller
        blocks the rank only for the REF itself)."""
        drain = self.sim.now
        for bank in self.controller.banks[rank]:
            if bank.busy_until > drain:
                drain = bank.busy_until
        if drain > self.sim.now:
            self.sim.schedule_at(drain, lambda: self._issue(rank))
        else:
            self._issue(rank)
        self.sim.schedule(period, lambda: self._tick(rank, period))

    def _issue(self, rank: int) -> None:
        trfc = self.config.timing.tRFC
        duration = (trfc if self.policy is RefreshPolicy.EVERY_TREFI
                    else 2 * trfc)
        self.controller.block_banks(
            rank, None, self.sim.now, duration, BlockKind.REF, close=True,
            align_to_busy=False)
        self.controller.defense.on_refresh(rank, self.sim.now)

    def refreshes_required(self, horizon_ps: int) -> int:
        """How many REF commands the policy issues within ``horizon_ps``
        per rank (used by invariants tests)."""
        trefi = self.config.timing.tREFI
        if self.policy is RefreshPolicy.NONE:
            return 0
        if self.policy is RefreshPolicy.EVERY_TREFI:
            return horizon_ps // trefi
        return 2 * (horizon_ps // (2 * trefi))
