"""FR-FCFS memory controller with command-accurate latency composition.

The controller services one request *atomically*: when a request is
selected it computes the (PRE,) ACT, RD command times and the completion
time in one step, honoring per-bank timing constraints, the shared data
bus, and any blocking intervals (periodic refresh, RFM commands, PRAC
back-off recovery) that defenses or the refresh scheduler installed by
extending ``BankState.busy_until``.

This models the same latency *structure* as a per-cycle DRAM simulator
for the quantities the paper measures -- the latency gaps between row
hits, row conflicts, refreshes and preventive actions -- at a tiny
fraction of the cost, which is what makes the reproduction feasible in
pure Python.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.dram.address import AddressMapper, Coord
from repro.dram.bank import BankState
from repro.sim.config import SystemConfig
from repro.sim.engine import Simulator
from repro.sim.stats import BlockInterval, BlockKind, MemoryStats


class Request:
    """One memory request (a 64-byte read or write)."""

    __slots__ = ("addr", "coord", "is_write", "arrive", "callback", "seq",
                 "start_service", "complete", "kind")

    def __init__(self, addr: int, coord: Coord, is_write: bool, arrive: int,
                 callback: Callable[["Request"], None], seq: int) -> None:
        self.addr = addr
        self.coord = coord
        self.is_write = is_write
        self.arrive = arrive
        self.callback = callback
        self.seq = seq
        self.start_service: int | None = None
        self.complete: int | None = None
        #: "hit" | "miss" | "conflict", filled at service time.
        self.kind: str | None = None

    @property
    def latency(self) -> int:
        """Queue + service latency (ps); valid after completion."""
        if self.complete is None:
            raise RuntimeError("request not complete yet")
        return self.complete - self.arrive


class MemoryController:
    """Single-channel FR-FCFS memory controller."""

    def __init__(self, sim: Simulator, config: SystemConfig,
                 mapper: AddressMapper, stats: MemoryStats) -> None:
        config.validate()
        self.sim = sim
        self.config = config
        self.timing = config.timing
        self.org = config.org
        self.mapper = mapper
        self.stats = stats
        self.banks: list[list[BankState]] = [
            [BankState(r, b) for b in range(self.org.banks_per_rank)]
            for r in range(self.org.ranks)
        ]
        self.defense = _NullDefense()
        self._queue: deque[Request] = deque()
        self._backlog: deque[Request] = deque()
        #: In-flight data-bus reservations as (start, end), kept sorted
        #: by start.  A burst takes the earliest gap at or after its
        #: ready time, so a short row-hit transfer is not serialized
        #: behind the full PRE+ACT+RD pipeline of an earlier-scheduled
        #: request to a different bank.
        self._bus_reservations: list[tuple[int, int]] = []
        self._next_seq = 0
        self._wake_at: int | None = None
        self.queue_high_water = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def attach_defense(self, defense) -> None:
        """Install a RowHammer defense (see :mod:`repro.defenses`)."""
        self.defense = defense

    def submit(self, addr: int, callback: Callable[[Request], None],
               is_write: bool = False) -> Request:
        """Enqueue a request; ``callback(request)`` fires at completion."""
        coord = self.mapper.decode(addr)
        req = Request(addr, coord, is_write, self.sim.now, callback,
                      self._next_seq)
        self._next_seq += 1
        if len(self._queue) >= self.config.queue_size:
            self._backlog.append(req)
        else:
            self._queue.append(req)
        depth = len(self._queue) + len(self._backlog)
        if depth > self.queue_high_water:
            self.queue_high_water = depth
        # Defer scheduling decisions to an immediate event so requests
        # submitted at the same instant are considered together (a hit
        # arriving "simultaneously" with a conflict must win FR-FCFS).
        self._schedule_wake(self.sim.now)
        return req

    def bank(self, rank: int, flat_id: int) -> BankState:
        return self.banks[rank][flat_id]

    def block_banks(self, rank: int, bank_ids: frozenset[int] | None,
                    start: int, duration: int, kind: BlockKind,
                    close: bool = True, align_to_busy: bool = True) -> int:
        """Block a set of banks (``None`` = whole rank) for ``duration``.

        With ``align_to_busy`` the block begins only after in-flight
        services on the affected banks drain (how REF/RFM wait for
        precharge); without it the block starts exactly at ``start``
        (FR-RFM's fixed-slot semantics).  Returns the actual block end.
        """
        bank_list = self.banks[rank]
        affected = (bank_list if bank_ids is None
                    else [bank_list[b] for b in bank_ids])
        if align_to_busy:
            for b in affected:
                if b.busy_until > start:
                    start = b.busy_until
        end = start + duration
        for b in affected:
            b.block_until(end)
            if close:
                b.close()
        self.stats.record_block(
            BlockInterval(kind=kind, start=start, end=end, rank=rank,
                          banks=bank_ids))
        self._schedule_wake(end)
        return end

    @property
    def queued_requests(self) -> int:
        return len(self._queue) + len(self._backlog)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _schedule_wake(self, at: int) -> None:
        if at < self.sim.now:
            at = self.sim.now
        if self._wake_at is not None and self._wake_at <= at:
            return
        self._wake_at = at
        self.sim.schedule_at(at, self._on_wake)

    def _on_wake(self) -> None:
        self._wake_at = None
        self._wake()

    def _wake(self) -> None:
        """Issue every request whose commands can start now; then sleep
        until the earliest future start among the remaining requests."""
        now = self.sim.now
        while self._queue:
            req, start = self._select(now)
            if start > now:
                self._schedule_wake(start)
                return
            self._service(req, now)
            if self._backlog:
                self._queue.append(self._backlog.popleft())

    def _select(self, now: int) -> tuple[Request, int]:
        """FR-FCFS: earliest-startable first; among those, row hits under
        the column cap beat older conflicting requests; ties by age."""
        cap = self.config.column_cap
        banks = self.banks
        best = None
        best_key = None
        for req in self._queue:
            coord = req.coord
            bank = banks[coord.rank][coord.bankgroup
                                     * self.org.banks_per_group + coord.bank]
            start = bank.busy_until
            if start < now:
                start = now
            is_hit = bank.open_row == coord.row
            favored_hit = is_hit and bank.hit_streak < cap
            key = (start, not favored_hit, req.seq)
            if best_key is None or key < best_key:
                best_key = key
                best = req
        assert best is not None and best_key is not None
        return best, best_key[0]

    # ------------------------------------------------------------------
    # Service
    # ------------------------------------------------------------------
    def _service(self, req: Request, now: int) -> None:
        self._queue.remove(req)
        t = self.timing
        coord = req.coord
        flat = coord.bankgroup * self.org.banks_per_group + coord.bank
        bank = self.banks[coord.rank][flat]
        stats = self.stats
        defense = self.defense

        start = bank.busy_until
        if start < now:
            start = now
        req.start_service = start

        if bank.open_row == coord.row:
            req.kind = "hit"
            stats.row_hits += 1
            bank.hit_streak += 1
            rd = start
        elif bank.open_row is None:
            req.kind = "miss"
            stats.row_misses += 1
            act = start
            min_act = bank.act_time + t.tRC
            if act < min_act:
                act = min_act
            self._do_activate(bank, coord.row, act)
            rd = act + t.tRCD
        else:
            req.kind = "conflict"
            stats.row_conflicts += 1
            pre = start
            min_pre = bank.act_time + t.tRAS
            if pre < min_pre:
                pre = min_pre
            closed_row = bank.open_row
            bank.close()
            stats.precharges += 1
            defense.on_precharge(coord.rank, flat, closed_row, pre)
            act = pre + t.tRP
            self._do_activate(bank, coord.row, act)
            rd = act + t.tRCD

        data_start = self._reserve_bus(rd + t.tCL, t.tBL)
        done = data_start + t.tBL
        if bank.busy_until < rd + t.tBL:
            bank.busy_until = rd + t.tBL

        if req.is_write:
            stats.writes += 1
        else:
            stats.reads += 1
        stats.requests_served += 1
        req.complete = done
        self.sim.schedule_at(done, lambda r=req: r.callback(r))

    def _reserve_bus(self, earliest: int, duration: int) -> int:
        """Book the earliest bus slot of ``duration`` at or after
        ``earliest``; returns the slot's start time."""
        reservations = self._bus_reservations
        now = self.sim.now
        if reservations and reservations[0][1] <= now:
            self._bus_reservations = reservations = [
                r for r in reservations if r[1] > now]
        start = earliest
        insert_at = len(reservations)
        for i, (res_start, res_end) in enumerate(reservations):
            if start + duration <= res_start:
                insert_at = i
                break
            if res_end > start:
                start = res_end
        reservations.insert(insert_at, (start, start + duration))
        return start

    def _do_activate(self, bank: BankState, row: int, act: int) -> None:
        bank.open_row = row
        bank.act_time = act
        bank.hit_streak = 1
        self.stats.activations += 1
        self.defense.on_activate(bank.rank, bank.flat_id, row, act)


class _NullDefense:
    """Default no-op defense installed before :meth:`attach_defense`."""

    def on_activate(self, rank: int, bank: int, row: int, t: int) -> None:
        pass

    def on_precharge(self, rank: int, bank: int, row: int, t: int) -> None:
        pass

    def on_refresh(self, rank: int, t: int) -> None:
        pass
