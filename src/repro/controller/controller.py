"""FR-FCFS memory controller with command-accurate latency composition.

The controller services one request *atomically*: when a request is
selected it computes the (PRE,) ACT, RD command times and the completion
time in one step, honoring per-bank timing constraints, the shared data
bus, and any blocking intervals (periodic refresh, RFM commands, PRAC
back-off recovery) that defenses or the refresh scheduler installed by
extending ``BankState.busy_until``.

This models the same latency *structure* as a per-cycle DRAM simulator
for the quantities the paper measures -- the latency gaps between row
hits, row conflicts, refreshes and preventive actions -- at a tiny
fraction of the cost, which is what makes the reproduction feasible in
pure Python.

Hot-path organization
---------------------
The pending queue is kept *per bank* (:class:`_BankQueue`): each bank
holds its requests in a seq-ordered FIFO plus a per-row FIFO map.  The
FR-FCFS key of the whole bank -- ``(start, not favored_hit, seq)`` --
is then computable in O(1): the best candidate of a bank is the oldest
request to the open row when the row is favored, else the oldest
request overall.  A select scans only the *occupied* banks (typically
one or two in the paper's attack workloads) instead of every queued
request, and servicing a request is O(1) instead of the former
O(queue) ``list.remove``.  Every request precomputes its flat bank
index and bank reference once, at submit time.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque
from typing import Callable

from repro.dram.address import AddressMapper, Coord
from repro.dram.bank import BankState
from repro.sim.config import SystemConfig
from repro.sim.engine import Simulator
from repro.sim.stats import BlockInterval, BlockKind, MemoryStats


class Request:
    """One memory request (a 64-byte read or write)."""

    __slots__ = ("addr", "coord", "is_write", "arrive", "callback", "seq",
                 "start_service", "complete", "kind", "flat", "bank",
                 "bank_queue", "_in_queue")

    def __init__(self, addr: int, coord: Coord, is_write: bool, arrive: int,
                 callback: Callable[["Request"], None], seq: int) -> None:
        self.addr = addr
        self.coord = coord
        self.is_write = is_write
        self.arrive = arrive
        self.callback = callback
        self.seq = seq
        self.start_service: int | None = None
        self.complete: int | None = None
        #: "hit" | "miss" | "conflict", filled at service time.
        self.kind: str | None = None
        #: Flat bank id within the rank; filled by the controller.
        self.flat: int = 0
        #: The owning :class:`BankState`; filled by the controller.
        self.bank: BankState | None = None
        #: The owning :class:`_BankQueue`; filled by the controller.
        self.bank_queue = None
        #: Whether the request still sits in a bank queue (lazy FIFO
        #: deletion marker).
        self._in_queue = False

    @property
    def latency(self) -> int:
        """Queue + service latency (ps); valid after completion."""
        if self.complete is None:
            raise RuntimeError("request not complete yet")
        return self.complete - self.arrive


class _BankQueue:
    """Pending requests of one bank, organized for O(1) FR-FCFS heads.

    ``fifo`` holds requests in seq (submission) order; requests serviced
    out of FIFO order (favored row hits) are lazily deleted via the
    request's ``_in_queue`` flag.  ``by_row`` maps row -> deque of that
    row's pending requests, also in seq order, so the oldest favored hit
    is ``by_row[open_row][0]``.
    """

    __slots__ = ("bank", "fifo", "by_row", "size")

    def __init__(self, bank: BankState) -> None:
        self.bank = bank
        self.fifo: deque[Request] = deque()
        self.by_row: dict[int, deque[Request]] = {}
        self.size = 0

    def append(self, req: Request) -> None:
        req._in_queue = True
        self.fifo.append(req)
        row_q = self.by_row.get(req.coord.row)
        if row_q is None:
            self.by_row[req.coord.row] = deque((req,))
        else:
            row_q.append(req)
        self.size += 1

    def head(self) -> Request:
        """Oldest live request (callers guarantee ``size > 0``).

        The single-occupied-bank fast path in ``_on_wake`` inlines this
        lazy-popleft loop; keep the two in sync."""
        fifo = self.fifo
        while not fifo[0]._in_queue:
            fifo.popleft()
        return fifo[0]


class MemoryController:
    """Single-channel FR-FCFS memory controller."""

    def __init__(self, sim: Simulator, config: SystemConfig,
                 mapper: AddressMapper, stats: MemoryStats) -> None:
        config.validate()
        self.sim = sim
        self.config = config
        self.timing = config.timing
        self.org = config.org
        self.mapper = mapper
        self.stats = stats
        self.banks: list[list[BankState]] = [
            [BankState(r, b) for b in range(self.org.banks_per_rank)]
            for r in range(self.org.ranks)
        ]
        self.defense = _NullDefense()
        self._bank_queues: list[list[_BankQueue]] = [
            [_BankQueue(bank) for bank in rank_banks]
            for rank_banks in self.banks
        ]
        #: Ordered set (dict keyed by identity) of bank queues with at
        #: least one pending request.  Dict insertion order is
        #: deterministic and the selection min-key has a globally unique
        #: seq tie-breaker, so iteration order cannot affect results.
        self._occupied: dict[_BankQueue, None] = {}
        self._queue_len = 0
        self._backlog: deque[Request] = deque()
        #: In-flight data-bus reservations, kept sorted by start as two
        #: parallel lists.  A burst takes the earliest gap at or after
        #: its ready time, so a short row-hit transfer is not serialized
        #: behind the full PRE+ACT+RD pipeline of an earlier-scheduled
        #: request to a different bank.  All bursts share one duration
        #: (tBL), so the end list is sorted too -- which the expiry
        #: pruning's bisect relies on.
        self._bus_starts: list[int] = []
        self._bus_ends: list[int] = []
        self._next_seq = 0
        self._wake_at: int | None = None
        self.queue_high_water = 0
        #: Wake-event elision switch (set by :class:`~repro.system.
        #: MemorySystem` from the resolved fast-forward config) and its
        #: engagement counter (see :meth:`submit_tail`).
        self.ff_elide = False
        self.wakes_elided = 0
        #: addr -> (coord, flat, bank, bank_queue): decode and bank
        #: resolution done once per distinct address.
        self._addr_plan: dict[int, tuple] = {}
        # Hot-path constants and stable bound references: re-deriving a
        # config attribute or creating a bound method per request is
        # avoidable allocation/lookup work.
        self._queue_cap = config.queue_size
        self._column_cap = config.column_cap
        self._on_wake_cb = self._on_wake
        self._sched_call_at = sim.schedule_call_at
        t = config.timing
        self._tRC = t.tRC
        self._tRAS = t.tRAS
        self._tRP = t.tRP
        self._tRCD = t.tRCD
        self._tCL = t.tCL
        self._tBL = t.tBL
        #: On-chip frontend latency added between data-burst completion
        #: and the completion callback -- the callback models the data
        #: returning to the core.  Fusing this here (instead of a
        #: system-level relay event per request) saves one engine event
        #: and one dispatch per request.
        self._frontend = config.frontend_latency

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def attach_defense(self, defense) -> None:
        """Install a RowHammer defense (see :mod:`repro.defenses`)."""
        self.defense = defense

    def submit(self, addr: int, callback: Callable[[Request], None],
               is_write: bool = False) -> Request:
        """Enqueue a request; ``callback(request)`` fires once the data
        returns to the core (completion plus the frontend latency).
        ``request.complete`` records the DRAM-side completion time."""
        plan = self._addr_plan.get(addr)
        if plan is None:
            coord = self.mapper.decode(addr)
            flat = coord.bankgroup * self.org.banks_per_group + coord.bank
            plan = (coord, flat, self.banks[coord.rank][flat],
                    self._bank_queues[coord.rank][flat])
            if len(self._addr_plan) >= (1 << 16):
                self._addr_plan.clear()
            self._addr_plan[addr] = plan
        coord, flat, bank, bank_queue = plan
        sim = self.sim
        now = sim.now
        # Direct construction (no __init__ frame): this is the hottest
        # allocation in the simulator.
        req = _new_request(Request)
        req.addr = addr
        req.coord = coord
        req.is_write = is_write
        req.arrive = now
        req.callback = callback
        req.seq = self._next_seq
        req.start_service = None
        req.complete = None
        req.kind = None
        req.flat = flat
        req.bank = bank
        req.bank_queue = bank_queue
        self._next_seq += 1
        backlog = self._backlog
        if self._queue_len >= self._queue_cap:
            req._in_queue = False
            backlog.append(req)
        else:
            # _BankQueue.append, inlined.
            req._in_queue = True
            bank_queue.fifo.append(req)
            by_row = bank_queue.by_row
            row_q = by_row.get(coord.row)
            if row_q is None:
                by_row[coord.row] = deque((req,))
            else:
                row_q.append(req)
            size = bank_queue.size = bank_queue.size + 1
            self._queue_len += 1
            if size == 1:
                self._occupied[bank_queue] = None
        depth = self._queue_len + len(backlog)
        if depth > self.queue_high_water:
            self.queue_high_water = depth
        # Defer scheduling decisions to an immediate event so requests
        # submitted at the same instant are considered together (a hit
        # arriving "simultaneously" with a conflict must win FR-FCFS).
        # (_schedule_wake inlined: a wake at ``now`` is never in the
        # past, and an already-armed wake at or before ``now`` wins.)
        wake = self._wake_at
        if wake is None or wake > now:
            self._wake_at = now
            sim.schedule_call_at(now, self._on_wake_cb, now)
        return req

    def submit_tail(self, addr: int, callback: Callable[["Request"], None],
                    is_write: bool = False) -> Request:
        """:meth:`submit` for *tail* callers -- callers that schedule
        nothing else at the current instant after this call returns
        (closed-loop probe/noise/app loops whose callback ends with the
        submit).

        When the queue is empty and the engine has no other event
        pending at this instant, the deferred scheduler wake that
        ``submit`` arms would run next with exactly this request as its
        only candidate: FR-FCFS selection is trivial and the wake event
        can be *elided*.  The request is serviced inline and only its
        completion is scheduled.  Because nothing can run between this
        call and the elided wake, everything scheduled here receives
        seq numbers in the same relative order the wake path would have
        assigned -- the elision is bit-identical, not approximately so.

        Any failed precondition falls back to the deferred-wake path,
        so ``submit_tail`` is always safe to use from a tail position.
        """
        sim = self.sim
        if (self.ff_elide and self._queue_len == 0 and not self._backlog
                # Simulator.quiescent_now, inlined (this is the hottest
                # controller entry point; keep the two in sync): no
                # pending event may share the current instant.
                and sim._imm_head >= len(sim._imm)):
            now = sim.now
            fifo = sim._fifo
            heap = sim._heap
            if ((sim._fifo_head >= len(fifo)
                    or fifo[sim._fifo_head][0] > now)
                    and (not heap or heap[0][0] > now)):
                plan = self._addr_plan.get(addr)
                if plan is None:
                    coord = self.mapper.decode(addr)
                    flat = (coord.bankgroup * self.org.banks_per_group
                            + coord.bank)
                    plan = (coord, flat, self.banks[coord.rank][flat],
                            self._bank_queues[coord.rank][flat])
                    if len(self._addr_plan) >= (1 << 16):
                        self._addr_plan.clear()
                    self._addr_plan[addr] = plan
                coord, flat, bank, bank_queue = plan
                if bank.busy_until <= now:
                    req = _new_request(Request)
                    req.addr = addr
                    req.coord = coord
                    req.is_write = is_write
                    req.arrive = now
                    req.callback = callback
                    req.seq = self._next_seq
                    req.start_service = now
                    req.complete = None
                    req.kind = None
                    req.flat = flat
                    req.bank = bank
                    req.bank_queue = bank_queue
                    req._in_queue = False
                    self._next_seq += 1
                    if self.queue_high_water < 1:
                        self.queue_high_water = 1
                    # The deferred path would arm a wake at ``now``
                    # which runs immediately after this callback and
                    # leaves the controller unarmed; mirror that end
                    # state (a previously armed future wake becomes
                    # stale either way).
                    self._wake_at = None
                    self.wakes_elided += 1
                    stats = self.stats
                    if bank.open_row == coord.row:
                        # Row-hit service, inlined from _service_core
                        # (the dominant closed-loop case; keep in
                        # sync).  start == now since the bank is idle.
                        req.kind = "hit"
                        stats.row_hits += 1
                        bank.hit_streak += 1
                        tBL = self._tBL
                        earliest = now + self._tCL
                        ends = self._bus_ends
                        if ends and ends[0] <= now:
                            starts = self._bus_starts
                            cut = bisect_right(ends, now)
                            del starts[:cut]
                            del ends[:cut]
                        if not ends or earliest >= ends[-1]:
                            # Bus free at ``earliest`` (the closed-loop
                            # common case: the previous burst expired).
                            self._bus_starts.append(earliest)
                            ends.append(earliest + tBL)
                            done = earliest + tBL
                        else:
                            done = self._reserve_bus(
                                earliest, tBL, now) + tBL
                        busy = now + tBL
                        if bank.busy_until < busy:
                            bank.busy_until = busy
                        if is_write:
                            stats.writes += 1
                        else:
                            stats.reads += 1
                        stats.requests_served += 1
                        req.complete = done
                        self._sched_call_at(done + self._frontend,
                                            req.callback, req)
                    else:
                        req.start_service = None
                        self._service_core(req, now)
                    return req
        return self.submit(addr, callback, is_write=is_write)

    def bank(self, rank: int, flat_id: int) -> BankState:
        return self.banks[rank][flat_id]

    def block_banks(self, rank: int, bank_ids: frozenset[int] | None,
                    start: int, duration: int, kind: BlockKind,
                    close: bool = True, align_to_busy: bool = True) -> int:
        """Block a set of banks (``None`` = whole rank) for ``duration``.

        With ``align_to_busy`` the block begins only after in-flight
        services on the affected banks drain (how REF/RFM wait for
        precharge); without it the block starts exactly at ``start``
        (FR-RFM's fixed-slot semantics).  Returns the actual block end.
        """
        bank_list = self.banks[rank]
        affected = (bank_list if bank_ids is None
                    else [bank_list[b] for b in bank_ids])
        if align_to_busy:
            for b in affected:
                if b.busy_until > start:
                    start = b.busy_until
        end = start + duration
        for b in affected:
            b.block_until(end)
            if close:
                b.close()
        self.stats.record_block(
            BlockInterval(kind=kind, start=start, end=end, rank=rank,
                          banks=bank_ids))
        self._schedule_wake(end)
        return end

    @property
    def queued_requests(self) -> int:
        return self._queue_len + len(self._backlog)

    # ------------------------------------------------------------------
    # Steady-state fast-forward participation (repro.sim.fastforward)
    # ------------------------------------------------------------------
    @staticmethod
    def _ff_banks(plans) -> list[BankState]:
        """Distinct banks of a probe's address plans, in plan order
        (shared by snapshot and apply so their layouts always agree)."""
        banks: list[BankState] = []
        for _coord, _flat, bank, _queue in plans:
            if bank not in banks:  # identity compare; 1-2 banks typical
                banks.append(bank)
        return banks

    def ff_snapshot(self, plans) -> tuple[tuple, tuple]:
        """(lin, inv) controller state for periodicity detection.

        ``lin`` holds the per-cycle-advancing ints (bank timestamps,
        hit streaks, request seq, bus reservation endpoints); ``inv``
        holds what must not change at all between cycle boundaries
        (open rows, queue emptiness, armed wake, high-water mark).
        """
        lin = [self._next_seq]
        inv = [self._queue_len, len(self._backlog), self._wake_at,
               self.queue_high_water, len(self._bus_starts)]
        for bank in self._ff_banks(plans):
            lin.append(bank.busy_until)
            lin.append(bank.act_time)
            lin.append(bank.hit_streak)
            inv.append(bank.open_row)
        lin.extend(self._bus_starts)
        lin.extend(self._bus_ends)
        return tuple(lin), tuple(inv)

    def ff_apply(self, plans, delta, cycles: int) -> None:
        """Bulk-advance controller state by ``cycles`` steady cycles
        (``delta`` = the per-cycle lin difference, laid out exactly as
        :meth:`ff_snapshot` built it)."""
        self._next_seq += delta[0] * cycles
        i = 1
        for bank in self._ff_banks(plans):
            bank.busy_until += delta[i] * cycles
            bank.act_time += delta[i + 1] * cycles
            bank.hit_streak += delta[i + 2] * cycles
            i += 3
        starts = self._bus_starts
        for j in range(len(starts)):
            starts[j] += delta[i] * cycles
            i += 1
        ends = self._bus_ends
        for j in range(len(ends)):
            ends[j] += delta[i] * cycles
            i += 1

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _enqueue(self, req: Request) -> None:
        bank_queue = req.bank_queue
        bank_queue.append(req)
        self._queue_len += 1
        if bank_queue.size == 1:
            self._occupied[bank_queue] = None

    def _schedule_wake(self, at: int) -> None:
        now = self.sim.now
        if at < now:
            at = now
        armed = self._wake_at
        if armed is not None and armed <= at:
            return
        self._wake_at = at
        self.sim.schedule_call_at(at, self._on_wake_cb, at)

    def _on_wake(self, at: int) -> None:
        """Issue every request whose commands can start now; then sleep
        until the earliest future start among the remaining requests.

        FR-FCFS selection -- earliest-startable first, then favored
        row hits under the column cap, ties by age -- is inlined into
        the loop body: it runs once per serviced request and once more
        to discover the next wake time, making it the single hottest
        piece of controller code.  Each occupied bank contributes its
        best candidate in O(1): the oldest request to the open row when
        that row is favored, else its oldest request overall."""
        # Re-arming an *earlier* wake leaves the later event in the
        # engine; it arrives here stale (its time no longer matches the
        # armed time) and must not trigger a spurious scheduler scan.
        if at != self._wake_at:
            return
        self._wake_at = None
        now = self.sim.now
        cap = self._column_cap
        occupied = self._occupied
        backlog = self._backlog
        while self._queue_len:
            if len(occupied) == 1:
                # Fast path: one occupied bank (the common case in the
                # paper's single-bank attack loops) needs no key tuples
                # or cross-bank comparison.
                for bank_queue in occupied:
                    break
                bank = bank_queue.bank
                start = bank.busy_until
                if start > now:
                    self._schedule_wake(start)
                    return
                row_q = bank_queue.by_row.get(bank.open_row)
                if row_q and bank.hit_streak < cap:
                    best = row_q[0]
                else:
                    fifo = bank_queue.fifo
                    while not fifo[0]._in_queue:
                        fifo.popleft()
                    best = fifo[0]
            else:
                best = None
                best_key = None
                for bank_queue in occupied:
                    bank = bank_queue.bank
                    start = bank.busy_until
                    if start < now:
                        start = now
                    row_q = bank_queue.by_row.get(bank.open_row)
                    if row_q and bank.hit_streak < cap:
                        req = row_q[0]
                        key = (start, False, req.seq)
                    else:
                        req = bank_queue.head()
                        key = (start, True, req.seq)
                    if best_key is None or key < best_key:
                        best_key = key
                        best = req
                start = best_key[0]
                if start > now:
                    self._schedule_wake(start)
                    return
            self._service(best, now)
            if backlog:
                self._enqueue(backlog.popleft())

    # ------------------------------------------------------------------
    # Service
    # ------------------------------------------------------------------
    def _service(self, req: Request, now: int) -> None:
        # Dequeue.  The serviced request is always the oldest of its
        # row (either the favored-hit head of that row, or the overall
        # oldest of the bank and hence oldest of its row too), so it is
        # the front of its row deque; the seq-ordered bank FIFO uses
        # lazy deletion via ``_in_queue``.
        bank_queue = req.bank_queue
        row = req.coord.row
        by_row = bank_queue.by_row
        row_q = by_row[row]
        row_q.popleft()
        if not row_q:
            del by_row[row]
        req._in_queue = False
        fifo = bank_queue.fifo
        if fifo[0] is req:
            fifo.popleft()
        bank_queue.size -= 1
        self._queue_len -= 1
        if bank_queue.size == 0:
            fifo.clear()
            del self._occupied[bank_queue]
        self._service_core(req, now)

    def _service_core(self, req: Request, now: int) -> None:
        """Command/latency composition of one selected request.

        Shared verbatim by the wake path (:meth:`_service`, after the
        dequeue) and the wake-elision path (:meth:`submit_tail`, where
        the request never enters a queue) -- one body, so the two paths
        cannot drift apart.
        """
        coord = req.coord
        bank = req.bank
        stats = self.stats

        start = bank.busy_until
        if start < now:
            start = now
        req.start_service = start

        if bank.open_row == coord.row:
            req.kind = "hit"
            stats.row_hits += 1
            bank.hit_streak += 1
            rd = start
        elif bank.open_row is None:
            req.kind = "miss"
            stats.row_misses += 1
            act = start
            min_act = bank.act_time + self._tRC
            if act < min_act:
                act = min_act
            # _do_activate, inlined.
            bank.open_row = coord.row
            bank.act_time = act
            bank.hit_streak = 1
            stats.activations += 1
            self.defense.on_activate(bank.rank, bank.flat_id, coord.row,
                                     act)
            rd = act + self._tRCD
        else:
            req.kind = "conflict"
            stats.row_conflicts += 1
            pre = start
            min_pre = bank.act_time + self._tRAS
            if pre < min_pre:
                pre = min_pre
            closed_row = bank.open_row
            bank.close()
            stats.precharges += 1
            self.defense.on_precharge(coord.rank, req.flat, closed_row,
                                      pre)
            act = pre + self._tRP
            # _do_activate, inlined.
            bank.open_row = coord.row
            bank.act_time = act
            bank.hit_streak = 1
            stats.activations += 1
            self.defense.on_activate(bank.rank, bank.flat_id, coord.row,
                                     act)
            rd = act + self._tRCD

        tBL = self._tBL
        data_start = self._reserve_bus(rd + self._tCL, tBL, now)
        done = data_start + tBL
        busy = rd + tBL
        if bank.busy_until < busy:
            bank.busy_until = busy

        if req.is_write:
            stats.writes += 1
        else:
            stats.reads += 1
        stats.requests_served += 1
        req.complete = done
        self._sched_call_at(done + self._frontend, req.callback, req)

    def _reserve_bus(self, earliest: int, duration: int,
                     now: int | None = None) -> int:
        """Book the earliest bus slot of ``duration`` at or after
        ``earliest``; returns the slot's start time."""
        starts = self._bus_starts
        ends = self._bus_ends
        if ends:
            if now is None:
                now = self.sim.now
            if ends[0] <= now:
                # Prune *every* expired reservation (ends are sorted,
                # see the attribute comment), not just the front one --
                # an expired entry can never constrain a future slot,
                # and keeping them would let the list grow without
                # bound.
                cut = bisect_right(ends, now)
                del starts[:cut]
                del ends[:cut]
            if ends and earliest >= ends[-1]:
                # Fast path: the bus is free at or before ``earliest``
                # (the overwhelmingly common closed-loop probe case).
                starts.append(earliest)
                ends.append(earliest + duration)
                return earliest
        start = earliest
        insert_at = len(starts)
        for i, res_start in enumerate(starts):
            if start + duration <= res_start:
                insert_at = i
                break
            res_end = ends[i]
            if res_end > start:
                start = res_end
        starts.insert(insert_at, start)
        ends.insert(insert_at, start + duration)
        return start

_new_request = object.__new__


class _NullDefense:
    """Default no-op defense installed before :meth:`attach_defense`."""

    def on_activate(self, rank: int, bank: int, row: int, t: int) -> None:
        pass

    def on_precharge(self, rank: int, bank: int, row: int, t: int) -> None:
        pass

    def on_refresh(self, rank: int, t: int) -> None:
        pass
