"""Memory controller: FR-FCFS scheduling, refresh management, blocking."""

from repro.controller.controller import MemoryController, Request
from repro.controller.refresh import RefreshScheduler

__all__ = ["MemoryController", "Request", "RefreshScheduler"]
