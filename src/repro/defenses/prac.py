"""PRAC: Per Row Activation Counting with the alert-back-off protocol.

Follows the paper's PRAC model (Section 6.1):

* every DRAM row has an activation counter, incremented *while the row
  is being closed* (i.e., at PRE time);
* when a counter reaches the back-off threshold ``N_BO``, the DRAM chip
  asserts ABO ~5 ns after the PRE;
* the memory controller serves normal traffic for ``tABOACT`` (180 ns),
  then enters a recovery period of ``n_rfms`` back-to-back RFM commands
  (350 ns each; 4 RFMs = the 1400 ns back-off latency of the paper);
* each RFM lets the chip refresh the victims of its highest-count row
  in every bank, so a recovery with ``n_rfms`` RFMs resets the top
  ``n_rfms`` counters per bank;
* after recovery the chip respects a cool-down window before asserting
  ABO again.

Back-offs block the *whole rank* (the paper: "PRAC blocks all accesses
to an entire channel") -- the channel-granularity observability that
LeakyHammer exploits.
"""

from __future__ import annotations

from repro.sim.config import DefenseKind
from repro.sim.stats import BlockKind

from repro.defenses.base import Defense

#: Rows whose counters a single periodic REF covers per bank (128K rows
#: refreshed over 8192 REFs per tREFW).
_ROWS_PER_REF = 16


class PracDefense(Defense):
    """PRAC with rank-level ABO back-off."""

    kind = DefenseKind.PRAC

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: counters[rank][flat_bank] -> {row: activation count}
        self.counters: list[list[dict[int, int]]] = [
            [dict() for _ in range(self.org.banks_per_rank)]
            for _ in range(self.org.ranks)
        ]
        self._abo_pending = [False] * self.org.ranks
        self._cooldown_end = [0] * self.org.ranks
        # The distributed-refresh sweep position at attack time is
        # arbitrary; start mid-bank so low-numbered rows (where the
        # attacks and workloads live) are not swept immediately.
        self._ref_cursor = [self.org.rows_per_bank // 2] * self.org.ranks
        #: ground truth for tests: (rank, assert_time) tuples.
        self.abo_log: list[tuple[int, int]] = []

    # ------------------------------------------------------------------
    # Counter management
    # ------------------------------------------------------------------
    def _initial_count(self) -> int:
        """Counter value after boot / after a preventive reset.

        PRAC starts at zero; RIAC overrides this with a random value.
        """
        return 0

    def counter_value(self, rank: int, bank: int, row: int) -> int:
        """Current activation count of a row (test/experiment hook)."""
        counters = self.counters[rank][bank]
        if row not in counters:
            counters[row] = self._initial_count()
        return counters[row]

    # ------------------------------------------------------------------
    # Trigger algorithm
    # ------------------------------------------------------------------
    def on_precharge(self, rank: int, bank: int, row: int, t: int) -> None:
        counters = self.counters[rank][bank]
        count = counters.get(row)
        if count is None:
            count = self._initial_count()
        count += 1
        counters[row] = count
        if count >= self.params.nbo:
            self._maybe_assert_abo(rank, t)

    def _maybe_assert_abo(self, rank: int, t: int) -> None:
        if self._abo_pending[rank]:
            return
        assert_time = t + self.timing.tABO_DELAY
        if assert_time < self._cooldown_end[rank]:
            return
        self._abo_pending[rank] = True
        self.abo_log.append((rank, assert_time))
        recovery_due = assert_time + self.timing.tABO_ACT
        self.sim.schedule_at(max(recovery_due, self.sim.now),
                             lambda: self._recover(rank))

    # ------------------------------------------------------------------
    # Preventive action
    # ------------------------------------------------------------------
    def _blocked_banks(self, rank: int) -> frozenset[int] | None:
        """Which banks the back-off blocks (``None`` = whole rank)."""
        return None

    def _backoff_duration(self) -> int:
        override = self.params.backoff_latency_override
        if override is not None:
            return override
        return self.params.n_rfms * self.timing.tRFM_AB

    def _recover(self, rank: int) -> None:
        banks = self._blocked_banks(rank)
        end = self.controller.block_banks(
            rank, banks, self.sim.now, self._backoff_duration(),
            BlockKind.BACKOFF, close=True)
        self.sim.schedule_at(end, lambda: self._finish(rank, banks))

    def _finish(self, rank: int, banks: frozenset[int] | None) -> None:
        bank_ids = (range(self.org.banks_per_rank) if banks is None
                    else banks)
        for bank in bank_ids:
            self._reset_top_counters(rank, bank, self.params.n_rfms)
        self._cooldown_end[rank] = self.sim.now + self.timing.tABO_COOLDOWN
        self._abo_pending[rank] = False

    def _reset_top_counters(self, rank: int, bank: int, k: int) -> None:
        """Refresh the victims of the ``k`` highest-count rows: reset."""
        counters = self.counters[rank][bank]
        if not counters:
            return
        top = sorted(counters, key=counters.__getitem__, reverse=True)[:k]
        reset = self._initial_count
        for row in top:
            counters[row] = reset()

    # ------------------------------------------------------------------
    # Steady-state fast-forward participation (repro.sim.fastforward)
    # ------------------------------------------------------------------
    ff_supported = True

    @staticmethod
    def _ff_rows(plans) -> list[tuple[int, int, int]]:
        """Distinct (rank, flat_bank, row) triples of a probe's address
        plans, in plan order (snapshot and apply share one layout)."""
        rows: list[tuple[int, int, int]] = []
        for coord, flat, _bank, _queue in plans:
            key = (coord.rank, flat, coord.row)
            if key not in rows:
                rows.append(key)
        return rows

    def ff_snapshot(self, plans):
        """Per-row counters of the probed rows (lin; -1 = untouched),
        plus the rank-level ABO machinery as invariants -- a pending
        ABO, a cool-down change or a refresh sweep mid-window must all
        break steady-state detection."""
        lin = []
        ranks = []
        for rank, flat, row in self._ff_rows(plans):
            lin.append(self.counters[rank][flat].get(row, -1))
            if rank not in ranks:
                ranks.append(rank)
        inv = [len(self.abo_log)]
        for rank in ranks:
            inv.append(self._abo_pending[rank])
            inv.append(self._cooldown_end[rank])
            inv.append(self._ref_cursor[rank])
        return tuple(lin), tuple(inv)

    def ff_cycle_cap(self, lin, delta, acts_per_cycle):
        """Keep every probed row's counter strictly below N_BO through
        the jump; the threshold-crossing precharge runs live."""
        cap = None
        nbo = self.params.nbo
        for value, d in zip(lin, delta):
            if d == 0:
                continue
            if d < 0 or value < 0:
                # Shrinking or just-materialized counters mean the
                # window was not actually steady; decline.
                return 0
            room = (nbo - 1 - value) // d
            if room <= 0:
                return 0
            if cap is None or room < cap:
                cap = room
        return cap

    def ff_apply(self, plans, delta, cycles):
        for (rank, flat, row), d in zip(self._ff_rows(plans), delta):
            if d:
                counters = self.counters[rank][flat]
                counters[row] = counters[row] + d * cycles

    # ------------------------------------------------------------------
    # Periodic-refresh hygiene: REF-covered rows get their counters
    # cleared as their victims are refreshed anyway.
    # ------------------------------------------------------------------
    def on_refresh(self, rank: int, t: int) -> None:
        cursor = self._ref_cursor[rank]
        lo = cursor
        hi = cursor + _ROWS_PER_REF
        for counters in self.counters[rank]:
            for row in [r for r in counters if lo <= r < hi]:
                del counters[row]
        self._ref_cursor[rank] = hi % self.org.rows_per_bank

    def describe(self) -> dict:
        return {
            "kind": self.kind.value,
            "nbo": self.params.nbo,
            "n_rfms": self.params.n_rfms,
            "backoff_latency_ps": self._backoff_duration(),
        }
