"""Periodic RFM (PRFM): memory-controller-side bank activation counting.

The controller counts activations per DRAM bank; when a bank's counter
reaches ``T_RFM`` it issues a same-bank RFM command, which blocks the
same bank *in every bank group* for ``tRFM_SB`` (~295 ns) -- the
bank-group-granularity observability the RFM-based covert channel
exploits (Section 7).
"""

from __future__ import annotations

from repro.sim.config import DefenseKind
from repro.sim.stats import BlockKind

from repro.defenses.base import Defense


class PrfmDefense(Defense):
    """Periodic RFM driven by per-bank activation counters."""

    kind = DefenseKind.PRFM

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: bank_counters[rank][flat_bank] -> activations since last RFM
        self.bank_counters: list[list[int]] = [
            [0] * self.org.banks_per_rank for _ in range(self.org.ranks)
        ]
        #: ground truth for tests: (rank, flat_bank, issue_time).
        self.rfm_log: list[tuple[int, int, int]] = []

    def on_activate(self, rank: int, bank: int, row: int, t: int) -> None:
        counters = self.bank_counters[rank]
        counters[bank] += 1
        if counters[bank] >= self.params.trfm:
            counters[bank] = 0
            self.rfm_log.append((rank, bank, t))
            self.sim.schedule_at(max(t, self.sim.now),
                                 lambda: self._issue_rfm(rank, bank))

    def _issue_rfm(self, rank: int, bank: int) -> None:
        """Block the addressed bank in every bank group for tRFM_SB."""
        self.controller.block_banks(
            rank, self._same_bank_set(bank), self.sim.now,
            self.timing.tRFM_SB, BlockKind.RFM, close=True)

    def _same_bank_set(self, flat_bank: int) -> frozenset[int]:
        per_group = self.org.banks_per_group
        within = flat_bank % per_group
        return frozenset(g * per_group + within
                         for g in range(self.org.bankgroups))

    def describe(self) -> dict:
        return {"kind": self.kind.value, "trfm": self.params.trfm,
                "rfm_latency_ps": self.timing.tRFM_SB}
