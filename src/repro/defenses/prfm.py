"""Periodic RFM (PRFM): memory-controller-side bank activation counting.

The controller counts activations per DRAM bank; when a bank's counter
reaches ``T_RFM`` it issues a same-bank RFM command, which blocks the
same bank *in every bank group* for ``tRFM_SB`` (~295 ns) -- the
bank-group-granularity observability the RFM-based covert channel
exploits (Section 7).
"""

from __future__ import annotations

from repro.sim.config import DefenseKind
from repro.sim.stats import BlockKind

from repro.defenses.base import Defense


class PrfmDefense(Defense):
    """Periodic RFM driven by per-bank activation counters."""

    kind = DefenseKind.PRFM

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: bank_counters[rank][flat_bank] -> activations since last RFM
        self.bank_counters: list[list[int]] = [
            [0] * self.org.banks_per_rank for _ in range(self.org.ranks)
        ]
        #: ground truth for tests: (rank, flat_bank, issue_time).
        self.rfm_log: list[tuple[int, int, int]] = []

    def on_activate(self, rank: int, bank: int, row: int, t: int) -> None:
        counters = self.bank_counters[rank]
        counters[bank] += 1
        if counters[bank] >= self.params.trfm:
            counters[bank] = 0
            self.rfm_log.append((rank, bank, t))
            self.sim.schedule_at(max(t, self.sim.now),
                                 lambda: self._issue_rfm(rank, bank))

    def _issue_rfm(self, rank: int, bank: int) -> None:
        """Block the addressed bank in every bank group for tRFM_SB."""
        self.controller.block_banks(
            rank, self._same_bank_set(bank), self.sim.now,
            self.timing.tRFM_SB, BlockKind.RFM, close=True)

    def _same_bank_set(self, flat_bank: int) -> frozenset[int]:
        per_group = self.org.banks_per_group
        within = flat_bank % per_group
        return frozenset(g * per_group + within
                         for g in range(self.org.bankgroups))

    # ------------------------------------------------------------------
    # Steady-state fast-forward participation (repro.sim.fastforward)
    # ------------------------------------------------------------------
    ff_supported = True

    @staticmethod
    def _ff_bank_keys(plans) -> list[tuple[int, int]]:
        keys: list[tuple[int, int]] = []
        for coord, flat, _bank, _queue in plans:
            key = (coord.rank, flat)
            if key not in keys:
                keys.append(key)
        return keys

    def ff_snapshot(self, plans):
        lin = tuple(self.bank_counters[rank][flat]
                    for rank, flat in self._ff_bank_keys(plans))
        return lin, (len(self.rfm_log),)

    def ff_cycle_cap(self, lin, delta, acts_per_cycle):
        """Keep every probed bank's counter strictly below T_RFM; the
        RFM-triggering activation runs live."""
        cap = None
        trfm = self.params.trfm
        for value, d in zip(lin, delta):
            if d == 0:
                continue
            if d < 0:
                return 0
            room = (trfm - 1 - value) // d
            if room <= 0:
                return 0
            if cap is None or room < cap:
                cap = room
        return cap

    def ff_apply(self, plans, delta, cycles):
        for (rank, flat), d in zip(self._ff_bank_keys(plans), delta):
            if d:
                self.bank_counters[rank][flat] += d * cycles

    def describe(self) -> dict:
        return {"kind": self.kind.value, "trfm": self.params.trfm,
                "rfm_latency_ps": self.timing.tRFM_SB}
