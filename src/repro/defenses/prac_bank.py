"""Bank-Level PRAC (Section 11.3): per-bank ABO back-off signals.

Identical trigger algorithm to PRAC, but a back-off blocks only the
bank whose counter crossed the threshold, so an attacker whose data
lives in any *other* bank cannot observe the preventive action.  This
reduces LeakyHammer's scope to that of same-bank attacks (DRAMA-class)
without eliminating it within a bank.
"""

from __future__ import annotations

from repro.sim.config import DefenseKind
from repro.sim.stats import BlockKind

from repro.defenses.prac import PracDefense


class BankLevelPracDefense(PracDefense):
    """PRAC whose preventive action is visible only within one bank."""

    kind = DefenseKind.PRAC_BANK

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        n_banks = self.org.banks_per_rank
        self._bank_pending = [[False] * n_banks
                              for _ in range(self.org.ranks)]
        self._bank_cooldown = [[0] * n_banks
                               for _ in range(self.org.ranks)]

    # Per-bank ABO bookkeeping replaces the rank-level one.
    def on_precharge(self, rank: int, bank: int, row: int, t: int) -> None:
        counters = self.counters[rank][bank]
        count = counters.get(row)
        if count is None:
            count = self._initial_count()
        count += 1
        counters[row] = count
        if count >= self.params.nbo:
            self._maybe_assert_bank_abo(rank, bank, t)

    def _maybe_assert_bank_abo(self, rank: int, bank: int, t: int) -> None:
        if self._bank_pending[rank][bank]:
            return
        assert_time = t + self.timing.tABO_DELAY
        if assert_time < self._bank_cooldown[rank][bank]:
            return
        self._bank_pending[rank][bank] = True
        self.abo_log.append((rank, assert_time))
        recovery_due = assert_time + self.timing.tABO_ACT
        self.sim.schedule_at(max(recovery_due, self.sim.now),
                             lambda: self._recover_bank(rank, bank))

    def _recover_bank(self, rank: int, bank: int) -> None:
        banks = frozenset((bank,))
        end = self.controller.block_banks(
            rank, banks, self.sim.now, self._backoff_duration(),
            BlockKind.BACKOFF, close=True)
        self.sim.schedule_at(end, lambda: self._finish_bank(rank, bank))

    def _finish_bank(self, rank: int, bank: int) -> None:
        self._reset_top_counters(rank, bank, self.params.n_rfms)
        self._bank_cooldown[rank][bank] = (
            self.sim.now + self.timing.tABO_COOLDOWN)
        self._bank_pending[rank][bank] = False

    # Fast-forward: same per-row counter aging as PRAC, plus the
    # per-bank ABO machinery joining the invariants.
    def ff_snapshot(self, plans):
        snap = super().ff_snapshot(plans)
        if snap is None:  # pragma: no cover - defensive
            return None
        lin, inv = snap
        extra = []
        seen = []
        for coord, flat, _bank, _queue in plans:
            key = (coord.rank, flat)
            if key not in seen:
                seen.append(key)
                extra.append(self._bank_pending[coord.rank][flat])
                extra.append(self._bank_cooldown[coord.rank][flat])
        return lin, inv + tuple(extra)

    def describe(self) -> dict:
        info = super().describe()
        info["kind"] = self.kind.value
        info["scope"] = "per-bank"
        return info
