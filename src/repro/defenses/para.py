"""PARA: Probabilistic Adjacent Row Activation (Kim et al., ISCA'14).

Included for the paper's Section 12 analysis: PARA's trigger algorithm
is *stateless and random*, so an attacker cannot reliably trigger or
observe preventive actions -- which is why random trigger algorithms
resist LeakyHammer (at higher performance cost for equivalent
protection).  On every activation, with probability ``p`` the
controller refreshes the aggressor's neighbors, blocking the bank for
the victim-refresh latency.
"""

from __future__ import annotations

from repro.sim.config import DefenseKind
from repro.sim.stats import BlockKind

from repro.defenses.base import Defense


class ParaDefense(Defense):
    """Stateless probabilistic neighbor refresh."""

    kind = DefenseKind.PARA

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.refresh_log: list[tuple[int, int, int]] = []

    def on_activate(self, rank: int, bank: int, row: int, t: int) -> None:
        if self.rng.random() >= self.params.para_probability:
            return
        self.refresh_log.append((rank, bank, t))
        self.sim.schedule_at(max(t, self.sim.now),
                             lambda: self._refresh_neighbors(rank, bank))

    def _refresh_neighbors(self, rank: int, bank: int) -> None:
        self.controller.block_banks(
            rank, frozenset((bank,)), self.sim.now,
            self.params.para_refresh_latency, BlockKind.PARA, close=True)

    # Fast-forward: PARA's trigger is an RNG draw *per activation*, so
    # a window containing activations can never be skipped (each elided
    # draw could have fired a refresh).  Activation-free steady cycles
    # -- pure row-hit streams -- carry no draws and jump freely.
    ff_supported = True

    def ff_snapshot(self, plans):
        return (), (len(self.refresh_log),)

    def ff_cycle_cap(self, lin, delta, acts_per_cycle):
        return None if acts_per_cycle == 0 else 0

    def describe(self) -> dict:
        return {"kind": self.kind.value,
                "probability": self.params.para_probability,
                "refresh_latency_ps": self.params.para_refresh_latency}
