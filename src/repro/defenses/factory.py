"""Defense construction from a :class:`SystemConfig`."""

from __future__ import annotations

from repro.controller.controller import MemoryController
from repro.sim.config import DefenseKind, SystemConfig
from repro.sim.engine import Simulator
from repro.sim.stats import MemoryStats

from repro.defenses.base import Defense
from repro.defenses.frrfm import FixedRateRfmDefense
from repro.defenses.para import ParaDefense
from repro.defenses.prac import PracDefense
from repro.defenses.prac_bank import BankLevelPracDefense
from repro.defenses.prfm import PrfmDefense
from repro.defenses.riac import PracRiacDefense

_REGISTRY: dict[DefenseKind, type[Defense]] = {
    DefenseKind.NONE: Defense,
    DefenseKind.PRAC: PracDefense,
    DefenseKind.PRFM: PrfmDefense,
    DefenseKind.FRRFM: FixedRateRfmDefense,
    DefenseKind.PRAC_RIAC: PracRiacDefense,
    DefenseKind.PRAC_BANK: BankLevelPracDefense,
    DefenseKind.PARA: ParaDefense,
}


def build_defense(sim: Simulator, controller: MemoryController,
                  config: SystemConfig, stats: MemoryStats) -> Defense:
    """Instantiate and attach the defense selected by the config."""
    kind = config.defense.kind
    try:
        cls = _REGISTRY[kind]
    except KeyError:
        raise ValueError(f"unknown defense kind: {kind!r}") from None
    defense = cls(sim, controller, config, stats)
    controller.attach_defense(defense)
    return defense
