"""FR-RFM: Fixed-Rate RFM, the paper's fundamental countermeasure.

FR-RFM decouples preventive actions from application memory access
patterns by issuing an all-bank RFM at a *fixed wall-clock period*
``T_FRRFM = T_RFM x tRC`` -- the shortest time in which ``T_RFM``
activations can be performed -- so (1) RowHammer safety at the same
``N_RH`` as PRFM is preserved (no more than ``T_RFM`` ACTs can fit
between two RFMs) and (2) the RFM schedule carries *zero* information
about any process's accesses (Section 11.1's security argument).
"""

from __future__ import annotations

from repro.sim.config import DefenseKind
from repro.sim.stats import BlockKind

from repro.defenses.base import Defense


class FixedRateRfmDefense(Defense):
    """All-bank RFM on a fixed time grid, independent of traffic."""

    kind = DefenseKind.FRRFM

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.period = self.params.trfm * self.timing.tRC
        if self.period <= self.timing.tRFM_AB:
            raise ValueError(
                "FR-RFM period must exceed the RFM latency, or the fixed "
                f"schedule starves memory entirely (period {self.period} ps"
                f" <= tRFM {self.timing.tRFM_AB} ps)")
        #: ground truth: scheduled (grid) issue times per rank.
        self.rfm_log: list[tuple[int, int]] = []

    def on_boot(self) -> None:
        for rank in range(self.org.ranks):
            self.sim.schedule_at(self.period, lambda r=rank: self._tick(r))

    def _tick(self, rank: int) -> None:
        """Issue the RFM exactly on the grid point.

        The scheduler is modified (paper Section 11.1) so that all
        scheduled requests complete and banks precharge before the slot;
        we model that by *not* aligning the block to in-flight work --
        the blocking interval begins at the grid time unconditionally.
        """
        now = self.sim.now
        self.rfm_log.append((rank, now))
        self.controller.block_banks(
            rank, None, now, self.timing.tRFM_AB, BlockKind.RFM,
            close=True, align_to_busy=False)
        self.sim.schedule_at(now + self.period, lambda: self._tick(rank))

    # Fast-forward: FR-RFM keeps no per-access state at all -- its grid
    # ticks are engine events, which already bound every jump through
    # the quiescence horizon.  Jumps between grid points are unlimited.
    ff_supported = True

    def ff_snapshot(self, plans):
        return (), (len(self.rfm_log),)

    def describe(self) -> dict:
        return {"kind": self.kind.value, "trfm": self.params.trfm,
                "period_ps": self.period,
                "rfm_latency_ps": self.timing.tRFM_AB}
