"""RowHammer defenses: industry mechanisms and LeakyHammer countermeasures.

Every defense implements the two-part structure the paper describes: a
*trigger algorithm* observing the access stream (the ``on_activate`` /
``on_precharge`` hooks called by the memory controller) and a
*preventive action* (a blocking interval installed on the affected
banks via ``MemoryController.block_banks``).
"""

from repro.defenses.base import Defense
from repro.defenses.prac import PracDefense
from repro.defenses.prfm import PrfmDefense
from repro.defenses.frrfm import FixedRateRfmDefense
from repro.defenses.riac import PracRiacDefense
from repro.defenses.prac_bank import BankLevelPracDefense
from repro.defenses.para import ParaDefense
from repro.defenses.factory import build_defense

__all__ = [
    "Defense",
    "PracDefense",
    "PrfmDefense",
    "FixedRateRfmDefense",
    "PracRiacDefense",
    "BankLevelPracDefense",
    "ParaDefense",
    "build_defense",
]
