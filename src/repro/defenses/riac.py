"""PRAC-RIAC: Randomly Initialized Activation Counters (Section 11.2).

Identical to PRAC except every counter is initialized with a uniformly
random value in ``[0, N_BO)`` at boot (lazily, on first touch) *and*
re-randomized after each preventive reset.  Counters therefore reach
the back-off threshold after an attacker-unpredictable number of
activations, injecting noise that reduces LeakyHammer's channel
capacity at a much lower cost than FR-RFM at very low ``N_RH``.
"""

from __future__ import annotations

from repro.sim.config import DefenseKind

from repro.defenses.prac import PracDefense


class PracRiacDefense(PracDefense):
    """PRAC with randomized counter initialization."""

    kind = DefenseKind.PRAC_RIAC

    # Steady-state fast-forward support is inherited from PRAC
    # unchanged: RIAC's RNG is only consulted when a counter
    # materializes or resets, and a jump window contains neither (a
    # first touch breaks the equal-differences check, a reset requires
    # a back-off, which the headroom cap excludes) -- so no draw is
    # ever skipped and the RNG stream stays bit-identical.

    def _initial_count(self) -> int:
        return self.rng.randrange(self.params.nbo)

    def describe(self) -> dict:
        info = super().describe()
        info["kind"] = self.kind.value
        info["counter_init"] = f"uniform[0, {self.params.nbo})"
        return info
