"""Defense interface shared by all RowHammer mitigations."""

from __future__ import annotations

import random

from repro.controller.controller import MemoryController
from repro.sim.config import DefenseKind, SystemConfig
from repro.sim.engine import Simulator
from repro.sim.stats import MemoryStats


class Defense:
    """Base class: a no-op defense (the unprotected baseline)."""

    kind = DefenseKind.NONE

    def __init__(self, sim: Simulator, controller: MemoryController,
                 config: SystemConfig, stats: MemoryStats) -> None:
        self.sim = sim
        self.controller = controller
        self.config = config
        self.params = config.defense
        self.timing = config.timing
        self.org = config.org
        self.stats = stats
        self.rng = random.Random(self.params.seed)

    # -- trigger-algorithm hooks (called by the controller) -------------
    def on_boot(self) -> None:
        """Called once after the system is wired up."""

    def on_activate(self, rank: int, bank: int, row: int, t: int) -> None:
        """An ACT command opened ``row`` in ``bank`` at time ``t``."""

    def on_precharge(self, rank: int, bank: int, row: int, t: int) -> None:
        """A PRE command closed ``row`` in ``bank`` at time ``t``."""

    def on_refresh(self, rank: int, t: int) -> None:
        """A periodic REF was issued to ``rank`` at time ``t``."""

    # -- introspection for tests/experiments ---------------------------
    def describe(self) -> dict:
        """Human-readable parameter summary."""
        return {"kind": self.kind.value}
