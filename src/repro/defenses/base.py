"""Defense interface shared by all RowHammer mitigations."""

from __future__ import annotations

import random

from repro.controller.controller import MemoryController
from repro.sim.config import DefenseKind, SystemConfig
from repro.sim.engine import Simulator
from repro.sim.stats import MemoryStats


class Defense:
    """Base class: a no-op defense (the unprotected baseline)."""

    kind = DefenseKind.NONE

    def __init__(self, sim: Simulator, controller: MemoryController,
                 config: SystemConfig, stats: MemoryStats) -> None:
        self.sim = sim
        self.controller = controller
        self.config = config
        self.params = config.defense
        self.timing = config.timing
        self.org = config.org
        self.stats = stats
        self.rng = random.Random(self.params.seed)

    # -- trigger-algorithm hooks (called by the controller) -------------
    def on_boot(self) -> None:
        """Called once after the system is wired up."""

    def on_activate(self, rank: int, bank: int, row: int, t: int) -> None:
        """An ACT command opened ``row`` in ``bank`` at time ``t``."""

    def on_precharge(self, rank: int, bank: int, row: int, t: int) -> None:
        """A PRE command closed ``row`` in ``bank`` at time ``t``."""

    def on_refresh(self, rank: int, t: int) -> None:
        """A periodic REF was issued to ``rank`` at time ``t``."""

    # -- steady-state fast-forward participation ------------------------
    # (see repro.sim.fastforward)
    @property
    def ff_supported(self) -> bool:
        """Whether analytic steady-state jumps may age this defense.

        Opt-in by class: the shipped defenses set ``ff_supported =
        True`` and implement the hooks below; an *unknown* subclass
        inherits ``False`` from this property, which disables jumps
        entirely and keeps the simulation event-accurate -- a defense
        the fast-forward engine cannot reason about must never be
        skipped over.  The no-defense baseline (this class itself) is
        trivially jumpable.
        """
        return type(self) is Defense

    def ff_snapshot(self, plans) -> tuple[tuple, tuple] | None:
        """(lin, inv) defense state for periodicity detection.

        ``plans`` are the controller's address plans -- ``(coord,
        flat_bank, bank, queue)`` tuples -- of the probed addresses;
        the cycle being considered touches exactly these coordinates.
        ``lin`` values must be ints advancing linearly per steady
        cycle; ``inv`` values must be bit-equal across boundaries.
        Return ``None`` to veto a jump in the current state.
        """
        return (), ()

    def ff_cycle_cap(self, lin, delta, acts_per_cycle: int) -> int | None:
        """Greatest number of whole cycles safe to jump (``None`` =
        unlimited).  Must keep every trigger condition un-crossed:
        counters stay strictly below their thresholds through the jump
        so the crossing iteration executes event-accurately."""
        return None

    def ff_apply(self, plans, delta, cycles: int) -> None:
        """Age defense counters over ``cycles`` jumped cycles
        (``delta`` = per-cycle lin difference from :meth:`ff_snapshot`)."""

    # -- introspection for tests/experiments ---------------------------
    def describe(self) -> dict:
        """Human-readable parameter summary."""
        return {"kind": self.kind.value}
