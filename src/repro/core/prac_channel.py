"""The PRAC-based covert channel (paper Section 6).

Binary mode encodes logic-1 as "back-off observed in the window" and
logic-0 as "no back-off": the sender hammers its private row, creating
row-buffer conflicts with the receiver's accesses so both rows'
activation counters climb to the back-off threshold; the receiver
detects the resulting ~1.4 us stall in its continuously-timed access
loop.  Multibit mode (ternary/quaternary) modulates the *rate* of the
sender's accesses so the receiver can decode the symbol from how many
of its own accesses complete before the back-off arrives.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.covert import (
    TransmissionResult,
    WindowObservation,
    WindowedReceiver,
    bits_per_symbol,
)
from repro.core.probe import EventKind
# Submodule import (not the repro.scenario package) keeps the
# core <-> scenario import graph acyclic: the scenario registry's
# builders import back into repro.core.
from repro.scenario.spec import AgentSpec, ScenarioSpec, StopSpec
from repro.sim.config import (
    DefenseKind,
    DefenseParams,
    RefreshPolicy,
    SystemConfig,
    _dataclass_to_dict,
    _from_flat_dict,
)
from repro.sim.engine import NS, US
from repro.sim.stats import BlockKind
from repro.workloads.patterns import bits_from_text

#: Sentinel distinguishing "use the config's value" from an explicit
#: ``None`` override in :meth:`PracCovertChannel.scenario`.
_UNSET = object()


@dataclass(frozen=True)
class PracChannelConfig:
    """Configuration of one PRAC covert-channel instance."""

    window_ps: int = 25 * US  #: transmission window (paper: 25 us)
    nbo: int = 128  #: PRAC back-off threshold (paper assumption)
    n_rfms: int = 4  #: RFMs per back-off (Fig. 11 sweeps 1/2/4)
    levels: int = 2  #: symbol alphabet size (2/3/4; Section 6.3 multibit)
    seed: int = 7
    epoch: int = 2 * US  #: wall-clock start of window 0
    noise_intensity: float | None = None  #: Eq. 2 microbenchmark level
    spec_class: str | None = None  #: 'L'/'M'/'H' co-running application
    backoff_latency_override: int | None = None  #: Fig. 12 sweep
    refresh_policy: RefreshPolicy = RefreshPolicy.POSTPONE_PAIR
    resolution_ps: int | None = None  #: classifier measurement resolution
    #: PRAC-family defense under attack (Section 11.4 evaluates the
    #: channel against PRAC-RIAC and Bank-Level PRAC).
    defense_kind: DefenseKind = DefenseKind.PRAC
    #: On-chip latency override (Section 10.3's larger hierarchy).
    frontend_latency_override: int | None = None
    #: Receiver measurement jitter (Section 5.1 real-system noise);
    #: the Fig. 11 methodology uses this to model the latency-overlap
    #: confusion between short back-offs and periodic refreshes.
    measurement_jitter_ps: int = 0
    #: extra sleep per sender access for each symbol; ``None`` = idle.
    gap_table: dict[int, int | None] = field(default_factory=dict)

    def gaps(self) -> dict[int, int | None]:
        """Sender rate table for the configured alphabet."""
        if self.gap_table:
            return dict(self.gap_table)
        if self.levels == 2:
            return {0: None, 1: 0}
        if self.levels == 3:
            return {0: None, 1: 40 * NS, 2: 0}
        if self.levels == 4:
            return {0: None, 1: 80 * NS, 2: 40 * NS, 3: 0}
        raise ValueError("levels must be 2, 3, or 4 (or pass gap_table)")

    def transmission_end(self, n_symbols: int) -> int:
        """Wall-clock end of an ``n_symbols``-window transmission --
        the single definition the scenario's stop condition, the
        noise/app cutoffs, and the decoder's block query all share."""
        return self.epoch + n_symbols * self.window_ps

    def to_dict(self) -> dict:
        """JSON-serializable dict (worker hand-off, sweep points)."""
        return _dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "PracChannelConfig":
        data = dict(data)
        data["refresh_policy"] = RefreshPolicy(data["refresh_policy"])
        data["defense_kind"] = DefenseKind(data["defense_kind"])
        data["gap_table"] = {int(k): v
                             for k, v in data.get("gap_table", {}).items()}
        return _from_flat_dict(cls, data)


#: DRAM placement of the attack (all in one bank of bankgroup 0).
SENDER_ROW = 0
RECEIVER_ROW = 8
NOISE_ROWS = (16, 24)
ATTACK_BANK = (0, 0)  #: (bankgroup, bank)


class PracCovertChannel:
    """Driver building the system, running one transmission, decoding."""

    def __init__(self, cfg: PracChannelConfig | None = None) -> None:
        self.cfg = cfg if cfg is not None else PracChannelConfig()
        self._calibration: list[float] | None = None

    # ------------------------------------------------------------------
    def system_config(self) -> SystemConfig:
        cfg = self.cfg
        if cfg.defense_kind not in (DefenseKind.PRAC, DefenseKind.PRAC_RIAC,
                                    DefenseKind.PRAC_BANK):
            raise ValueError("PRAC channel requires a PRAC-family defense")
        defense = DefenseParams(
            kind=cfg.defense_kind, nbo=cfg.nbo, n_rfms=cfg.n_rfms,
            backoff_latency_override=cfg.backoff_latency_override,
            seed=cfg.seed)
        base = SystemConfig(defense=defense,
                            refresh_policy=cfg.refresh_policy,
                            seed=cfg.seed)
        if cfg.frontend_latency_override is not None:
            base = base.with_(frontend_latency=cfg.frontend_latency_override)
        return base

    def scenario(self, symbols: list[int], *,
                 noise_intensity=_UNSET, spec_class=_UNSET) -> ScenarioSpec:
        """The transmission as data: system + cast + stop condition.

        The agent order (sender, receiver, noise, co-running app) and
        every constructor parameter mirror the original imperative
        assembly exactly, so building and running this spec is
        bit-identical to the pre-scenario code path.
        """
        cfg = self.cfg
        if noise_intensity is _UNSET:
            noise_intensity = cfg.noise_intensity
        if spec_class is _UNSET:
            spec_class = cfg.spec_class
        bg, bank = ATTACK_BANK
        end = cfg.transmission_end(len(symbols))
        agents = [
            AgentSpec("sender", params={
                "bank": (bg, bank), "rows": (SENDER_ROW,),
                "symbols": symbols, "epoch": cfg.epoch,
                "window_ps": cfg.window_ps, "gaps": cfg.gaps()}),
            AgentSpec("receiver", params={
                "bank": (bg, bank), "rows": (RECEIVER_ROW,),
                "n_windows": len(symbols), "epoch": cfg.epoch,
                "window_ps": cfg.window_ps, "sleep_on_backoff": True,
                "jitter_ps": cfg.measurement_jitter_ps}),
        ]
        if noise_intensity is not None:
            agents.append(AgentSpec("noise", params={
                "bank": (bg, bank), "rows": NOISE_ROWS,
                "intensity": noise_intensity, "stop_time": end}))
        if spec_class is not None:
            agents.append(AgentSpec("app", params={
                "intensity_class": spec_class, "seed": cfg.seed + 11,
                "n_requests": 10 ** 9, "stop_time": end}))
        return ScenarioSpec(
            name="prac-covert", system=self.system_config(),
            agents=tuple(agents), stop=StopSpec(end + 200 * US),
            resolution_ps=cfg.resolution_ps)

    def _build(self, symbols: list[int], noise_intensity: float | None,
               spec_class: str | None):
        built = self.scenario(symbols, noise_intensity=noise_intensity,
                              spec_class=spec_class).build()
        return (built.system, built.classifier, built.agent("sender"),
                built.agent("receiver"), built.agents,
                self.cfg.transmission_end(len(symbols)))

    # ------------------------------------------------------------------
    def transmit(self, symbols: list[int]) -> TransmissionResult:
        """Run one transmission of ``symbols`` and decode the message."""
        cfg = self.cfg
        for s in symbols:
            if not 0 <= s < cfg.levels:
                raise ValueError(f"symbol {s} outside alphabet")
        built = self.scenario(symbols).build()
        receiver = built.agent("receiver")
        built.run()
        system = built.system
        end = cfg.transmission_end(len(symbols))
        decoded = self._decode(receiver)
        windows = [
            WindowObservation(
                index=k, sent=symbols[k], decoded=decoded[k],
                backoffs=receiver.events_of(k, EventKind.BACKOFF),
                refreshes=receiver.events_of(k, EventKind.REFRESH),
                samples=receiver.window_samples[k],
                count_to_backoff=receiver.count_to_backoff[k])
            for k in range(len(symbols))
        ]
        blocks = system.stats.blocks_in(cfg.epoch, end)
        return TransmissionResult(
            sent=list(symbols), decoded=decoded, window_ps=cfg.window_ps,
            bits_per_symbol=bits_per_symbol(cfg.levels), windows=windows,
            ground_truth_backoffs=sum(
                1 for b in blocks if b.kind is BlockKind.BACKOFF),
            ground_truth_rfms=sum(
                1 for b in blocks if b.kind is BlockKind.RFM))

    def transmit_text(self, text: str) -> TransmissionResult:
        """Binary-mode convenience: transmit the ASCII bits of ``text``."""
        if self.cfg.levels != 2:
            raise ValueError("transmit_text requires a binary channel")
        return self.transmit(bits_from_text(text))

    # ------------------------------------------------------------------
    def _decode(self, receiver: WindowedReceiver) -> list[int]:
        if self.cfg.levels == 2:
            return [1 if receiver.events_of(k, EventKind.BACKOFF) else 0
                    for k in range(receiver.n_windows)]
        centers = self._calibrated_centers()
        decoded = []
        for k in range(receiver.n_windows):
            offset = receiver.time_to_backoff[k]
            if offset is None:
                decoded.append(0)
                continue
            best = min(range(len(centers)),
                       key=lambda i: abs(offset - centers[i]))
            decoded.append(best + 1)
        return decoded

    def _calibrated_centers(self) -> list[float]:
        """Expected first-back-off offset within the window per nonzero
        symbol, measured once over a noiseless pilot transmission (the
        sender's rate sets when the activation counters cross N_BO, so
        the back-off arrival time encodes the symbol)."""
        if self._calibration is not None:
            return self._calibration
        cfg = self.cfg
        pilot_channel = PracCovertChannel(
            replace(cfg, noise_intensity=None, spec_class=None))
        centers: list[float] = []
        for symbol in range(1, cfg.levels):
            pilot = [symbol] * 4
            built = pilot_channel.scenario(pilot).build()
            receiver = built.agent("receiver")
            built.run()
            offsets = [t for t in receiver.time_to_backoff if t is not None]
            if not offsets:
                raise RuntimeError(
                    f"calibration failed: symbol {symbol} never produced "
                    "a back-off; widen the window or change gaps")
            centers.append(sum(offsets) / len(offsets))
        self._calibration = centers
        return centers
