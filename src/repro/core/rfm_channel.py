"""The Periodic-RFM-based covert channel (paper Section 7).

PRFM's per-bank activation counters are noisy (every access to the bank
increments them), so the sender transmits each bit with *many* RFMs: to
send logic-1 it hammers its row for the whole window, driving the bank
counter past T_RFM several times; the receiver counts RFM-latency
events in its timed loop and compares against a threshold T_recv.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.covert import TransmissionResult, WindowObservation
from repro.core.probe import EventKind
from repro.scenario.spec import AgentSpec, ScenarioSpec, StopSpec
from repro.sim.config import (
    DefenseKind,
    DefenseParams,
    RefreshPolicy,
    SystemConfig,
    _dataclass_to_dict,
    _from_flat_dict,
)
from repro.sim.engine import US
from repro.sim.stats import BlockKind
from repro.workloads.patterns import bits_from_text

from repro.core.prac_channel import (
    ATTACK_BANK,
    NOISE_ROWS,
    RECEIVER_ROW,
    SENDER_ROW,
)


@dataclass(frozen=True)
class RfmChannelConfig:
    """Configuration of one RFM covert-channel instance."""

    window_ps: int = 20 * US  #: transmission window (paper: 20 us)
    trfm: int = 40  #: bank activation threshold (paper assumption)
    trecv: int = 3  #: receiver decision threshold (paper: 3)
    seed: int = 7
    epoch: int = 2 * US
    noise_intensity: float | None = None
    spec_class: str | None = None
    refresh_policy: RefreshPolicy = RefreshPolicy.POSTPONE_PAIR
    resolution_ps: int | None = None
    #: RFM-issuing defense under attack; Section 11.4 evaluates the
    #: channel against FR-RFM (whose fixed schedule defeats it).
    defense_kind: DefenseKind = DefenseKind.PRFM
    frontend_latency_override: int | None = None

    def transmission_end(self, n_bits: int) -> int:
        """Wall-clock end of an ``n_bits``-window transmission."""
        return self.epoch + n_bits * self.window_ps

    def to_dict(self) -> dict:
        """JSON-serializable dict (worker hand-off, sweep points)."""
        return _dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RfmChannelConfig":
        data = dict(data)
        data["refresh_policy"] = RefreshPolicy(data["refresh_policy"])
        data["defense_kind"] = DefenseKind(data["defense_kind"])
        return _from_flat_dict(cls, data)


class RfmCovertChannel:
    """Driver for the PRFM-based covert channel."""

    def __init__(self, cfg: RfmChannelConfig | None = None) -> None:
        self.cfg = cfg if cfg is not None else RfmChannelConfig()

    # ------------------------------------------------------------------
    def system_config(self) -> SystemConfig:
        cfg = self.cfg
        if cfg.defense_kind not in (DefenseKind.PRFM, DefenseKind.FRRFM):
            raise ValueError("RFM channel requires an RFM-issuing defense")
        defense = DefenseParams(kind=cfg.defense_kind, trfm=cfg.trfm,
                                seed=cfg.seed)
        base = SystemConfig(defense=defense,
                            refresh_policy=cfg.refresh_policy,
                            seed=cfg.seed)
        if cfg.frontend_latency_override is not None:
            base = base.with_(frontend_latency=cfg.frontend_latency_override)
        return base

    def scenario(self, bits: list[int]) -> ScenarioSpec:
        """The transmission as data (agent order and parameters mirror
        the original imperative assembly exactly)."""
        cfg = self.cfg
        bg, bank = ATTACK_BANK
        end = cfg.transmission_end(len(bits))
        agents = [
            # The RFM sender hammers for the whole window (RFMs repeat,
            # so there is no single event after which to stop).
            AgentSpec("sender", params={
                "bank": (bg, bank), "rows": (SENDER_ROW,),
                "symbols": bits, "epoch": cfg.epoch,
                "window_ps": cfg.window_ps, "gaps": {0: None, 1: 0},
                "stop_on_backoff": False}),
            AgentSpec("receiver", params={
                "bank": (bg, bank), "rows": (RECEIVER_ROW,),
                "n_windows": len(bits), "epoch": cfg.epoch,
                "window_ps": cfg.window_ps, "sleep_on_backoff": False}),
        ]
        if cfg.noise_intensity is not None:
            agents.append(AgentSpec("noise", params={
                "bank": (bg, bank), "rows": NOISE_ROWS,
                "intensity": cfg.noise_intensity, "stop_time": end}))
        if cfg.spec_class is not None:
            agents.append(AgentSpec("app", params={
                "intensity_class": cfg.spec_class, "seed": cfg.seed + 11,
                "n_requests": 10 ** 9, "stop_time": end}))
        return ScenarioSpec(
            name="rfm-covert", system=self.system_config(),
            agents=tuple(agents), stop=StopSpec(end + 200 * US),
            resolution_ps=cfg.resolution_ps)

    # ------------------------------------------------------------------
    def transmit(self, bits: list[int]) -> TransmissionResult:
        cfg = self.cfg
        for bit in bits:
            if bit not in (0, 1):
                raise ValueError("RFM channel is binary")
        built = self.scenario(bits).build()
        receiver = built.agent("receiver")
        built.run()
        system = built.system
        end = cfg.transmission_end(len(bits))
        decoded = [
            1 if receiver.events_of(k, EventKind.RFM) >= cfg.trecv else 0
            for k in range(len(bits))
        ]
        windows = [
            WindowObservation(
                index=k, sent=bits[k], decoded=decoded[k],
                rfms=receiver.events_of(k, EventKind.RFM),
                refreshes=receiver.events_of(k, EventKind.REFRESH),
                samples=receiver.window_samples[k])
            for k in range(len(bits))
        ]
        blocks = system.stats.blocks_in(cfg.epoch, end)
        return TransmissionResult(
            sent=list(bits), decoded=decoded, window_ps=cfg.window_ps,
            bits_per_symbol=1.0, windows=windows,
            ground_truth_backoffs=sum(
                1 for b in blocks if b.kind is BlockKind.BACKOFF),
            ground_truth_rfms=sum(
                1 for b in blocks if b.kind is BlockKind.RFM))

    def transmit_text(self, text: str) -> TransmissionResult:
        return self.transmit(bits_from_text(text))
