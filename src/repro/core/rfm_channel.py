"""The Periodic-RFM-based covert channel (paper Section 7).

PRFM's per-bank activation counters are noisy (every access to the bank
increments them), so the sender transmits each bit with *many* RFMs: to
send logic-1 it hammers its row for the whole window, driving the bank
counter past T_RFM several times; the receiver counts RFM-latency
events in its timed loop and compares against a threshold T_recv.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.covert import (
    TransmissionResult,
    WindowObservation,
    WindowedReceiver,
    WindowedSender,
)
from repro.core.probe import EventKind, LatencyClassifier
from repro.cpu.agent import run_agents
from repro.cpu.app import SyntheticAppAgent, spec_like_app
from repro.cpu.noise import NoiseAgent
from repro.sim.config import (
    DefenseKind,
    DefenseParams,
    RefreshPolicy,
    SystemConfig,
)
from repro.sim.engine import US
from repro.sim.stats import BlockKind
from repro.system import MemorySystem
from repro.workloads.patterns import bits_from_text

from repro.core.prac_channel import (
    ATTACK_BANK,
    NOISE_ROWS,
    RECEIVER_ROW,
    SENDER_ROW,
)


@dataclass(frozen=True)
class RfmChannelConfig:
    """Configuration of one RFM covert-channel instance."""

    window_ps: int = 20 * US  #: transmission window (paper: 20 us)
    trfm: int = 40  #: bank activation threshold (paper assumption)
    trecv: int = 3  #: receiver decision threshold (paper: 3)
    seed: int = 7
    epoch: int = 2 * US
    noise_intensity: float | None = None
    spec_class: str | None = None
    refresh_policy: RefreshPolicy = RefreshPolicy.POSTPONE_PAIR
    resolution_ps: int | None = None
    #: RFM-issuing defense under attack; Section 11.4 evaluates the
    #: channel against FR-RFM (whose fixed schedule defeats it).
    defense_kind: DefenseKind = DefenseKind.PRFM
    frontend_latency_override: int | None = None


class RfmCovertChannel:
    """Driver for the PRFM-based covert channel."""

    def __init__(self, cfg: RfmChannelConfig | None = None) -> None:
        self.cfg = cfg if cfg is not None else RfmChannelConfig()

    # ------------------------------------------------------------------
    def system_config(self) -> SystemConfig:
        cfg = self.cfg
        if cfg.defense_kind not in (DefenseKind.PRFM, DefenseKind.FRRFM):
            raise ValueError("RFM channel requires an RFM-issuing defense")
        defense = DefenseParams(kind=cfg.defense_kind, trfm=cfg.trfm,
                                seed=cfg.seed)
        base = SystemConfig(defense=defense,
                            refresh_policy=cfg.refresh_policy,
                            seed=cfg.seed)
        if cfg.frontend_latency_override is not None:
            base = base.with_(frontend_latency=cfg.frontend_latency_override)
        return base

    def _build(self, bits: list[int]):
        cfg = self.cfg
        system = MemorySystem(self.system_config())
        classifier = LatencyClassifier(system.config,
                                       resolution_ps=cfg.resolution_ps)
        bg, bank = ATTACK_BANK
        mapper = system.mapper
        sender_addr = mapper.encode(bankgroup=bg, bank=bank, row=SENDER_ROW)
        receiver_addr = mapper.encode(bankgroup=bg, bank=bank,
                                      row=RECEIVER_ROW)
        end = cfg.epoch + len(bits) * cfg.window_ps

        # The RFM sender hammers for the whole window (RFMs repeat, so
        # there is no single event after which to stop).
        sender = WindowedSender(system, sender_addr, bits, cfg.epoch,
                                cfg.window_ps, {0: None, 1: 0}, classifier,
                                stop_on_backoff=False)
        receiver = WindowedReceiver(system, receiver_addr, len(bits),
                                    cfg.epoch, cfg.window_ps, classifier,
                                    sleep_on_backoff=False)
        agents = [sender, receiver]
        if cfg.noise_intensity is not None:
            noise_addrs = [mapper.encode(bankgroup=bg, bank=bank, row=r)
                           for r in NOISE_ROWS]
            agents.append(NoiseAgent.for_intensity(
                system, noise_addrs, cfg.noise_intensity, stop_time=end))
        if cfg.spec_class is not None:
            org = system.config.org
            banks = tuple((g, b) for g in range(org.bankgroups)
                          for b in range(org.banks_per_group))
            spec = spec_like_app(cfg.spec_class, f"spec-{cfg.spec_class}",
                                 seed=cfg.seed + 11, banks=banks,
                                 n_requests=10 ** 9)
            agents.append(SyntheticAppAgent(system, spec, stop_time=end))
        return system, classifier, sender, receiver, agents, end

    # ------------------------------------------------------------------
    def transmit(self, bits: list[int]) -> TransmissionResult:
        cfg = self.cfg
        for bit in bits:
            if bit not in (0, 1):
                raise ValueError("RFM channel is binary")
        system, _, _, receiver, agents, end = self._build(bits)
        run_agents(system, agents, hard_limit=end + 200 * US)
        decoded = [
            1 if receiver.events_of(k, EventKind.RFM) >= cfg.trecv else 0
            for k in range(len(bits))
        ]
        windows = [
            WindowObservation(
                index=k, sent=bits[k], decoded=decoded[k],
                rfms=receiver.events_of(k, EventKind.RFM),
                refreshes=receiver.events_of(k, EventKind.REFRESH),
                samples=receiver.window_samples[k])
            for k in range(len(bits))
        ]
        blocks = system.stats.blocks_in(cfg.epoch, end)
        return TransmissionResult(
            sent=list(bits), decoded=decoded, window_ps=cfg.window_ps,
            bits_per_symbol=1.0, windows=windows,
            ground_truth_backoffs=sum(
                1 for b in blocks if b.kind is BlockKind.BACKOFF),
            ground_truth_rfms=sum(
                1 for b in blocks if b.kind is BlockKind.RFM))

    def transmit_text(self, text: str) -> TransmissionResult:
        return self.transmit(bits_from_text(text))
