"""Latency classification: turning raw timing samples into events.

A userspace attacker sees only per-iteration wall-clock deltas.  The
paper (Section 6.2, Fig. 2) shows these cluster into separable levels:
row hits, row-buffer conflicts, periodic refreshes, RFM commands and
PRAC back-offs.  :class:`LatencyClassifier` derives the expected level
for each event kind from the system configuration and classifies each
sample by nearest level -- subject to a measurement-resolution guard:
two levels closer than the timer resolution are indistinguishable,
which is exactly why Fig. 12 finds the channel survives down to (but
not below) ~10 ns of preventive-action latency.
"""

from __future__ import annotations

import enum
from bisect import bisect_left
from dataclasses import dataclass

from repro.cpu.probe import LatencySample
from repro.sim.config import DefenseKind, RefreshPolicy, SystemConfig
from repro.sim.engine import NS


class EventKind(enum.Enum):
    """What a latency sample reveals about the memory system."""

    HIT = "hit"
    CONFLICT = "conflict"
    REFRESH = "refresh"
    RFM = "rfm"
    BACKOFF = "backoff"

    @property
    def is_preventive(self) -> bool:
        return self in (EventKind.RFM, EventKind.BACKOFF)


@dataclass(frozen=True)
class LatencyLevel:
    """One expected latency level."""

    kind: EventKind
    delta_ps: int


class LatencyClassifier:
    """Nearest-level classifier over configuration-derived latencies."""

    #: Default timer/measurement resolution: levels closer than this are
    #: indistinguishable from userspace (pipeline + timer jitter).
    DEFAULT_RESOLUTION_PS = 10 * NS

    def __init__(self, config: SystemConfig,
                 resolution_ps: int | None = None) -> None:
        self.config = config
        self.resolution_ps = (resolution_ps if resolution_ps is not None
                              else self.DEFAULT_RESOLUTION_PS)
        self.levels = self._build_levels(config)
        # Precomputed classify plan: nearest-level assignment is a
        # bisect over the doubled midpoints between adjacent levels
        # (comparing 2*delta against d_i + d_{i+1} keeps everything in
        # integers), and the resolution guard's walk-down is resolved
        # once per level here instead of per sample.
        deltas = [level.delta_ps for level in self.levels]
        self._boundaries = [deltas[i] + deltas[i + 1]
                            for i in range(len(deltas) - 1)]
        resolved_kinds = []
        for idx in range(len(self.levels)):
            while idx > 0 and (deltas[idx] - deltas[idx - 1]
                               < self.resolution_ps):
                idx -= 1
            resolved_kinds.append(self.levels[idx].kind)
        self._resolved_kinds = resolved_kinds

    # ------------------------------------------------------------------
    def _build_levels(self, config: SystemConfig) -> list[LatencyLevel]:
        t = config.timing
        base = config.frontend_latency + config.loop_overhead
        hit = base + t.tCL + t.tBL
        conflict = base + t.tRP + t.tRCD + t.tCL + t.tBL
        levels = [LatencyLevel(EventKind.HIT, hit),
                  LatencyLevel(EventKind.CONFLICT, conflict)]

        policy = config.refresh_policy
        if policy is not RefreshPolicy.NONE:
            ref_block = (t.tRFC if policy is RefreshPolicy.EVERY_TREFI
                         else 2 * t.tRFC)
            levels.append(LatencyLevel(EventKind.REFRESH,
                                       conflict + ref_block))

        kind = config.defense.kind
        if kind is DefenseKind.PRFM:
            levels.append(LatencyLevel(EventKind.RFM, conflict + t.tRFM_SB))
        elif kind is DefenseKind.FRRFM:
            levels.append(LatencyLevel(EventKind.RFM, conflict + t.tRFM_AB))
        if kind in (DefenseKind.PRAC, DefenseKind.PRAC_RIAC,
                    DefenseKind.PRAC_BANK):
            override = config.defense.backoff_latency_override
            blocking = (override if override is not None
                        else config.defense.n_rfms * t.tRFM_AB)
            levels.append(LatencyLevel(EventKind.BACKOFF,
                                       conflict + blocking))
        return sorted(levels, key=lambda lv: lv.delta_ps)

    def level_of(self, kind: EventKind) -> int:
        """Expected delta of an event kind (raises if not modeled)."""
        for level in self.levels:
            if level.kind is kind:
                return level.delta_ps
        raise KeyError(f"no {kind} level under this configuration")

    # ------------------------------------------------------------------
    def classify(self, delta_ps: int) -> EventKind:
        """Assign a sample to the nearest distinguishable level.

        A level is indistinguishable from the next-lower one when their
        separation is below the measurement resolution; such samples
        are attributed to the lower (more common, less informative)
        level -- the attacker cannot tell them apart.

        Nearest-with-ties-down plus the resolution walk-down are both
        precomputed (see ``__init__``), so a call is one bisect and a
        table lookup.
        """
        return self._resolved_kinds[
            bisect_left(self._boundaries, 2 * delta_ps)]

    def classify_sample(self, sample: LatencySample) -> EventKind:
        return self.classify(sample.delta)

    # -- convenience predicates used by attack loops -------------------
    def is_backoff(self, delta_ps: int) -> bool:
        return self.classify(delta_ps) is EventKind.BACKOFF

    def is_preventive(self, delta_ps: int) -> bool:
        return self.classify(delta_ps).is_preventive

    def histogram(self, deltas: list[int]) -> dict[EventKind, int]:
        """Event-kind histogram over a list of measured deltas."""
        out: dict[EventKind, int] = {}
        for delta in deltas:
            kind = self.classify(delta)
            out[kind] = out.get(kind, 0) + 1
        return out
